"""Unit tests for repro.core.balancer.ParticlePlaneBalancer (paper §5.1)."""

import numpy as np
import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.tasks import TaskSystem
from tests.conftest import make_context


def greedy_cfg(**kw):
    base = dict(beta0=0.0, mu_s_base=1.0, mu_k_base=0.25)
    base.update(kw)
    return PPLBConfig(**base)


class TestStationaryInitiation:
    def test_moves_down_steep_gradient(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(4.0, 0)  # h = [4, 0, ...]; neighbors of 0: 1, 4
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        # tanβ = (4 - 0 - 2*4)/1 = -4 < µs: the 2l correction forbids
        # moving a task bigger than the gradient supports.
        assert migrations == []

    def test_correction_term_respected(self, mesh4):
        system = TaskSystem(mesh4)
        # Load 8 split as two tasks of 1 and one of 6 on node 0.
        big = system.add_task(6.0, 0)
        system.add_task(1.0, 0)
        system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        # h=8: big task tanβ = (8-0-12) < µs -> infeasible;
        # small tasks tanβ = (8-0-2)/1 = 6 > 1 -> feasible.
        assert len(migrations) >= 1
        assert all(m.task_id != big for m in migrations)
        assert all(m.src == 0 for m in migrations)

    def test_static_friction_blocks_small_gradients(self, mesh4):
        system = TaskSystem(mesh4)
        system.add_task(1.0, 0)
        system.add_task(1.0, 0)  # h[0]=2, tanβ=(2-0-2)/1=0 < µs=1
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        assert bal.step(ctx) == []
        assert bal.idle()

    def test_high_mu_s_freezes_everything(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(20):
            system.add_task(1.0, 5)
        bal = ParticlePlaneBalancer(greedy_cfg(mu_s_base=100.0))
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        assert bal.step(ctx) == []

    def test_one_task_per_link(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(40):
            system.add_task(1.0, 5)  # node 5 has degree 4
        bal = ParticlePlaneBalancer(greedy_cfg(candidates_per_node=10))
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        links = [(min(m.src, m.dst), max(m.src, m.dst)) for m in migrations]
        assert len(links) == len(set(links))
        assert len(migrations) <= 4

    def test_max_departures_per_node(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(40):
            system.add_task(1.0, 5)
        bal = ParticlePlaneBalancer(
            greedy_cfg(candidates_per_node=10, max_departures_per_node=1)
        )
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        assert len([m for m in migrations if m.src == 5]) == 1

    def test_flag_initialised_to_departure_height(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(10):
            system.add_task(1.0, 0)
        cfg = greedy_cfg(mu_k_base=0.25, c0=1.0)
        bal = ParticlePlaneBalancer(cfg)
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        assert migrations
        st = bal.journey_of(migrations[0].task_id)
        # h* = h(origin) - c0*mu_k*e = 10 - 0.25
        assert st.hstar == pytest.approx(10.0 - 0.25)
        assert st.hops == 1

    def test_heat_reported_on_migrations(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(10):
            system.add_task(2.0, 0)
        cfg = greedy_cfg(g=2.0, mu_k_base=0.5, c0=1.0)
        bal = ParticlePlaneBalancer(cfg)
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        # E_h = g*l*c0*mu_k*e = 2*2*0.5 = 2.0
        assert migrations[0].heat == pytest.approx(2.0)


class TestMotionPhase:
    def _run_rounds(self, mesh4, system, bal, rounds, seed=0):
        out = []
        for r in range(rounds):
            ctx = make_context(mesh4, system, round_index=r, seed=seed + r)
            if r == 0:
                bal.reset(ctx)
            migrations = bal.step(ctx)
            for m in migrations:
                system.move(m.task_id, m.dst)
            out.append(migrations)
        return out

    def test_particle_continues_downhill_and_settles(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(16):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        self._run_rounds(mesh4, system, bal, 40)
        assert bal.idle()
        # The hotspot drained: the corner cannot stay at 16.
        assert system.node_loads[0] < 16.0
        assert system.node_loads.sum() == pytest.approx(16.0)

    def test_energy_only_rule_also_terminates(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(16):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg(motion_rule="energy-only"))
        self._run_rounds(mesh4, system, bal, 300)
        assert bal.idle()  # flag decay guarantees settling

    def test_max_hops_caps_journeys(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(16):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg(max_hops=1, mu_k_base=1e-6))
        self._run_rounds(mesh4, system, bal, 60)
        assert bal.idle()
        # With 1-hop journeys nothing can be further than 1 hop... per
        # journey; tasks may take several journeys, but each journey
        # recorded at most 1 hop.
        assert bal.stats["hops"] <= bal.stats["initiated"] * 1 + 1e-9

    def test_flag_monotonically_decreases(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(32):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        flags: dict[int, float] = {}
        for r in range(30):
            ctx = make_context(mesh4, system, round_index=r)
            if r == 0:
                bal.reset(ctx)
            migrations = bal.step(ctx)
            for m in migrations:
                system.move(m.task_id, m.dst)
                st = bal.journey_of(m.task_id)
                if st is not None:
                    prev = flags.get(m.task_id)
                    if prev is not None:
                        assert st.hstar < prev
                    flags[m.task_id] = st.hstar

    def test_dead_in_motion_task_dropped(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(10):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        for m in migrations:
            system.move(m.task_id, m.dst)
        moving = migrations[0].task_id
        system.remove_task(moving)
        ctx = make_context(mesh4, system, round_index=1)
        out = bal.step(ctx)
        assert all(m.task_id != moving for m in out)
        assert bal.journey_of(moving) is None


class TestFaultAwareness:
    def test_never_uses_down_links(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(20):
            system.add_task(1.0, 5)
        up = np.ones(mesh4.n_edges, dtype=bool)
        for j in (1, 4, 6):  # kill 3 of node 5's 4 links; only 5-9 lives
            up[mesh4.edge_id(5, j)] = False
        bal = ParticlePlaneBalancer(greedy_cfg(candidates_per_node=8))
        ctx = make_context(mesh4, system, up_mask=up)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        from_5 = [m for m in migrations if m.src == 5]
        assert from_5
        assert all(m.dst == 9 for m in from_5)

    def test_all_links_down_no_migrations(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(20):
            system.add_task(1.0, 5)
        up = np.zeros(mesh4.n_edges, dtype=bool)
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system, up_mask=up)
        bal.reset(ctx)
        assert bal.step(ctx) == []


class TestStatsAndState:
    def test_stats_accumulate_and_reset(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(16):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        bal.step(ctx)
        assert bal.stats["initiated"] >= 1
        assert bal.stats["heat"] > 0
        bal.reset(ctx)
        assert bal.stats["initiated"] == 0
        assert bal.idle()

    def test_in_flight_count(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(16):
            system.add_task(1.0, 0)
        bal = ParticlePlaneBalancer(greedy_cfg())
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        assert bal.in_flight == len(migrations)
        assert not bal.idle()
