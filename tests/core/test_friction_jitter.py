"""Tests for §5.2's annealed friction fuzziness (friction_jitter)."""

import numpy as np
import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


class TestJitterFactor:
    def test_zero_is_identity(self):
        bal = ParticlePlaneBalancer(PPLBConfig(friction_jitter=0.0))
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert bal._jitter(0, rng) == 1.0
        assert rng.bit_generator.state == state  # no draws consumed

    def test_bounded_and_annealed(self):
        cfg = PPLBConfig(friction_jitter=0.5, anneal_c=3.0, t_max=100)
        bal = ParticlePlaneBalancer(cfg)
        rng = np.random.default_rng(0)
        early = [bal._jitter(0, rng) for _ in range(500)]
        late = [bal._jitter(10_000, rng) for _ in range(500)]
        assert all(0.5 - 1e-9 <= f <= 1.5 + 1e-9 for f in early)
        # late factors collapse onto 1 (rigidity grows with time)
        assert max(abs(f - 1.0) for f in late) < 1e-3
        assert np.std(early) > np.std(late)

    def test_never_negative(self):
        cfg = PPLBConfig(friction_jitter=0.9)
        bal = ParticlePlaneBalancer(cfg)
        rng = np.random.default_rng(1)
        assert all(bal._jitter(0, rng) >= 0.0 for _ in range(1000))

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            PPLBConfig(friction_jitter=-0.1)


class TestJitterInSimulation:
    def _run(self, jitter, seed=0):
        topo = mesh(8, 8)
        system = TaskSystem(topo)
        single_hotspot(system, 256, rng=0)
        cfg = PPLBConfig(beta0=0.0, friction_jitter=jitter)
        sim = Simulator(topo, system, ParticlePlaneBalancer(cfg), seed=seed)
        res = sim.run(max_rounds=400)
        return system.node_loads.copy(), res

    def test_still_converges(self):
        _h, res = self._run(jitter=0.4)
        assert res.converged
        assert res.final_cov < 0.3

    def test_deterministic_under_seed(self):
        h1, _ = self._run(jitter=0.4, seed=5)
        h2, _ = self._run(jitter=0.4, seed=5)
        np.testing.assert_allclose(h1, h2)

    def test_jitter_changes_trajectory(self):
        h0, _ = self._run(jitter=0.0)
        h1, _ = self._run(jitter=0.4)
        assert not np.allclose(h0, h1)
