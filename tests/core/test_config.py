"""Unit tests for repro.core.config.PPLBConfig."""

import pytest

from repro.core import PPLBConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = PPLBConfig()
        assert cfg.mu_s_base == 1.0
        assert cfg.motion_rule == "arbiter-settle"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c0": 0.0},
            {"e0": -1.0},
            {"g": 0.0},
            {"t_max": 0},
            {"candidates_per_node": 0},
            {"mu_s_base": -0.1},
            {"mu_k_base": -0.1},
            {"kappa": -1.0},
            {"w_dependency": -1.0},
            {"w_resource": -1.0},
            {"c1": -0.5},
            {"anneal_c": -1.0},
            {"beta0": 1.0},
            {"beta0": -0.1},
            {"arbiter_floor": 0.0},
            {"arbiter_floor": 1.5},
            {"motion_rule": "fly"},
            {"arbiter_score": "both"},
            {"max_hops": 0},
            {"max_departures_per_node": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PPLBConfig(**kwargs)

    def test_none_sentinels_allowed(self):
        cfg = PPLBConfig(max_hops=None, max_departures_per_node=None)
        assert cfg.max_hops is None


class TestHelpers:
    def test_evolve(self):
        cfg = PPLBConfig().evolve(mu_k_base=0.7)
        assert cfg.mu_k_base == 0.7
        assert cfg.mu_s_base == 1.0  # untouched

    def test_evolve_validates(self):
        with pytest.raises(ConfigurationError):
            PPLBConfig().evolve(beta0=2.0)

    def test_greedy(self):
        assert PPLBConfig(beta0=0.4).greedy().beta0 == 0.0

    def test_as_dict_round_trip(self):
        cfg = PPLBConfig(mu_s_base=0.5, beta0=0.1)
        d = cfg.as_dict()
        assert d["mu_s_base"] == 0.5
        rebuilt = PPLBConfig(**{k: v for k, v in d.items()})
        assert rebuilt == cfg

    def test_frozen(self):
        with pytest.raises(Exception):
            PPLBConfig().mu_s_base = 2.0  # type: ignore[misc]


class TestTable1Registry:
    def test_has_all_seven_parameters(self):
        rows = PPLBConfig.table1_rows()
        params = [r[0] for r in rows]
        assert params == ["µs", "µk", "m", "tanβ", "h", "Eh", "e_ij"]

    def test_rows_reference_real_symbols(self):
        import importlib

        for _param, _meaning, symbol in PPLBConfig.table1_rows():
            dotted = "repro." + symbol.split(" ")[0]
            parts = dotted.split(".")
            # Import the longest importable module prefix, then getattr
            # the remainder (which may be Class.method).
            obj = None
            for cut in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:cut]))
                    rest = parts[cut:]
                    break
                except ModuleNotFoundError:
                    continue
            assert obj is not None, f"unresolvable module in {symbol!r}"
            for part in rest:
                obj = getattr(obj, part)
            assert obj is not None
