"""Unit tests for repro.core.surface and repro.core.energy."""

import numpy as np
import pytest

from repro.core import (
    MotionState,
    NeighborCache,
    hop_heat_energy,
    hop_height_drop,
    tan_beta,
    tan_beta_corrected,
)
from repro.exceptions import ConfigurationError


class TestSlopes:
    def test_tan_beta(self):
        assert tan_beta(10.0, 4.0, 2.0) == pytest.approx(3.0)

    def test_tan_beta_corrected(self):
        # (h_i - h_j - 2l)/e : moving l=2 across flattens by 4
        assert tan_beta_corrected(10.0, 4.0, 2.0, 2.0) == pytest.approx(1.0)

    def test_corrected_equals_raw_for_zero_load(self):
        assert tan_beta_corrected(7.0, 3.0, 0.0, 1.0) == tan_beta(7.0, 3.0, 1.0)

    def test_negative_slope_uphill(self):
        assert tan_beta(1.0, 5.0, 1.0) < 0


class TestNeighborCache:
    def test_matches_topology(self, mesh4):
        cache = NeighborCache(mesh4)
        for i in range(mesh4.n_nodes):
            np.testing.assert_array_equal(cache.nbrs[i], mesh4.neighbors(i))
            for j, eid in zip(cache.nbrs[i], cache.eids[i]):
                assert mesh4.edge_id(i, int(j)) == int(eid)
            assert cache.degree(i) == mesh4.degree[i]

    def test_vectorised_slope_scan(self, mesh4):
        cache = NeighborCache(mesh4)
        h = np.arange(16, dtype=float)
        e = np.ones(mesh4.n_edges)
        i = 5
        slopes = (h[i] - h[cache.nbrs[i]]) / e[cache.eids[i]]
        # neighbors of 5 are [1, 4, 6, 9] -> slopes 4, 1, -1, -4
        np.testing.assert_allclose(slopes, [4.0, 1.0, -1.0, -4.0])


class TestEnergyHelpers:
    def test_hop_height_drop(self):
        assert hop_height_drop(2.0, 0.25, 3.0) == pytest.approx(1.5)

    def test_hop_heat_energy(self):
        # E_h = g * l * drop
        assert hop_heat_energy(9.81, 2.0, 0.5) == pytest.approx(9.81)

    def test_negative_drop_rejected(self):
        with pytest.raises(ConfigurationError):
            hop_height_drop(-1.0, 0.5, 1.0)


class TestMotionState:
    def test_record_hop(self):
        st = MotionState(hstar=10.0, origin=3, released_at=7)
        st.record_hop(height_drop=0.5, heat=2.0, from_node=3)
        st.record_hop(height_drop=0.25, heat=1.0, from_node=4)
        assert st.hstar == pytest.approx(9.25)
        assert st.hops == 2
        assert st.heat == pytest.approx(3.0)
        assert st.prev_node == 4
        assert st.origin == 3
        assert st.released_at == 7
