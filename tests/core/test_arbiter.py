"""Unit tests for repro.core.arbiter (the §5.2 properties P1-P3)."""

import numpy as np
import pytest

from repro.core import GreedyArbiter, PPLBConfig, StochasticArbiter
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_from_config(self):
        cfg = PPLBConfig(beta0=0.3, anneal_c=2.0, t_max=100, arbiter_floor=0.2)
        arb = StochasticArbiter.from_config(cfg)
        assert arb.beta0 == 0.3
        assert arb.t_max == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta0": 1.0},
            {"beta0": -0.1},
            {"anneal_c": -1.0},
            {"t_max": 0},
            {"floor": 0.0},
            {"floor": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StochasticArbiter(**kwargs)


class TestAnnealing:
    def test_beta_decays(self):
        arb = StochasticArbiter(beta0=0.5, anneal_c=3.0, t_max=100)
        assert arb.beta(0) == pytest.approx(0.5)
        assert arb.beta(100) == pytest.approx(0.5 * np.exp(-3.0))
        assert arb.beta(50) > arb.beta(150)

    def test_beta_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            StochasticArbiter().beta(-1)


class TestDistribution:
    def test_probabilities_sum_to_one(self):
        arb = StochasticArbiter(beta0=0.4)
        p = arb.probabilities(np.array([3.0, 1.0, 2.0]), t=0)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_p1_best_has_largest_probability(self):
        arb = StochasticArbiter(beta0=0.4)
        scores = np.array([1.0, 5.0, 3.0, 2.0])
        p = arb.probabilities(scores, t=0)
        assert p.argmax() == 1  # the best candidate
        # Monotone in score rank.
        order = np.argsort(-scores)
        ranked = p[order]
        assert (np.diff(ranked) <= 1e-12).all()

    def test_p2_everyone_reachable_while_exploring(self):
        arb = StochasticArbiter(beta0=0.5)
        p = arb.probabilities(np.array([10.0, 1.0, 0.0]), t=0)
        assert (p > 0).all()

    def test_p3_converges_to_greedy(self):
        arb = StochasticArbiter(beta0=0.5, anneal_c=5.0, t_max=10)
        p = arb.probabilities(np.array([1.0, 5.0, 3.0]), t=10_000)
        assert p[1] == pytest.approx(1.0, abs=1e-3)

    def test_beta0_zero_is_exactly_greedy(self):
        arb = StochasticArbiter(beta0=0.0)
        p = arb.probabilities(np.array([1.0, 5.0, 3.0]), t=0)
        np.testing.assert_allclose(p, [0.0, 1.0, 0.0])

    def test_single_candidate_certain(self):
        arb = StochasticArbiter(beta0=0.5)
        p = arb.probabilities(np.array([2.0]), t=0)
        np.testing.assert_allclose(p, [1.0])

    def test_best_probability_at_least_one_minus_beta(self):
        arb = StochasticArbiter(beta0=0.3)
        p = arb.probabilities(np.array([5.0, 4.0, 1.0]), t=0)
        assert p[0] >= 1.0 - 0.3 - 1e-12

    def test_equal_scores_near_uniform_priority(self):
        # All-equal scores: closeness = 1 for everyone; sequential trials
        # give the first (arbitrary) candidate 1-beta and the rest the
        # remainder — still a valid distribution.
        arb = StochasticArbiter(beta0=0.5)
        p = arb.probabilities(np.array([2.0, 2.0, 2.0]), t=0)
        assert p.sum() == pytest.approx(1.0)

    def test_rejects_empty_scores(self):
        with pytest.raises(ConfigurationError):
            StochasticArbiter().probabilities(np.array([]), t=0)


class TestChoose:
    def test_choice_matches_distribution(self):
        arb = StochasticArbiter(beta0=0.5, anneal_c=0.0)  # constant exploration
        scores = np.array([4.0, 2.0, 0.5])
        p = arb.probabilities(scores, t=0)
        rng = np.random.default_rng(0)
        counts = np.zeros(3)
        n = 20_000
        for _ in range(n):
            counts[arb.choose(scores, 0, rng)] += 1
        np.testing.assert_allclose(counts / n, p, atol=0.02)

    def test_deterministic_given_rng(self):
        arb = StochasticArbiter(beta0=0.5)
        scores = np.array([1.0, 2.0, 3.0])
        a = [arb.choose(scores, 0, np.random.default_rng(9)) for _ in range(5)]
        b = [arb.choose(scores, 0, np.random.default_rng(9)) for _ in range(5)]
        assert a == b

    def test_greedy_arbiter_argmax_no_rng_use(self):
        arb = GreedyArbiter()
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert arb.choose(np.array([1.0, 9.0, 3.0]), 0, rng) == 1
        assert rng.bit_generator.state == state  # untouched

    def test_greedy_arbiter_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            GreedyArbiter().choose(np.array([]), 0, np.random.default_rng(0))
