"""Unit tests for repro.core.tuning (the derived design methodology)."""

import pytest

from repro.core import PPLBConfig, ParticlePlaneBalancer, describe_config, suggest_config
from repro.exceptions import ConfigurationError
from repro.network import LinkAttributes, hypercube, mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


class TestSuggestConfig:
    def test_basic_derivation_uniform_links(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 512, rng=0, distribution="constant")
        cfg = suggest_config(mesh8, system, threshold_tasks=1.0)
        # mean load 1, e_typ 1 -> mu_s = 1; radius = diam/2 = 7 -> mu_k = 1/7
        assert cfg.mu_s_base == pytest.approx(1.0)
        assert cfg.mu_k_base == pytest.approx(1.0 / 7.0)
        assert cfg.candidates_per_node >= mesh8.max_degree
        assert cfg.t_max >= 512 // 4

    def test_scales_with_task_size(self, mesh8):
        big = TaskSystem(mesh8)
        single_hotspot(big, 64, rng=0, mean=10.0, distribution="constant")
        small = TaskSystem(mesh8)
        single_hotspot(small, 64, rng=0, mean=1.0, distribution="constant")
        cfg_big = suggest_config(mesh8, big)
        cfg_small = suggest_config(mesh8, small)
        assert cfg_big.mu_s_base == pytest.approx(10.0 * cfg_small.mu_s_base)

    def test_scales_with_link_cost(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 64, rng=0, distribution="constant")
        cheap = suggest_config(mesh8, system)
        costly = suggest_config(
            mesh8, system, links=LinkAttributes.uniform(mesh8, distance=4.0)
        )
        assert costly.mu_s_base == pytest.approx(cheap.mu_s_base / 4.0)

    def test_locality_radius_controls_mu_k(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 64, rng=0, distribution="constant")
        near = suggest_config(mesh8, system, locality_radius=2)
        far = suggest_config(mesh8, system, locality_radius=10)
        assert near.mu_k_base > far.mu_k_base
        assert near.mu_k_base == pytest.approx(far.mu_k_base * 5.0)

    def test_hypercube_candidates_cover_degree(self):
        topo = hypercube(7)  # degree 7
        system = TaskSystem(topo)
        single_hotspot(system, 64, rng=0)
        cfg = suggest_config(topo, system)
        assert cfg.candidates_per_node >= 7

    def test_empty_system_defaults(self, mesh4):
        cfg = suggest_config(mesh4, TaskSystem(mesh4))
        assert cfg.mu_s_base > 0

    def test_validation(self, mesh4):
        other = TaskSystem(mesh(3, 3))
        with pytest.raises(ConfigurationError):
            suggest_config(mesh4, other)
        system = TaskSystem(mesh4)
        with pytest.raises(ConfigurationError):
            suggest_config(mesh4, system, threshold_tasks=0.0)
        with pytest.raises(ConfigurationError):
            suggest_config(mesh4, system, locality_radius=0)

    def test_suggested_config_actually_balances(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 512, rng=0)
        cfg = suggest_config(mesh8, system)
        sim = Simulator(mesh8, system, ParticlePlaneBalancer(cfg), seed=0)
        res = sim.run(max_rounds=500)
        assert res.converged
        assert res.final_cov < 0.3


class TestDescribe:
    def test_mentions_all_key_fields(self):
        text = describe_config(PPLBConfig())
        for key in ("mu_s_base", "mu_k_base", "beta0", "t_max", "motion_rule"):
            assert key in text
