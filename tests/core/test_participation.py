"""Tests for the per-node participation level (Table 1's µs row)."""

import numpy as np
import pytest

from repro.core import FrictionModel, ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import multi_hotspot


class TestFrictionParticipation:
    def test_full_participation_is_identity(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        base = FrictionModel(PPLBConfig())
        part = FrictionModel(PPLBConfig(), participation=np.ones(16))
        assert part.mu_s(system, mesh4, tid, 0) == base.mu_s(system, mesh4, tid, 0)

    def test_half_participation_doubles_mu_s(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        p = np.ones(16)
        p[0] = 0.5
        fm = FrictionModel(PPLBConfig(mu_s_base=2.0), participation=p)
        assert fm.mu_s(system, mesh4, tid, 0) == pytest.approx(4.0)
        assert fm.mu_s(system, mesh4, tid, 1) == pytest.approx(2.0)

    def test_mu_k_inherits_via_kappa(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        p = np.ones(16)
        p[0] = 0.25
        fm = FrictionModel(
            PPLBConfig(mu_s_base=1.0, mu_k_base=0.1, kappa=1.0), participation=p
        )
        assert fm.mu_k(system, mesh4, tid, 0) == pytest.approx(0.1 + 4.0)

    def test_both_consistent(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        p = np.full(16, 0.5)
        fm = FrictionModel(PPLBConfig(kappa=0.5), participation=p)
        mu_s, mu_k = fm.both(system, mesh4, tid, 3)
        assert mu_s == pytest.approx(fm.mu_s(system, mesh4, tid, 3))
        assert mu_k == pytest.approx(fm.mu_k(system, mesh4, tid, 3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrictionModel(PPLBConfig(), participation=np.zeros(4))
        with pytest.raises(ConfigurationError):
            FrictionModel(PPLBConfig(), participation=np.full(4, 1.5))
        with pytest.raises(ConfigurationError):
            FrictionModel(PPLBConfig(), participation=np.ones((2, 2)))

    def test_out_of_range_node(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        fm = FrictionModel(PPLBConfig(), participation=np.ones(2))
        with pytest.raises(ConfigurationError):
            fm.mu_s(system, mesh4, tid, 5)


class TestBalancerParticipation:
    def test_reluctant_hotspot_sheds_less(self):
        """Two hotspots; the non-participating one keeps its pile."""
        topo = mesh(8, 8)

        def run(participation):
            system = TaskSystem(topo)
            multi_hotspot(system, 512, rng=0, nodes=[0, 63], weights=[0.5, 0.5])
            bal = ParticlePlaneBalancer(
                PPLBConfig(beta0=0.0), participation=participation
            )
            sim = Simulator(topo, system, bal, seed=0)
            sim.run(max_rounds=300)
            return system.node_loads.copy()

        h_full = run(None)
        p = np.ones(64)
        p[0] = 1e-6  # node 0 effectively refuses to participate
        h_reluctant = run(p)

        # With full participation both hotspots drain similarly; with a
        # reluctant node 0 its pile stays nearly intact.
        assert h_full[0] < 50
        assert h_reluctant[0] > 200
        # Node 63's side still balances fine.
        assert h_reluctant[63] < 50
