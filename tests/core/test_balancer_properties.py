"""Property-based tests on the PPLB balancer's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh, ring, torus
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import multi_hotspot, single_hotspot, uniform_random

_SETTINGS = dict(max_examples=15, deadline=None)

TOPOLOGIES = {0: lambda: mesh(5, 5), 1: lambda: torus(5, 5), 2: lambda: ring(10)}
DISTS = {0: single_hotspot, 1: uniform_random, 2: multi_hotspot}


def config_strategy():
    return st.builds(
        PPLBConfig,
        mu_s_base=st.floats(0.1, 8.0),
        mu_k_base=st.floats(0.05, 2.0),
        beta0=st.floats(0.0, 0.8),
        candidates_per_node=st.integers(1, 8),
        motion_rule=st.sampled_from(["arbiter-settle", "energy-only"]),
        arbiter_score=st.sampled_from(["corrected", "raw"]),
        friction_jitter=st.floats(0.0, 0.5),
    )


@settings(**_SETTINGS)
@given(
    cfg=config_strategy(),
    topo_key=st.integers(0, 2),
    dist_key=st.integers(0, 2),
    n_tasks=st.integers(25, 120),
    seed=st.integers(0, 10_000),
)
def test_balancer_hard_invariants(cfg, topo_key, dist_key, n_tasks, seed):
    """For ANY config: conservation, valid orders, finite journeys.

    The engine raises on any invalid order (wrong source, over-capacity,
    non-edge), so simply completing a run under strict validation is
    itself the assertion of order validity.
    """
    topo = TOPOLOGIES[topo_key]()
    system = TaskSystem(topo)
    DISTS[dist_key](system, n_tasks, rng=seed)
    total0 = system.total_load
    bal = ParticlePlaneBalancer(cfg)
    sim = Simulator(topo, system, bal, seed=seed)
    res = sim.run(max_rounds=120)

    assert system.total_load == pytest.approx(total0)
    assert (system.node_loads >= -1e-9).all()
    # stats ledger is self-consistent
    assert bal.stats["settled"] <= bal.stats["initiated"]
    assert bal.stats["initiated"] - bal.stats["settled"] == bal.in_flight
    assert bal.stats["hops"] >= bal.stats["initiated"]
    assert bal.stats["heat"] >= 0.0
    # heat reported on migrations matches the balancer's ledger
    assert res.total_heat == pytest.approx(bal.stats["heat"])


@settings(**_SETTINGS)
@given(
    cfg=config_strategy(),
    seed=st.integers(0, 10_000),
)
def test_journeys_bounded_by_energy(cfg, seed):
    """Flag decay bounds every journey: hops ≤ h*_0/(c0·µk·e_min) + 1."""
    topo = mesh(5, 5)
    system = TaskSystem(topo)
    single_hotspot(system, 75, rng=seed)
    h0_max = float(system.node_loads.max())
    bal = ParticlePlaneBalancer(cfg)
    sim = Simulator(topo, system, bal, seed=seed, track_journeys=True)
    sim.run(max_rounds=200)
    # Jitter can scale a single hop's µk down to (1 − jitter); use the
    # worst-case effective µk for the bound.
    mu_k_min = cfg.mu_k_base * max(1.0 - cfg.friction_jitter, 1e-9)
    bound = h0_max / (cfg.c0 * mu_k_min) + 1
    for hops in sim.task_hops.values():
        assert hops <= bound


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000), mu_s=st.floats(0.5, 4.0))
def test_quiescent_state_is_stable(seed, mu_s):
    """Once PPLB quiesces, re-running from that state does nothing."""
    topo = mesh(5, 5)
    system = TaskSystem(topo)
    single_hotspot(system, 80, rng=seed)
    cfg = PPLBConfig(beta0=0.0, mu_s_base=mu_s)
    sim = Simulator(topo, system, ParticlePlaneBalancer(cfg), seed=seed)
    first = sim.run(max_rounds=400)
    if not first.converged:
        return
    frozen = system.node_loads.copy()
    again = Simulator(topo, system, ParticlePlaneBalancer(cfg), seed=seed + 1)
    second = again.run(max_rounds=50)
    assert second.total_migrations == 0
    np.testing.assert_allclose(system.node_loads, frozen)
