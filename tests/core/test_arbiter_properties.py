"""Property-based tests (hypothesis) for the stochastic arbiter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StochasticArbiter

_SETTINGS = dict(max_examples=100, deadline=None)

scores_strategy = st.lists(
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


@settings(**_SETTINGS)
@given(
    scores=scores_strategy,
    beta0=st.floats(0.0, 0.95),
    t=st.integers(0, 1000),
)
def test_distribution_is_valid(scores, beta0, t):
    arb = StochasticArbiter(beta0=beta0)
    p = arb.probabilities(np.asarray(scores), t)
    assert abs(p.sum() - 1.0) < 1e-9
    assert (p >= -1e-12).all()


@settings(**_SETTINGS)
@given(
    scores=scores_strategy,
    beta0=st.floats(0.0, 0.95),
    t=st.integers(0, 1000),
)
def test_best_candidate_weakly_dominates(scores, beta0, t):
    """P1: probability is monotone non-increasing in score rank."""
    arb = StochasticArbiter(beta0=beta0)
    a = np.asarray(scores)
    p = arb.probabilities(a, t)
    order = np.argsort(-a, kind="stable")
    ranked = p[order]
    assert (np.diff(ranked) <= 1e-9).all()
    assert p.argmax() == order[0] or np.isclose(p[order[0]], p.max())


@settings(**_SETTINGS)
@given(scores=scores_strategy, beta0=st.floats(0.01, 0.95))
def test_everyone_reachable_at_t0(scores, beta0):
    """P2: nonzero probability for every candidate while exploring."""
    arb = StochasticArbiter(beta0=beta0, anneal_c=1.0)
    p = arb.probabilities(np.asarray(scores), t=0)
    assert (p > 0).all()


@settings(**_SETTINGS)
@given(scores=scores_strategy, beta0=st.floats(0.0, 0.95))
def test_late_time_collapses_to_argmax(scores, beta0):
    """P3: as t → ∞ the distribution converges to the argmax."""
    arb = StochasticArbiter(beta0=beta0, anneal_c=5.0, t_max=10)
    a = np.asarray(scores)
    p = arb.probabilities(a, t=100_000)
    best = int(np.argsort(-a, kind="stable")[0])
    assert p[best] > 0.999


@settings(**_SETTINGS)
@given(
    scores=scores_strategy,
    beta0=st.floats(0.0, 0.95),
    t=st.integers(0, 500),
    seed=st.integers(0, 2**31 - 1),
)
def test_choose_returns_valid_index(scores, beta0, t, seed):
    arb = StochasticArbiter(beta0=beta0)
    idx = arb.choose(np.asarray(scores), t, np.random.default_rng(seed))
    assert 0 <= idx < len(scores)
