"""Unit tests for repro.core.friction.FrictionModel (paper §4.2)."""

import pytest

from repro.core import FrictionModel, PPLBConfig
from repro.tasks import ResourceMap, TaskGraph, TaskSystem


def build(mesh4, *, w_dep=0.0, w_dep_nbr=0.0, w_res=0.0, kappa=0.0,
          mu_s_base=1.0, mu_k_base=0.25):
    cfg = PPLBConfig(
        mu_s_base=mu_s_base,
        mu_k_base=mu_k_base,
        w_dependency=w_dep,
        w_dependency_neighbor=w_dep_nbr,
        w_resource=w_res,
        kappa=kappa,
    )
    system = TaskSystem(mesh4)
    graph = TaskGraph()
    resources = ResourceMap(mesh4.n_nodes)
    return cfg, system, graph, resources


class TestBaseline:
    def test_constant_without_structure(self, mesh4):
        cfg, system, _g, _r = build(mesh4)
        fm = FrictionModel(cfg)
        tid = system.add_task(1.0, 0)
        assert fm.mu_s(system, mesh4, tid, 0) == 1.0
        assert fm.mu_k(system, mesh4, tid, 0) == 0.25

    def test_kappa_couples_mu_k_to_mu_s(self, mesh4):
        cfg, system, _g, _r = build(mesh4, kappa=2.0, mu_s_base=0.5, mu_k_base=0.1)
        fm = FrictionModel(cfg)
        tid = system.add_task(1.0, 0)
        assert fm.mu_k(system, mesh4, tid, 0) == pytest.approx(0.1 + 2.0 * 0.5)


class TestDependencyTerm:
    def test_colocated_partner_raises_mu_s(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=0.5)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        graph.set_dependency(a, b, 2.0)
        fm = FrictionModel(cfg, task_graph=graph)
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0 + 0.5 * 2.0)

    def test_remote_partner_does_not(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=0.5)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 15)  # far away
        graph.set_dependency(a, b, 2.0)
        fm = FrictionModel(cfg, task_graph=graph)
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0)

    def test_neighbor_partner_with_neighbor_weight(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=0.5, w_dep_nbr=0.25)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 1)  # node 1 is adjacent to node 0
        graph.set_dependency(a, b, 2.0)
        fm = FrictionModel(cfg, task_graph=graph)
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0 + 0.25 * 2.0)

    def test_dead_partner_ignored(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=0.5)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        graph.set_dependency(a, b, 2.0)
        system.remove_task(b)
        fm = FrictionModel(cfg, task_graph=graph)
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0)

    def test_zero_weight_skips_scan(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=0.0)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        graph.set_dependency(a, b, 5.0)
        fm = FrictionModel(cfg, task_graph=graph)
        assert not fm._needs_t
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0)


class TestResourceTerm:
    def test_affinity_raises_mu_s_on_that_node_only(self, mesh4):
        cfg, system, _g, resources = build(mesh4, w_res=2.0)
        a = system.add_task(1.0, 0)
        resources.set_affinity(a, 0, 1.5)
        fm = FrictionModel(cfg, resources=resources)
        assert fm.mu_s(system, mesh4, a, 0) == pytest.approx(1.0 + 2.0 * 1.5)
        assert fm.mu_s(system, mesh4, a, 1) == pytest.approx(1.0)


class TestBoth:
    def test_both_matches_individual_calls(self, mesh4):
        cfg, system, graph, resources = build(mesh4, w_dep=0.3, w_res=0.7, kappa=1.5)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        graph.set_dependency(a, b, 1.0)
        resources.set_affinity(a, 0, 2.0)
        fm = FrictionModel(cfg, task_graph=graph, resources=resources)
        mu_s, mu_k = fm.both(system, mesh4, a, 0)
        assert mu_s == pytest.approx(fm.mu_s(system, mesh4, a, 0))
        assert mu_k == pytest.approx(fm.mu_k(system, mesh4, a, 0))

    def test_dependency_pull_split(self, mesh4):
        cfg, system, graph, _r = build(mesh4, w_dep=1.0, w_dep_nbr=1.0)
        a = system.add_task(1.0, 5)
        local = system.add_task(1.0, 5)
        nbr = system.add_task(1.0, 6)
        far = system.add_task(1.0, 15)
        graph.set_dependency(a, local, 1.0)
        graph.set_dependency(a, nbr, 2.0)
        graph.set_dependency(a, far, 4.0)
        fm = FrictionModel(cfg, task_graph=graph)
        loc, near = fm.dependency_pull(system, mesh4, a, 5)
        assert loc == pytest.approx(1.0)
        assert near == pytest.approx(2.0)
