"""Unit tests for repro.physics.heightfield."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import HeightField


class TestConstruction:
    def test_basic_shape(self):
        f = HeightField(np.zeros((5, 7)), extent=(2.0, 3.0))
        assert f.nx == 5 and f.ny == 7
        assert f.extent == (2.0, 3.0)
        assert f.dx == pytest.approx(0.5)
        assert f.dy == pytest.approx(0.5)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            HeightField(np.zeros(5))

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            HeightField(np.zeros((1, 5)))

    def test_rejects_bad_extent(self):
        with pytest.raises(ConfigurationError):
            HeightField(np.zeros((4, 4)), extent=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            HeightField(np.zeros((4, 4)), extent=(1.0, -2.0))


class TestHeightQueries:
    def test_height_at_grid_nodes_is_exact(self):
        z = np.arange(16, dtype=float).reshape(4, 4)
        f = HeightField(z, extent=(3.0, 3.0))
        for i in range(4):
            for j in range(4):
                assert f.height((i * 1.0, j * 1.0)) == pytest.approx(z[i, j])

    def test_bilinear_midpoint(self):
        z = np.array([[0.0, 0.0], [1.0, 1.0]])
        f = HeightField(z, extent=(1.0, 1.0))
        assert f.height((0.5, 0.5)) == pytest.approx(0.5)

    def test_clamps_outside_domain(self):
        z = np.array([[0.0, 1.0], [2.0, 3.0]])
        f = HeightField(z, extent=(1.0, 1.0))
        assert f.height((-5.0, -5.0)) == pytest.approx(0.0)
        assert f.height((5.0, 5.0)) == pytest.approx(3.0)

    def test_vectorized_heights(self):
        f = HeightField.bowl(depth=1.0)
        pts = np.array([[0.5, 0.5], [0.0, 0.0], [1.0, 1.0]])
        h = f.height(pts)
        assert h.shape == (3,)
        assert h[0] == pytest.approx(0.0, abs=1e-6)
        assert h[1] == pytest.approx(1.0, abs=1e-2)

    def test_min_max(self):
        f = HeightField.bowl(depth=2.0)
        assert f.min_height() == pytest.approx(0.0, abs=1e-9)
        assert f.max_height() == pytest.approx(2.0, abs=1e-2)


class TestGradient:
    def test_plane_gradient_exact(self):
        # z = 2x + 3y sampled on a grid: bilinear reproduces the plane.
        f = HeightField.from_function(lambda X, Y: 2 * X + 3 * Y, shape=(17, 17))
        g = f.gradient((0.37, 0.61))
        assert g[0] == pytest.approx(2.0, rel=1e-9)
        assert g[1] == pytest.approx(3.0, rel=1e-9)

    def test_bowl_gradient_points_outward(self):
        f = HeightField.bowl(depth=1.0, shape=(129, 129))
        g = f.gradient((0.9, 0.5))  # right of center: dz/dx > 0
        assert g[0] > 0
        # On a grid node the bilinear patch uses a forward difference:
        # the cross-axis component is biased by O(grid spacing).
        assert abs(g[1]) <= 2.5 / 128

    def test_slope_magnitude(self):
        f = HeightField.from_function(lambda X, Y: 1.0 * X, shape=(9, 9))
        assert f.slope((0.5, 0.5)) == pytest.approx(1.0, rel=1e-9)

    def test_gradient_zero_at_bowl_bottom(self):
        f = HeightField.bowl(depth=1.0, shape=(129, 129))
        g = f.gradient((0.5, 0.5))
        # Bilinear forward-difference bias is O(grid spacing) at the node.
        assert np.linalg.norm(g) <= 4.0 / 128

    def test_scalar_paths_match_vectorized(self):
        f = HeightField.bowl(depth=1.3, shape=(65, 65))
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = rng.uniform(-0.1, 1.1, 2)  # includes out-of-domain clamps
            assert f.height_scalar(p[0], p[1]) == pytest.approx(
                float(f.height(p)), abs=1e-12
            )
            gs = f.gradient_scalar(p[0], p[1])
            gv = f.gradient(p)
            assert gs[0] == pytest.approx(float(gv[0]), abs=1e-12)
            assert gs[1] == pytest.approx(float(gv[1]), abs=1e-12)


class TestBuilders:
    def test_hills_heights(self):
        f = HeightField.hills(
            centers=[(0.25, 0.25), (0.75, 0.75)],
            heights=[1.0, -0.5],
            widths=[0.1, 0.1],
            shape=(65, 65),
        )
        assert f.height((0.25, 0.25)) == pytest.approx(1.0, abs=0.02)
        assert f.height((0.75, 0.75)) == pytest.approx(-0.5, abs=0.02)

    def test_hills_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            HeightField.hills(centers=[(0, 0)], heights=[1, 2], widths=[0.1])

    def test_hills_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError):
            HeightField.hills(centers=[(0, 0)], heights=[1.0], widths=[0.0])

    def test_random_terrain_nonnegative_and_deterministic(self):
        r1 = HeightField.random_terrain(np.random.default_rng(7), shape=(33, 33))
        r2 = HeightField.random_terrain(np.random.default_rng(7), shape=(33, 33))
        assert r1.min_height() == pytest.approx(0.0)
        np.testing.assert_allclose(r1.z, r2.z)

    def test_random_terrain_rejects_no_bumps(self):
        with pytest.raises(ConfigurationError):
            HeightField.random_terrain(np.random.default_rng(0), n_bumps=0)

    def test_contains(self):
        f = HeightField.bowl()
        assert f.contains((0.5, 0.5))
        assert not f.contains((1.5, 0.5))
