"""Unit tests for repro.physics.dynamics (paper §3.1-3.2 behaviours)."""

import numpy as np
import pytest

from repro.physics import HeightField, ParticleSimulator, ParticleState, PhysicsParams


def bowl_sim(mu_s=0.05, mu_k=0.05, dt=1e-3, depth=1.0):
    field = HeightField.bowl(depth=depth, shape=(129, 129))
    return ParticleSimulator(field, PhysicsParams(mu_s=mu_s, mu_k=mu_k, dt=dt))


class TestBasicMotion:
    def test_particle_slides_into_bowl_and_settles(self):
        sim = bowl_sim()
        res = sim.release((0.1, 0.1))
        assert res.settled
        # Ends near the bowl centre (friction eventually pins it there).
        assert np.linalg.norm(res.end - np.array([0.5, 0.5])) < 0.15

    def test_static_friction_holds_on_shallow_slope(self):
        # Slope magnitude of the bowl near the centre is ~0; a particle
        # placed just off-centre must not move when mu_s is large.
        sim = bowl_sim(mu_s=10.0)
        res = sim.release((0.45, 0.5))
        assert res.settled
        assert res.steps <= 2
        assert np.linalg.norm(res.end - res.start) < 1e-9

    def test_motion_iff_slope_exceeds_mu_s(self):
        # Inclined plane z = 0.3x: slope 0.3 everywhere.
        field = HeightField.from_function(lambda X, Y: 0.3 * X, shape=(65, 65))
        stay = ParticleSimulator(field, PhysicsParams(mu_s=0.4, mu_k=0.3)).release((0.8, 0.5))
        move = ParticleSimulator(field, PhysicsParams(mu_s=0.2, mu_k=0.1)).release((0.8, 0.5))
        assert np.linalg.norm(stay.end - stay.start) < 1e-9
        assert np.linalg.norm(move.end - move.start) > 0.05
        # Paper inequality (1): the moving particle heads downhill (-x).
        assert move.end[0] < move.start[0]

    def test_flat_surface_never_moves(self):
        field = HeightField(np.zeros((33, 33)))
        res = ParticleSimulator(field, PhysicsParams()).release((0.3, 0.7))
        assert res.settled
        assert res.path_length == 0.0


class TestEnergyInvariants:
    def test_energy_never_increases(self):
        sim = bowl_sim(mu_s=0.02, mu_k=0.08)
        res = sim.release((0.05, 0.5))
        # Mechanical energy at end <= initial (heat is non-negative).
        assert res.ledger.heat >= 0.0
        assert res.ledger.total_mechanical() <= res.ledger.initial_total + 1e-9

    def test_max_height_bounded_by_initial(self):
        sim = bowl_sim()
        res = sim.release((0.1, 0.5))
        h0 = sim.field.height((0.1, 0.5))
        # dt-scale tolerance: symplectic Euler overshoot is bounded.
        assert res.max_height_reached <= h0 + 5e-3

    def test_frictionless_energy_approximately_conserved(self):
        sim = ParticleSimulator(
            HeightField.bowl(depth=0.5, shape=(129, 129)),
            PhysicsParams(mu_s=0.0, mu_k=0.0, dt=2e-4),
        )
        res = sim.run(ParticleState(position=np.array([0.2, 0.5])), max_steps=20000)
        hf = sim.field
        h_end = hf.height(res.final_state.position)
        total = 0.5 * res.final_state.speed**2 + sim.params.g * h_end
        initial = sim.params.g * hf.height((0.2, 0.5))
        assert total == pytest.approx(initial, rel=0.05)

    def test_heat_equals_mu_k_times_path(self):
        sim = bowl_sim(mu_k=0.07)
        res = sim.release((0.15, 0.5))
        expected = 0.07 * 1.0 * sim.params.g * res.path_length
        assert res.ledger.heat == pytest.approx(expected, rel=1e-9)


class TestCorollaries:
    def test_corollary3_path_bounded_by_h0_over_muk(self):
        # Total friction loss <= initial energy: path <= h0/mu_k (floor 0),
        # up to the integrator's documented O(dt) tolerance (1%).
        sim = bowl_sim(mu_s=0.01, mu_k=0.05)
        start = (0.1, 0.5)
        res = sim.release(start)
        h0 = sim.field.height(start)
        assert res.path_length <= 1.01 * h0 / 0.05 + 1e-6

    def test_higher_muk_shorter_path(self):
        paths = []
        for mu_k in (0.02, 0.1, 0.4):
            sim = bowl_sim(mu_s=0.01, mu_k=mu_k)
            paths.append(sim.release((0.1, 0.5)).path_length)
        assert paths[0] > paths[1] > paths[2]

    def test_corollary2_friction_always_settles(self):
        rng = np.random.default_rng(3)
        field = HeightField.random_terrain(rng, roughness=0.5, shape=(65, 65))
        sim = ParticleSimulator(field, PhysicsParams(mu_s=0.05, mu_k=0.1))
        res = sim.release((0.1, 0.1))
        assert res.settled


class TestMechanics:
    def test_walls_reflect(self):
        # Steep ramp pushing the particle into the x=0 wall.
        field = HeightField.from_function(lambda X, Y: 2.0 * X, shape=(65, 65))
        sim = ParticleSimulator(field, PhysicsParams(mu_s=0.0, mu_k=0.3))
        res = sim.release((0.5, 0.5))
        assert (res.positions[:, 0] >= -1e-12).all()
        assert (res.positions[:, 0] <= 1.0 + 1e-12).all()

    def test_trajectory_recording_stride(self):
        sim = bowl_sim()
        sim.record_every = 50
        res = sim.release((0.1, 0.1))
        assert res.positions.shape[0] < res.steps
        np.testing.assert_allclose(res.positions[0], [0.1, 0.1])

    def test_input_state_not_mutated(self):
        sim = bowl_sim()
        st = ParticleState(position=np.array([0.1, 0.1]))
        sim.run(st, max_steps=100)
        np.testing.assert_allclose(st.position, [0.1, 0.1])
        assert st.speed == 0.0

    def test_max_steps_cap(self):
        sim = ParticleSimulator(
            HeightField.bowl(depth=1.0),
            PhysicsParams(mu_s=0.0, mu_k=0.0, max_steps=5000),
        )
        res = sim.release((0.1, 0.1))  # frictionless: oscillates forever
        assert not res.settled
        assert res.steps == 5000
