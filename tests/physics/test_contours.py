"""Unit tests for repro.physics.contours (paper Definitions 1-3, Theorem 1)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import (
    HeightField,
    contour_at,
    escape_bound_holds,
    escape_radius,
    max_escape_radius_bound,
    peak_height,
)
from repro.physics.contours import lowest_saddle, rim_mask


def two_valley_field():
    """Two valleys separated by a ridge of height ~0.5 at x=0.5."""
    def f(X, Y):
        return 0.5 * np.exp(-((X - 0.5) ** 2) / (2 * 0.08**2))

    return HeightField.from_function(f, shape=(129, 129))


class TestContourExtraction:
    def test_contour_contains_seed(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        assert c.contains_point((0.1, 0.5))

    def test_contour_stops_at_ridge(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        # The right valley is across the >0.25 ridge: not in this contour.
        assert not c.contains_point((0.9, 0.5))

    def test_level_above_ridge_merges_valleys(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.6)
        assert c.contains_point((0.9, 0.5))

    def test_seed_above_level_rejected(self):
        field = two_valley_field()
        with pytest.raises(ConfigurationError):
            contour_at(field, (0.5, 0.5), level=0.25)  # ridge top is ~0.5

    def test_floor_and_interior_peak(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        assert c.floor() == pytest.approx(0.0, abs=1e-6)
        assert c.interior_peak() < 0.25

    def test_whole_domain_contour(self):
        field = HeightField(np.zeros((17, 17)))
        c = contour_at(field, (0.5, 0.5), level=1.0)
        assert c.is_whole_domain
        assert escape_radius(c, (0.5, 0.5)) == np.inf


class TestRimAndPeak:
    def test_rim_is_outside_and_adjacent(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        rim = rim_mask(c)
        assert not (rim & c.mask).any()
        assert rim.any()

    def test_peak_at_least_level(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        # Rim cells are >= the level by flood-fill construction.
        assert peak_height(c) >= 0.25
        assert lowest_saddle(c) >= 0.25
        assert lowest_saddle(c) <= peak_height(c)


class TestEscapeRadius:
    def test_radius_grows_with_depth_of_position(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        r_center = escape_radius(c, (0.1, 0.5))
        r_near_edge = escape_radius(c, (0.4, 0.5))
        assert r_center >= 0
        assert r_near_edge <= r_center + 1e-9

    def test_radius_zero_outside(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        # A point already outside the contour has ~0 escape distance.
        assert escape_radius(c, (0.9, 0.5)) <= field.dx * 1.5


class TestTheorem1:
    def test_bound_holds_with_ample_energy(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        # h* far above the peak, tiny friction: escape is affordable.
        assert escape_bound_holds(c, (0.1, 0.5), potential_height=10.0, mu_k=0.01)

    def test_bound_fails_when_peak_too_high(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        assert not escape_bound_holds(c, (0.1, 0.5), potential_height=0.1, mu_k=0.01)

    def test_bound_fails_with_extreme_friction(self):
        field = two_valley_field()
        c = contour_at(field, (0.1, 0.5), level=0.25)
        assert not escape_bound_holds(c, (0.1, 0.5), potential_height=0.6, mu_k=100.0)

    def test_corollary3_bound(self):
        assert max_escape_radius_bound(2.0, 0.5) == pytest.approx(4.0)
        assert max_escape_radius_bound(2.0, 0.0) == np.inf
        with pytest.raises(ConfigurationError):
            max_escape_radius_bound(1.0, -0.1)
