"""Property-based tests (hypothesis) for the physics layer.

These assert the paper's §3.3 invariants over randomized terrains,
release points and friction coefficients — not just hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    EnergyLedger,
    HeightField,
    ParticleSimulator,
    PhysicsParams,
    contour_at,
    escape_radius,
)

# Keep runs quick: coarse grids, bounded steps.
_SETTINGS = dict(max_examples=20, deadline=None)


def make_field(seed: int) -> HeightField:
    rng = np.random.default_rng(seed)
    return HeightField.random_terrain(rng, roughness=0.6, n_bumps=10, shape=(49, 49))


@settings(**_SETTINGS)
@given(
    seed=st.integers(0, 10_000),
    x=st.floats(0.05, 0.95),
    y=st.floats(0.05, 0.95),
    mu_k=st.floats(0.02, 0.5),
)
def test_energy_never_increases_and_height_bounded(seed, x, y, mu_k):
    field = make_field(seed)
    sim = ParticleSimulator(field, PhysicsParams(mu_s=0.02, mu_k=mu_k, dt=2e-3))
    res = sim.run(
        sim_state_at(x, y),
        max_steps=30_000,
    )
    # Invariant 1: heat is non-negative, mechanical energy never exceeds initial.
    assert res.ledger.heat >= 0
    assert res.ledger.total_mechanical() <= res.ledger.initial_total + 1e-9
    # Invariant 2: the particle never climbs above its release height
    # (release at rest: h* starts at h0), modulo integrator tolerance.
    h0 = field.height((x, y))
    assert res.max_height_reached <= h0 + 0.02


@settings(**_SETTINGS)
@given(
    seed=st.integers(0, 10_000),
    x=st.floats(0.05, 0.95),
    y=st.floats(0.05, 0.95),
    mu_k=st.floats(0.05, 0.5),
)
def test_corollary3_path_length_bound(seed, x, y, mu_k):
    """Friction loss ≤ initial energy ⇒ path ≤ h0/µk (heights ≥ 0).

    The terrain floor is 0 (random_terrain shifts to min 0); the bound
    carries the integrator's documented O(dt) tolerance.
    """
    field = make_field(seed)
    sim = ParticleSimulator(field, PhysicsParams(mu_s=0.02, mu_k=mu_k, dt=2e-3))
    res = sim.run(sim_state_at(x, y), max_steps=30_000)
    h0 = field.height((x, y))
    assert res.path_length <= 1.01 * h0 / mu_k + 0.05


@settings(**_SETTINGS)
@given(
    seed=st.integers(0, 10_000),
    x=st.floats(0.1, 0.9),
    y=st.floats(0.1, 0.9),
    mu_k=st.floats(0.05, 0.4),
)
def test_never_exits_unaffordable_contour(seed, x, y, mu_k):
    """Dynamic form of Corollary 3: trajectories never leave a contour
    whose escape radius exceeds h*/µk."""
    field = make_field(seed)
    h0 = float(field.height((x, y)))
    level = h0 + 0.05
    if level >= field.max_height():
        return  # contour would be the whole domain: nothing to check
    try:
        c = contour_at(field, (x, y), level)
    except Exception:
        return
    r = escape_radius(c, (x, y))
    if not np.isfinite(r) or r <= h0 / mu_k:
        return  # bound does not promise trapping here
    sim = ParticleSimulator(field, PhysicsParams(mu_s=0.02, mu_k=mu_k, dt=2e-3))
    res = sim.run(sim_state_at(x, y), max_steps=30_000)
    for p in res.positions:
        assert c.contains_point(p)


@settings(**_SETTINGS)
@given(
    mass=st.floats(0.1, 10.0),
    g=st.floats(1.0, 20.0),
    h0=st.floats(0.0, 100.0),
    heats=st.lists(st.floats(0.0, 5.0), min_size=0, max_size=20),
)
def test_ledger_algebra(mass, g, h0, heats):
    led = EnergyLedger(mass=mass, g=g, initial_height=h0)
    for q in heats:
        led.add_heat(q)
    assert led.heat == pytest.approx(sum(heats), rel=1e-9, abs=1e-12)
    assert led.total_mechanical() == pytest.approx(
        mass * g * h0 - sum(heats), rel=1e-9, abs=1e-9
    )
    assert led.potential_height() == pytest.approx(
        h0 - sum(heats) / (mass * g), rel=1e-9, abs=1e-9
    )


def sim_state_at(x: float, y: float):
    from repro.physics import ParticleState

    return ParticleState(position=np.array([x, y], dtype=float))
