"""Tests for the multi-particle (dynamic surface) simulator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import HeightField, PhysicsParams
from repro.physics.multi import MultiParticleSimulator


def swarm(n=16, mu_s=0.02, mu_k=0.3, dt=1e-3, **kw):
    params = PhysicsParams(mu_s=mu_s, mu_k=mu_k, dt=dt, max_steps=60_000)
    return MultiParticleSimulator(np.ones(n), params, **kw)


def clustered_positions(n, rng, center=(0.5, 0.5), radius=0.05):
    return np.asarray(center) + rng.uniform(-radius, radius, (n, 2))


class TestValidation:
    def test_masses(self):
        with pytest.raises(ConfigurationError):
            MultiParticleSimulator(np.array([]))
        with pytest.raises(ConfigurationError):
            MultiParticleSimulator(np.array([1.0, -1.0]))

    def test_kernel(self):
        with pytest.raises(ConfigurationError):
            MultiParticleSimulator(np.ones(3), kernel_width=0.0)

    def test_positions_shape(self):
        sim = swarm(4)
        with pytest.raises(ConfigurationError):
            sim.run(np.zeros((3, 2)), max_steps=10)

    def test_terrain_extent_must_match(self):
        terr = HeightField.bowl(extent=(2.0, 2.0))
        with pytest.raises(ConfigurationError):
            MultiParticleSimulator(np.ones(3), terrain=terr, extent=(1.0, 1.0))


class TestDynamics:
    def test_two_particles_repel(self):
        sim = swarm(2)
        start = np.array([[0.48, 0.5], [0.52, 0.5]])
        res = sim.run(start, max_steps=20_000)
        d0 = np.linalg.norm(start[0] - start[1])
        d1 = np.linalg.norm(res.positions[0] - res.positions[1])
        assert d1 > 2 * d0

    def test_cluster_spreads_and_balances(self):
        rng = np.random.default_rng(0)
        sim = swarm(24)
        start = clustered_positions(24, rng)
        res = sim.run(start, max_steps=60_000)
        assert sim.mean_pairwise_distance(res.positions) > 3 * sim.mean_pairwise_distance(start)
        # Density imbalance falls — continuous load balancing.
        assert sim.density_cov(res.positions, bins=4) < sim.density_cov(start, bins=4)

    def test_friction_settles_swarm(self):
        rng = np.random.default_rng(1)
        sim = swarm(8, mu_k=0.5, mu_s=0.1)
        res = sim.run(clustered_positions(8, rng), max_steps=60_000)
        assert res.settled

    def test_particles_stay_in_domain(self):
        rng = np.random.default_rng(2)
        sim = swarm(12)
        res = sim.run(clustered_positions(12, rng, center=(0.1, 0.1)), max_steps=30_000)
        for frame in res.trajectory:
            assert (frame >= -1e-12).all()
            assert (frame[:, 0] <= 1.0 + 1e-12).all()
            assert (frame[:, 1] <= 1.0 + 1e-12).all()

    def test_deterministic(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        sim = swarm(10)
        r1 = sim.run(clustered_positions(10, rng1), max_steps=5000)
        r2 = sim.run(clustered_positions(10, rng2), max_steps=5000)
        np.testing.assert_allclose(r1.positions, r2.positions)

    def test_static_terrain_attracts(self):
        # A deep bowl at (0.25, 0.5) overcomes mild mutual repulsion:
        # the swarm's centre of mass moves toward the bowl.
        terr = HeightField.hills(
            centers=[(0.25, 0.5)], heights=[-2.0], widths=[0.15], base=2.0,
            shape=(65, 65),
        )
        sim = MultiParticleSimulator(
            np.ones(6),
            PhysicsParams(mu_s=0.02, mu_k=0.3, dt=1e-3, max_steps=40_000),
            kernel_height=0.2,
            terrain=terr,
        )
        rng = np.random.default_rng(4)
        start = clustered_positions(6, rng, center=(0.7, 0.5))
        res = sim.run(start, max_steps=40_000)
        assert res.positions[:, 0].mean() < start[:, 0].mean()


class TestMetrics:
    def test_surface_height_peaks_at_particles(self):
        sim = swarm(2, kernel_width=0.05)
        pos = np.array([[0.3, 0.5], [0.7, 0.5]])
        at_particle = sim.surface_height(np.array([[0.3, 0.5]]), pos)[0]
        far = sim.surface_height(np.array([[0.05, 0.05]]), pos)[0]
        assert at_particle > 5 * far

    def test_density_cov_zero_for_uniform_grid(self):
        sim = swarm(16)
        xs = np.linspace(0.125, 0.875, 4)
        grid = np.array([[x, y] for x in xs for y in xs])
        assert sim.density_cov(grid, bins=4) == pytest.approx(0.0, abs=1e-12)

    def test_density_cov_validation(self):
        sim = swarm(4)
        with pytest.raises(ConfigurationError):
            sim.density_cov(np.zeros((4, 2)), bins=1)

    def test_pairwise_distance_single_particle(self):
        sim = swarm(1)
        assert sim.mean_pairwise_distance(np.zeros((1, 2))) == 0.0
