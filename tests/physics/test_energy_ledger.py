"""Unit tests for repro.physics.energy (the paper's §3.3 ledger)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.physics import EnergyLedger


class TestLedgerBasics:
    def test_initial_total_at_rest(self):
        led = EnergyLedger(mass=2.0, g=10.0, initial_height=3.0)
        assert led.initial_total == pytest.approx(60.0)
        assert led.potential_height() == pytest.approx(3.0)

    def test_initial_total_with_speed(self):
        led = EnergyLedger(mass=2.0, g=10.0, initial_height=0.0, initial_speed=4.0)
        assert led.initial_total == pytest.approx(16.0)
        assert led.potential_height() == pytest.approx(0.8)

    def test_rejects_bad_mass_or_g(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger(mass=0.0, g=9.81, initial_height=1.0)
        with pytest.raises(ConfigurationError):
            EnergyLedger(mass=1.0, g=0.0, initial_height=1.0)


class TestHeat:
    def test_heat_lowers_potential_height(self):
        led = EnergyLedger(mass=1.0, g=10.0, initial_height=5.0)
        led.add_heat(10.0)
        assert led.potential_height() == pytest.approx(4.0)

    def test_friction_path_identity(self):
        # E_h = mu_k * m * g * d_horizontal  (paper §3.3)
        led = EnergyLedger(mass=2.0, g=10.0, initial_height=5.0)
        led.add_friction_path(mu_k=0.1, horizontal_distance=3.0)
        assert led.heat == pytest.approx(0.1 * 2.0 * 10.0 * 3.0)
        assert led.potential_height() == pytest.approx(5.0 - 0.1 * 3.0)

    def test_negative_heat_rejected(self):
        led = EnergyLedger(mass=1.0, g=1.0, initial_height=1.0)
        with pytest.raises(ConfigurationError):
            led.add_heat(-0.5)

    def test_negative_distance_treated_as_zero(self):
        led = EnergyLedger(mass=1.0, g=1.0, initial_height=1.0)
        led.add_friction_path(0.5, -2.0)
        assert led.heat == 0.0

    def test_heat_accumulates(self):
        led = EnergyLedger(mass=1.0, g=1.0, initial_height=10.0)
        for _ in range(5):
            led.add_heat(1.0)
        assert led.heat == pytest.approx(5.0)
        assert led.total_mechanical() == pytest.approx(5.0)


class TestDerived:
    def test_speed_at_height_conservation(self):
        # Dropping from h=5 to h=0 frictionless: v = sqrt(2 g h)
        led = EnergyLedger(mass=1.0, g=10.0, initial_height=5.0)
        assert led.speed_at(0.0) == pytest.approx((2 * 10.0 * 5.0) ** 0.5)
        assert led.speed_at(5.0) == pytest.approx(0.0)

    def test_speed_at_unreachable_height_is_zero(self):
        led = EnergyLedger(mass=1.0, g=10.0, initial_height=5.0)
        assert led.speed_at(6.0) == 0.0

    def test_can_reach(self):
        led = EnergyLedger(mass=1.0, g=1.0, initial_height=2.0)
        assert led.can_reach(2.0)
        assert led.can_reach(1.0)
        assert not led.can_reach(2.5)
        led.add_heat(1.0)  # h* = 1.0 now
        assert not led.can_reach(1.5)
        assert led.can_reach(1.0)

    def test_kinetic_at(self):
        led = EnergyLedger(mass=2.0, g=10.0, initial_height=3.0)
        assert led.kinetic_at(0.0) == pytest.approx(60.0)
        assert led.kinetic_at(3.0) == pytest.approx(0.0)
