"""Unit tests for the pplb command-line interface."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "mesh-hotspot"
        assert args.algorithm == "pplb"

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "µs" in out and "e_ij" in out
        assert "Table 1" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot", "--algorithm", "pplb",
                   "--rounds", "60", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pplb" in out
        assert "CoV" in out or "cov" in out

    def test_every_algorithm_constructs(self):
        for name, fn in ALGORITHMS.items():
            bal = fn()
            assert hasattr(bal, "step"), name
