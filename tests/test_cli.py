"""Unit tests for the pplb command-line interface."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "mesh-hotspot"
        assert args.algorithm == "pplb"

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "µs" in out and "e_ij" in out
        assert "Table 1" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot", "--algorithm", "pplb",
                   "--rounds", "60", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pplb" in out
        assert "CoV" in out or "cov" in out

    def test_every_algorithm_constructs(self):
        for name, fn in ALGORITHMS.items():
            bal = fn()
            assert hasattr(bal, "step"), name


class TestRunGrid:
    GRID = ["run-grid", "--scenarios", "mesh-hotspot", "mesh-random",
            "--algorithms", "pplb", "diffusion", "--seeds", "2",
            "--rounds", "60", "--workers", "2"]

    def test_grid_defaults(self):
        args = build_parser().parse_args(["run-grid"])
        assert args.scenarios == ["mesh-hotspot"]
        assert args.algorithms == ["pplb"]
        assert args.workers == 1 and args.seeds == 4

    def test_rejects_unknown_grid_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-grid", "--scenarios", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-grid", "--algorithms", "nope"])

    def test_grid_runs_and_then_serves_from_cache(self, capsys, tmp_path):
        argv = self.GRID + ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "8 specs: 8 executed, 0 from cache" in out
        assert "[8/8]" in out

        # Second invocation: everything replayed from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "8 specs: 0 executed, 8 from cache" in out

    def test_no_cache_flag(self, capsys, tmp_path):
        argv = ["run-grid", "--seeds", "2", "--rounds", "40", "--no-cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 from cache" not in out
        assert not (tmp_path / "cache").exists()


class TestEngineFlag:
    def test_engine_defaults_to_rounds(self):
        for cmd in (["run"], ["compare"], ["run-grid"]):
            assert build_parser().parse_args(cmd).engine == "rounds"

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "warp"])

    def test_run_with_events_engine(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot", "--algorithm", "pplb",
                   "--rounds", "60", "--seed", "1", "--engine", "events"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events engine" in out

    def test_grid_engines_do_not_share_cache_entries(self, capsys, tmp_path):
        base = ["run-grid", "--scenarios", "mesh-hotspot", "--algorithms",
                "diffusion", "--seeds", "1", "--rounds", "40",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(base + ["--engine", "rounds"]) == 0
        capsys.readouterr()
        # Same grid on the other engine must miss the cache.
        assert main(base + ["--engine", "events"]) == 0
        out = capsys.readouterr().out
        assert "1 specs: 1 executed, 0 from cache" in out

    def test_run_with_events_fast_engine(self, capsys):
        rc = main(["run", "--scenario", "torus-hotspot", "--algorithm", "pplb",
                   "--rounds", "40", "--seed", "1", "--engine", "events-fast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events-fast engine" in out


class TestCacheStats:
    GRID = ["run-grid", "--scenarios", "mesh-hotspot", "--algorithms",
            "diffusion", "--seeds", "1", "--rounds", "30"]

    def test_stats_break_entries_down_by_engine(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.GRID + ["--engine", "events-fast",
                                 "--cache-dir", cache_dir]) == 0
        assert main(self.GRID + ["--engine", "rounds",
                                 "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 2" in out
        assert "events-fast: 1" in out
        assert "rounds     : 1" in out

    def test_stats_engine_filter(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.GRID + ["--engine", "events-fast",
                                 "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--engine", "events-fast"]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1 (events-fast)" in out

    def test_stats_unknown_engine_is_a_clean_error(self, capsys, tmp_path):
        # Pinned diagnostic: an unknown engine name must fail with the
        # runner's roster message, never a KeyError/traceback.
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "cache"),
                   "--engine", "warp"])
        assert rc == 2
        err = capsys.readouterr().err
        assert ("error: unknown engine 'warp'; available: "
                "['events', 'events-fast', 'fluid', 'rounds', 'rounds-batch', 'rounds-fast']"
                ) in err


class TestRecorderFlag:
    def test_recorder_defaults_to_full(self):
        for cmd in (["run"], ["compare"], ["run-grid"]):
            assert build_parser().parse_args(cmd).recorder == "full"

    def test_run_with_summary_recorder_prints_totals(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot", "--algorithm", "pplb",
                   "--rounds", "50", "--seed", "1", "--recorder", "summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no per-round history" in out
        assert "pplb" in out

    def test_bad_recorder_is_a_clean_error(self, capsys):
        rc = main(["run", "--recorder", "verbose"])
        assert rc == 1
        assert "recorder" in capsys.readouterr().err

    def test_grid_recorders_do_not_share_cache_entries(self, capsys, tmp_path):
        base = ["run-grid", "--scenarios", "mesh-hotspot", "--algorithms",
                "diffusion", "--seeds", "1", "--rounds", "40",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(base) == 0
        capsys.readouterr()
        # Same grid under a different recorder must miss the cache.
        assert main(base + ["--recorder", "summary"]) == 0
        out = capsys.readouterr().out
        assert "1 specs: 1 executed, 0 from cache" in out


class TestComposedScenarioFlag:
    def test_composed_string_accepted(self, capsys):
        rc = main(["run", "--scenario", "mesh:6x6+clustered+diurnal",
                   "--algorithm", "diffusion", "--rounds", "20"])
        assert rc == 0
        assert "mesh:6x6+clustered+diurnal" in capsys.readouterr().out

    def test_bad_composition_fails_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--scenario", "mesh:4+warp-drive"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--scenario", "mesh:4+stragglers:fraction=1"])

    def test_grid_mixes_names_and_compositions(self, capsys, tmp_path):
        rc = main(["run-grid", "--scenarios", "mesh-hotspot",
                   "torus:4+uniform+bursty", "--algorithms", "diffusion",
                   "--seeds", "1", "--rounds", "20",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "2 specs: 2 executed" in capsys.readouterr().out


class TestScenariosCommand:
    def test_lists_aliases_components_and_grammar(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "mesh-hotspot" in out and "mesh+hotspot" in out
        for kind in ("topology", "placement", "links", "heterogeneity",
                     "dynamics"):
            assert f"{kind} components" in out
        assert "stragglers" in out and "diurnal" in out
        assert "grammar" in out.lower()


class TestFluidEngineFlag:
    def test_run_with_fluid_engine(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot",
                   "--algorithm", "fluid-diffusion", "--engine", "fluid",
                   "--rounds", "30"])
        assert rc == 0
        assert "fluid engine" in capsys.readouterr().out

    def test_fluid_algorithm_on_task_engine_is_a_clean_error(self, capsys):
        rc = main(["run", "--algorithm", "fluid-diffusion", "--rounds", "10"])
        assert rc == 1
        assert "fluid" in capsys.readouterr().err

    def test_compare_on_fluid_engine_uses_fluid_field(self, capsys, tmp_path):
        rc = main(["compare", "--scenario", "mesh-hotspot", "--rounds", "20",
                   "--engine", "fluid",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fluid-diffusion" in out and "fluid-sos" in out


class TestCompare:
    def test_compare_routes_through_runner_cache(self, capsys, tmp_path):
        argv = ["compare", "--scenario", "mesh-hotspot", "--rounds", "50",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 from cache" in out
        assert "pplb" in out and "diffusion" in out
        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_compare_accepts_workers(self, capsys, tmp_path):
        argv = ["compare", "--scenario", "mesh-hotspot", "--rounds", "40",
                "--workers", "2", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "algorithm" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_path):
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")])
        assert rc == 0
        assert "does not exist" in capsys.readouterr().out

    def test_stats_and_clear_cycle(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run-grid", "--seeds", "1", "--rounds", "40",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert "mean entry" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1 cached result" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestProbeFlag:
    def test_probe_defaults_to_null(self):
        for argv in (["run"], ["compare"], ["run-grid"]):
            assert build_parser().parse_args(argv).probe == "null"

    def test_bad_probe_fails_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--probe", "nope"])

    def test_run_with_counters_probe_prints_breakdown(self, capsys):
        rc = main(["run", "--scenario", "mesh-hotspot", "--rounds", "40",
                   "--probe", "counters"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase wall time" in out
        assert "play_round" in out
        assert "balancer.hops" in out

    def test_run_without_probe_prints_no_telemetry(self, capsys):
        assert main(["run", "--scenario", "mesh-hotspot",
                     "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall time" not in out
        assert "telemetry counters" not in out

    def test_probe_and_null_share_no_cache_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = ["run-grid", "--seeds", "1", "--rounds", "40",
                "--cache-dir", cache_dir]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--probe", "counters"]) == 0
        out = capsys.readouterr().out
        # Different probe => different content hash => a fresh entry.
        assert "1 executed, 0 from cache" in out

    def test_grid_prints_runner_metrics(self, capsys, tmp_path):
        assert main(["run-grid", "--seeds", "2", "--rounds", "40",
                     "--no-cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runner:" in out and "utilization" in out


class TestProfileCommand:
    def test_profile_runs_and_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(["profile", "mesh:8x8+hotspot", "--engine", "events-fast",
                   "--rounds", "40", "--trace-out", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile — pplb on mesh:8x8+hotspot" in out
        assert "per-phase wall time" in out
        assert "wake_wave" in out
        assert f"trace written to {trace}" in out

        import json as _json
        payload = _json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"play_round", "wake_wave"} <= {e["name"] for e in events}

    def test_profile_requires_a_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])

    def test_profile_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "nope"])


class TestLoggingFlags:
    def test_verbosity_flags_parse(self):
        assert build_parser().parse_args(["run"]).verbose == 0
        assert build_parser().parse_args(["-v", "run"]).verbose == 1
        assert build_parser().parse_args(["-vv", "run"]).verbose == 2
        args = build_parser().parse_args(["--log-level", "debug", "run"])
        assert args.log_level == "debug"

    def test_configure_logging_levels(self):
        import logging

        from repro.cli import configure_logging

        configure_logging()
        assert logging.getLogger().level == logging.WARNING
        configure_logging(verbosity=1)
        assert logging.getLogger().level == logging.INFO
        configure_logging(log_level="error", verbosity=2)
        assert logging.getLogger().level == logging.ERROR
        configure_logging()  # restore the default floor

    def test_fast_engine_scalar_fallback_warns(self, caplog):
        from repro.runner.registry import make_balancer
        from repro.sim import FastSimulator
        from repro.workloads import build_scenario

        scenario = build_scenario("mesh-hotspot", seed=3, side=5, n_tasks=100)
        balancer = make_balancer("pplb", friction_jitter=0.05)
        sim = FastSimulator(
            scenario.topology, scenario.system, balancer,
            links=scenario.links, dynamic=scenario.dynamic,
            node_speeds=scenario.node_speeds, seed=3,
        )
        with caplog.at_level("WARNING", logger="repro.core.balancer"):
            sim.run(max_rounds=20)
        fallbacks = [rec for rec in caplog.records
                     if "friction_jitter" in rec.message]
        assert len(fallbacks) == 1  # warned once, not per round


class TestTuneCommand:
    TINY = ["--scenarios", "mesh:4x4+hotspot", "--seed", "0",
            "--initial", "3", "--base-rounds", "8", "--full-rounds", "16",
            "--eval-seeds", "1", "--ga-generations", "1", "--ga-population", "2"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.scenarios == ["mesh-hotspot", "torus-hotspot"]
        assert args.algorithm == "pplb"
        assert args.engine == "rounds-fast"
        assert args.recorder == "summary"

    def test_rejects_non_pplb_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--algorithm", "diffusion"])

    def test_rejects_fluid_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--engine", "fluid"])

    def test_tune_writes_registry_and_reports(self, capsys, tmp_path):
        registry = tmp_path / "reg.json"
        rc = main(["tune", *self.TINY, "--registry", str(registry),
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mesh:side=4+hotspot" in out
        assert "evals" in out and "registry written" in out
        assert registry.exists()

    def test_second_tune_replays_from_cache(self, capsys, tmp_path):
        argv = ["tune", *self.TINY, "--registry", str(tmp_path / "reg.json"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert " 0 from cache" in first
        assert " 0 executed" in second
        # identical winner table — only the cache split may differ
        assert first.splitlines()[:7] == second.splitlines()[:7]

    def test_tune_merges_into_existing_registry(self, capsys, tmp_path):
        registry = tmp_path / "reg.json"
        base = ["--registry", str(registry), "--cache-dir", str(tmp_path / "cache")]
        assert main(["tune", *self.TINY, *base]) == 0
        assert main(["tune", *self.TINY[2:], "--scenarios", "mesh:6x6+hotspot",
                     "--seed", "0", *base]) == 0
        out = capsys.readouterr().out
        assert "2 tuned scenario(s)" in out


class TestLeaderboardCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["leaderboard"])
        assert args.engines == ["rounds-fast"]
        assert args.seeds == 2

    def test_accepts_all_literal(self):
        args = build_parser().parse_args(["leaderboard", "--scenarios", "all"])
        assert args.scenarios == ["all"]

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["leaderboard", "--scenarios", "nope"])

    def test_leaderboard_without_registry_notes_defaults(self, capsys, tmp_path):
        rc = main(["leaderboard", "--scenarios", "mesh:4x4+hotspot",
                   "--seeds", "1", "--rounds", "16", "--recorder", "summary",
                   "--registry", str(tmp_path / "absent.json"),
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no tuned configs" in out
        assert "pplb-tuned" in out and "tuned vs default" in out

    def test_leaderboard_json_is_deterministic(self, capsys, tmp_path):
        argv = ["leaderboard", "--scenarios", "mesh:4x4+hotspot",
                "--seeds", "1", "--rounds", "16", "--recorder", "summary",
                "--registry", str(tmp_path / "absent.json"),
                "--cache-dir", str(tmp_path / "cache")]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*argv, "--output", str(a)]) == 0
        assert main([*argv, "--output", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
