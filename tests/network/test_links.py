"""Unit tests for repro.network.links (BW/D/F matrices and e_ij)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network import LinkAttributes, link_costs, mesh


class TestLinkAttributes:
    def test_uniform(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, bandwidth=2.0, distance=3.0, fault_prob=0.1)
        assert (attrs.bandwidth == 2.0).all()
        assert (attrs.distance == 3.0).all()
        assert (attrs.fault_prob == 0.1).all()
        assert attrs.bandwidth.shape == (mesh4.n_edges,)

    def test_shape_validation(self, mesh4):
        with pytest.raises(ConfigurationError):
            LinkAttributes(
                topology=mesh4,
                bandwidth=np.ones(3),
                distance=np.ones(mesh4.n_edges),
                fault_prob=np.zeros(mesh4.n_edges),
            )

    def test_value_validation(self, mesh4):
        m = mesh4.n_edges
        with pytest.raises(ConfigurationError):
            LinkAttributes(mesh4, np.zeros(m), np.ones(m), np.zeros(m))  # bw=0
        with pytest.raises(ConfigurationError):
            LinkAttributes(mesh4, np.ones(m), -np.ones(m), np.zeros(m))  # d<0
        with pytest.raises(ConfigurationError):
            LinkAttributes(mesh4, np.ones(m), np.ones(m), np.ones(m))  # f=1

    def test_heterogeneous_ranges_and_determinism(self, mesh4):
        a = LinkAttributes.heterogeneous(mesh4, seed=3, fault_range=(0.0, 0.2))
        b = LinkAttributes.heterogeneous(mesh4, seed=3, fault_range=(0.0, 0.2))
        np.testing.assert_allclose(a.bandwidth, b.bandwidth)
        assert (a.bandwidth >= 0.5).all() and (a.bandwidth <= 2.0).all()
        assert (a.fault_prob < 0.2 + 1e-12).all()

    def test_heterogeneous_bad_range(self, mesh4):
        with pytest.raises(ConfigurationError):
            LinkAttributes.heterogeneous(mesh4, bandwidth_range=(2.0, 1.0))

    def test_euclidean_distances(self):
        topo = mesh(3, 3)
        attrs = LinkAttributes.euclidean(topo)
        # grid spacing is 0.5 on the unit square for a 3x3 mesh
        np.testing.assert_allclose(attrs.distance, 0.5)

    def test_matrices_symmetric_and_sparse(self, mesh4, uniform_links):
        bw = uniform_links.bw_matrix()
        assert bw.shape == (16, 16)
        assert (bw == bw.T).all()
        assert bw[0, 1] == 1.0
        assert bw[0, 5] == 0.0  # not an edge


class TestLinkCosts:
    def test_uniform_unit_cost(self, uniform_links):
        e = link_costs(uniform_links)
        np.testing.assert_allclose(e, 1.0)

    def test_scales_with_distance(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, distance=2.0)
        np.testing.assert_allclose(link_costs(attrs), 2.0)

    def test_inverse_bandwidth(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, bandwidth=4.0)
        np.testing.assert_allclose(link_costs(attrs), 0.25)

    def test_fault_prob_raises_cost(self, mesh4):
        clean = LinkAttributes.uniform(mesh4, fault_prob=0.0)
        faulty = LinkAttributes.uniform(mesh4, fault_prob=0.3)
        assert (link_costs(faulty) > link_costs(clean)).all()

    def test_paper_formula(self, mesh4):
        # e = d / (bw * (1-f)^(c1*d/bw))
        attrs = LinkAttributes.uniform(mesh4, bandwidth=2.0, distance=3.0, fault_prob=0.1)
        expected = 3.0 / (2.0 * (0.9) ** (1.5 * 1.0))
        np.testing.assert_allclose(link_costs(attrs, c1=1.0), expected)

    def test_e0_scaling(self, uniform_links):
        np.testing.assert_allclose(link_costs(uniform_links, e0=2.5), 2.5)

    def test_c1_zero_ignores_faults(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, fault_prob=0.5)
        np.testing.assert_allclose(link_costs(attrs, c1=0.0), 1.0)

    def test_validation(self, uniform_links):
        with pytest.raises(ConfigurationError):
            link_costs(uniform_links, c1=-1.0)
        with pytest.raises(ConfigurationError):
            link_costs(uniform_links, e0=0.0)
