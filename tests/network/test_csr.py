"""CSR/array adjacency export: round-trips against the neighbor API.

The fast paths index per-edge attribute arrays (link costs, fault
masks, usage reservations) through ``Topology.csr``; these tests pin
the export to the reference ``neighbors()``/``edge_id()`` API on line,
mesh, torus and hypercube builders — including the view a node gets of
a faulted link set, since screening against ``up_mask`` through wrong
edge ids would silently route traffic over dead links.
"""

import numpy as np
import pytest

from repro.network import CSRAdjacency, LinkAttributes, Topology, builders


def line(n):
    """A 1×n mesh is the line (path) topology."""
    return builders.mesh(1, n)


TOPOLOGIES = [
    line(12),
    builders.mesh(4, 5),
    builders.torus(4, 4),
    builders.hypercube(4),
]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
class TestCSRRoundTrip:
    def test_structure(self, topo):
        csr = topo.csr
        assert isinstance(csr, CSRAdjacency)
        assert csr.n_nodes == topo.n_nodes
        assert csr.n_slots == 2 * topo.n_edges
        assert csr.indptr[0] == 0 and csr.indptr[-1] == csr.n_slots
        assert (np.diff(csr.indptr) == topo.degree).all()
        assert (csr.degrees() == topo.degree).all()

    def test_neighbors_round_trip(self, topo):
        csr = topo.csr
        for i in range(topo.n_nodes):
            assert (csr.neighbors(i) == topo.neighbors(i)).all()

    def test_edge_ids_round_trip(self, topo):
        csr = topo.csr
        for i in range(topo.n_nodes):
            expected = [topo.edge_id(i, int(j)) for j in topo.neighbors(i)]
            assert csr.incident_edges(i).tolist() == expected

    def test_rows_is_repeat_form(self, topo):
        csr = topo.csr
        assert (csr.rows == np.repeat(np.arange(topo.n_nodes), topo.degree)).all()
        # Each flat slot names a real directed pair of the right edge.
        for s in range(csr.n_slots):
            u, j, eid = int(csr.rows[s]), int(csr.indices[s]), int(csr.edge_ids[s])
            assert topo.has_edge(u, j)
            assert topo.edge_id(u, j) == eid

    def test_arrays_are_read_only(self, topo):
        csr = topo.csr
        for arr in (csr.indptr, csr.indices, csr.edge_ids, csr.rows):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_faulted_link_view_matches_neighbor_scan(self, topo):
        # Kill every third edge; the per-node CSR gather of the up-mask
        # must agree with the reference edge_id lookup, link by link.
        up = np.ones(topo.n_edges, dtype=bool)
        up[::3] = False
        csr = topo.csr
        flat_up = up[csr.edge_ids]
        for i in range(topo.n_nodes):
            seg = slice(csr.indptr[i], csr.indptr[i + 1])
            expected = [
                bool(up[topo.edge_id(i, int(j))]) for j in topo.neighbors(i)
            ]
            assert flat_up[seg].tolist() == expected

    def test_link_cost_gather_matches(self, topo):
        # Per-edge attribute arrays (here: heterogeneous bandwidths) are
        # indexed by the same edge ids from both APIs.
        attrs = LinkAttributes.heterogeneous(
            topo, seed=3, bandwidth_range=(0.5, 2.0)
        )
        csr = topo.csr
        for i in range(topo.n_nodes):
            seg = slice(csr.indptr[i], csr.indptr[i + 1])
            via_csr = attrs.bandwidth[csr.edge_ids[seg]]
            via_api = attrs.bandwidth[
                [topo.edge_id(i, int(j)) for j in topo.neighbors(i)]
            ]
            assert (via_csr == via_api).all()


def test_single_node_topology_has_empty_csr():
    import networkx as nx

    g = nx.Graph()
    g.add_node(0)
    topo = Topology(g, name="singleton")
    csr = topo.csr
    assert csr.n_nodes == 1
    assert csr.n_slots == 0
    assert csr.indptr.tolist() == [0, 0]
