"""Unit tests for repro.network.faults."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.network import FaultModel, LinkAttributes, ring


class TestTransientFaults:
    def test_fault_free_links_always_up(self, mesh4):
        fm = FaultModel(LinkAttributes.uniform(mesh4), rng=0)
        fm.advance(0)
        assert fm.up_mask().all()
        assert fm.link_up(0, 1)
        assert not fm.any_faults_possible

    def test_transient_rate_approximates_f(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, fault_prob=0.3)
        fm = FaultModel(attrs, rng=0)
        downs = 0
        total = 0
        for r in range(300):
            fm.advance(r)
            downs += int((~fm.up_mask()).sum())
            total += mesh4.n_edges
        assert 0.25 < downs / total < 0.35

    def test_deterministic_given_seed(self, mesh4):
        attrs = LinkAttributes.uniform(mesh4, fault_prob=0.2)
        a = FaultModel(attrs, rng=42)
        b = FaultModel(attrs, rng=42)
        for r in range(10):
            a.advance(r)
            b.advance(r)
            np.testing.assert_array_equal(a.up_mask(), b.up_mask())

    def test_rounds_must_advance(self, mesh4):
        fm = FaultModel(LinkAttributes.uniform(mesh4), rng=0)
        fm.advance(0)
        with pytest.raises(ConfigurationError):
            fm.advance(0)


class TestPermanentFaults:
    def test_kill_and_repair(self, mesh4):
        fm = FaultModel(
            LinkAttributes.uniform(mesh4),
            rng=0,
            permanent={2: [(0, 1)]},
            repair_after=3,
        )
        fm.advance(0)
        assert fm.link_up(0, 1)
        fm.advance(1)
        fm.advance(2)
        assert not fm.link_up(0, 1)
        fm.advance(3)
        fm.advance(4)
        assert not fm.link_up(0, 1)
        fm.advance(5)  # repair at 2+3
        assert fm.link_up(0, 1)

    def test_kill_forever_without_repair(self, mesh4):
        fm = FaultModel(LinkAttributes.uniform(mesh4), rng=0, permanent={0: [(0, 1)]})
        for r in range(5):
            fm.advance(r)
            assert not fm.link_up(0, 1)

    def test_refuses_to_disconnect(self):
        topo = ring(4)  # killing any 2 adjacent edges around one node disconnects
        fm = FaultModel(
            LinkAttributes.uniform(topo), rng=0, permanent={0: [(0, 1)], 1: [(0, 3)]}
        )
        fm.advance(0)
        with pytest.raises(TopologyError):
            fm.advance(1)

    def test_validates_edges_eagerly(self, mesh4):
        with pytest.raises(TopologyError):
            FaultModel(LinkAttributes.uniform(mesh4), permanent={0: [(0, 5)]})

    def test_validates_repair_after(self, mesh4):
        with pytest.raises(ConfigurationError):
            FaultModel(LinkAttributes.uniform(mesh4), repair_after=0)

    def test_any_faults_possible_with_permanent(self, mesh4):
        fm = FaultModel(LinkAttributes.uniform(mesh4), permanent={3: [(0, 1)]})
        assert fm.any_faults_possible
