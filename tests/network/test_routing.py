"""Unit tests for repro.network.routing."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.network import hypercube, mesh, ring
from repro.network.routing import hop_distances, path_hops


class TestHopDistances:
    def test_mesh_manhattan(self):
        t = mesh(4, 4)
        hd = hop_distances(t)
        # Mesh hop distance is the Manhattan distance between grid coords.
        for u in range(16):
            for v in range(16):
                ur, uc = divmod(u, 4)
                vr, vc = divmod(v, 4)
                assert hd[u, v] == abs(ur - vr) + abs(uc - vc)

    def test_ring_wraps(self):
        hd = hop_distances(ring(6))
        assert hd[0, 3] == 3
        assert hd[0, 5] == 1

    def test_hypercube_hamming(self):
        t = hypercube(4)
        hd = hop_distances(t)
        for u in range(16):
            for v in range(16):
                assert hd[u, v] == bin(u ^ v).count("1")

    def test_symmetric_zero_diagonal(self, mesh4):
        hd = hop_distances(mesh4)
        assert (hd == hd.T).all()
        assert (np.diag(hd) == 0).all()


class TestPathHops:
    def test_valid_route(self, mesh4):
        assert path_hops(mesh4, [0, 1, 2, 6]) == 3

    def test_rejects_non_edges(self, mesh4):
        with pytest.raises(TopologyError):
            path_hops(mesh4, [0, 5])

    def test_empty_route(self, mesh4):
        assert path_hops(mesh4, [3]) == 0
