"""Unit tests for the k-ary n-cube builder."""

import pytest

from repro.exceptions import TopologyError
from repro.network import hypercube, kary_ncube, ring, torus


class TestStructure:
    def test_counts_and_regularity(self):
        t = kary_ncube(3, 3)
        assert t.n_nodes == 27
        assert (t.degree == 6).all()  # 2 links per dimension (k >= 3)
        assert t.n_edges == 27 * 3

    def test_k1d_is_ring(self):
        t = kary_ncube(5, 1)
        r = ring(5)
        assert t.n_nodes == r.n_nodes
        assert t.n_edges == r.n_edges
        assert (t.degree == 2).all()

    def test_k2d_is_torus(self):
        t = kary_ncube(4, 2)
        tor = torus(4, 4)
        assert t.n_nodes == tor.n_nodes
        assert t.n_edges == tor.n_edges
        assert t.diameter == tor.diameter

    def test_k2_is_hypercube(self):
        t = kary_ncube(2, 5)
        h = hypercube(5)
        assert t == h

    def test_diameter_formula(self):
        # diameter of a k-ary n-cube is n * floor(k/2)
        for k, n in ((3, 2), (4, 2), (5, 2), (3, 3)):
            t = kary_ncube(k, n)
            assert t.diameter == n * (k // 2)

    def test_neighbors_differ_in_one_digit(self):
        k, n = 4, 3
        t = kary_ncube(k, n)

        def digits(u):
            out = []
            for _ in range(n):
                out.append(u % k)
                u //= k
            return out

        for u, v in t.edges:
            du, dv = digits(int(u)), digits(int(v))
            diffs = [
                (a, b) for a, b in zip(du, dv) if a != b
            ]
            assert len(diffs) == 1
            a, b = diffs[0]
            assert (a - b) % k in (1, k - 1)

    def test_validation(self):
        with pytest.raises(TopologyError):
            kary_ncube(1, 2)
        with pytest.raises(TopologyError):
            kary_ncube(3, 0)

    def test_usable_in_simulation(self):
        from repro.core import ParticlePlaneBalancer, PPLBConfig
        from repro.sim import Simulator
        from repro.tasks import TaskSystem
        from repro.workloads import single_hotspot

        topo = kary_ncube(3, 3)
        system = TaskSystem(topo)
        single_hotspot(system, 216, rng=0)
        sim = Simulator(
            topo,
            system,
            ParticlePlaneBalancer(PPLBConfig(candidates_per_node=8)),
            seed=0,
        )
        res = sim.run(max_rounds=300)
        assert res.final_cov < 0.5
