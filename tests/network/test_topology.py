"""Unit tests for repro.network.topology."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.network import Topology, mesh


class TestConstruction:
    def test_basic(self):
        g = nx.path_graph(3)
        t = Topology(g, name="path")
        assert t.n_nodes == 3
        assert t.n_edges == 2
        assert t.name == "path"

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph())

    def test_rejects_non_contiguous_labels(self):
        g = nx.Graph()
        g.add_edge(0, 2)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_rejects_self_loop(self):
        g = nx.path_graph(3)
        g.add_edge(1, 1)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_single_node_ok(self):
        g = nx.Graph()
        g.add_node(0)
        t = Topology(g)
        assert t.n_nodes == 1
        assert t.n_edges == 0

    def test_coords_array_shape_checked(self):
        g = nx.path_graph(3)
        with pytest.raises(TopologyError):
            Topology(g, coords=np.zeros((2, 2)))

    def test_coords_mapping(self):
        g = nx.path_graph(2)
        t = Topology(g, coords={0: (0.0, 0.0), 1: (1.0, 2.0)})
        np.testing.assert_allclose(t.coords[1], [1.0, 2.0])


class TestQueries:
    def test_neighbors_sorted(self, mesh4):
        # Node 5 of a 4x4 mesh: neighbors 1, 4, 6, 9.
        np.testing.assert_array_equal(mesh4.neighbors(5), [1, 4, 6, 9])

    def test_neighbors_bounds(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.neighbors(16)
        with pytest.raises(TopologyError):
            mesh4.neighbors(-1)

    def test_degree(self, mesh4):
        # Corners 2, edges 3, interior 4.
        assert mesh4.degree[0] == 2
        assert mesh4.degree[1] == 3
        assert mesh4.degree[5] == 4
        assert mesh4.max_degree == 4

    def test_has_edge_and_edge_id(self, mesh4):
        assert mesh4.has_edge(0, 1)
        assert mesh4.has_edge(1, 0)
        assert not mesh4.has_edge(0, 5)
        eid = mesh4.edge_id(1, 0)
        assert (mesh4.edges[eid] == [0, 1]).all()
        with pytest.raises(TopologyError):
            mesh4.edge_id(0, 5)

    def test_adjacency_symmetric(self, mesh4):
        a = mesh4.adjacency
        assert (a == a.T).all()
        assert a.sum() == 2 * mesh4.n_edges
        assert not a.diagonal().any()

    def test_laplacian_rows_sum_zero(self, mesh4):
        lap = mesh4.laplacian
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)

    def test_hop_distances_and_diameter(self, mesh4):
        hd = mesh4.hop_distances
        assert hd[0, 0] == 0
        assert hd[0, 15] == 6  # corner to corner on 4x4 mesh
        assert mesh4.diameter == 6
        assert (hd == hd.T).all()

    def test_equality_and_hash(self):
        a, b = mesh(3, 3), mesh(3, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != mesh(3, 4)

    def test_graph_is_frozen(self, mesh4):
        with pytest.raises(nx.NetworkXError):
            mesh4.graph.add_edge(0, 15)
