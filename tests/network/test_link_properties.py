"""Property-based tests for link costs and topology invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import LinkAttributes, link_costs, mesh, random_connected

_SETTINGS = dict(max_examples=50, deadline=None)


@settings(**_SETTINGS)
@given(
    bw=st.floats(0.1, 10.0),
    d=st.floats(0.1, 10.0),
    f=st.floats(0.0, 0.9),
    c1=st.floats(0.0, 4.0),
)
def test_link_cost_formula_and_monotonicity(bw, d, f, c1):
    topo = mesh(3, 3)
    attrs = LinkAttributes.uniform(topo, bandwidth=bw, distance=d, fault_prob=f)
    e = link_costs(attrs, c1=c1)
    expected = d / (bw * (1.0 - f) ** (c1 * d / bw))
    assert e[0] == pytest.approx(expected, rel=1e-12)
    assert (e > 0).all()
    # monotone directions of the paper's three proportionalities
    e_slower = link_costs(LinkAttributes.uniform(topo, bandwidth=bw / 2, distance=d,
                                                 fault_prob=f), c1=c1)
    e_longer = link_costs(LinkAttributes.uniform(topo, bandwidth=bw, distance=2 * d,
                                                 fault_prob=f), c1=c1)
    assert e_slower[0] > e[0] - 1e-12
    assert e_longer[0] > e[0] - 1e-12
    if c1 > 0 and f < 0.89:
        e_flakier = link_costs(
            LinkAttributes.uniform(topo, bandwidth=bw, distance=d,
                                   fault_prob=min(f + 0.05, 0.95)),
            c1=c1,
        )
        assert e_flakier[0] >= e[0] - 1e-12


@settings(max_examples=20, deadline=None)
@given(n=st.integers(5, 40), deg=st.floats(2.0, 6.0), seed=st.integers(0, 10_000))
def test_random_topology_invariants(n, deg, seed):
    topo = random_connected(n, avg_degree=deg, seed=seed)
    assert topo.n_nodes == n
    # connected: every hop distance finite and symmetric
    hd = topo.hop_distances
    assert (hd >= 0).all()
    assert (hd == hd.T).all()
    assert (np.diag(hd) == 0).all()
    assert hd.max() < n  # diameter < n for a connected graph
    # degree sum = 2|E|
    assert topo.degree.sum() == 2 * topo.n_edges
    # edge ids are a bijection onto [0, m)
    ids = {topo.edge_id(int(u), int(v)) for u, v in topo.edges}
    assert ids == set(range(topo.n_edges))


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(2, 8), cols=st.integers(2, 8))
def test_mesh_structural_formulas(rows, cols):
    topo = mesh(rows, cols)
    assert topo.n_nodes == rows * cols
    assert topo.n_edges == rows * (cols - 1) + cols * (rows - 1)
    assert topo.diameter == (rows - 1) + (cols - 1)
