"""Unit tests for repro.network.builders (degree/diameter facts per family)."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.network import (
    complete,
    hypercube,
    mesh,
    random_connected,
    ring,
    star,
    torus,
    tree,
)


class TestMesh:
    def test_counts(self):
        t = mesh(3, 5)
        assert t.n_nodes == 15
        assert t.n_edges == 3 * 4 + 5 * 2  # horizontal + vertical

    def test_square_default(self):
        assert mesh(4).n_nodes == 16

    def test_diameter(self):
        assert mesh(4, 4).diameter == 6
        assert mesh(2, 7).diameter == 7

    def test_degree_range(self):
        t = mesh(5, 5)
        assert t.degree.min() == 2
        assert t.degree.max() == 4

    def test_invalid(self):
        with pytest.raises(TopologyError):
            mesh(0, 3)

    def test_coords_grid(self):
        t = mesh(3, 3)
        np.testing.assert_allclose(t.coords[0], [0, 0])
        np.testing.assert_allclose(t.coords[8], [1, 1])


class TestTorus:
    def test_regular_degree_4(self):
        t = torus(4, 4)
        assert (t.degree == 4).all()
        assert t.n_edges == 2 * 16

    def test_diameter_halves_mesh(self):
        assert torus(8, 8).diameter == 8  # 4+4 wraps
        assert mesh(8, 8).diameter == 14

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            torus(2, 4)


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 6])
    def test_structure(self, d):
        t = hypercube(d)
        assert t.n_nodes == 2**d
        assert (t.degree == d).all()
        assert t.n_edges == d * 2 ** (d - 1)
        assert t.diameter == d

    def test_adjacency_is_single_bit_flips(self):
        t = hypercube(3)
        for u, v in t.edges:
            x = int(u) ^ int(v)
            assert x & (x - 1) == 0 and x != 0

    def test_invalid(self):
        with pytest.raises(TopologyError):
            hypercube(0)


class TestOthers:
    def test_ring(self):
        t = ring(6)
        assert (t.degree == 2).all()
        assert t.diameter == 3
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        t = star(6)
        assert t.degree[0] == 5
        assert (t.degree[1:] == 1).all()
        assert t.diameter == 2

    def test_complete(self):
        t = complete(5)
        assert (t.degree == 4).all()
        assert t.diameter == 1

    def test_tree(self):
        t = tree(2, 3)
        assert t.n_nodes == 15
        assert t.degree[0] == 2
        assert t.n_edges == 14

    def test_tree_invalid(self):
        with pytest.raises(TopologyError):
            tree(0, 2)


class TestRandomConnected:
    def test_connected_and_deterministic(self):
        a = random_connected(40, avg_degree=3.0, seed=5)
        b = random_connected(40, avg_degree=3.0, seed=5)
        assert a.n_nodes == 40
        assert a == b  # same seed, same graph

    def test_different_seeds_differ(self):
        a = random_connected(40, avg_degree=3.0, seed=5)
        b = random_connected(40, avg_degree=3.0, seed=6)
        assert a != b

    def test_degree_near_target(self):
        t = random_connected(200, avg_degree=6.0, seed=1)
        assert 4.0 < t.degree.mean() < 8.0

    def test_too_small(self):
        with pytest.raises(TopologyError):
            random_connected(1)

    def test_coords_normalized(self):
        t = random_connected(20, seed=2)
        assert t.coords.min() >= -1e-9
        assert t.coords.max() <= 1.0 + 1e-9
