"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PPLBConfig, ParticlePlaneBalancer
from repro.network import LinkAttributes, mesh
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def mesh4():
    """A 4x4 mesh topology."""
    return mesh(4, 4)


@pytest.fixture
def mesh8():
    """An 8x8 mesh topology."""
    return mesh(8, 8)


@pytest.fixture
def hotspot_system(mesh4):
    """A 4x4 mesh with 64 unit-ish tasks piled on the central node."""
    system = TaskSystem(mesh4)
    ids = single_hotspot(system, 64, rng=0)
    return system, ids


@pytest.fixture
def uniform_links(mesh4):
    """Unit link attributes on the 4x4 mesh."""
    return LinkAttributes.uniform(mesh4)


@pytest.fixture
def default_config():
    """Default PPLB configuration."""
    return PPLBConfig()


@pytest.fixture
def pplb(default_config):
    """A fresh default PPLB balancer."""
    return ParticlePlaneBalancer(default_config)


def make_context(topology, system, *, round_index=0, seed=0, links=None,
                 task_graph=None, resources=None, up_mask=None,
                 c1=1.0, e0=1.0):
    """Hand-build a BalanceContext for direct balancer unit tests."""
    from repro.interfaces import BalanceContext
    from repro.network.links import LinkAttributes, link_costs

    links = links if links is not None else LinkAttributes.uniform(topology)
    costs = link_costs(links, c1=c1, e0=e0)
    mask = up_mask if up_mask is not None else np.ones(topology.n_edges, dtype=bool)
    return BalanceContext(
        topology=topology,
        system=system,
        links=links,
        link_costs=costs,
        up_mask=mask,
        round_index=round_index,
        rng=np.random.default_rng(seed),
        task_graph=task_graph,
        resources=resources,
    )
