"""Unit tests for the tuning search space (Param / ParamSpace)."""

import numpy as np
import pytest

from repro.core import PPLBConfig
from repro.exceptions import ConfigurationError
from repro.tuning import Param, ParamSpace, default_pplb_space, round_sig


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRoundSig:
    def test_six_significant_digits(self):
        assert round_sig(1.23456789) == 1.23457
        assert round_sig(0.000123456789) == 0.000123457

    def test_survives_str_round_trip(self):
        value = round_sig(np.pi)
        assert float(str(value)) == value

    def test_idempotent(self):
        value = round_sig(2.718281828)
        assert round_sig(value) == value


class TestParamValidation:
    def test_rejects_unknown_config_field(self):
        with pytest.raises(ConfigurationError, match="unknown PPLBConfig field"):
            Param("not_a_field", "linear", low=0.0, high=1.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Param("beta0", "quadratic", low=0.0, high=1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError, match="low < high"):
            Param("beta0", "linear", low=1.0, high=0.0)

    def test_log_needs_positive_lower_bound(self):
        with pytest.raises(ConfigurationError, match="positive lower bound"):
            Param("mu_s_base", "log", low=0.0, high=1.0)

    def test_choice_needs_two_choices(self):
        with pytest.raises(ConfigurationError, match=">= 2 choices"):
            Param("candidates_per_node", "choice", choices=(4,))


class TestParamOperators:
    @pytest.mark.parametrize("param", [
        Param("mu_s_base", "log", low=0.25, high=4.0),
        Param("beta0", "linear", low=0.0, high=0.5),
    ])
    def test_sample_within_bounds(self, param):
        g = rng()
        for _ in range(100):
            value = param.sample(g)
            assert param.low <= value <= param.high
            assert value == round_sig(value)

    def test_choice_samples_from_choices(self):
        param = Param("candidates_per_node", "choice", choices=(2, 4, 8))
        g = rng()
        seen = {param.sample(g) for _ in range(100)}
        assert seen == {2, 4, 8}

    def test_sample_deterministic_under_seed(self):
        param = Param("mu_s_base", "log", low=0.25, high=4.0)
        g1, g2 = rng(7), rng(7)
        a = [param.sample(g1) for _ in range(5)]
        b = [param.sample(g2) for _ in range(5)]
        assert a == b

    def test_mutate_stays_in_bounds(self):
        param = Param("beta0", "linear", low=0.0, high=0.5)
        g = rng()
        value = 0.25
        for _ in range(200):
            value = param.mutate(value, g)
            assert 0.0 <= value <= 0.5

    def test_choice_mutation_never_returns_input(self):
        param = Param("candidates_per_node", "choice", choices=(2, 4, 8, 16))
        g = rng()
        assert all(param.mutate(4, g) != 4 for _ in range(50))

    def test_default_reads_config(self):
        assert Param("beta0", "linear", low=0.0, high=0.5).default() == PPLBConfig().beta0


class TestParamSpace:
    def test_needs_at_least_one_param(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ParamSpace(())

    def test_rejects_duplicate_names(self):
        p = Param("beta0", "linear", low=0.0, high=0.5)
        with pytest.raises(ConfigurationError, match="duplicate"):
            ParamSpace((p, p))

    def test_sample_covers_every_dimension_or_default(self):
        space = default_pplb_space()
        candidate = space.sample(rng())
        # canonical() may drop a dimension that sampled its default;
        # everything present must be a space dimension.
        assert set(candidate) <= set(space.names)

    def test_mutate_changes_exactly_one_dimension(self):
        space = default_pplb_space()
        g = rng(3)
        base = space.sample(g)
        full = {p.name: base.get(p.name, p.default()) for p in space.params}
        mutated = space.mutate(base, g)
        full_mutated = {p.name: mutated.get(p.name, p.default())
                        for p in space.params}
        changed = [n for n in full if full[n] != full_mutated[n]]
        assert len(changed) == 1

    def test_crossover_takes_each_gene_from_a_parent(self):
        space = default_pplb_space()
        g = rng(5)
        a, b = space.sample(g), space.sample(g)
        child = space.crossover(a, b, g)
        for p in space.params:
            value = child.get(p.name, p.default())
            assert value in (a.get(p.name, p.default()), b.get(p.name, p.default()))


class TestCanonical:
    def test_drops_values_equal_to_defaults(self):
        space = default_pplb_space()
        defaults = PPLBConfig()
        out = space.canonical({"beta0": defaults.beta0, "mu_s_base": 2.0})
        assert out == {"mu_s_base": 2.0}

    def test_all_defaults_is_empty(self):
        space = default_pplb_space()
        defaults = PPLBConfig()
        assert space.canonical({
            "beta0": defaults.beta0,
            "mu_s_base": defaults.mu_s_base,
        }) == {}

    def test_sorts_keys_and_rounds_floats(self):
        space = default_pplb_space()
        out = space.canonical({"mu_s_base": 1.23456789, "beta0": 0.111111111})
        assert list(out) == ["beta0", "mu_s_base"]
        assert out["mu_s_base"] == 1.23457

    def test_unknown_key_raises_naming_offender(self):
        space = default_pplb_space()
        with pytest.raises(ConfigurationError, match="not_a_knob"):
            space.canonical({"not_a_knob": 1.0})

    def test_out_of_range_value_fails_config_validation(self):
        space = default_pplb_space()
        with pytest.raises(ConfigurationError):
            space.canonical({"beta0": 2.0})  # beta0 must be a probability

    def test_idempotent(self):
        space = default_pplb_space()
        candidate = space.sample(rng(11))
        assert space.canonical(candidate) == candidate
