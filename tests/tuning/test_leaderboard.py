"""Unit tests for the leaderboard payload (determinism, ranking, shape)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import ResultCache, RunnerMetrics
from repro.tuning import (
    TUNED_NAME,
    TunedConfig,
    TunedConfigRegistry,
    build_leaderboard,
    leaderboard_rows,
    summary_rows,
)

SCENARIOS = ["mesh:4x4+hotspot", "mesh:6x6+hotspot"]
KW = dict(engines=["rounds-fast"], n_seeds=1, max_rounds=16, recorder="summary")


def small_board(registry=None, **overrides):
    return build_leaderboard(SCENARIOS, registry=registry, **{**KW, **overrides})


class TestValidation:
    def test_needs_scenarios(self):
        with pytest.raises(ConfigurationError, match="at least one scenario"):
            build_leaderboard([], **KW)

    def test_rejects_fluid_engine(self):
        with pytest.raises(ConfigurationError, match="fluid"):
            build_leaderboard(SCENARIOS, engines=["fluid"])


class TestPayloadShape:
    def test_five_entrants_ranked_per_cell(self):
        payload = small_board()
        assert payload["algorithms"][:2] == [TUNED_NAME, "pplb"]
        cells = {}
        for row in payload["rows"]:
            cells.setdefault((row["scenario"], row["engine"]), []).append(row["rank"])
        assert len(cells) == len(SCENARIOS)
        for ranks in cells.values():
            assert sorted(ranks) == [1, 2, 3, 4, 5]

    def test_scenarios_canonicalised(self):
        payload = small_board()
        assert payload["scenarios"] == ["mesh:side=4+hotspot", "mesh:side=6+hotspot"]

    def test_untuned_cells_tie_resolves_in_roster_order(self):
        # tuned and default PPLB run the identical spec on untuned
        # families: the exact tie must rank the tuned entrant first,
        # never penalise it alphabetically.
        payload = small_board()
        by_key = {(r["scenario"], r["engine"], r["algorithm"]): r
                  for r in payload["rows"]}
        for scenario in payload["scenarios"]:
            tuned = by_key[(scenario, "rounds-fast", TUNED_NAME)]
            default = by_key[(scenario, "rounds-fast", "pplb")]
            assert tuned["mean_final_cov"] == default["mean_final_cov"]
            assert tuned["rank"] < default["rank"]

    def test_tuned_rows_carry_overrides(self):
        registry = TunedConfigRegistry()
        registry.put(SCENARIOS[0], TunedConfig(overrides={"mu_s_base": 2.0}))
        payload = small_board(registry=registry)
        tuned = [r for r in payload["rows"] if r["tuned"]]
        assert all(r["algorithm"] == TUNED_NAME for r in tuned)
        by_scenario = {r["scenario"]: r["overrides"] for r in tuned}
        assert by_scenario["mesh:side=4+hotspot"] == {"mu_s_base": 2.0}
        assert by_scenario["mesh:side=6+hotspot"] == {}

    def test_tuned_vs_default_row_per_cell(self):
        payload = small_board()
        assert len(payload["tuned_vs_default"]) == len(SCENARIOS)
        for row in payload["tuned_vs_default"]:
            assert row["improvement"] == pytest.approx(
                row["default_score"] - row["tuned_score"], abs=1e-6
            )

    def test_summary_counts_wins_over_all_cells(self):
        payload = small_board()
        total_wins = sum(s["wins"] for s in payload["summary"].values())
        assert total_wins == len(SCENARIOS)  # one rank-1 per cell


class TestDeterminism:
    def test_identical_invocations_emit_identical_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = build_leaderboard(SCENARIOS, cache=cache, **KW)
        warm = build_leaderboard(SCENARIOS, cache=cache, **KW)
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)

    def test_metrics_report_cache_split_outside_payload(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold_metrics = RunnerMetrics()
        build_leaderboard(SCENARIOS, cache=cache, metrics=cold_metrics, **KW)
        warm_metrics = RunnerMetrics()
        build_leaderboard(SCENARIOS, cache=cache, metrics=warm_metrics, **KW)
        # Cold run: the tuned entrant shares the default PPLB spec on
        # untuned families, so even a cold cache replays those twins.
        assert cold_metrics.cache_misses > 0
        assert warm_metrics.cache_misses == 0
        assert warm_metrics.cache_hits == warm_metrics.total == cold_metrics.total


class TestDisplayRows:
    def test_leaderboard_rows_flatten_for_tables(self):
        payload = small_board()
        rows = leaderboard_rows(payload)
        assert len(rows) == len(payload["rows"])
        assert {"scenario", "engine", "rank", "algorithm",
                "final_cov"} <= set(rows[0])

    def test_summary_rows_sorted_best_first(self):
        payload = small_board()
        rows = summary_rows(payload)
        assert [r["algorithm"] for r in rows][0] in (TUNED_NAME, "pplb")
        assert rows == sorted(rows, key=lambda r: (r["mean_rank"], r["algorithm"]))
