"""Unit tests for the optimizer harness (successive halving + GA)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import ResultCache
from repro.tuning import TuneBudget, score_result, tune_scenario, tune_scenarios

#: tiny but complete: 3 candidates, two rungs (8 -> 16), one GA child.
TINY = dict(
    n_initial=3, eta=2, base_rounds=8, full_rounds=16, eval_seeds=1,
    engine="rounds-fast", recorder="summary", ga_generations=1, ga_population=2,
)
SCENARIO = "mesh:4x4+hotspot"


def tiny_budget(**overrides):
    return TuneBudget(**{**TINY, **overrides})


class TestTuneBudget:
    def test_rungs_double_and_cap_at_full(self):
        budget = TuneBudget(n_initial=4, eta=2, base_rounds=50, full_rounds=180)
        assert budget.rungs() == [50, 100, 180]

    def test_single_rung_when_base_equals_full(self):
        assert tiny_budget(base_rounds=16, full_rounds=16).rungs() == [16]

    @pytest.mark.parametrize("bad", [
        dict(n_initial=0),
        dict(eta=1),
        dict(base_rounds=0),
        dict(base_rounds=32, full_rounds=16),
        dict(eval_seeds=0),
        dict(ga_generations=-1),
        dict(ga_population=0),
        dict(engine="fluid"),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            tiny_budget(**bad)

    def test_to_dict_round_trips(self):
        budget = tiny_budget()
        assert TuneBudget(**budget.to_dict()) == budget


class TestScoreResult:
    def test_cov_dominates_rounds_tiebreak(self):
        class R:
            final_cov = 0.5
            converged_round = 10

        assert score_result(R(), max_rounds=100) == pytest.approx(0.5 + 0.01 * 0.1)

    def test_unconverged_charges_full_budget(self):
        class R:
            final_cov = 0.5
            converged_round = None

        assert score_result(R(), max_rounds=100) == pytest.approx(0.51)


class TestTuneScenario:
    def test_rejects_non_pplb_algorithm(self):
        with pytest.raises(ConfigurationError, match="pplb"):
            tune_scenario(SCENARIO, algorithm="diffusion", budget=tiny_budget())

    def test_winner_never_loses_to_default(self):
        report = tune_scenario(SCENARIO, seed=0, budget=tiny_budget())
        assert report.score <= report.default_score
        assert report.winner == {} or report.score < report.default_score

    def test_deterministic_under_fixed_seed(self):
        a = tune_scenario(SCENARIO, seed=3, budget=tiny_budget())
        b = tune_scenario(SCENARIO, seed=3, budget=tiny_budget())
        assert a.winner == b.winner
        assert a.score == b.score
        assert a.n_evals == b.n_evals
        assert a.history == b.history

    def test_different_seeds_propose_different_candidates(self):
        a = tune_scenario(SCENARIO, seed=0, budget=tiny_budget())
        b = tune_scenario(SCENARIO, seed=1, budget=tiny_budget())
        overrides = lambda r: [h["overrides"] for h in r.history]  # noqa: E731
        assert overrides(a) != overrides(b)

    def test_second_run_replays_entirely_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = tune_scenario(SCENARIO, seed=0, budget=tiny_budget(), cache=cache)
        warm = tune_scenario(SCENARIO, seed=0, budget=tiny_budget(), cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.n_specs  # 100% replay
        assert warm.winner == cold.winner
        assert warm.score == cold.score
        assert warm.n_evals == cold.n_evals

    def test_scenario_name_is_canonicalised(self):
        report = tune_scenario(SCENARIO, seed=0, budget=tiny_budget())
        assert report.scenario == "mesh:side=4+hotspot"

    def test_history_records_every_eval_with_stages(self):
        report = tune_scenario(SCENARIO, seed=0, budget=tiny_budget())
        assert len(report.history) == report.n_evals
        stages = {h["stage"] for h in report.history}
        assert any(s.startswith("halving:") for s in stages)
        assert "final" in stages or "ga" in stages

    def test_default_rescored_at_full_budget(self):
        # Even when halving drops the default early, a final full-budget
        # eval of {} must exist so score <= default_score is exact.
        report = tune_scenario(SCENARIO, seed=0, budget=tiny_budget())
        full = [h for h in report.history
                if h["overrides"] == {} and h["rounds"] == 16]
        assert full, report.history

    def test_winner_overrides_are_canonical(self):
        from repro.tuning import default_pplb_space

        report = tune_scenario(SCENARIO, seed=1, budget=tiny_budget())
        space = default_pplb_space()
        assert space.canonical(report.winner) == report.winner


class TestTuneScenarios:
    def test_reports_keyed_by_canonical_name(self):
        out = tune_scenarios([SCENARIO, "mesh:6x6+hotspot"],
                             seed=0, budget=tiny_budget())
        assert list(out) == ["mesh:side=4+hotspot", "mesh:side=6+hotspot"]
        for scenario, report in out.items():
            assert report.scenario == scenario
