"""Tuning through the persistent pool backend: identical reports to
serial, and one worker spawn per pool slot for a whole ~64-eval
session (the reuse the backend seam exists for)."""

from repro.runner import PoolBackend, ResultCache
from repro.tuning import TuneBudget, build_leaderboard, tune_scenario

SCENARIO = "mesh:4x4+hotspot"


def session_budget():
    """~64-eval session: 32 initial candidates through rungs
    [10, 20, 40] (32 + 16 + 8 halving evals) + 8 GA children + the
    final default re-score."""
    return TuneBudget(
        n_initial=32, eta=2, base_rounds=10, full_rounds=40, eval_seeds=1,
        engine="rounds-fast", recorder="summary",
        ga_generations=8, ga_population=4,
    )


def small_budget():
    return TuneBudget(
        n_initial=4, eta=2, base_rounds=8, full_rounds=16, eval_seeds=1,
        engine="rounds-fast", recorder="summary",
        ga_generations=1, ga_population=2,
    )


def report_fingerprint(report):
    return (
        report.winner, round(report.score, 12),
        round(report.default_score, 12), report.n_evals, report.history,
    )


class TestTunePoolEquivalence:
    def test_pool_report_identical_to_serial(self, tmp_path):
        serial = tune_scenario(SCENARIO, seed=3, budget=small_budget(),
                               cache=ResultCache(tmp_path / "a"))
        backend = PoolBackend(workers=2)
        try:
            pooled = tune_scenario(SCENARIO, seed=3, budget=small_budget(),
                                   cache=ResultCache(tmp_path / "b"),
                                   backend=backend)
        finally:
            backend.close()
        assert report_fingerprint(serial) == report_fingerprint(pooled)

    def test_cached_rerun_reproduces_report(self, tmp_path):
        """A tune session re-run against its own cache (through the
        persistent pool both times) reproduces the identical report."""
        cache = ResultCache(tmp_path / "cache")
        backend = PoolBackend(workers=2)
        try:
            first = tune_scenario(SCENARIO, seed=3, budget=small_budget(),
                                  cache=cache, backend=backend)
            second = tune_scenario(SCENARIO, seed=3, budget=small_budget(),
                                   cache=cache, backend=backend)
        finally:
            backend.close()
        assert report_fingerprint(first) == report_fingerprint(second)
        assert second.cache_hits == second.n_specs


class TestPersistentPoolSpawns:
    def test_64_eval_session_spawns_once_per_worker(self, tmp_path):
        """Acceptance: a 64-eval tune session through the persistent
        pool creates at most `workers` processes total — the pool is
        reused across every halving rung and GA generation instead of
        respawning per evaluation batch."""
        backend = PoolBackend(workers=2)
        try:
            report = tune_scenario(
                SCENARIO, seed=5, budget=session_budget(),
                cache=ResultCache(tmp_path / "cache"), backend=backend,
            )
            stats = backend.stats()
        finally:
            backend.close()
        assert report.n_evals >= 64
        # Dozens of evaluation batches (map calls), two spawns total.
        assert stats["map_calls"] >= 10
        assert stats["workers_spawned"] <= 2


class TestLeaderboardBackend:
    def test_leaderboard_identical_through_pool(self, tmp_path):
        kwargs = dict(
            scenarios=[SCENARIO], engines=("rounds-fast",),
            n_seeds=1, max_rounds=20,
        )
        serial = build_leaderboard(cache=ResultCache(tmp_path / "a"), **kwargs)
        backend = PoolBackend(workers=2)
        try:
            pooled = build_leaderboard(
                cache=ResultCache(tmp_path / "b"), backend=backend, **kwargs
            )
        finally:
            backend.close()
        assert serial == pooled
