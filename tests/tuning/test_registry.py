"""Unit tests for the tuned-config registry (disk format + key stability)."""

import json
import subprocess
import sys

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import RunSpec
from repro.tuning import (
    REGISTRY_FORMAT,
    TunedConfig,
    TunedConfigRegistry,
)


def entry(**overrides):
    return TunedConfig(
        algorithm="pplb",
        overrides=overrides,
        score=1.25,
        default_score=1.5,
        n_evals=7,
        seed=0,
        budget={"n_initial": 3},
    )


class TestTunedConfig:
    def test_round_trips_through_dict(self):
        original = entry(mu_s_base=2.0)
        assert TunedConfig.from_dict(original.to_dict()) == original

    def test_rejects_unknown_entry_key(self):
        data = entry().to_dict()
        data["wall_time"] = 1.0
        with pytest.raises(ConfigurationError, match="wall_time"):
            TunedConfig.from_dict(data, scenario="mesh-hotspot")

    def test_rejects_unknown_override_name(self):
        data = entry().to_dict()
        data["overrides"] = {"not_a_knob": 1.0}
        with pytest.raises(ConfigurationError, match="not_a_knob"):
            TunedConfig.from_dict(data)

    def test_rejects_out_of_range_override(self):
        data = entry().to_dict()
        data["overrides"] = {"beta0": 2.0}
        with pytest.raises(ConfigurationError):
            TunedConfig.from_dict(data)

    def test_rejects_non_mapping_overrides(self):
        data = entry().to_dict()
        data["overrides"] = [1, 2]
        with pytest.raises(ConfigurationError, match="mapping"):
            TunedConfig.from_dict(data)

    def test_default_equal_overrides_canonicalise_to_empty(self):
        data = entry().to_dict()
        data["overrides"] = {"mu_s_base": 1.0}  # the paper default
        assert TunedConfig.from_dict(data).overrides == {}


class TestRegistryAccess:
    def test_keys_are_canonical_scenario_strings(self):
        registry = TunedConfigRegistry()
        registry.put("mesh:4x4+hotspot", entry(mu_s_base=2.0))
        assert registry.scenarios() == ["mesh:side=4+hotspot"]
        # every equivalent spelling reads the same entry
        assert registry.get("mesh:side=4+hotspot") is not None
        assert registry.overrides_for("mesh:4x4+hotspot") == {"mu_s_base": 2.0}

    def test_missing_scenario_reads_as_defaults(self):
        registry = TunedConfigRegistry()
        assert registry.get("mesh-hotspot") is None
        assert registry.overrides_for("mesh-hotspot") == {}

    def test_len_counts_entries(self):
        registry = TunedConfigRegistry()
        registry.put("mesh-hotspot", entry())
        registry.put("torus-hotspot", entry())
        assert len(registry) == 2


class TestSpecFor:
    def test_untuned_spec_key_equals_plain_default_spec(self):
        registry = TunedConfigRegistry()
        tuned = registry.spec_for("mesh-hotspot", max_rounds=100, engine="rounds-fast")
        plain = RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                        max_rounds=100, engine="rounds-fast")
        assert tuned.key() == plain.key()

    def test_empty_override_entry_spec_key_equals_default(self):
        # A session where the paper default won writes overrides={} —
        # adopting that registry must not orphan any cache entry.
        registry = TunedConfigRegistry()
        registry.put("mesh-hotspot", entry())
        tuned = registry.spec_for("mesh-hotspot", max_rounds=100)
        plain = RunSpec(scenario="mesh-hotspot", algorithm="pplb", max_rounds=100)
        assert tuned.key() == plain.key()

    def test_tuned_spec_key_differs_from_default(self):
        registry = TunedConfigRegistry()
        registry.put("mesh-hotspot", entry(mu_s_base=2.0))
        tuned = registry.spec_for("mesh-hotspot", max_rounds=100)
        plain = RunSpec(scenario="mesh-hotspot", algorithm="pplb", max_rounds=100)
        assert tuned.key() != plain.key()
        assert tuned.algorithm_kwargs == {"mu_s_base": 2.0}

    def test_cache_key_stable_across_processes(self):
        registry = TunedConfigRegistry()
        registry.put("mesh-hotspot", entry(mu_s_base=2.0, candidates_per_node=8))
        local = registry.spec_for("mesh-hotspot", max_rounds=100,
                                  engine="rounds-fast").key()
        script = (
            "from repro.tuning import TunedConfig, TunedConfigRegistry\n"
            "r = TunedConfigRegistry()\n"
            "r.put('mesh-hotspot', TunedConfig(overrides="
            "{'mu_s_base': 2.0, 'candidates_per_node': 8}))\n"
            "print(r.spec_for('mesh-hotspot', max_rounds=100, "
            "engine='rounds-fast').key())\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert fresh == local


class TestDiskFormat:
    def test_save_load_save_is_byte_identical(self, tmp_path):
        registry = TunedConfigRegistry()
        registry.put("mesh:4x4+hotspot", entry(mu_s_base=2.0, beta0=0.3))
        registry.put("torus-hotspot", entry())
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        registry.save(first)
        TunedConfigRegistry.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_file_ends_with_single_newline(self, tmp_path):
        path = tmp_path / "reg.json"
        TunedConfigRegistry().save(path)
        text = path.read_text()
        assert text.endswith("}\n") and not text.endswith("\n\n")

    def test_missing_file_loads_empty(self, tmp_path):
        registry = TunedConfigRegistry.load(tmp_path / "absent.json")
        assert len(registry) == 0

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            TunedConfigRegistry.load(path)

    def test_unknown_top_level_key_raises(self, tmp_path):
        path = tmp_path / "reg.json"
        path.write_text(json.dumps(
            {"format": REGISTRY_FORMAT, "configs": {}, "extra": 1}
        ))
        with pytest.raises(ConfigurationError, match="extra"):
            TunedConfigRegistry.load(path)

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "reg.json"
        path.write_text(json.dumps({"format": 99, "configs": {}}))
        with pytest.raises(ConfigurationError, match="unsupported format"):
            TunedConfigRegistry.load(path)

    def test_non_object_payload_raises(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            TunedConfigRegistry.from_dict([1, 2, 3])

    def test_non_mapping_configs_raises(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            TunedConfigRegistry.from_dict(
                {"format": REGISTRY_FORMAT, "configs": [1]}
            )

    def test_bad_entry_inside_file_names_scenario(self, tmp_path):
        path = tmp_path / "reg.json"
        path.write_text(json.dumps({
            "format": REGISTRY_FORMAT,
            "configs": {"mesh-hotspot": {"surprise": 1}},
        }))
        with pytest.raises(ConfigurationError, match="mesh-hotspot"):
            TunedConfigRegistry.load(path)
