"""Unit tests for the composable scenario system (workloads.composition)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import (
    DiurnalWorkload,
    MovingHotspotWorkload,
    build_scenario,
    canonical_scenario_name,
    compose_scenarios,
    parse_scenario,
)
from repro.workloads.composition import (
    KINDS,
    REGISTRY,
    ScenarioSpec,
    describe_aliases,
    describe_components,
    make_component,
)
from repro.workloads.traces import TraceReplay


class TestGrammar:
    def test_parse_and_canonicalize(self):
        spec = parse_scenario("mesh:16x16+hotspot+stragglers:frac=0.1+diurnal")
        assert spec.canonical() == "mesh:side=16+hotspot+stragglers:frac=0.1+diurnal"

    def test_component_order_is_irrelevant(self):
        a = parse_scenario("stragglers:frac=0.1+mesh:16x16+diurnal+hotspot")
        b = parse_scenario("mesh:side=16+hotspot+stragglers:frac=0.1+diurnal")
        assert a.canonical() == b.canonical()

    def test_canonical_roundtrips_through_parse(self):
        for text in (
            "mesh:9x7+clustered:n_clusters=3+fault-storm+tiered+replay:horizon=30",
            "hypercube:4+power-law:alpha=1.5",
            "random:n_nodes=20+two-valleys+jittered",
            "torus:5+blob:sigma=1.25+moving-hotspot:mode=walk",
        ):
            canon = parse_scenario(text).canonical()
            assert parse_scenario(canon).canonical() == canon

    def test_positional_shorthand(self):
        assert parse_scenario("mesh:12").topology.kwargs_dict() == {"side": 12}
        assert parse_scenario("mesh:12x4").topology.kwargs_dict() == {
            "rows": 12, "cols": 4,
        }
        # A square rows×cols collapses to side= so spellings converge.
        assert parse_scenario("torus:6x6").canonical() == \
            parse_scenario("torus:side=6").canonical()
        assert parse_scenario("hypercube:5").topology.kwargs_dict() == {"dim": 5}

    def test_placement_and_links_defaults(self):
        spec = parse_scenario("mesh:4")
        assert spec.placement.name == "hotspot"
        assert spec.links.name == "unit"
        assert spec.heterogeneity is None and spec.dynamics is None
        assert spec.canonical() == "mesh:side=4+hotspot"

    def test_registered_names_parse_to_their_alias(self):
        spec = parse_scenario("mesh-hotspot")
        assert spec.alias == "mesh-hotspot"
        assert spec.topology.name == "mesh"
        assert canonical_scenario_name("mesh-hotspot") == "mesh-hotspot"

    def test_equivalent_spellings_share_one_canonical_name(self):
        assert canonical_scenario_name("hotspot+mesh:8x8") == \
            canonical_scenario_name("mesh:side=8+hotspot")

    def test_canonical_is_unique_across_equivalent_spellings(self):
        # rows-only squares, rows==cols pairs, side=, and the bare
        # default all build the same machine — and must share one
        # canonical string (= one cache entry).
        forms = ["mesh:rows=16+hotspot", "mesh:16x16+hotspot",
                 "mesh:rows=16,cols=16+hotspot", "mesh:side=16+hotspot"]
        assert len({canonical_scenario_name(f) for f in forms}) == 1
        # Explicitly spelling a parameter's default is the same spec.
        assert canonical_scenario_name("mesh:side=8+hotspot") == \
            canonical_scenario_name("mesh+hotspot")
        assert canonical_scenario_name("mesh:4+blob:sigma=2.0") == \
            canonical_scenario_name("mesh:4+blob")

    def test_unknown_name_lists_scenarios(self):
        with pytest.raises(ConfigurationError, match="registered scenarios"):
            parse_scenario("no-such-scenario")

    def test_unknown_component_in_composition(self):
        with pytest.raises(ConfigurationError, match="unknown scenario component"):
            parse_scenario("mesh:4+warp-drive")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="two topology components"):
            parse_scenario("mesh:4+torus:4")

    def test_missing_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="topology component"):
            parse_scenario("hotspot+diurnal")

    def test_malformed_args_rejected(self):
        with pytest.raises(ConfigurationError, match="expected k=v"):
            parse_scenario("mesh:side=4,=3")
        with pytest.raises(ConfigurationError, match="positional"):
            parse_scenario("stragglers:3")
        # A dangling or doubled 'x' is a typo, not a square request.
        for typo in ("torus:16x", "mesh:x8", "mesh:8xx16"):
            with pytest.raises(ConfigurationError, match="malformed positional"):
                parse_scenario(typo)


class TestValidation:
    def test_unknown_param_names_accepted_keys(self):
        with pytest.raises(ConfigurationError) as err:
            parse_scenario("mesh:4+stragglers:fraction=0.1")
        assert "frac" in str(err.value) and "slowdown" in str(err.value)

    @pytest.mark.parametrize(
        "text",
        [
            "mesh:side=0+hotspot",
            "mesh:0",
            "hypercube:dim=0",
            "hypercube:dim=-3",
            "random:n_nodes=0+hotspot",
            "mesh:4+hotspot:n_tasks=-5",
            "mesh:side=8,rows=4+hotspot",
            "mesh:side=8,cols=4+hotspot",
            "mesh:4+hotspot:load_factor=0.0",
            "mesh:4+clustered:n_clusters=0",
            "torus:2",
        ],
    )
    def test_positivity_and_shape_bounds(self, text):
        with pytest.raises(ConfigurationError):
            parse_scenario(text)

    def test_n_tasks_zero_is_the_empty_control(self):
        # The legacy constructors accepted an empty workload; only
        # negatives are rejected.
        sc = build_scenario("mesh:4+hotspot:n_tasks=0", 0)
        assert sc.system.n_tasks == 0

    def test_legacy_constructor_bounds_still_enforced(self):
        with pytest.raises(ConfigurationError):
            build_scenario("straggler", 0, straggler_frac=1.5)
        with pytest.raises(ConfigurationError):
            build_scenario("straggler", 0, straggler_slowdown=0.5)
        with pytest.raises(ConfigurationError):
            build_scenario("hotspot-scaled", 0, load_factor=0.0)
        with pytest.raises(ConfigurationError):
            build_scenario("mesh-hotspot", 0, side=0)
        with pytest.raises(ConfigurationError):
            build_scenario("mesh-hotspot", 0, n_tasks=-1)
        with pytest.raises(ConfigurationError):
            build_scenario("hypercube-hotspot", 0, dim=0)
        with pytest.raises(ConfigurationError):
            build_scenario("random-hotspot", 0, n_nodes=0)

    def test_n_hot_bounded_by_machine(self):
        with pytest.raises(ConfigurationError, match="n_hot"):
            build_scenario("mesh:3x3+uniform+bursty:n_hot=10", 0)

    def test_choice_params(self):
        with pytest.raises(ConfigurationError, match="one of"):
            parse_scenario("mesh:4+moving-hotspot:mode=teleport")

    def test_type_errors_are_clean(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            make_component("mesh", {"side": "wide"})

    def test_non_finite_values_rejected_at_parse_time(self):
        # NaN slips through every bound comparison; it must die in
        # validation, not later inside a worker.
        with pytest.raises(ConfigurationError, match="finite"):
            parse_scenario("mesh:4+stragglers:frac=nan")
        with pytest.raises(ConfigurationError, match="finite"):
            parse_scenario("mesh:4+churn:rate=inf")

    def test_int_params_reject_fractional_floats(self):
        # int() would truncate 4.9 -> 4 and silently build a different
        # machine; integral floats (4.0) are fine.
        with pytest.raises(ConfigurationError, match="expects int"):
            parse_scenario("mesh:side=4.9+hotspot")
        with pytest.raises(ConfigurationError, match="expects int"):
            make_component("hotspot", {"n_tasks": 100.7})
        assert make_component("mesh", {"side": 4.0}).kwargs_dict() == {"side": 4}


class TestOverrides:
    def test_overrides_route_to_owning_component(self):
        spec = parse_scenario("mesh:4+uniform").with_overrides(
            {"side": 9, "n_tasks": 10}
        )
        assert spec.topology.kwargs_dict()["side"] == 9
        assert spec.placement.kwargs_dict()["n_tasks"] == 10

    def test_ambiguous_override_rejected(self):
        spec = parse_scenario("mesh:4+hotspot+fault-storm+stragglers")
        with pytest.raises(ConfigurationError, match="ambiguous"):
            spec.with_overrides({"frac": 0.2})
        # Inline assignment is never ambiguous.
        ok = parse_scenario("mesh:4+hotspot+fault-storm:frac=0.2+stragglers")
        assert ok.links.kwargs_dict()["frac"] == 0.2

    def test_unknown_override_rejected_with_catalog(self):
        spec = parse_scenario("mesh:4+uniform")
        with pytest.raises(ConfigurationError, match="accepted per component"):
            spec.with_overrides({"n_task": 10})

    def test_composed_specs_reject_legacy_spelled_keys(self):
        # The ignore-what-you-don't-read tolerance is an alias-only
        # shim: on a composed spec, a legacy-spelled key must raise
        # instead of silently running the default experiment (the
        # component's parameter is `frac`, not `straggler_frac`).
        spec = parse_scenario("torus:8+hotspot+stragglers")
        with pytest.raises(ConfigurationError, match="straggler_frac"):
            spec.with_overrides({"straggler_frac": 0.25})
        with pytest.raises(ConfigurationError, match="dim"):
            parse_scenario("mesh:4+uniform").with_overrides({"dim": 3})


class TestSerialization:
    def test_to_from_dict_roundtrip(self):
        spec = parse_scenario(
            "torus:6+clustered:n_clusters=3+jittered+tiered:ratio=2.0+diurnal"
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.canonical() == spec.canonical()

    def test_from_dict_validates(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"placement": {"name": "hotspot"}})
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"topology": {"side": 4}})


class TestBuild:
    def test_component_streams_are_independent(self):
        # Adding link jitter or speed tiers must not perturb placement.
        plain = build_scenario("mesh:6+uniform", 9)
        dressed = build_scenario("mesh:6+uniform+jittered+tiered", 9)
        np.testing.assert_array_equal(
            plain.system.node_loads, dressed.system.node_loads
        )

    def test_composed_bursty_is_uncorrelated_with_stragglers(self):
        # The composed bursty hot-node choice draws from a dynamics
        # sub-stream, not the heterogeneity stream — the hot nodes must
        # not systematically be the straggler nodes (under the shared
        # legacy stream, equal draw counts made them identical sets).
        matches = 0
        for seed in range(10):
            sc = build_scenario(
                "mesh:8+uniform+stragglers:frac=0.0625+bursty:n_hot=4", seed
            )
            slow = set(np.flatnonzero(sc.node_speeds < 1.0).tolist())
            hot = set(sc.dynamic.arrival_nodes)
            assert len(slow) == len(hot) == 4
            if slow == hot:
                matches += 1
        assert matches == 0

    def test_build_is_deterministic(self):
        a = build_scenario("mesh:5+clustered+fault-storm+stragglers+diurnal", 4)
        b = build_scenario("mesh:5+clustered+fault-storm+stragglers+diurnal", 4)
        np.testing.assert_array_equal(a.system.node_loads, b.system.node_loads)
        np.testing.assert_array_equal(a.links.fault_prob, b.links.fault_prob)
        np.testing.assert_array_equal(a.node_speeds, b.node_speeds)

    def test_scenario_records_its_spec_and_name(self):
        sc = build_scenario("mesh:4+uniform", 0)
        assert sc.name == "mesh:side=4+uniform"
        assert sc.spec is not None
        assert sc.spec.canonical() == sc.name


class TestNewComponents:
    def test_clustered_placement_is_lumpy_not_spiky(self):
        sc = build_scenario("mesh:8+clustered:n_clusters=4", 2)
        loads = np.sort(sc.system.node_loads)[::-1]
        top_quarter_share = loads[:16].sum() / loads.sum()
        # Lumpier than uniform terrain (~0.38 at this seed) but not a
        # handful of spikes: several soft hills.
        assert 0.5 < top_quarter_share < 0.95
        assert (sc.system.node_loads > 0).sum() > 16

    def test_power_law_sizes_are_heavy_tailed(self):
        sc = build_scenario("mesh:8+power-law:alpha=1.5", 3)
        sizes = sc.system.loads_array()
        assert sizes.max() > 10 * np.median(sizes)
        assert (sizes > 0).all()

    def test_fault_storm_marks_a_fraction_of_links(self):
        sc = build_scenario("torus:8+hotspot+fault-storm:frac=0.25,prob=0.4", 1)
        storm = sc.links.fault_prob > 0
        assert storm.sum() == round(0.25 * sc.topology.n_edges)
        assert np.allclose(sc.links.fault_prob[storm], 0.4)

    def test_tiered_speeds(self):
        sc = build_scenario("mesh:4+hotspot+tiered:tiers=2,ratio=4.0", 0)
        assert set(np.unique(sc.node_speeds)) == {0.25, 1.0}

    def test_diurnal_rate_oscillates(self):
        sc = build_scenario("mesh:4+uniform+diurnal:rate=6.0,period=10", 0)
        assert isinstance(sc.dynamic, DiurnalWorkload)
        rates = [sc.dynamic.rate_at(r) for r in range(10)]
        assert max(rates) > 6.0 > min(rates)
        assert min(rates) >= 0.0

    def test_moving_hotspot_retargets_adversarially(self):
        sc = build_scenario(
            "torus:4+uniform+moving-hotspot:dwell=3,rate=12.0", 0
        )
        dyn = sc.dynamic
        assert isinstance(dyn, MovingHotspotWorkload)
        targets = set()
        for _ in range(12):
            dyn.step(sc.system)
            targets.add(dyn.arrival_nodes[0])
        assert len(targets) > 1  # the hotspot moved

    def test_replay_freezes_identical_churn(self):
        a = build_scenario("mesh:4+uniform+replay:horizon=30", 6)
        b = build_scenario("mesh:4+uniform+replay:horizon=30", 6)
        assert isinstance(a.dynamic, TraceReplay)
        assert a.dynamic.trace.to_json() == b.dynamic.trace.to_json()
        assert a.dynamic.trace.n_arrivals > 0
        # Replaying against the built system applies real churn.
        created, _ = a.dynamic.step(a.system)
        total = sum(len(a.dynamic.step(a.system)[0]) for _ in range(29))
        assert len(created) + total == a.dynamic.trace.n_arrivals


class TestAlgebra:
    def test_compose_scenarios_cross_product(self):
        names = compose_scenarios(
            ["mesh:4", "torus:4"],
            ["hotspot", "uniform"],
            dynamics=[None, "diurnal"],
        )
        assert len(names) == 8
        assert names[0] == "mesh:side=4+hotspot"
        assert names[-1] == "torus:side=4+uniform+diurnal"
        for name in names:  # every product entry is parseable
            parse_scenario(name)

    def test_compose_scenarios_needs_topologies(self):
        with pytest.raises(ConfigurationError):
            compose_scenarios([])

    def test_describe_covers_all_kinds_and_aliases(self):
        desc = describe_components()
        assert set(desc) == set(KINDS)
        for kind in KINDS:
            assert len(desc[kind]) == len(REGISTRY[kind])
        aliases = describe_aliases()
        assert {row["scenario"] for row in aliases} >= {
            "mesh-hotspot", "diurnal", "trace-replay",
        }
        for row in aliases:  # listed compositions must parse
            parse_scenario(row["composition"])
