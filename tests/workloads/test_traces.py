"""Unit tests for repro.workloads.traces."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload, TraceReplay, WorkloadTrace, record_trace
from repro.workloads.traces import ArrivalEvent, CompletionEvent


class TestTraceConstruction:
    def test_from_events(self):
        tr = WorkloadTrace.from_events(
            arrivals=[(0, 3, 1.0), (2, 5, 2.0)],
            completions=[(4, 0)],
        )
        assert tr.n_arrivals == 2
        assert tr.horizon == 4

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(-1, 0, 1.0)
        with pytest.raises(ConfigurationError):
            ArrivalEvent(0, 0, 0.0)
        with pytest.raises(ConfigurationError):
            CompletionEvent(0, -1)

    def test_completion_must_reference_existing_arrival(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_events([(0, 0, 1.0)], [(1, 5)])

    def test_completion_must_follow_arrival(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_events([(3, 0, 1.0)], [(3, 0)])

    def test_json_round_trip(self):
        tr = WorkloadTrace.from_events([(0, 3, 1.5), (2, 5, 2.0)], [(4, 0)])
        again = WorkloadTrace.from_json(tr.to_json())
        assert again.n_arrivals == 2
        assert again.completions[0].arrival_index == 0
        assert again.arrivals[0].size == 1.5

    def test_bad_json(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_json('{"nope": []}')


class TestReplay:
    def test_replays_events_at_right_rounds(self, mesh4):
        tr = WorkloadTrace.from_events(
            arrivals=[(0, 1, 1.0), (1, 2, 2.0)],
            completions=[(2, 0)],
        )
        system = TaskSystem(mesh4)
        replay = TraceReplay(tr)

        created, removed = replay.step(system)  # round 0
        assert len(created) == 1 and removed == []
        assert system.node_loads[1] == 1.0

        created, removed = replay.step(system)  # round 1
        assert len(created) == 1
        assert system.node_loads[2] == 2.0

        created, removed = replay.step(system)  # round 2
        assert created == [] and len(removed) == 1
        assert system.node_loads[1] == 0.0

    def test_replay_is_workload_compatible_with_engine(self, mesh4):
        from repro.baselines import NoBalancer
        from repro.sim import Simulator

        tr = WorkloadTrace.from_events([(0, 0, 1.0), (3, 5, 2.0)])
        system = TaskSystem(mesh4)
        sim = Simulator(mesh4, system, NoBalancer(), dynamic=TraceReplay(tr))
        sim.run(max_rounds=5)
        assert system.n_tasks == 2


class TestRecordTrace:
    def test_recorded_trace_reproduces_loads(self, mesh4):
        wl = DynamicWorkload(arrival_rate=3.0, completion_prob=0.1, rng=7)
        live = TaskSystem(mesh4)
        trace = record_trace(wl, live, rounds=25)

        replayed = TaskSystem(mesh4)
        replay = TraceReplay(trace)
        for _ in range(25):
            replay.step(replayed)

        np.testing.assert_allclose(replayed.node_loads, live.node_loads)
        assert replayed.n_tasks == live.n_tasks

    def test_two_replays_identical(self, mesh4):
        wl = DynamicWorkload(arrival_rate=2.0, completion_prob=0.05, rng=1)
        trace = record_trace(wl, TaskSystem(mesh4), rounds=20)

        def run():
            s = TaskSystem(mesh4)
            r = TraceReplay(trace)
            for _ in range(20):
                r.step(s)
            return s.node_loads.copy()

        np.testing.assert_allclose(run(), run())

    def test_validation(self, mesh4):
        wl = DynamicWorkload(rng=0)
        with pytest.raises(ConfigurationError):
            record_trace(wl, TaskSystem(mesh4), rounds=0)
