"""Unit tests for repro.workloads.scenarios."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import SCENARIOS, build_scenario


class TestRegistry:
    def test_all_registered_scenarios_build(self):
        for name in SCENARIOS:
            sc = build_scenario(name, seed=0, side=4, dim=3, n_tasks=32)
            assert sc.topology.n_nodes >= 8
            assert sc.system.n_tasks == 32
            assert sc.links.topology is sc.topology
            assert len(sc.task_ids) == 32

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_scenario("no-such-scenario")

    def test_deterministic(self):
        a = build_scenario("mesh-hotspot", seed=3, side=4, n_tasks=16)
        b = build_scenario("mesh-hotspot", seed=3, side=4, n_tasks=16)
        assert (a.system.node_loads == b.system.node_loads).all()

    def test_two_valleys_has_two_spots(self):
        sc = build_scenario("mesh-two-valleys", seed=0, side=8, n_tasks=256)
        loaded = (sc.system.node_loads > 0).sum()
        assert loaded == 2

    def test_faulty_scenario_has_fault_probs(self):
        sc = build_scenario("mesh-faulty", seed=0, side=4, n_tasks=16, fault_prob=0.1)
        assert (sc.links.fault_prob > 0).any()

    def test_size_overrides(self):
        sc = build_scenario("hypercube-hotspot", seed=0, dim=4, n_tasks=64)
        assert sc.topology.n_nodes == 16

    def test_large_n_scenarios_have_fixed_machines(self):
        torus = build_scenario("torus-32x32", seed=0, n_tasks=64)
        assert torus.topology.n_nodes == 1024
        assert torus.system.n_tasks == 64
        mesh = build_scenario("mesh-4096", seed=0, n_tasks=64)
        assert mesh.topology.n_nodes == 4096
        # Uniform workload: tasks land across the machine, not one spot.
        assert (mesh.system.node_loads > 0).sum() > 32

    def test_hotspot_scaled_tracks_machine_size(self):
        small = build_scenario("hotspot-scaled", seed=0, side=4)
        big = build_scenario("hotspot-scaled", seed=0, side=8)
        assert small.system.n_tasks == 16 * 16
        assert big.system.n_tasks == 16 * 64
        custom = build_scenario("hotspot-scaled", seed=0, side=4, load_factor=2.0)
        assert custom.system.n_tasks == 2 * 16
        with pytest.raises(ConfigurationError):
            build_scenario("hotspot-scaled", seed=0, side=4, load_factor=0.0)
