"""Unit tests for repro.workloads.scenarios."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import SCENARIOS, build_scenario


class TestRegistry:
    def test_all_registered_scenarios_build(self):
        for name in SCENARIOS:
            size = (
                {"dim": 3, "n_tasks": 32}
                if name == "hypercube-hotspot"
                else {"side": 4, "n_tasks": 32}
            )
            sc = build_scenario(name, seed=0, **size)
            assert sc.topology.n_nodes >= 8
            assert sc.system.n_tasks == 32
            assert sc.links.topology is sc.topology
            assert len(sc.task_ids) == 32

    def test_legacy_names_tolerate_shared_grid_kwargs(self):
        # The deprecation shim: one kwargs dict can serve a grid of
        # legacy names — `dim` is ignored by mesh scenarios and `side`
        # by hypercubes. Post-composition names are strict.
        sc = build_scenario("mesh-hotspot", seed=0, side=4, dim=3, n_tasks=32)
        assert sc.topology.n_nodes == 16
        sc = build_scenario("hypercube-hotspot", seed=0, side=4, dim=3,
                            n_tasks=32)
        assert sc.topology.n_nodes == 8
        with pytest.raises(ConfigurationError, match="accepted"):
            build_scenario("diurnal", seed=0, dim=3)
        with pytest.raises(ConfigurationError, match="accepted"):
            build_scenario("diurnal", seed=0, arrival_rate=99.0)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_scenario("no-such-scenario")

    def test_deterministic(self):
        a = build_scenario("mesh-hotspot", seed=3, side=4, n_tasks=16)
        b = build_scenario("mesh-hotspot", seed=3, side=4, n_tasks=16)
        assert (a.system.node_loads == b.system.node_loads).all()

    def test_two_valleys_has_two_spots(self):
        sc = build_scenario("mesh-two-valleys", seed=0, side=8, n_tasks=256)
        loaded = (sc.system.node_loads > 0).sum()
        assert loaded == 2

    def test_faulty_scenario_has_fault_probs(self):
        sc = build_scenario("mesh-faulty", seed=0, side=4, n_tasks=16, fault_prob=0.1)
        assert (sc.links.fault_prob > 0).any()

    def test_size_overrides(self):
        sc = build_scenario("hypercube-hotspot", seed=0, dim=4, n_tasks=64)
        assert sc.topology.n_nodes == 16

    def test_large_n_scenarios_have_fixed_machines(self):
        torus = build_scenario("torus-32x32", seed=0, n_tasks=64)
        assert torus.topology.n_nodes == 1024
        assert torus.system.n_tasks == 64
        mesh = build_scenario("mesh-4096", seed=0, n_tasks=64)
        assert mesh.topology.n_nodes == 4096
        # Uniform workload: tasks land across the machine, not one spot.
        assert (mesh.system.node_loads > 0).sum() > 32

    def test_hotspot_scaled_tracks_machine_size(self):
        small = build_scenario("hotspot-scaled", seed=0, side=4)
        big = build_scenario("hotspot-scaled", seed=0, side=8)
        assert small.system.n_tasks == 16 * 16
        assert big.system.n_tasks == 16 * 64
        custom = build_scenario("hotspot-scaled", seed=0, side=4, load_factor=2.0)
        assert custom.system.n_tasks == 2 * 16
        with pytest.raises(ConfigurationError):
            build_scenario("hotspot-scaled", seed=0, side=4, load_factor=0.0)

    def test_size_bounds_are_validated(self):
        for bad in ({"side": 0}, {"side": -2}, {"n_tasks": -8}):
            with pytest.raises(ConfigurationError):
                build_scenario("mesh-hotspot", seed=0, **bad)
        # n_tasks=0 stays valid: the empty-workload control.
        assert build_scenario("mesh-hotspot", seed=0, n_tasks=0).system.n_tasks == 0
        with pytest.raises(ConfigurationError):
            build_scenario("hypercube-hotspot", seed=0, dim=0)
        with pytest.raises(ConfigurationError):
            build_scenario("random-hotspot", seed=0, n_nodes=-1)


class TestNewRegisteredScenarios:
    def test_diurnal_and_moving_hotspot_carry_dynamics(self):
        from repro.workloads import DiurnalWorkload, MovingHotspotWorkload

        diurnal = build_scenario("diurnal", seed=0, side=4, n_tasks=16)
        assert isinstance(diurnal.dynamic, DiurnalWorkload)
        moving = build_scenario("moving-hotspot", seed=0, side=4, n_tasks=16)
        assert isinstance(moving.dynamic, MovingHotspotWorkload)

    def test_trace_replay_is_frozen_churn(self):
        from repro.workloads.traces import TraceReplay

        sc = build_scenario("trace-replay", seed=1, side=4, n_tasks=16)
        assert isinstance(sc.dynamic, TraceReplay)
        assert sc.dynamic.trace.n_arrivals > 0

    def test_fault_storm_has_flaky_links(self):
        sc = build_scenario("fault-storm", seed=0, side=4, n_tasks=16)
        storm = sc.links.fault_prob > 0
        assert 0 < storm.sum() < sc.topology.n_edges

    def test_power_law_and_clustered_shapes(self):
        import numpy as np

        pl = build_scenario("power-law", seed=0, side=4, n_tasks=256)
        sizes = pl.system.loads_array()
        assert sizes.max() > 4 * np.median(sizes)
        cl = build_scenario("clustered", seed=0, side=8)
        assert (cl.system.node_loads > 0).sum() > 4

    def test_registered_names_match_composed_equivalents(self):
        # A registered name is sugar for its composed spelling.
        sc = build_scenario("diurnal", seed=0, side=4, n_tasks=16)
        assert sc.spec.canonical() == "mesh:side=4+uniform:n_tasks=16+diurnal"
        assert sc.name == "diurnal"
