"""Unit tests for repro.workloads.distributions."""

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.network import mesh
from repro.tasks import TaskSystem
from repro.workloads import (
    balanced,
    clustered,
    gaussian_blob,
    linear_ramp,
    multi_hotspot,
    single_hotspot,
    uniform_random,
)


def fresh(topo):
    return TaskSystem(topo)


class TestSingleHotspot:
    def test_all_on_one_node(self, mesh4):
        s = fresh(mesh4)
        ids = single_hotspot(s, 20, rng=0)
        assert len(ids) == 20
        loaded = np.nonzero(s.node_loads)[0]
        assert loaded.shape == (1,)

    def test_default_node_is_central(self, mesh4):
        s = fresh(mesh4)
        single_hotspot(s, 5, rng=0)
        node = int(np.nonzero(s.node_loads)[0][0])
        ecc = mesh4.hop_distances.max(axis=1)
        assert ecc[node] == ecc.min()

    def test_explicit_node(self, mesh4):
        s = fresh(mesh4)
        single_hotspot(s, 5, rng=0, node=0)
        assert s.node_loads[0] > 0
        assert s.node_loads[1:].sum() == 0


class TestMultiHotspot:
    def test_spots_far_apart(self, mesh8):
        s = fresh(mesh8)
        multi_hotspot(s, 100, rng=0, n_spots=2)
        spots = np.nonzero(s.node_loads)[0]
        assert spots.shape[0] == 2
        assert mesh8.hop_distances[spots[0], spots[1]] >= mesh8.diameter // 2

    def test_weights_respected(self, mesh4):
        s = fresh(mesh4)
        multi_hotspot(s, 2000, rng=0, nodes=[0, 15], weights=[0.8, 0.2],
                      distribution="constant")
        frac = s.node_loads[0] / s.total_load
        assert frac == pytest.approx(0.8, abs=0.05)

    def test_validation(self, mesh4):
        s = fresh(mesh4)
        with pytest.raises(TaskError):
            multi_hotspot(s, 10, rng=0, nodes=[])
        with pytest.raises(TaskError):
            multi_hotspot(s, 10, rng=0, nodes=[0], weights=[-1.0])
        with pytest.raises(TaskError):
            multi_hotspot(s, 10, rng=0, n_spots=0)


class TestSpreadDistributions:
    def test_uniform_random_covers_nodes(self, mesh8):
        s = fresh(mesh8)
        uniform_random(s, 1000, rng=0)
        assert (s.node_loads > 0).sum() > 50  # nearly all of 64 nodes hit

    def test_linear_ramp_monotone_density(self):
        topo = mesh(1, 8)  # a line: x-coordinate = node index
        s = fresh(topo)
        linear_ramp(s, 4000, rng=0, axis=0, distribution="constant")
        h = s.node_loads
        # right half carries clearly more than the left half
        assert h[4:].sum() > 1.5 * h[:4].sum()

    def test_gaussian_blob_peaks_at_center(self, mesh8):
        s = fresh(mesh8)
        gaussian_blob(s, 2000, rng=0, center=27, sigma_hops=1.5,
                      distribution="constant")
        assert s.node_loads.argmax() == 27

    def test_gaussian_blob_validation(self, mesh4):
        with pytest.raises(TaskError):
            gaussian_blob(fresh(mesh4), 10, rng=0, sigma_hops=0.0)

    def test_balanced_flat(self, mesh4):
        s = fresh(mesh4)
        balanced(s, tasks_per_node=3, rng=0)
        np.testing.assert_allclose(s.node_loads, s.node_loads[0])
        assert s.n_tasks == 48

    def test_determinism(self, mesh4):
        a, b = fresh(mesh4), fresh(mesh4)
        uniform_random(a, 50, rng=9)
        uniform_random(b, 50, rng=9)
        np.testing.assert_allclose(a.node_loads, b.node_loads)


class TestClustered:
    def test_density_peaks_at_far_apart_centers(self, mesh8):
        s = fresh(mesh8)
        clustered(s, 3000, rng=0, n_clusters=3, sigma_hops=1.0,
                  distribution="constant")
        # the three heaviest nodes should be pairwise far apart
        top = np.argsort(s.node_loads)[-3:]
        hd = mesh8.hop_distances
        for i in range(3):
            for j in range(i + 1, 3):
                assert hd[top[i], top[j]] >= 4

    def test_validation(self, mesh4):
        with pytest.raises(TaskError):
            clustered(fresh(mesh4), 10, rng=0, n_clusters=0)
        with pytest.raises(TaskError):
            clustered(fresh(mesh4), 10, rng=0, sigma_hops=0.0)

    def test_deterministic(self, mesh4):
        a, b = fresh(mesh4), fresh(mesh4)
        clustered(a, 64, rng=3)
        clustered(b, 64, rng=3)
        np.testing.assert_allclose(a.node_loads, b.node_loads)
