"""Legacy-scenario parity: the composition refactor must be invisible.

Two locks:

1. **Bit-for-bit built objects** — every historical scenario name must
   build a `Scenario` identical to what the retired hand-written
   constructor produced: same topology, link arrays, task placement and
   sizes, node speeds, and (for dynamic scenarios) the same churn event
   stream. The reference constructors are frozen *verbatim* below (as
   they stood before the refactor), so parity is checked against real
   behaviour, not a re-derivation.

2. **Unchanged default cache keys** — a default `RunSpec` for each
   legacy name must hash to the exact pre-refactor digest, so result
   caches populated before the composition system keep replaying.
"""

import numpy as np
import pytest

from repro.network import builders
from repro.network.links import LinkAttributes
from repro.rng import derive, ensure_rng
from repro.runner import RunSpec
from repro.tasks.task import TaskSystem
from repro.workloads import DynamicWorkload, Scenario, build_scenario
from repro.workloads import distributions

# --------------------------------------------------------------------- #
# Frozen pre-refactor constructors (verbatim copies; do not modernise).
# --------------------------------------------------------------------- #


def _legacy_mesh_hotspot(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-hotspot", topo, links, system, ids)


def _legacy_torus_hotspot(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.torus(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("torus-hotspot", topo, links, system, ids)


def _legacy_hypercube_hotspot(seed, **kw):
    dim = int(kw.get("dim", 6))
    n_tasks = int(kw.get("n_tasks", 8 * (1 << dim)))
    topo = builders.hypercube(dim)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("hypercube-hotspot", topo, links, system, ids)


def _legacy_mesh_random(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-random", topo, links, system, ids)


def _legacy_mesh_two_valleys(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.multi_hotspot(
        system, n_tasks, derive(seed, 0), n_spots=2, weights=[0.7, 0.3]
    )
    return Scenario("mesh-two-valleys", topo, links, system, ids)


def _legacy_mesh_faulty(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    fault = float(kw.get("fault_prob", 0.05))
    topo = builders.mesh(side, side)
    rng = ensure_rng(derive(seed, 1))
    links = LinkAttributes.heterogeneous(
        topo,
        seed=rng,
        bandwidth_range=(0.5, 2.0),
        distance_range=(1.0, 1.0),
        fault_range=(0.0, fault),
    )
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-faulty", topo, links, system, ids)


def _legacy_random_hotspot(seed, **kw):
    n_nodes = int(kw.get("n_nodes", 64))
    avg_degree = float(kw.get("avg_degree", 4.0))
    graph_seed = int(kw.get("graph_seed", 1))
    n_tasks = int(kw.get("n_tasks", 8 * n_nodes))
    topo = builders.random_connected(n_nodes, avg_degree, seed=graph_seed)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("random-hotspot", topo, links, system, ids)


def _legacy_straggler(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    frac = float(kw.get("straggler_frac", 0.125))
    slowdown = float(kw.get("straggler_slowdown", 4.0))
    topo = builders.torus(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    rng = ensure_rng(derive(seed, 2))
    n_slow = max(1, round(frac * topo.n_nodes))
    slow = rng.choice(topo.n_nodes, size=n_slow, replace=False)
    speeds = np.ones(topo.n_nodes)
    speeds[slow] = 1.0 / slowdown
    return Scenario("straggler", topo, links, system, ids, node_speeds=speeds)


def _legacy_bursty_arrivals(seed, **kw):
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 2 * side * side))
    arrival_rate = float(kw.get("arrival_rate", 8.0))
    completion_prob = float(kw.get("completion_prob", 0.05))
    n_hot = int(kw.get("n_hot", 4))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    hot_rng = ensure_rng(derive(seed, 2))
    hot = [int(v) for v in hot_rng.choice(topo.n_nodes, size=n_hot, replace=False)]
    dynamic = DynamicWorkload(
        arrival_rate=arrival_rate,
        completion_prob=completion_prob,
        arrival_nodes=hot,
        rng=derive(seed, 3),
    )
    return Scenario("bursty-arrivals", topo, links, system, ids, dynamic=dynamic)


def _legacy_torus_32x32(seed, **kw):
    n_tasks = int(kw.get("n_tasks", 8 * 32 * 32))
    topo = builders.torus(32, 32)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("torus-32x32", topo, links, system, ids)


def _legacy_mesh_4096(seed, **kw):
    n_tasks = int(kw.get("n_tasks", 8 * 64 * 64))
    topo = builders.mesh(64, 64)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-4096", topo, links, system, ids)


def _legacy_hotspot_scaled(seed, **kw):
    side = int(kw.get("side", 32))
    factor = float(kw.get("load_factor", 16.0))
    n_tasks = int(kw.get("n_tasks", round(factor * side * side)))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("hotspot-scaled", topo, links, system, ids)


LEGACY = {
    "mesh-hotspot": _legacy_mesh_hotspot,
    "torus-hotspot": _legacy_torus_hotspot,
    "hypercube-hotspot": _legacy_hypercube_hotspot,
    "mesh-random": _legacy_mesh_random,
    "mesh-two-valleys": _legacy_mesh_two_valleys,
    "mesh-faulty": _legacy_mesh_faulty,
    "random-hotspot": _legacy_random_hotspot,
    "straggler": _legacy_straggler,
    "bursty-arrivals": _legacy_bursty_arrivals,
    "torus-32x32": _legacy_torus_32x32,
    "mesh-4096": _legacy_mesh_4096,
    "hotspot-scaled": _legacy_hotspot_scaled,
}

#: pre-refactor sha256 digests of RunSpec(scenario=name, algorithm="pplb")
#: — captured at the commit before the composition system landed.
FROZEN_DEFAULT_KEYS = {
    "bursty-arrivals": "823f628b67515caf9dcf347622d7d69d4f9dace8c058fd11b34371876299a08e",
    "hotspot-scaled": "172d144f8a5ed6493a343ca7200bf4b682359329a2e19c431122d1d673868142",
    "hypercube-hotspot": "003e29b73397f986e293b8bc71f3a87c8c5faea39036fa51ad0bb24ef105c6c8",
    "mesh-4096": "3828d1ca17c53218b29648cb75a5e2b09e772492f58c7bd96831861db9eb0c49",
    "mesh-faulty": "6780cd0aa6ed725ef3e38841604eae258c7fcf65c4db0ce8b31fde95abd7c708",
    "mesh-hotspot": "dec4461d750a59ae0dcf7cc508f7480fc03306fc540bc305a4e1901bcbfc6bca",
    "mesh-random": "1abe3895f5c877edb3b4abe85f69461ea93ec3a809e35739401585b203d792f6",
    "mesh-two-valleys": "5ca9141275258f0bbdc5b3d5ef2f998ea5ef928c29bf2271275f4fd04ae6fb9b",
    "random-hotspot": "91e867358904ce5de2b100baae5073b906afbb5239c853b5724c5591dd135665",
    "straggler": "95818dc93bbc322a0ada5ddcf396fcd72adb97ff921fa9c6be3d6b9751f945f1",
    "torus-32x32": "346c907945cd9d85b413b93c1a02f90d89956f8be91f6713c41a8211a8232ee5",
    "torus-hotspot": "be89ee1e9d66e50f1e747c83efafa6d154b4e2e4cc19fe68bd05de26d1657def",
}

#: small overrides keeping the large fixtures cheap while exercising the
#: legacy kwarg paths (unused keys must be ignored, as before).
SMALL = {"side": 5, "dim": 4, "n_tasks": 40}


def assert_scenarios_identical(a, b):
    assert a.name == b.name
    assert a.topology.n_nodes == b.topology.n_nodes
    np.testing.assert_array_equal(a.topology.edges, b.topology.edges)
    np.testing.assert_array_equal(a.topology.coords, b.topology.coords)
    np.testing.assert_array_equal(a.links.bandwidth, b.links.bandwidth)
    np.testing.assert_array_equal(a.links.distance, b.links.distance)
    np.testing.assert_array_equal(a.links.fault_prob, b.links.fault_prob)
    assert a.task_ids == b.task_ids
    np.testing.assert_array_equal(a.system.node_loads, b.system.node_loads)
    np.testing.assert_array_equal(a.system.loads_array(), b.system.loads_array())
    np.testing.assert_array_equal(
        a.system.locations_array(), b.system.locations_array()
    )
    if a.node_speeds is None:
        assert b.node_speeds is None
    else:
        np.testing.assert_array_equal(a.node_speeds, b.node_speeds)
    assert (a.dynamic is None) == (b.dynamic is None)
    if a.dynamic is not None:
        # Same churn process: stepping both against their own systems
        # must produce the identical event stream.
        for _ in range(10):
            created_a, removed_a = a.dynamic.step(a.system)
            created_b, removed_b = b.dynamic.step(b.system)
            assert created_a == created_b
            assert removed_a == removed_b
        np.testing.assert_array_equal(a.system.node_loads, b.system.node_loads)


@pytest.mark.parametrize("name", sorted(LEGACY))
@pytest.mark.parametrize("seed", [0, 7])
def test_legacy_names_build_identically_default(name, seed):
    kwargs = {} if name not in ("torus-32x32", "mesh-4096") else {"n_tasks": 64}
    assert_scenarios_identical(
        LEGACY[name](seed, **kwargs), build_scenario(name, seed, **kwargs)
    )


@pytest.mark.parametrize("name", sorted(LEGACY))
def test_legacy_names_build_identically_with_shared_kwargs(name):
    # The historical grid convention: one kwargs dict for every
    # scenario; constructors read what applies and ignore the rest.
    assert_scenarios_identical(
        LEGACY[name](3, **SMALL), build_scenario(name, 3, **SMALL)
    )


@pytest.mark.parametrize("name", sorted(LEGACY))
def test_legacy_specific_kwargs_still_apply(name):
    specific = {
        "mesh-faulty": {"fault_prob": 0.2},
        "random-hotspot": {"n_nodes": 20, "avg_degree": 3.0, "graph_seed": 5},
        "straggler": {"straggler_frac": 0.25, "straggler_slowdown": 8.0},
        "bursty-arrivals": {"arrival_rate": 2.0, "completion_prob": 0.1,
                            "n_hot": 2},
        "hotspot-scaled": {"side": 6, "load_factor": 3.0},
    }.get(name)
    if specific is None:
        pytest.skip("no scenario-specific kwargs")
    kwargs = {**SMALL, **specific}
    assert_scenarios_identical(
        LEGACY[name](11, **kwargs), build_scenario(name, 11, **kwargs)
    )


@pytest.mark.parametrize("name", sorted(FROZEN_DEFAULT_KEYS))
def test_default_cache_keys_unchanged(name):
    # Pre-composition caches must keep replaying: the canonical JSON
    # (scenario name verbatim) and therefore the digest are frozen.
    assert RunSpec(scenario=name, algorithm="pplb").key() == FROZEN_DEFAULT_KEYS[name]


def test_alias_equals_its_composed_spelling():
    # The composed equivalent builds the same machine/workload; only
    # the recorded name (and hence the cache key) differs.
    alias = build_scenario("straggler", 5)
    composed = build_scenario("torus:side=8+hotspot+stragglers", 5)
    # side=8 is the torus default, so the canonical name drops it.
    assert composed.name == "torus+hotspot+stragglers"
    np.testing.assert_array_equal(
        alias.system.node_loads, composed.system.node_loads
    )
    np.testing.assert_array_equal(alias.node_speeds, composed.node_speeds)
