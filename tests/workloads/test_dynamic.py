"""Unit tests for repro.workloads.dynamic (base churn + time-varying)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tasks import TaskSystem
from repro.workloads import (
    DiurnalWorkload,
    DynamicWorkload,
    MovingHotspotWorkload,
    balanced,
)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            DynamicWorkload(arrival_rate=-1.0)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(completion_prob=1.5)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(mean_size=0.0)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(spread=1.0)


class TestChurn:
    def test_arrivals_accumulate(self, mesh4):
        s = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=5.0, completion_prob=0.0, rng=0)
        for _ in range(20):
            wl.step(s)
        # ~100 expected; loose bounds
        assert 50 < s.n_tasks < 160

    def test_completions_drain(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=5, rng=0)
        wl = DynamicWorkload(arrival_rate=0.0, completion_prob=0.5, rng=0)
        n0 = s.n_tasks
        for _ in range(10):
            wl.step(s)
        assert s.n_tasks < n0 * 0.1

    def test_arrival_nodes_restricted(self, mesh4):
        s = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=10.0, completion_prob=0.0,
                             arrival_nodes=[3, 7], rng=0)
        for _ in range(10):
            wl.step(s)
        loaded = set(np.nonzero(s.node_loads)[0].tolist())
        assert loaded <= {3, 7}

    def test_returns_created_and_removed(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=2, rng=0)
        wl = DynamicWorkload(arrival_rate=3.0, completion_prob=0.3, rng=1)
        created, removed = wl.step(s)
        for tid in created:
            assert s.is_alive(tid)
        for tid in removed:
            assert not s.is_alive(tid)

    def test_deterministic(self, mesh4):
        def run(seed):
            s = TaskSystem(mesh4)
            wl = DynamicWorkload(arrival_rate=4.0, completion_prob=0.1, rng=seed)
            for _ in range(15):
                wl.step(s)
            return s.node_loads.copy()

        np.testing.assert_allclose(run(5), run(5))

    def test_zero_rates_noop(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=1, rng=0)
        wl = DynamicWorkload(arrival_rate=0.0, completion_prob=0.0, rng=0)
        created, removed = wl.step(s)
        assert created == [] and removed == []
        assert s.n_tasks == 16


class TestDiurnal:
    def test_rate_oscillates_around_base(self):
        wl = DiurnalWorkload(arrival_rate=4.0, amplitude=0.5, period=8, rng=0)
        rates = [wl.rate_at(r) for r in range(8)]
        assert max(rates) == pytest.approx(6.0, rel=1e-6)
        assert min(rates) == pytest.approx(2.0, rel=1e-6)
        assert wl.rate_at(0) == pytest.approx(4.0)

    def test_zero_amplitude_matches_stationary_churn(self, mesh4):
        def run(cls, **kw):
            s = TaskSystem(mesh4)
            wl = cls(arrival_rate=3.0, completion_prob=0.1, rng=5, **kw)
            out = [wl.step(s) for _ in range(12)]
            return out, s.node_loads.copy()

        (ev_a, loads_a) = run(DynamicWorkload)
        (ev_b, loads_b) = run(DiurnalWorkload, amplitude=0.0)
        assert ev_a == ev_b
        np.testing.assert_allclose(loads_a, loads_b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalWorkload(amplitude=1.5)
        with pytest.raises(ConfigurationError):
            DiurnalWorkload(period=0)


class TestMovingHotspot:
    def test_adversarial_targets_emptiest_node(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=1, rng=0)
        # empty node 5 so it becomes the unique minimum
        for tid in s.tasks_at(5).tolist():
            s.remove_task(int(tid))
        wl = MovingHotspotWorkload(arrival_rate=6.0, completion_prob=0.0,
                                   dwell=100, rng=1)
        wl.step(s)
        assert wl.arrival_nodes == [5]

    def test_retargets_every_dwell_rounds(self, mesh4):
        s = TaskSystem(mesh4)
        wl = MovingHotspotWorkload(arrival_rate=10.0, completion_prob=0.0,
                                   dwell=2, rng=3)
        seen = set()
        for _ in range(10):
            wl.step(s)
            seen.add(wl.arrival_nodes[0])
        assert len(seen) > 1

    def test_walk_moves_to_neighbors(self, mesh4):
        s = TaskSystem(mesh4)
        wl = MovingHotspotWorkload(arrival_rate=1.0, completion_prob=0.0,
                                   dwell=1, mode="walk", rng=2)
        wl.step(s)
        prev = wl.arrival_nodes[0]
        for _ in range(6):
            wl.step(s)
            cur = wl.arrival_nodes[0]
            assert cur in mesh4.neighbors(prev)
            prev = cur

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MovingHotspotWorkload(dwell=0)
        with pytest.raises(ConfigurationError):
            MovingHotspotWorkload(mode="teleport")
