"""Unit tests for repro.workloads.dynamic.DynamicWorkload."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload, balanced


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            DynamicWorkload(arrival_rate=-1.0)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(completion_prob=1.5)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(mean_size=0.0)
        with pytest.raises(ConfigurationError):
            DynamicWorkload(spread=1.0)


class TestChurn:
    def test_arrivals_accumulate(self, mesh4):
        s = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=5.0, completion_prob=0.0, rng=0)
        for _ in range(20):
            wl.step(s)
        # ~100 expected; loose bounds
        assert 50 < s.n_tasks < 160

    def test_completions_drain(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=5, rng=0)
        wl = DynamicWorkload(arrival_rate=0.0, completion_prob=0.5, rng=0)
        n0 = s.n_tasks
        for _ in range(10):
            wl.step(s)
        assert s.n_tasks < n0 * 0.1

    def test_arrival_nodes_restricted(self, mesh4):
        s = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=10.0, completion_prob=0.0,
                             arrival_nodes=[3, 7], rng=0)
        for _ in range(10):
            wl.step(s)
        loaded = set(np.nonzero(s.node_loads)[0].tolist())
        assert loaded <= {3, 7}

    def test_returns_created_and_removed(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=2, rng=0)
        wl = DynamicWorkload(arrival_rate=3.0, completion_prob=0.3, rng=1)
        created, removed = wl.step(s)
        for tid in created:
            assert s.is_alive(tid)
        for tid in removed:
            assert not s.is_alive(tid)

    def test_deterministic(self, mesh4):
        def run(seed):
            s = TaskSystem(mesh4)
            wl = DynamicWorkload(arrival_rate=4.0, completion_prob=0.1, rng=seed)
            for _ in range(15):
                wl.step(s)
            return s.node_loads.copy()

        np.testing.assert_allclose(run(5), run(5))

    def test_zero_rates_noop(self, mesh4):
        s = TaskSystem(mesh4)
        balanced(s, tasks_per_node=1, rng=0)
        wl = DynamicWorkload(arrival_rate=0.0, completion_prob=0.0, rng=0)
        created, removed = wl.step(s)
        assert created == [] and removed == []
        assert s.n_tasks == 16
