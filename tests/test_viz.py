"""Unit tests for repro.viz.heatmap."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.viz import render_heatmap, render_surface, surface_film


class TestRenderHeatmap:
    def test_dimensions(self):
        out = render_heatmap(np.ones(4), np.array([[0, 0], [1, 0], [0, 1], [1, 1]]),
                             width=10, height=5)
        lines = out.splitlines()
        assert len(lines) == 7  # border + 5 rows + border
        assert all(len(l) >= 12 for l in lines[:6])

    def test_hotspot_renders_densest_char(self):
        values = np.zeros(9)
        values[4] = 100.0
        coords = np.array([[i % 3, i // 3] for i in range(9)], dtype=float)
        out = render_heatmap(values, coords, width=9, height=5)
        assert "@" in out

    def test_empty_surface_blank(self):
        out = render_heatmap(np.zeros(4), np.array([[0, 0], [1, 0], [0, 1], [1, 1]]))
        assert "@" not in out

    def test_fixed_vmax_scales_down(self):
        values = np.array([1.0])
        coords = np.array([[0.5, 0.5]])
        strong = render_heatmap(values, coords, vmax=1.0)
        weak = render_heatmap(values, coords, vmax=100.0)
        assert "@" in strong
        assert "@" not in weak

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.ones(3), np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            render_heatmap(np.ones(2), np.zeros((2, 2)), width=1)
        with pytest.raises(ConfigurationError):
            render_heatmap(np.array([-1.0, 1.0]), np.zeros((2, 2)))


class TestRenderSurface:
    def test_mesh_surface(self, mesh4):
        h = np.zeros(16)
        h[5] = 10.0
        out = render_surface(mesh4, h, width=16, height=8)
        assert "@" in out
        assert "max=10" in out

    def test_shape_checked(self, mesh4):
        with pytest.raises(ConfigurationError):
            render_surface(mesh4, np.ones(5))


class TestSurfaceFilm:
    def test_shared_scale(self, mesh4):
        frame1 = np.zeros(16)
        frame1[0] = 10.0
        frame2 = np.full(16, 10.0 / 16)
        film = surface_film(mesh4, [frame1, frame2], labels=["start", "end"])
        assert "start" in film and "end" in film
        # Second frame is faint on the first frame's scale.
        second = film.split("end")[1]
        assert "@" not in second

    def test_validation(self, mesh4):
        with pytest.raises(ConfigurationError):
            surface_film(mesh4, [])
        with pytest.raises(ConfigurationError):
            surface_film(mesh4, [np.zeros(16)], labels=["a", "b"])
