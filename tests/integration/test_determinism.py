"""Determinism: identical seeds produce identical simulations."""

import numpy as np

from repro.baselines import RandomWorkStealing, TaskDiffusion
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh, random_connected
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload, single_hotspot, uniform_random


def run_once(balancer_fn, seed, dynamic=False):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    uniform_random(system, 256, rng=seed)
    wl = (
        DynamicWorkload(arrival_rate=2.0, completion_prob=0.02, rng=seed + 1)
        if dynamic
        else None
    )
    sim = Simulator(topo, system, balancer_fn(), seed=seed, dynamic=wl)
    res = sim.run(max_rounds=120)
    return system.node_loads.copy(), res


class TestDeterminism:
    def test_pplb_stochastic_reproducible(self):
        f = lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.4))
        h1, r1 = run_once(f, 7)
        h2, r2 = run_once(f, 7)
        np.testing.assert_allclose(h1, h2)
        assert r1.total_migrations == r2.total_migrations
        assert r1.total_heat == r2.total_heat

    def test_pplb_different_seeds_differ(self):
        f = lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.4))
        h1, _ = run_once(f, 7)
        h2, _ = run_once(f, 8)
        assert not np.allclose(h1, h2)

    def test_greedy_pplb_seed_independent(self):
        """β0 = 0 removes every stochastic choice from the balancer."""
        f = lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.0))
        topo = mesh(8, 8)

        def run(seed):
            system = TaskSystem(topo)
            single_hotspot(system, 256, rng=0)  # same workload
            sim = Simulator(topo, system, f(), seed=seed)
            sim.run(max_rounds=120)
            return system.node_loads.copy()

        np.testing.assert_allclose(run(1), run(999))

    def test_work_stealing_reproducible(self):
        h1, _ = run_once(RandomWorkStealing, 3)
        h2, _ = run_once(RandomWorkStealing, 3)
        np.testing.assert_allclose(h1, h2)

    def test_with_dynamic_workload(self):
        f = lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.3))
        h1, r1 = run_once(f, 11, dynamic=True)
        h2, r2 = run_once(f, 11, dynamic=True)
        np.testing.assert_allclose(h1, h2)
        np.testing.assert_allclose(r1.series("n_tasks"), r2.series("n_tasks"))

    def test_task_diffusion_deterministic(self):
        h1, _ = run_once(TaskDiffusion, 5)
        h2, _ = run_once(TaskDiffusion, 5)
        np.testing.assert_allclose(h1, h2)

    def test_random_topology_reproducible_end_to_end(self):
        def run(seed):
            topo = random_connected(30, avg_degree=4, seed=2)
            system = TaskSystem(topo)
            uniform_random(system, 120, rng=3)
            sim = Simulator(
                topo, system, ParticlePlaneBalancer(PPLBConfig(beta0=0.25)), seed=seed
            )
            sim.run(max_rounds=80)
            return system.node_loads.copy()

        np.testing.assert_allclose(run(4), run(4))
