"""Integration tests validating the paper's formal claims end-to-end.

Each test names the paper statement it checks. These are the
reproduction's ground truth: if any of them fails, the implementation
no longer realises the paper's model.
"""

import numpy as np
import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import hypercube, mesh, torus
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot, uniform_random


def run_pplb(topo, n_tasks, cfg=None, seed=0, max_rounds=600, distribution=None,
             track=False):
    system = TaskSystem(topo)
    if distribution is None:
        single_hotspot(system, n_tasks, rng=seed)
    else:
        distribution(system, n_tasks, rng=seed)
    bal = ParticlePlaneBalancer(cfg if cfg is not None else PPLBConfig())
    sim = Simulator(topo, system, bal, seed=seed, track_journeys=track)
    res = sim.run(max_rounds=max_rounds)
    return sim, res, bal


class TestTheorem2Convergence:
    """Theorem 2: the scheme converges to a nearly perfect balance."""

    @pytest.mark.parametrize(
        "topo_fn",
        [lambda: mesh(8, 8), lambda: torus(8, 8), lambda: hypercube(6)],
        ids=["mesh", "torus", "hypercube"],
    )
    def test_hotspot_converges_on_all_topologies(self, topo_fn):
        topo = topo_fn()
        _sim, res, bal = run_pplb(topo, 8 * topo.n_nodes)
        assert res.converged, "PPLB must quiesce (Theorem 2, bounded transfers)"
        assert res.final_cov < 0.3, "PPLB must reach near-balance (Theorem 2)"
        assert bal.idle()

    def test_random_imbalance_improves(self):
        topo = mesh(8, 8)
        _sim, res, _bal = run_pplb(topo, 512, distribution=uniform_random)
        assert res.final_cov < res.initial_summary["cov"]

    def test_every_transfer_bounded_corollary2(self):
        """Corollary 2 (discrete): with µk > 0 every journey is finite.

        The flag drops by c0·µk·e per hop and feasibility keeps it above
        the surface, so hops ≤ h0/(c0·µk·e_min). Verified against the
        balancer's hop ledger.
        """
        topo = mesh(8, 8)
        cfg = PPLBConfig(mu_k_base=0.5, c0=1.0)
        _sim, res, bal = run_pplb(topo, 512, cfg=cfg)
        assert res.converged
        h0_max = res.initial_summary["max"]
        bound = h0_max / (1.0 * 0.5 * 1.0)
        journeys = max(bal.stats["initiated"], 1)
        assert bal.stats["hops"] / journeys <= bound

    def test_monotone_improvement_tendency(self):
        """Theorem 2's step 2: transfers take the system toward balance.

        Stochasticity allows transient regressions; the test asserts a
        decreasing trend across windows of the run, not per-round
        monotonicity.
        """
        topo = mesh(8, 8)
        _sim, res, _bal = run_pplb(topo, 512)
        spread = res.series("spread")
        thirds = np.array_split(spread, 3)
        means = [t.mean() for t in thirds]
        assert means[0] > means[1] > means[2]


class TestTheorem1TrapBound:
    """Theorem 1 / Corollary 3 in the discrete (load) setting.

    A journey's total displacement (hops × e_min ≥ straight distance) is
    bounded by h*_0/(c0·µk): heat per hop is c0·µk·e ≥ c0·µk·e_min and
    the flag cannot go below the (non-negative) surface.
    """

    def test_journey_displacement_bounded(self):
        topo = mesh(16, 16)
        mu_k = 0.5
        cfg = PPLBConfig(mu_k_base=mu_k, c0=1.0)
        sim, res, _bal = run_pplb(topo, 512, cfg=cfg, track=True)
        h0_max = res.initial_summary["max"]
        bound = h0_max / (1.0 * mu_k)  # e_min = 1 on uniform links
        for _tid, hops in sim.task_hops.items():
            assert hops <= bound + 1e-9

    def test_larger_muk_shrinks_travel(self):
        topo = mesh(16, 16)
        avg_disp = {}
        for mu_k in (0.1, 2.0):
            sim, _res, _bal = run_pplb(
                topo, 512, cfg=PPLBConfig(mu_k_base=mu_k), track=True
            )
            disp = list(sim.journey_displacements().values())
            avg_disp[mu_k] = float(np.mean(disp)) if disp else 0.0
        assert avg_disp[2.0] < avg_disp[0.1]


class TestStaticFrictionInequality:
    """Paper inequality (1) / §5.1: motion iff tanβ > µs."""

    def test_high_mu_s_suppresses_all_motion(self):
        topo = mesh(8, 8)
        _sim, res, _bal = run_pplb(topo, 512, cfg=PPLBConfig(mu_s_base=1e6))
        assert res.total_migrations == 0

    def test_migration_count_monotone_in_mu_s(self):
        topo = mesh(8, 8)
        counts = []
        for mu_s in (0.5, 4.0, 32.0):
            _sim, res, _bal = run_pplb(topo, 512, cfg=PPLBConfig(mu_s_base=mu_s))
            counts.append(res.total_migrations)
        assert counts[0] > counts[1] > counts[2]

    def test_balance_quality_degrades_with_mu_s(self):
        topo = mesh(8, 8)
        covs = []
        for mu_s in (0.5, 8.0, 64.0):
            _sim, res, _bal = run_pplb(topo, 512, cfg=PPLBConfig(mu_s_base=mu_s))
            covs.append(res.final_cov)
        assert covs[0] < covs[-1]


class TestHeatTrafficAnalogy:
    """§4.1: heat produced ≙ traffic generated (both per-hop products)."""

    def test_heat_proportional_to_traffic_uniform_links(self):
        # With uniform links and constant µk, heat = g·c0·µk · (load·e)
        # summed over hops = g·c0·µk · traffic_work exactly.
        topo = mesh(8, 8)
        cfg = PPLBConfig(mu_k_base=0.3, c0=1.0, g=1.0)
        _sim, res, _bal = run_pplb(topo, 512, cfg=cfg)
        assert res.total_heat == pytest.approx(0.3 * res.total_traffic, rel=1e-9)

    def test_heat_scales_with_mu_k(self):
        topo = mesh(8, 8)
        heats = {}
        for mu_k in (0.1, 0.4):
            _sim, res, _bal = run_pplb(topo, 512, cfg=PPLBConfig(mu_k_base=mu_k))
            heats[mu_k] = res.total_heat / max(res.total_traffic, 1e-12)
        assert heats[0.4] == pytest.approx(4.0 * heats[0.1], rel=1e-6)
