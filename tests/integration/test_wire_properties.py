"""Property tests for the transfer-latency wire model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TaskDiffusion
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot, uniform_random

_SETTINGS = dict(max_examples=12, deadline=None)


@settings(**_SETTINGS)
@given(
    latency=st.one_of(st.integers(0, 6), st.just("size")),
    n_tasks=st.integers(30, 120),
    seed=st.integers(0, 10_000),
    use_pplb=st.booleans(),
)
def test_wire_conserves_load_and_empties(latency, n_tasks, seed, use_pplb):
    """Total load (nodes + wire) is invariant; the wire drains at rest."""
    topo = mesh(5, 5)
    system = TaskSystem(topo)
    uniform_random(system, n_tasks, rng=seed)
    total0 = system.total_load
    bal = (
        ParticlePlaneBalancer(PPLBConfig(beta0=0.2))
        if use_pplb
        else TaskDiffusion()
    )
    sim = Simulator(topo, system, bal, transfer_latency=latency, seed=seed)
    res = sim.run(max_rounds=150)
    assert system.total_load == pytest.approx(total0)
    if res.converged:
        assert system.n_in_transit == 0
        assert system.node_loads.sum() == pytest.approx(total0)
    assert (system.node_loads >= -1e-9).all()


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000))
def test_latency_only_delays_final_placement_quality(seed):
    """With and without latency, PPLB reaches the same balance class."""
    def final_cov(latency):
        topo = mesh(5, 5)
        system = TaskSystem(topo)
        single_hotspot(system, 150, rng=seed)
        sim = Simulator(
            topo,
            system,
            ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
            transfer_latency=latency,
            seed=seed,
        )
        res = sim.run(max_rounds=800)
        assert res.converged
        return res.final_cov

    assert abs(final_cov(0) - final_cov(3)) < 0.25
