"""Integration tests for the paper's 'real-system' claims:

fault tolerance (§4.2 ``F`` matrix) and task/resource dependencies
(§4.2 ``T``/``R`` matrices) — the axes on which PPLB claims to go beyond
classical schemes.
"""

import numpy as np

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import FaultModel, LinkAttributes, mesh
from repro.sim import Simulator
from repro.tasks import ResourceMap, TaskSystem
from repro.tasks.generators import fork_join_tasks, place_all_on
from repro.workloads import single_hotspot


class TestFaultInjection:
    def test_balances_despite_transient_faults(self):
        topo = mesh(8, 8)
        attrs = LinkAttributes.uniform(topo, fault_prob=0.2)
        system = TaskSystem(topo)
        single_hotspot(system, 256, rng=0)
        fm = FaultModel(attrs, rng=1)
        sim = Simulator(
            topo,
            system,
            ParticlePlaneBalancer(PPLBConfig()),
            links=attrs,
            fault_model=fm,
            seed=0,
        )
        res = sim.run(max_rounds=600)
        assert res.final_cov < 0.5
        # PPLB reads the up-mask, so nothing should ever be blocked.
        assert res.series("blocked").sum() == 0

    def test_fault_prob_raises_link_cost_discourages_use(self):
        """The F matrix enters e_ij: traffic avoids fault-prone links."""
        topo = mesh(8, 8)
        m = topo.n_edges
        fault = np.zeros(m)
        # Make the entire left half of the mesh unreliable.
        coords = topo.coords
        for k, (u, v) in enumerate(topo.edges):
            if coords[u][0] < 0.5 and coords[v][0] <= 0.5:
                fault[k] = 0.6
        attrs = LinkAttributes(
            topo,
            bandwidth=np.ones(m),
            distance=np.ones(m),
            fault_prob=fault,
        )
        system = TaskSystem(topo)
        # Hotspot on the border column between the two halves.
        single_hotspot(system, 256, rng=0, node=28)
        bal = ParticlePlaneBalancer(PPLBConfig())
        sim = Simulator(topo, system, bal, links=attrs, seed=0, c1=4.0,
                        track_journeys=True)
        sim.run(max_rounds=300)
        h = system.node_loads
        right = h[coords[:, 0] > 0.5].sum()
        left = h[coords[:, 0] < 0.45].sum()
        assert right > left  # load flowed toward the reliable half

    def test_permanent_fault_routes_around(self):
        topo = mesh(4, 4)
        attrs = LinkAttributes.uniform(topo)
        system = TaskSystem(topo)
        single_hotspot(system, 64, rng=0, node=5)
        fm = FaultModel(attrs, rng=0, permanent={0: [(5, 6), (5, 9)]})
        sim = Simulator(
            topo,
            system,
            ParticlePlaneBalancer(PPLBConfig()),
            links=attrs,
            fault_model=fm,
            seed=0,
        )
        res = sim.run(max_rounds=300)
        assert res.final_cov < 1.0
        assert res.series("blocked").sum() == 0


class TestDependencies:
    def _run(self, w_dep, kappa=1.0, seed=0):
        topo = mesh(8, 8)
        system = TaskSystem(topo)
        # One fork-join program piled on a hotspot + background tasks.
        ids, graph = fork_join_tasks(
            system, width=6, depth=4, placement=place_all_on(27), rng=seed,
            comm_weight=1.0,
        )
        cfg = PPLBConfig(w_dependency=w_dep, kappa=kappa, mu_k_base=0.1)
        bal = ParticlePlaneBalancer(cfg, task_graph=graph)
        sim = Simulator(topo, system, bal, task_graph=graph, seed=seed)
        sim.run(max_rounds=300)
        locations = system.snapshot_placement()
        cost = graph.communication_cost(locations, topo.hop_distances)
        cov = float(np.std(system.node_loads) / max(np.mean(system.node_loads), 1e-12))
        return cost, cov

    def test_dependency_friction_lowers_comm_cost(self):
        cost_oblivious, _ = self._run(w_dep=0.0)
        cost_aware, _ = self._run(w_dep=2.0)
        assert cost_aware < cost_oblivious

    def test_dependency_friction_trades_balance(self):
        _, cov_oblivious = self._run(w_dep=0.0)
        _, cov_aware = self._run(w_dep=8.0)
        # Sticky tasks ⇒ no better balance than the oblivious run.
        assert cov_aware >= cov_oblivious - 1e-9


class TestResourceAffinity:
    def test_pinned_task_stays_near_resource(self):
        topo = mesh(8, 8)
        system = TaskSystem(topo)
        ids = single_hotspot(system, 512, rng=0, node=27)
        resources = ResourceMap(topo.n_nodes)
        pinned = ids[0]
        # The pin must beat the steepest possible gradient (the full
        # hotspot height ~528), else physics rightly drags the task off.
        resources.set_affinity(pinned, 27, 1000.0)
        cfg = PPLBConfig(w_resource=1.0, kappa=1.0)
        bal = ParticlePlaneBalancer(cfg, resources=resources)
        sim = Simulator(topo, system, bal, resources=resources, seed=0)
        res = sim.run(max_rounds=400)
        assert res.final_cov < 0.4  # still balances the rest
        assert system.location_of(pinned) == 27  # the pinned task never left

    def test_unpinned_control_leaves(self):
        topo = mesh(8, 8)
        system = TaskSystem(topo)
        ids = single_hotspot(system, 128, rng=0, node=27)
        bal = ParticlePlaneBalancer(PPLBConfig())
        sim = Simulator(topo, system, bal, seed=0)
        sim.run(max_rounds=300)
        # With 128 tasks on one node and none pinned, the vast majority
        # must have migrated away.
        remaining = sum(1 for t in ids if system.location_of(t) == 27)
        assert remaining < 32
