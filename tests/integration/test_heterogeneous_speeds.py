"""Tests for capacity-proportional balancing on heterogeneous machines."""

import numpy as np
import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


def two_speed_mesh():
    """8x8 mesh where the right half is twice as fast."""
    topo = mesh(8, 8)
    speeds = np.ones(64)
    speeds[topo.coords[:, 0] > 0.5] = 2.0
    return topo, speeds


class TestEngineSpeeds:
    def test_validation(self):
        topo = mesh(4, 4)
        system = TaskSystem(topo)
        from repro.baselines import NoBalancer

        with pytest.raises(ConfigurationError):
            Simulator(topo, system, NoBalancer(), node_speeds=np.ones(5))
        with pytest.raises(ConfigurationError):
            Simulator(topo, system, NoBalancer(), node_speeds=np.zeros(16))

    def test_metrics_on_effective_loads(self):
        """h_i = s_i exactly is the balanced state (CoV 0)."""
        topo = mesh(4, 4)
        speeds = np.ones(16)
        speeds[:8] = 2.0
        system = TaskSystem(topo)
        for node in range(16):
            system.add_task(float(speeds[node]), node)
        from repro.baselines import NoBalancer

        sim = Simulator(topo, system, NoBalancer(), node_speeds=speeds)
        res = sim.run(max_rounds=2)
        assert res.initial_summary["cov"] == pytest.approx(0.0, abs=1e-12)


class TestSpeedAwarePPLB:
    def _run(self, speed_aware, seed=0):
        topo, speeds = two_speed_mesh()
        system = TaskSystem(topo)
        single_hotspot(system, 512, rng=0)
        cfg = PPLBConfig(beta0=0.0, speed_aware=speed_aware)
        sim = Simulator(
            topo, system, ParticlePlaneBalancer(cfg), node_speeds=speeds, seed=seed
        )
        res = sim.run(max_rounds=500)
        return topo, speeds, system, res

    def test_speed_aware_converges_to_capacity_proportional(self):
        topo, speeds, system, res = self._run(speed_aware=True)
        assert res.converged
        # Weighted CoV small: h_i proportional to s_i.
        assert res.final_cov < 0.3
        # Fast half holds roughly twice the slow half's load.
        h = system.node_loads
        fast = h[speeds == 2.0].sum()
        slow = h[speeds == 1.0].sum()
        assert fast / slow == pytest.approx(2.0, rel=0.25)

    def test_oblivious_pplb_misbalances_weighted_metric(self):
        _topo, speeds, system, res = self._run(speed_aware=False)
        # It equalises raw loads, so the weighted metric stays bad.
        h = system.node_loads
        raw_cov = h.std() / h.mean()
        assert raw_cov < 0.3  # balanced in raw terms...
        assert res.final_cov > 0.25  # ...but not in capacity terms

    def test_aware_beats_oblivious_on_weighted_cov(self):
        _t1, _s1, _sys1, res_aware = self._run(speed_aware=True)
        _t2, _s2, _sys2, res_obliv = self._run(speed_aware=False)
        assert res_aware.final_cov < res_obliv.final_cov

    def test_homogeneous_speeds_are_identity(self):
        """speeds = ones must reproduce the speed-less run exactly."""
        topo = mesh(6, 6)

        def run(speeds):
            system = TaskSystem(topo)
            single_hotspot(system, 144, rng=0)
            sim = Simulator(
                topo,
                system,
                ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
                node_speeds=speeds,
                seed=0,
            )
            sim.run(max_rounds=200)
            return system.node_loads.copy()

        np.testing.assert_allclose(run(None), run(np.ones(36)))
