"""Fair algorithm comparison under identical recorded churn.

Demonstrates the trace workflow end-to-end: record a stochastic churn
process once, then replay the byte-identical event sequence against
different balancers — removing workload randomness from the comparison
entirely.
"""

import numpy as np
import pytest

from repro.baselines import NoBalancer, TaskDiffusion
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload, TraceReplay, record_trace


@pytest.fixture(scope="module")
def churn_trace():
    topo = mesh(6, 6)
    wl = DynamicWorkload(
        arrival_rate=4.0,
        completion_prob=0.03,
        arrival_nodes=[0, 35],
        rng=42,
    )
    return record_trace(wl, TaskSystem(topo), rounds=120)


def run_with(balancer, trace, seed=0):
    topo = mesh(6, 6)
    system = TaskSystem(topo)
    sim = Simulator(topo, system, balancer, dynamic=TraceReplay(trace), seed=seed)
    res = sim.run(max_rounds=120)
    return system, res


class TestTraceFairness:
    def test_same_arrivals_for_everyone(self, churn_trace):
        """Both algorithms face the exact same task population."""
        s1, r1 = run_with(NoBalancer(), churn_trace)
        s2, r2 = run_with(ParticlePlaneBalancer(PPLBConfig()), churn_trace)
        assert s1.n_tasks == s2.n_tasks
        assert s1.total_load == pytest.approx(s2.total_load)
        np.testing.assert_array_equal(r1.series("n_tasks"), r2.series("n_tasks"))

    def test_balancers_beat_noop_on_identical_churn(self, churn_trace):
        _s0, r0 = run_with(NoBalancer(), churn_trace)
        _s1, r1 = run_with(ParticlePlaneBalancer(PPLBConfig(mu_s_base=0.5)), churn_trace)
        _s2, r2 = run_with(TaskDiffusion(), churn_trace)
        tail = slice(60, None)
        cov0 = r0.series("cov")[tail].mean()
        cov1 = r1.series("cov")[tail].mean()
        cov2 = r2.series("cov")[tail].mean()
        assert cov1 < cov0 / 2
        assert cov2 < cov0 / 2

    def test_trace_survives_json_round_trip_in_engine(self, churn_trace):
        from repro.workloads import WorkloadTrace

        clone = WorkloadTrace.from_json(churn_trace.to_json())
        s1, _ = run_with(ParticlePlaneBalancer(PPLBConfig(beta0=0.0)), churn_trace)
        s2, _ = run_with(ParticlePlaneBalancer(PPLBConfig(beta0=0.0)), clone)
        np.testing.assert_allclose(s1.node_loads, s2.node_loads)
