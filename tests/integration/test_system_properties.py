"""Property-based (hypothesis) system tests: invariants over random runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ContractingWithinNeighborhood,
    GradientModel,
    RandomWorkStealing,
    TaskDiffusion,
)
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh, ring, torus
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import multi_hotspot, single_hotspot, uniform_random

_SETTINGS = dict(max_examples=15, deadline=None)

BALANCERS = {
    0: lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.25)),
    1: lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
    2: TaskDiffusion,
    3: GradientModel,
    4: ContractingWithinNeighborhood,
    5: RandomWorkStealing,
}

TOPOLOGIES = {
    0: lambda: mesh(5, 5),
    1: lambda: torus(5, 5),
    2: lambda: ring(12),
}

DISTRIBUTIONS = {
    0: single_hotspot,
    1: uniform_random,
    2: multi_hotspot,
}


@settings(**_SETTINGS)
@given(
    bal_key=st.integers(0, 5),
    topo_key=st.integers(0, 2),
    dist_key=st.integers(0, 2),
    n_tasks=st.integers(20, 150),
    seed=st.integers(0, 10_000),
)
def test_load_conserved_and_no_negative_loads(bal_key, topo_key, dist_key, n_tasks, seed):
    """Invariant: balancers relocate load, never create or destroy it."""
    topo = TOPOLOGIES[topo_key]()
    system = TaskSystem(topo)
    DISTRIBUTIONS[dist_key](system, n_tasks, rng=seed)
    total0 = system.total_load
    n0 = system.n_tasks
    sim = Simulator(topo, system, BALANCERS[bal_key](), seed=seed)
    res = sim.run(max_rounds=60)
    assert system.total_load == pytest.approx(total0)
    assert system.n_tasks == n0
    assert (system.node_loads >= -1e-9).all()
    # recorded totals are self-consistent
    assert res.total_migrations == sum(r.n_migrations for r in res.records)


@settings(**_SETTINGS)
@given(
    bal_key=st.integers(0, 5),
    n_tasks=st.integers(30, 120),
    seed=st.integers(0, 10_000),
)
def test_never_worse_than_double_initial_imbalance(bal_key, n_tasks, seed):
    """Balancers may dither but must not blow the imbalance up."""
    topo = mesh(5, 5)
    system = TaskSystem(topo)
    uniform_random(system, n_tasks, rng=seed)
    sim = Simulator(topo, system, BALANCERS[bal_key](), seed=seed)
    res = sim.run(max_rounds=80)
    # Tolerance: discrete task moves can transiently bump CoV on nearly
    # balanced systems; 2x initial + one-task slack is a real safety net.
    mean = res.initial_summary["mean"]
    slack = 2.0 / max(mean, 1e-9)
    assert res.final_cov <= 2.0 * res.initial_summary["cov"] + slack


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000), n_tasks=st.integers(50, 200))
def test_pplb_beats_noop_on_hotspots(seed, n_tasks):
    topo = mesh(5, 5)
    system = TaskSystem(topo)
    single_hotspot(system, n_tasks, rng=seed)
    sim = Simulator(
        topo, system, ParticlePlaneBalancer(PPLBConfig(beta0=0.25)), seed=seed
    )
    res = sim.run(max_rounds=120)
    assert res.final_cov < res.initial_summary["cov"] / 2


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000))
def test_flat_system_stays_flat(seed):
    """Control: a balanced system generates no traffic (µs > 0)."""
    from repro.workloads import balanced

    topo = mesh(5, 5)
    system = TaskSystem(topo)
    balanced(system, tasks_per_node=3, rng=seed)
    sim = Simulator(
        topo, system, ParticlePlaneBalancer(PPLBConfig(beta0=0.25)), seed=seed
    )
    res = sim.run(max_rounds=30)
    assert res.total_migrations == 0
    assert res.final_cov == pytest.approx(0.0, abs=1e-12)
