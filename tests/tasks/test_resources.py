"""Unit tests for repro.tasks.resources.ResourceMap."""

import pytest

from repro.exceptions import TaskError
from repro.tasks import ResourceMap


class TestAffinity:
    def test_set_get(self):
        r = ResourceMap(8)
        r.set_affinity(3, 5, 2.0)
        assert r.affinity(3, 5) == 2.0
        assert r.affinity(3, 4) == 0.0
        assert r.has_affinities(3)
        assert not r.has_affinities(4)

    def test_zero_removes(self):
        r = ResourceMap(8)
        r.set_affinity(3, 5, 2.0)
        r.set_affinity(3, 5, 0.0)
        assert not r.has_affinities(3)

    def test_validation(self):
        with pytest.raises(TaskError):
            ResourceMap(0)
        r = ResourceMap(4)
        with pytest.raises(TaskError):
            r.set_affinity(0, 4, 1.0)
        with pytest.raises(TaskError):
            r.set_affinity(0, 0, -1.0)

    def test_nodes_for(self):
        r = ResourceMap(8)
        r.set_affinity(1, 2, 1.0)
        r.set_affinity(1, 3, 2.0)
        assert r.nodes_for(1) == {2: 1.0, 3: 2.0}
        # returned dict is a copy
        r.nodes_for(1)[2] = 99.0
        assert r.affinity(1, 2) == 1.0

    def test_drop_task(self):
        r = ResourceMap(8)
        r.set_affinity(1, 2, 1.0)
        r.drop_task(1)
        assert not r.has_affinities(1)

    def test_to_dense(self):
        r = ResourceMap(3)
        r.set_affinity(0, 1, 2.0)
        r.set_affinity(2, 0, 1.0)
        dense = r.to_dense(3)
        assert dense.shape == (3, 3)
        assert dense[0, 1] == 2.0
        assert dense[2, 0] == 1.0
        assert dense.sum() == 3.0

    def test_satisfied_weight(self):
        r = ResourceMap(4)
        r.set_affinity(0, 1, 2.0)
        r.set_affinity(1, 3, 1.0)
        sat, tot = r.satisfied_weight({0: 1, 1: 0})
        assert tot == 3.0
        assert sat == 2.0
        sat, tot = r.satisfied_weight({0: 1, 1: 3})
        assert sat == 3.0
