"""Unit tests for repro.tasks.task.TaskSystem."""

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.tasks import TaskSystem


class TestCreation:
    def test_add_and_query(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(2.5, 3)
        assert s.n_tasks == 1
        assert s.load_of(tid) == 2.5
        assert s.location_of(tid) == 3
        assert s.node_loads[3] == 2.5
        assert s.total_load == 2.5

    def test_ids_sequential(self, mesh4):
        s = TaskSystem(mesh4)
        ids = [s.add_task(1.0, 0) for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_rejects_nonpositive_load(self, mesh4):
        s = TaskSystem(mesh4)
        with pytest.raises(TaskError):
            s.add_task(0.0, 0)
        with pytest.raises(TaskError):
            s.add_task(-1.0, 0)

    def test_rejects_bad_node(self, mesh4):
        s = TaskSystem(mesh4)
        with pytest.raises(TaskError):
            s.add_task(1.0, 16)
        with pytest.raises(TaskError):
            s.add_task(1.0, -1)

    def test_growth_beyond_initial_capacity(self, mesh4):
        s = TaskSystem(mesh4)
        for k in range(300):
            s.add_task(1.0, k % 16)
        assert s.n_tasks == 300
        assert s.total_load == pytest.approx(300.0)
        # node loads partition the total
        assert s.node_loads.sum() == pytest.approx(300.0)


class TestMoveRemove:
    def test_move_updates_everything(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(2.0, 0)
        s.move(tid, 1)
        assert s.location_of(tid) == 1
        assert s.node_loads[0] == 0.0
        assert s.node_loads[1] == 2.0
        assert s.total_moves == 1
        assert tid in s.tasks_at(1)
        assert tid not in s.tasks_at(0)

    def test_move_to_same_node_is_noop(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(1.0, 0)
        s.move(tid, 0)
        assert s.total_moves == 0

    def test_remove(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(3.0, 2)
        s.remove_task(tid)
        assert s.n_tasks == 0
        assert not s.is_alive(tid)
        assert s.node_loads[2] == 0.0
        assert s.n_created == 1

    def test_operations_on_dead_task_raise(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(1.0, 0)
        s.remove_task(tid)
        for op in (lambda: s.load_of(tid), lambda: s.location_of(tid),
                   lambda: s.move(tid, 1), lambda: s.remove_task(tid)):
            with pytest.raises(TaskError):
                op()

    def test_ids_not_reused(self, mesh4):
        s = TaskSystem(mesh4)
        a = s.add_task(1.0, 0)
        s.remove_task(a)
        b = s.add_task(1.0, 0)
        assert b != a


class TestAggregates:
    def test_node_loads_read_only(self, mesh4):
        s = TaskSystem(mesh4)
        s.add_task(1.0, 0)
        with pytest.raises(ValueError):
            s.node_loads[0] = 99.0

    def test_tasks_at_sorted(self, mesh4):
        s = TaskSystem(mesh4)
        ids = [s.add_task(1.0, 5) for _ in range(4)]
        np.testing.assert_array_equal(s.tasks_at(5), sorted(ids))

    def test_largest_tasks_at(self, mesh4):
        s = TaskSystem(mesh4)
        s.add_task(1.0, 0)
        big = s.add_task(5.0, 0)
        mid = s.add_task(3.0, 0)
        top2 = s.largest_tasks_at(0, 2)
        assert list(top2) == [big, mid]

    def test_largest_tasks_fewer_than_k(self, mesh4):
        s = TaskSystem(mesh4)
        a = s.add_task(2.0, 0)
        got = s.largest_tasks_at(0, 10)
        assert list(got) == [a]

    def test_largest_tasks_deterministic_ties(self, mesh4):
        s = TaskSystem(mesh4)
        ids = [s.add_task(1.0, 0) for _ in range(5)]
        got1 = list(s.largest_tasks_at(0, 3))
        got2 = list(s.largest_tasks_at(0, 3))
        assert got1 == got2
        assert set(got1) <= set(ids)

    def test_alive_ids_and_arrays(self, mesh4):
        s = TaskSystem(mesh4)
        a = s.add_task(1.0, 0)
        b = s.add_task(2.0, 1)
        s.remove_task(a)
        np.testing.assert_array_equal(s.alive_ids(), [b])
        np.testing.assert_allclose(s.loads_array(), [2.0])
        np.testing.assert_array_equal(s.locations_array(), [1])

    def test_snapshot_placement(self, mesh4):
        s = TaskSystem(mesh4)
        a = s.add_task(1.0, 0)
        b = s.add_task(1.0, 7)
        assert s.snapshot_placement() == {a: 0, b: 7}

    def test_load_conservation_under_random_ops(self, mesh4, rng):
        s = TaskSystem(mesh4)
        ids = [s.add_task(float(rng.uniform(0.5, 2.0)), int(rng.integers(16)))
               for _ in range(100)]
        for _ in range(500):
            tid = int(rng.choice(ids))
            if s.is_alive(tid):
                s.move(tid, int(rng.integers(16)))
        assert s.node_loads.sum() == pytest.approx(s.total_load)
        per_node = sum(s.node_loads[n] for n in range(16))
        assert per_node == pytest.approx(s.total_load)
