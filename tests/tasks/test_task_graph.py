"""Unit tests for repro.tasks.task_graph.TaskGraph."""

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.network import mesh
from repro.tasks import TaskGraph


class TestEdges:
    def test_set_and_get_symmetric(self):
        g = TaskGraph()
        g.set_dependency(1, 2, 3.0)
        assert g.weight(1, 2) == 3.0
        assert g.weight(2, 1) == 3.0
        assert g.n_edges == 1

    def test_missing_edge_is_zero(self):
        g = TaskGraph()
        assert g.weight(5, 9) == 0.0

    def test_zero_weight_deletes(self):
        g = TaskGraph()
        g.set_dependency(1, 2, 3.0)
        g.set_dependency(1, 2, 0.0)
        assert g.n_edges == 0
        assert g.weight(2, 1) == 0.0

    def test_self_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(TaskError):
            g.set_dependency(3, 3, 1.0)

    def test_negative_weight_rejected(self):
        g = TaskGraph()
        with pytest.raises(TaskError):
            g.set_dependency(0, 1, -0.5)

    def test_overwrite_keeps_count(self):
        g = TaskGraph()
        g.set_dependency(0, 1, 1.0)
        g.set_dependency(0, 1, 2.0)
        assert g.n_edges == 1
        assert g.weight(0, 1) == 2.0

    def test_bulk_add(self):
        g = TaskGraph()
        g.add_dependencies([(0, 1, 1.0), (1, 2, 2.0)])
        assert g.n_edges == 2

    def test_partners_sorted(self):
        g = TaskGraph()
        g.set_dependency(5, 9, 1.0)
        g.set_dependency(5, 2, 2.0)
        ids, ws = g.partners(5)
        np.testing.assert_array_equal(ids, [2, 9])
        np.testing.assert_allclose(ws, [2.0, 1.0])

    def test_partners_empty(self):
        g = TaskGraph()
        ids, ws = g.partners(7)
        assert ids.shape == (0,)
        assert ws.shape == (0,)

    def test_total_weight(self):
        g = TaskGraph()
        g.set_dependency(0, 1, 1.5)
        g.set_dependency(0, 2, 2.5)
        assert g.total_weight(0) == pytest.approx(4.0)
        assert g.total_weight(1) == pytest.approx(1.5)

    def test_drop_task(self):
        g = TaskGraph()
        g.set_dependency(0, 1, 1.0)
        g.set_dependency(0, 2, 1.0)
        g.set_dependency(1, 2, 1.0)
        g.drop_task(0)
        assert g.n_edges == 1
        assert g.weight(0, 1) == 0.0
        assert g.weight(1, 2) == 1.0

    def test_iter_edges_each_once(self):
        g = TaskGraph()
        g.set_dependency(0, 1, 1.0)
        g.set_dependency(2, 1, 2.0)
        edges = sorted(g.iter_edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0)]


class TestPlacementMetrics:
    def test_communication_cost(self):
        topo = mesh(4, 4)
        g = TaskGraph()
        g.set_dependency(0, 1, 2.0)  # weight 2
        hd = topo.hop_distances
        # same node: zero cost
        assert g.communication_cost({0: 5, 1: 5}, hd) == 0.0
        # adjacent nodes: 2 * 1
        assert g.communication_cost({0: 5, 1: 6}, hd) == 2.0
        # corner to corner: 2 * 6
        assert g.communication_cost({0: 0, 1: 15}, hd) == 12.0

    def test_communication_cost_skips_missing(self):
        topo = mesh(4, 4)
        g = TaskGraph()
        g.set_dependency(0, 1, 2.0)
        assert g.communication_cost({0: 5}, topo.hop_distances) == 0.0

    def test_colocated_fraction(self):
        topo = mesh(4, 4)
        g = TaskGraph()
        g.set_dependency(0, 1, 1.0)
        g.set_dependency(2, 3, 1.0)
        hd = topo.hop_distances
        loc = {0: 5, 1: 5, 2: 0, 3: 15}
        assert g.colocated_fraction(loc, hd, within_hops=0) == 0.5
        assert g.colocated_fraction(loc, hd, within_hops=6) == 1.0

    def test_colocated_fraction_vacuous(self):
        topo = mesh(2, 2)
        assert TaskGraph().colocated_fraction({}, topo.hop_distances) == 1.0
