"""TaskSystem.candidate_floor: the fast-path screen's per-node bound.

The floor must equal the smallest load among each node's k largest
resident tasks (+inf when empty), and — because it is maintained
incrementally through a dirty-node cache — it must stay exact under
every mutation: moves, additions, removals, and the transit wire.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import builders
from repro.tasks import TaskSystem


def reference_floor(system, k):
    """Brute-force floor straight from the public query API."""
    out = np.full(system.topology.n_nodes, np.inf)
    for node in range(system.topology.n_nodes):
        loads = sorted(
            (system.load_of(int(t)) for t in system.tasks_at(node)), reverse=True
        )
        if loads:
            out[node] = loads[: k][-1]
    return out


def test_floor_matches_reference_and_largest_tasks_at():
    topo = builders.mesh(3, 3)
    system = TaskSystem(topo)
    rng = np.random.default_rng(0)
    for _ in range(40):
        system.add_task(float(rng.uniform(0.1, 5.0)), int(rng.integers(9)))
    k = 4
    floors = system.candidate_floor(k)
    assert (floors == reference_floor(system, k)).all()
    for node in range(9):
        cand = system.largest_tasks_at(node, k)
        assert floors[node] == system.load_of(int(cand[-1]))


def test_empty_nodes_get_inf():
    topo = builders.mesh(2, 2)
    system = TaskSystem(topo)
    assert np.isinf(system.candidate_floor(3)).all()
    system.add_task(2.0, 1)
    floors = system.candidate_floor(3)
    assert floors[1] == 2.0
    assert np.isinf(floors[[0, 2, 3]]).all()


def test_cache_tracks_every_mutation_kind():
    topo = builders.mesh(2, 3)
    system = TaskSystem(topo)
    ids = [system.add_task(load, node)
           for load, node in [(3.0, 0), (1.0, 0), (2.0, 1), (5.0, 1), (0.5, 2)]]
    k = 2
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    system.move(ids[0], 3)  # move
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    system.remove_task(ids[3])  # removal
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    new = system.add_task(9.0, 2)  # addition
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    system.send_to_transit(new)  # wire: excluded while in flight
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    system.deliver(new, 4)  # landing
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()

    # Changing k rebuilds rather than reusing the stale cache.
    assert (system.candidate_floor(1) == reference_floor(system, 1)).all()


def test_returned_view_is_read_only():
    topo = builders.mesh(2, 2)
    system = TaskSystem(topo)
    system.add_task(1.0, 0)
    floors = system.candidate_floor(2)
    try:
        floors[0] = 0.0
        raise AssertionError("floor view should be read-only")
    except ValueError:
        pass


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_floor_stays_exact_under_random_mutation_streams(data):
    topo = builders.mesh(2, 3)
    system = TaskSystem(topo)
    k = data.draw(st.integers(min_value=1, max_value=5))
    alive: list[int] = []
    # Interleave queries with mutations so the dirty-cache path (not
    # just the initial full build) is what gets exercised.
    for step in range(data.draw(st.integers(min_value=5, max_value=25))):
        op = data.draw(st.sampled_from(["add", "move", "remove", "query"]))
        if op == "add" or not alive:
            load = data.draw(st.floats(min_value=0.1, max_value=10.0,
                                       allow_nan=False))
            alive.append(system.add_task(load, data.draw(st.integers(0, 5))))
        elif op == "move":
            system.move(data.draw(st.sampled_from(alive)),
                        data.draw(st.integers(0, 5)))
        elif op == "remove":
            tid = data.draw(st.sampled_from(alive))
            alive.remove(tid)
            system.remove_task(tid)
        else:
            assert (system.candidate_floor(k) == reference_floor(system, k)).all()
    assert (system.candidate_floor(k) == reference_floor(system, k)).all()
