"""Property-based tests for TaskSystem and TaskGraph invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import mesh
from repro.tasks import TaskGraph, TaskSystem

_SETTINGS = dict(max_examples=40, deadline=None)


@settings(**_SETTINGS)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 15), st.floats(0.1, 5.0)),
        min_size=1,
        max_size=120,
    )
)
def test_task_system_accounting_invariants(ops):
    """Random add/move/remove/transit sequences keep every aggregate exact."""
    topo = mesh(4, 4)
    s = TaskSystem(topo)
    ids: list[int] = []
    for op, node, size in ops:
        if op == 0 or not ids:  # add
            ids.append(s.add_task(size, node))
        elif op == 1:  # move (if possible)
            tid = ids[node % len(ids)]
            if s.is_alive(tid) and not s.in_transit(tid):
                s.move(tid, node)
        elif op == 2:  # remove
            tid = ids[node % len(ids)]
            if s.is_alive(tid):
                s.remove_task(tid)
        elif op == 3:  # send to wire
            tid = ids[node % len(ids)]
            if s.is_alive(tid) and not s.in_transit(tid):
                s.send_to_transit(tid)
        else:  # deliver from wire
            tid = ids[node % len(ids)]
            if s.is_alive(tid) and s.in_transit(tid):
                s.deliver(tid, node)

    # Invariant: aggregates equal a from-scratch recomputation.
    expected_nodes = np.zeros(16)
    expected_wire = 0.0
    n_alive = 0
    for tid in ids:
        if not s.is_alive(tid):
            continue
        n_alive += 1
        if s.in_transit(tid):
            expected_wire += s.load_of(tid)
        else:
            expected_nodes[s.location_of(tid)] += s.load_of(tid)
    np.testing.assert_allclose(s.node_loads, expected_nodes, atol=1e-9)
    assert s.wire_load == pytest.approx(expected_wire)
    assert s.n_tasks == n_alive
    assert s.total_load == pytest.approx(expected_nodes.sum() + expected_wire)
    # per-node task sets are consistent with locations
    for node in range(16):
        for tid in s.tasks_at(node):
            assert s.location_of(int(tid)) == node


@settings(**_SETTINGS)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12), st.floats(0.0, 3.0)),
        max_size=60,
    )
)
def test_task_graph_symmetry_and_count(edges):
    g = TaskGraph()
    reference: dict[tuple[int, int], float] = {}
    for i, j, w in edges:
        if i == j:
            continue
        g.set_dependency(i, j, w)
        key = (min(i, j), max(i, j))
        if w == 0:
            reference.pop(key, None)
        else:
            reference[key] = w
    assert g.n_edges == len(reference)
    for (i, j), w in reference.items():
        assert g.weight(i, j) == w
        assert g.weight(j, i) == w
    listed = {(i, j): w for i, j, w in g.iter_edges()}
    assert listed == reference
    # total_weight equals the row sums of the reference
    for tid in {t for pair in reference for t in pair}:
        expected = sum(w for (a, b), w in reference.items() if tid in (a, b))
        assert g.total_weight(tid) == pytest.approx(expected)
