"""Unit tests for repro.tasks.generators."""

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.tasks import (
    TaskSystem,
    fork_join_tasks,
    independent_tasks,
    load_sizes,
    pipeline_tasks,
    random_dag_tasks,
)
from repro.tasks.generators import place_all_on, place_round_robin


class TestLoadSizes:
    @pytest.mark.parametrize(
        "dist", ["uniform", "exponential", "constant", "bimodal", "pareto"]
    )
    def test_positive_and_count(self, dist):
        s = load_sizes(200, rng=0, distribution=dist, mean=2.0, spread=0.4)
        assert s.shape == (200,)
        assert (s > 0).all()

    def test_constant(self):
        np.testing.assert_allclose(load_sizes(5, distribution="constant", mean=3.0), 3.0)

    def test_mean_roughly_respected(self):
        s = load_sizes(5000, rng=0, distribution="uniform", mean=2.0, spread=0.5)
        assert s.mean() == pytest.approx(2.0, rel=0.05)

    def test_bimodal_two_modes(self):
        s = load_sizes(100, rng=0, distribution="bimodal", mean=1.0, spread=0.5)
        assert set(np.round(s, 6)) == {0.5, 1.5}

    def test_validation(self):
        with pytest.raises(TaskError):
            load_sizes(-1)
        with pytest.raises(TaskError):
            load_sizes(5, mean=0.0)
        with pytest.raises(TaskError):
            load_sizes(5, spread=1.0)
        with pytest.raises(TaskError):
            load_sizes(5, distribution="zipf")
        with pytest.raises(TaskError):
            load_sizes(5, distribution="pareto", alpha=1.0)

    def test_pareto_mean_and_heavy_tail(self):
        s = load_sizes(20000, rng=0, distribution="pareto", mean=2.0, alpha=2.5)
        assert s.mean() == pytest.approx(2.0, rel=0.1)
        assert s.max() > 10 * np.median(s)
        assert s.min() > 0

    def test_deterministic(self):
        a = load_sizes(50, rng=7)
        b = load_sizes(50, rng=7)
        np.testing.assert_allclose(a, b)


class TestPlacementHelpers:
    def test_round_robin(self):
        fn = place_round_robin([3, 5, 7])
        assert [fn(k) for k in range(5)] == [3, 5, 7, 3, 5]

    def test_round_robin_empty(self):
        with pytest.raises(TaskError):
            place_round_robin([])

    def test_all_on(self):
        fn = place_all_on(4)
        assert fn(0) == 4 and fn(99) == 4


class TestStructuredGenerators:
    def test_independent(self, mesh4):
        s = TaskSystem(mesh4)
        ids, g = independent_tasks(s, 10, place_all_on(0), rng=0)
        assert len(ids) == 10
        assert g.n_edges == 0
        assert s.n_tasks == 10

    def test_pipeline_structure(self, mesh4):
        s = TaskSystem(mesh4)
        ids, g = pipeline_tasks(s, n_chains=3, chain_length=4,
                                placement=place_round_robin(range(16)), rng=0)
        assert len(ids) == 12
        assert g.n_edges == 3 * 3  # (chain_length-1) per chain
        # consecutive stages linked, chains not cross-linked
        assert g.weight(ids[0], ids[1]) > 0
        assert g.weight(ids[3], ids[4]) == 0.0

    def test_fork_join_structure(self, mesh4):
        s = TaskSystem(mesh4)
        ids, g = fork_join_tasks(s, width=3, depth=2,
                                 placement=place_all_on(0), rng=0)
        assert len(ids) == 6
        assert g.n_edges == 9  # dense 3x3 coupling between the two layers
        assert g.weight(ids[0], ids[3]) > 0
        assert g.weight(ids[0], ids[1]) == 0.0  # same layer: no edge

    def test_random_dag_edge_prob(self, mesh4):
        s = TaskSystem(mesh4)
        ids, g = random_dag_tasks(s, 40, place_all_on(0), rng=0, edge_prob=0.1)
        possible = 40 * 39 // 2
        assert 0 < g.n_edges < possible * 0.3

    def test_random_dag_zero_prob(self, mesh4):
        s = TaskSystem(mesh4)
        _ids, g = random_dag_tasks(s, 10, place_all_on(0), rng=0, edge_prob=0.0)
        assert g.n_edges == 0

    def test_validation(self, mesh4):
        s = TaskSystem(mesh4)
        with pytest.raises(TaskError):
            pipeline_tasks(s, 0, 3, place_all_on(0))
        with pytest.raises(TaskError):
            fork_join_tasks(s, 3, 0, place_all_on(0))
        with pytest.raises(TaskError):
            random_dag_tasks(s, 5, place_all_on(0), edge_prob=1.5)
