"""Unit tests for repro.analysis.convergence."""

import numpy as np
import pytest

from repro.analysis import fit_convergence_rate, rounds_to_fraction
from repro.analysis.convergence import spectral_gamma
from repro.baselines import FluidDiffusion, optimal_alpha
from repro.exceptions import ConvergenceError
from repro.network import mesh
from repro.sim import FluidSimulator


class TestRoundsToFraction:
    def test_basic(self):
        s = np.array([100.0, 50.0, 10.0, 5.0, 1.0])
        assert rounds_to_fraction(s, 0.05) == 3  # 5.0 <= 100*0.05
        assert rounds_to_fraction(s, 0.04) == 4
        assert rounds_to_fraction(s, 0.5) == 1

    def test_never_reaches(self):
        assert rounds_to_fraction(np.array([10.0, 9.0]), 0.05) is None

    def test_starts_at_zero(self):
        assert rounds_to_fraction(np.array([0.0, 1.0]), 0.1) == 0

    def test_validation(self):
        with pytest.raises(ConvergenceError):
            rounds_to_fraction(np.array([]), 0.1)
        with pytest.raises(ConvergenceError):
            rounds_to_fraction(np.array([1.0]), 1.5)


class TestRateFit:
    def test_exact_geometric(self):
        gamma = 0.8
        s = 100.0 * gamma ** np.arange(50)
        g, a = fit_convergence_rate(s)
        assert g == pytest.approx(gamma, rel=1e-6)
        assert a == pytest.approx(100.0, rel=1e-6)

    def test_ignores_bottomed_out_tail(self):
        s = np.concatenate([100.0 * 0.5 ** np.arange(20), np.zeros(30)])
        g, _ = fit_convergence_rate(s)
        assert g == pytest.approx(0.5, rel=1e-6)

    def test_too_few_points(self):
        with pytest.raises(ConvergenceError):
            fit_convergence_rate(np.array([1.0, 0.0]))

    def test_measured_diffusion_matches_spectral_prediction(self):
        topo = mesh(4, 4)
        alpha = optimal_alpha(topo)
        predicted = spectral_gamma(topo.laplacian, alpha)
        h0 = np.zeros(16)
        h0[0] = 160.0
        sim = FluidSimulator(topo, h0, FluidDiffusion("optimal"))
        res = sim.run(max_rounds=300)
        # CoV decays at the subdominant eigenvalue rate (asymptotically).
        series = res.series("cov")[20:150]
        g, _ = fit_convergence_rate(series)
        assert g == pytest.approx(predicted, abs=0.05)
