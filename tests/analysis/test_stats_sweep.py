"""Unit tests for repro.analysis.stats and repro.analysis.sweep."""

import pytest

from repro.analysis import mean_ci, run_sweep, summarize_runs
from repro.exceptions import ConfigurationError
from repro.sim import RoundRecord, SimulationResult


class TestMeanCI:
    def test_single_value(self):
        m, ci = mean_ci([3.0])
        assert m == 3.0 and ci == 0.0

    def test_identical_values(self):
        m, ci = mean_ci([2.0, 2.0, 2.0])
        assert m == 2.0 and ci == 0.0

    def test_symmetric_values(self):
        m, ci = mean_ci([1.0, 3.0])
        assert m == 2.0
        assert ci > 0

    def test_ci_shrinks_with_n(self):
        import numpy as np

        rng = np.random.default_rng(0)
        small = mean_ci(rng.normal(0, 1, 5).tolist())[1]
        large = mean_ci(rng.normal(0, 1, 500).tolist())[1]
        assert large < small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_ci([])
        with pytest.raises(ConfigurationError):
            mean_ci([1.0], confidence=1.5)


def _fake_run(name="algo", cov=0.1, rounds=10, converged=5):
    res = SimulationResult(balancer_name=name)
    for r in range(rounds):
        res.records.append(
            RoundRecord(r, 1, 1.0, 0.5, cov, cov * 10, 1.0, 0.0)
        )
    res.converged_round = converged
    res.initial_summary = {"cov": 1.0, "spread": 10.0}
    res.final_summary = {"cov": cov, "spread": cov * 10}
    return res


class TestSummarizeRuns:
    def test_aggregates(self):
        row = summarize_runs([_fake_run(cov=0.1), _fake_run(cov=0.2)])
        assert row["algorithm"] == "algo"
        assert row["n_runs"] == 2
        assert row["converged"] == "2/2"
        assert "±" in row["final_cov"]

    def test_rejects_mixed_algorithms(self):
        with pytest.raises(ConfigurationError):
            summarize_runs([_fake_run("a"), _fake_run("b")])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_runs([])

    def test_unconverged_marked(self):
        row = summarize_runs([_fake_run(converged=None)])
        assert row["converged"] == "0/1"
        assert row["converged_round"] == "—"


class TestRunSweep:
    def test_grid_and_aggregation(self):
        def experiment(value, seed):
            return {"metric": float(value) * 2.0, "noise": float(seed % 7)}

        res = run_sweep("knob", [1, 2, 3], experiment, repetitions=3, base_seed=0)
        assert res.points == [1, 2, 3]
        assert res.series("metric") == [2.0, 4.0, 6.0]
        assert len(res.raw) == 3
        assert all(len(r) == 3 for r in res.raw)
        assert "metric_ci" in res.rows[0]

    def test_deterministic_seeding(self):
        seen = {}

        def experiment(value, seed):
            seen.setdefault(value, []).append(seed)
            return {"m": 0.0}

        run_sweep("k", [1, 2], experiment, repetitions=2, base_seed=9)
        first = dict(seen)
        seen.clear()
        run_sweep("k", [1, 2], experiment, repetitions=2, base_seed=9)
        assert seen == first
        # distinct seeds across (point, repetition) pairs
        all_seeds = [s for v in first.values() for s in v]
        assert len(set(all_seeds)) == len(all_seeds)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_sweep("k", [], lambda v, s: {"m": 0.0})
        with pytest.raises(ConfigurationError):
            run_sweep("k", [1], lambda v, s: {"m": 0.0}, repetitions=0)
        with pytest.raises(ConfigurationError):
            run_sweep("k", [1], lambda v, s: {})
