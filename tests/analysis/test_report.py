"""Unit tests for repro.analysis.report."""

import pytest

from repro.analysis.report import build_report, collect_results, write_report
from repro.exceptions import ConfigurationError


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "E1_convergence.txt").write_text("E1 table\nrow\n")
    (tmp_path / "T1_table1.txt").write_text("T1 table\n")
    (tmp_path / "X9_custom.txt").write_text("custom experiment\n")
    return tmp_path


class TestCollect:
    def test_reads_all(self, results_dir):
        res = collect_results(results_dir)
        assert set(res) == {"E1_convergence", "T1_table1", "X9_custom"}
        assert res["T1_table1"] == "T1 table"

    def test_missing_dir(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect_results(tmp_path / "nope")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect_results(tmp_path)


class TestBuild:
    def test_canonical_order_then_extras(self, results_dir):
        report = build_report(collect_results(results_dir))
        assert report.index("T1 table") < report.index("E1 table")
        assert report.index("E1 table") < report.index("custom experiment")

    def test_reports_missing_experiments(self, results_dir):
        report = build_report(collect_results(results_dir))
        assert "missing:" in report
        assert "E2_topologies" in report  # listed as missing

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            build_report({})


class TestWrite:
    def test_writes_file(self, results_dir, tmp_path):
        out = tmp_path / "report.txt"
        text = write_report(results_dir, out)
        assert out.read_text().rstrip("\n") == text.rstrip("\n")

    def test_cli_report_command(self, results_dir, capsys):
        from repro.cli import main

        rc = main(["report", "--results-dir", str(results_dir)])
        assert rc == 0
        assert "T1 table" in capsys.readouterr().out
