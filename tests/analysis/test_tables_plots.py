"""Unit tests for repro.analysis.tables and repro.analysis.plots."""

import pytest

from repro.analysis import ascii_plot, format_table
from repro.exceptions import ConfigurationError


class TestFormatTable:
    def test_basic_render(self):
        out = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert lines[1].startswith("| a")
        assert "22" in out and "yy" in out
        # all rows equal width
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_title_and_column_order(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b", "a"], title="T1")
        assert out.splitlines()[0] == "T1"
        header = out.splitlines()[2]
        assert header.index("b") < header.index("a")

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in out

    def test_truncation(self):
        out = format_table([{"a": "z" * 200}], max_col_width=10)
        assert "…" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            format_table([])


class TestAsciiPlot:
    def test_basic_plot_contains_markers_and_legend(self):
        out = ascii_plot({"one": [1, 2, 3], "two": [3, 2, 1]})
        assert "*" in out and "o" in out
        assert "one" in out and "two" in out

    def test_logy_handles_zeros(self):
        out = ascii_plot({"s": [100.0, 1.0, 0.0]}, logy=True)
        assert "s" in out

    def test_constant_series(self):
        out = ascii_plot({"c": [5.0, 5.0, 5.0]})
        assert "c" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": []})
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": [1.0]}, width=4)
