"""The streaming columnar sink and the metric-level (keep_results=False)
fast path: spec-order reads, JSONL durability, and bit-identical
aggregation against the full-result path."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runner import (
    METRIC_FIELDS,
    ColumnarResultLog,
    PoolBackend,
    ResultCache,
    default_metrics,
    expand_grid,
    outcomes_to_sweep,
    run_grid,
)


def tiny_grid():
    return expand_grid(
        ["mesh-hotspot", "mesh-random"],
        ["pplb", "diffusion"],
        [11, 22],
        max_rounds=40,
        scenario_kwargs={"side": 4, "n_tasks": 64},
        engine="rounds-fast",
        recorder="summary",
    )


class TestSinkCollection:
    def test_rows_match_outcomes_in_spec_order(self):
        specs = tiny_grid()
        sink = ColumnarResultLog()
        outcomes = run_grid(specs, sink=sink)
        assert len(sink) == len(specs)
        rows = sink.rows()
        for i, (row, outcome) in enumerate(zip(rows, outcomes)):
            assert row["index"] == i
            assert row["scenario"] == outcome.spec.scenario
            assert row["algorithm"] == outcome.spec.algorithm
            assert row["seed"] == outcome.spec.seed
            assert row["key"] == outcome.key
            expected = default_metrics(outcome.result)
            for name in METRIC_FIELDS:
                assert row[name] == expected[name]

    def test_spec_order_restored_after_parallel_completion(self):
        specs = tiny_grid()
        sink = ColumnarResultLog()
        backend = PoolBackend(workers=2, chunk_size=1)
        try:
            outcomes = run_grid(specs, backend=backend, sink=sink)
        finally:
            backend.close()
        cov = sink.column("final_cov")
        expected = np.array(
            [default_metrics(o.result)["final_cov"] for o in outcomes]
        )
        np.testing.assert_array_equal(cov, expected)

    def test_column_unknown_name_rejected(self):
        sink = ColumnarResultLog()
        with pytest.raises(ConfigurationError, match="unknown sink column"):
            sink.column("latency")

    def test_growth_beyond_min_capacity(self):
        from repro.runner.spec import RunSpec

        sink = ColumnarResultLog()
        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb")
        metrics = {name: 1.0 for name in METRIC_FIELDS}
        for i in range(200):
            sink.append(index=i, spec=spec, key=f"k{i}", cached=False,
                        metrics=metrics)
        assert len(sink) == 200
        assert sink.column("rounds").shape == (200,)

    def test_missing_metric_fields_rejected(self):
        from repro.runner.spec import RunSpec

        sink = ColumnarResultLog()
        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb")
        with pytest.raises(ConfigurationError, match="missing fields"):
            sink.append(index=0, spec=spec, key="k", cached=False,
                        metrics={"final_cov": 1.0})


class TestSinkStreaming:
    def test_jsonl_round_trip(self, tmp_path):
        specs = tiny_grid()
        log_path = tmp_path / "results.jsonl"
        with ColumnarResultLog(log_path) as sink:
            run_grid(specs, sink=sink)
        lines = log_path.read_text().splitlines()
        assert len(lines) == len(specs)
        assert all(json.loads(line)["key"] for line in lines)

        loaded = ColumnarResultLog.load(log_path)
        assert loaded.rows() == sink.rows()

    def test_load_skips_torn_trailing_line(self, tmp_path):
        specs = tiny_grid()[:3]
        log_path = tmp_path / "results.jsonl"
        with ColumnarResultLog(log_path) as sink:
            run_grid(specs, sink=sink)
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write('{"index": 99, "scenario"')  # killed mid-write
        loaded = ColumnarResultLog.load(log_path)
        assert len(loaded) == 3

    def test_cached_replay_also_streams(self, tmp_path):
        specs = tiny_grid()
        cache = ResultCache(tmp_path / "cache")
        run_grid(specs, cache=cache)
        sink = ColumnarResultLog(tmp_path / "replay.jsonl")
        with sink:
            outcomes = run_grid(specs, cache=cache, sink=sink)
        assert all(o.cached for o in outcomes)
        assert len(sink) == len(specs)
        assert all(row["cached"] for row in sink.rows())


class TestSlimOutcomes:
    def test_keep_results_false_matches_full_metrics(self, tmp_path):
        specs = tiny_grid()
        cache = ResultCache(tmp_path / "cache")
        full = run_grid(specs, cache=cache)
        slim = run_grid(specs, cache=cache, keep_results=False)
        assert all(o.result is None for o in slim)
        assert all(o.cached for o in slim)
        for full_o, slim_o in zip(full, slim):
            assert slim_o.metrics == default_metrics(full_o.result)

    def test_fresh_run_keep_results_false(self):
        specs = tiny_grid()[:2]
        slim = run_grid(specs, keep_results=False)
        assert all(o.result is None and not o.cached for o in slim)
        assert all(set(o.metrics) == set(METRIC_FIELDS) for o in slim)

    def test_sweep_bit_identical_full_vs_slim(self, tmp_path):
        """The acceptance differential: outcomes_to_sweep over slim
        outcomes produces a bit-identical SweepResult."""
        specs = tiny_grid()
        cache = ResultCache(tmp_path / "cache")
        full = run_grid(specs, cache=cache)
        slim = run_grid(specs, cache=cache, keep_results=False)
        sweep_full = outcomes_to_sweep("algorithm", full)
        sweep_slim = outcomes_to_sweep("algorithm", slim)
        assert sweep_full.rows == sweep_slim.rows
        assert sweep_full.points == sweep_slim.points
        assert json.dumps(sweep_full.rows, sort_keys=True) == json.dumps(
            sweep_slim.rows, sort_keys=True
        )

    def test_unindexed_hits_fall_back_to_payload(self, tmp_path):
        specs = tiny_grid()[:4]
        cache = ResultCache(tmp_path / "cache")
        run_grid(specs, cache=cache)
        cache.index_path.unlink()  # pre-index cache from an older run
        fresh = ResultCache(cache.root)
        slim = run_grid(specs, cache=fresh, keep_results=False)
        assert all(o.cached and o.metrics is not None for o in slim)

    def test_row_rejected_on_slim_outcome(self):
        specs = tiny_grid()[:1]
        [slim] = run_grid(specs, keep_results=False)
        with pytest.raises(ConfigurationError, match="keep_results"):
            slim.row()

    def test_custom_metrics_of_rejected_on_slim(self, tmp_path):
        specs = tiny_grid()[:2]
        cache = ResultCache(tmp_path / "cache")
        run_grid(specs, cache=cache)
        slim = run_grid(specs, cache=cache, keep_results=False)
        with pytest.raises(ConfigurationError, match="keep_results"):
            outcomes_to_sweep(
                "algorithm", slim,
                metrics_of=lambda r: {"x": float(r.final_cov)},
            )
