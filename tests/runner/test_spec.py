"""Unit tests for RunSpec identity, grid expansion and seed derivation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.rng import seed_for
from repro.runner import RunSpec, expand_grid, grid_seeds


class TestRunSpec:
    def test_roundtrip(self):
        spec = RunSpec(
            scenario="mesh-hotspot",
            algorithm="pplb",
            seed=7,
            max_rounds=123,
            scenario_kwargs={"side": 4},
            algorithm_kwargs={"mu_k_base": 0.5},
            sim_kwargs={"transfer_latency": 2},
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_key_is_stable_and_content_addressed(self):
        a = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=1)
        b = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=1)
        assert a.key() == b.key()
        assert len(a.key()) == 64  # sha256 hex

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 2},
            {"algorithm": "diffusion"},
            {"scenario": "torus-hotspot"},
            {"max_rounds": 99},
            {"scenario_kwargs": {"side": 4}},
            {"algorithm_kwargs": {"beta0": 0.5}},
            {"sim_kwargs": {"link_capacity": 2}},
            {"engine": "events"},
            {"engine": "rounds-fast"},
            {"engine": "events-fast"},
            {"recorder": "summary"},
            {"recorder": "thin:5"},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        base = dict(scenario="mesh-hotspot", algorithm="pplb", seed=1)
        assert RunSpec(**base).key() != RunSpec(**{**base, **change}).key()

    def test_engine_defaults_to_rounds_and_roundtrips(self):
        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb")
        assert spec.engine == "rounds"
        # Pre-engine payloads (older caches/exports) rebuild as rounds.
        legacy = spec.to_dict()
        del legacy["engine"]
        assert RunSpec.from_dict(legacy).engine == "rounds"
        ev = RunSpec(scenario="mesh-hotspot", algorithm="pplb", engine="events")
        assert RunSpec.from_dict(ev.to_dict()) == ev

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="engine"):
            RunSpec(scenario="mesh-hotspot", algorithm="pplb", engine="warp")

    def test_recorder_defaults_to_full_and_roundtrips(self):
        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb")
        assert spec.recorder == "full"
        thin = RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                       recorder="thin:10")
        assert RunSpec.from_dict(thin.to_dict()) == thin
        # The canonical spec string is normalised for key stability.
        padded = RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                         recorder="thin:010")
        assert padded.recorder == "thin:10"
        assert padded.key() == thin.key()

    def test_rejects_unknown_recorder(self):
        with pytest.raises(ConfigurationError, match="recorder"):
            RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                    recorder="verbose")

    def test_summary_spec_executes_with_exact_totals(self):
        from repro.runner import execute_spec

        base = dict(scenario="mesh-hotspot", algorithm="diffusion", seed=6,
                    max_rounds=40, scenario_kwargs={"side": 5, "n_tasks": 75})
        full = execute_spec(RunSpec(**base, recorder="full"))
        summary = execute_spec(RunSpec(**base, recorder="summary"))
        assert len(summary.records) == 0
        assert summary.n_rounds == full.n_rounds
        assert summary.total_migrations == full.total_migrations
        assert summary.final_summary == full.final_summary

    def test_rounds_fast_engine_dispatches_and_matches_rounds(self):
        # The spec level of the equivalence anchor: executing the same
        # content through "rounds-fast" reproduces "rounds" exactly,
        # while the cache keys stay distinct.
        from repro.runner import execute_spec

        base = dict(scenario="mesh-hotspot", algorithm="pplb", seed=4,
                    max_rounds=40, scenario_kwargs={"side": 5, "n_tasks": 100})
        rounds = RunSpec(**base, engine="rounds")
        fast = RunSpec(**base, engine="rounds-fast")
        assert rounds.key() != fast.key()
        a = execute_spec(rounds).to_dict()
        b = execute_spec(fast).to_dict()
        a.pop("wall_time_s")
        b.pop("wall_time_s")
        assert a == b

    def test_events_fast_engine_dispatches_and_matches_events(self):
        # Same anchor for the async pair: "events-fast" reproduces
        # "events" exactly through the spec layer, with distinct keys.
        from repro.runner import execute_spec

        base = dict(scenario="torus-hotspot", algorithm="pplb", seed=4,
                    max_rounds=40, scenario_kwargs={"side": 5, "n_tasks": 100},
                    sim_kwargs={"wake_jitter": 0.25})
        events = RunSpec(**base, engine="events")
        fast = RunSpec(**base, engine="events-fast")
        assert events.key() != fast.key()
        a = execute_spec(events).to_dict()
        b = execute_spec(fast).to_dict()
        a.pop("wall_time_s")
        b.pop("wall_time_s")
        assert a == b

    def test_key_covers_library_version(self, monkeypatch):
        # Cached results must not survive a code-version bump.
        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=1)
        before = spec.key()
        monkeypatch.setattr("repro.__version__", "0.0.0-test")
        assert spec.key() != before

    def test_kwarg_order_is_canonicalized(self):
        a = RunSpec("mesh-hotspot", "pplb", scenario_kwargs={"side": 4, "n_tasks": 32})
        b = RunSpec("mesh-hotspot", "pplb", scenario_kwargs={"n_tasks": 32, "side": 4})
        assert a.key() == b.key()

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            RunSpec(scenario="nope", algorithm="pplb")
        with pytest.raises(ConfigurationError):
            RunSpec(scenario="mesh-hotspot", algorithm="nope")
        with pytest.raises(ConfigurationError):
            RunSpec(scenario="mesh-hotspot", algorithm="pplb", max_rounds=0)

    def test_rejects_typoed_scenario_kwargs(self):
        # Builders silently ignore unknown kwargs, so the spec layer
        # must catch typos ('n_task') before they poison the cache.
        with pytest.raises(ConfigurationError, match="n_task"):
            RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                    scenario_kwargs={"n_task": 64})
        # Sharing another scenario's size kwarg across a grid is fine.
        RunSpec(scenario="mesh-hotspot", algorithm="pplb",
                scenario_kwargs={"dim": 4, "side": 8})


class TestComposedScenarios:
    def test_composed_string_canonicalizes_in_the_spec(self):
        spec = RunSpec(scenario="stragglers:frac=0.1+mesh:16x16+hotspot",
                       algorithm="pplb")
        assert spec.scenario == "mesh:side=16+hotspot+stragglers:frac=0.1"

    def test_equivalent_spellings_share_a_cache_key(self):
        a = RunSpec(scenario="mesh:16x16+hotspot+diurnal", algorithm="pplb")
        b = RunSpec(scenario="diurnal+hotspot+mesh:side=16", algorithm="pplb")
        assert a.key() == b.key()

    def test_composed_spec_roundtrips(self):
        spec = RunSpec(
            scenario="torus:6+clustered+fault-storm:frac=0.2+tiered",
            algorithm="diffusion", seed=3, engine="rounds-fast",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_composed_spec_roundtrips_through_the_result_cache(self, tmp_path):
        from repro.runner import ResultCache, run_grid

        spec = RunSpec(scenario="mesh:5+power-law+replay:horizon=20",
                       algorithm="diffusion", seed=2, max_rounds=10)
        cache = ResultCache(tmp_path / "cache")
        first = run_grid([spec], cache=cache)[0]
        again = run_grid([spec], cache=cache)[0]
        assert not first.cached and again.cached
        a, b = first.result.to_dict(), again.result.to_dict()
        a.pop("wall_time_s")
        b.pop("wall_time_s")
        assert a == b

    def test_composed_kwargs_validate_per_component(self):
        with pytest.raises(ConfigurationError, match="accepted per component"):
            RunSpec(scenario="mesh:4+uniform", algorithm="pplb",
                    scenario_kwargs={"n_task": 64})
        # Routed overrides are fine (side -> topology, n_tasks -> placement).
        RunSpec(scenario="mesh:4+uniform", algorithm="pplb",
                scenario_kwargs={"side": 8, "n_tasks": 64})

    def test_unparsable_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(scenario="mesh:4+warp-drive", algorithm="pplb")


class TestFluidEngine:
    def test_fluid_requires_fluid_algorithm(self):
        with pytest.raises(ConfigurationError, match="divisible-load"):
            RunSpec(scenario="mesh-hotspot", algorithm="pplb", engine="fluid")

    def test_fluid_algorithms_rejected_on_task_engines(self):
        with pytest.raises(ConfigurationError, match="engine='fluid'"):
            RunSpec(scenario="mesh-hotspot", algorithm="fluid-diffusion")

    def test_fluid_spec_executes_and_hashes_distinctly(self):
        from repro.runner import execute_spec

        spec = RunSpec(scenario="mesh-hotspot", algorithm="fluid-diffusion",
                       engine="fluid", max_rounds=30,
                       scenario_kwargs={"side": 5})
        other = RunSpec(scenario="mesh-hotspot", algorithm="fluid-sos",
                        engine="fluid", max_rounds=30,
                        scenario_kwargs={"side": 5})
        assert spec.key() != other.key()
        result = execute_spec(spec)
        assert result.n_rounds >= 1
        # Diffusion on a hotspot strictly reduces imbalance.
        assert result.final_cov < result.records[0].cov


class TestGrid:
    def test_expand_grid_order_and_size(self):
        specs = expand_grid(
            ["mesh-hotspot", "torus-hotspot"], ["pplb", "diffusion"], [1, 2]
        )
        assert len(specs) == 8
        # scenario-major, then algorithm, then seed
        assert [ (s.scenario, s.algorithm, s.seed) for s in specs[:3] ] == [
            ("mesh-hotspot", "pplb", 1),
            ("mesh-hotspot", "pplb", 2),
            ("mesh-hotspot", "diffusion", 1),
        ]

    def test_expand_grid_rejects_empty_axes(self):
        with pytest.raises(ConfigurationError):
            expand_grid([], ["pplb"], [0])
        with pytest.raises(ConfigurationError):
            expand_grid(["mesh-hotspot"], ["pplb"], [])

    def test_grid_seeds_match_sweep_discipline(self):
        # Same derivation as the sweep harness: extending never perturbs.
        assert grid_seeds(3) == [seed_for(0, i) for i in range(3)]
        assert grid_seeds(5)[:3] == grid_seeds(3)

    def test_grid_seeds_depend_on_base(self):
        assert grid_seeds(3, base_seed=0) != grid_seeds(3, base_seed=1)
        with pytest.raises(ConfigurationError):
            grid_seeds(0)
