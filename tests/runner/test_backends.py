"""Execution backends: serial/pool/cached differential equivalence,
persistent-pool reuse, chunking, the env override, and fail-fast."""

import json
import os

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import (
    BACKENDS,
    PoolBackend,
    ResultCache,
    RunnerMetrics,
    SerialBackend,
    expand_grid,
    make_backend,
    resolve_backend,
    resolve_workers,
    run_grid,
)
from repro.runner.backends import _shared


def composed_grid():
    """8 fast specs on a *composed* scenario (dynamics + stragglers),
    so the differential covers the component pipeline, not just the
    registered aliases."""
    return expand_grid(
        ["mesh:4x4+hotspot+stragglers:frac=0.2", "mesh:4x4+uniform+churn"],
        ["pplb", "diffusion"],
        [11, 22],
        max_rounds=60,
        scenario_kwargs={"n_tasks": 64},
    )


def deterministic_payloads(outcomes):
    out = []
    for o in outcomes:
        payload = o.result.to_dict()
        payload.pop("wall_time_s")
        out.append(payload)
    return out


def _square(x):
    return x * x


def _boom(x):
    if x == 5:
        raise ValueError("task 5 exploded")
    return x


class TestBackendEquivalence:
    def test_serial_pool_cached_identical(self, tmp_path):
        """The tentpole differential: serial ≡ pool ≡ cached replay,
        bit-identical SweepResult-grade payloads on a composed grid."""
        specs = composed_grid()
        cache = ResultCache(tmp_path)
        serial = run_grid(specs, backend=SerialBackend())
        pool_backend = PoolBackend(workers=2)
        try:
            pooled = run_grid(specs, backend=pool_backend, cache=cache)
        finally:
            pool_backend.close()
        cached = run_grid(specs, cache=cache)
        assert all(not o.cached for o in serial)
        assert all(not o.cached for o in pooled)
        assert all(o.cached for o in cached)
        reference = json.dumps(deterministic_payloads(serial))
        assert reference == json.dumps(deterministic_payloads(pooled))
        assert reference == json.dumps(deterministic_payloads(cached))

    def test_explicit_names_match_default_path(self):
        specs = composed_grid()[:2]
        by_name = run_grid(specs, backend="serial")
        by_default = run_grid(specs)
        assert json.dumps(deterministic_payloads(by_name)) == json.dumps(
            deterministic_payloads(by_default)
        )


class TestPoolPersistence:
    def test_pool_reused_across_run_grid_calls(self):
        specs = composed_grid()
        backend = PoolBackend(workers=2)
        try:
            first = RunnerMetrics()
            run_grid(specs[:4], backend=backend, metrics=first)
            assert 1 <= first.workers_spawned <= 2
            second = RunnerMetrics()
            run_grid(specs[4:], backend=backend, metrics=second)
            # The second grid reuses the warm workers: zero new spawns.
            assert second.workers_spawned == 0
            assert second.backend == "pool"
            assert backend.stats()["map_calls"] == 2
        finally:
            backend.close()

    def test_shared_instance_per_name_and_width(self):
        a = resolve_backend("serial")
        b = resolve_backend("serial")
        assert a is b
        specs_backend = resolve_backend(None, workers=1)
        assert specs_backend.name == "serial"

    def test_default_upgrades_to_pool_for_parallel_widths(self):
        backend = resolve_backend(None, workers=2)
        assert backend.name == "pool"
        assert backend.workers() == 2
        assert resolve_backend(None, workers=2) is backend
        assert ("pool", 2) in _shared

    def test_close_is_idempotent(self):
        backend = PoolBackend(workers=2)
        backend.map_timed(_square, [1, 2, 3])
        backend.close()
        backend.close()
        # A closed pool respawns lazily on the next call.
        results, _ = backend.map_timed(_square, [4])
        assert results == [16]
        backend.close()


class TestChunking:
    def test_explicit_chunk_size_preserves_order(self):
        backend = PoolBackend(workers=2, chunk_size=3)
        try:
            results, seconds = backend.map_timed(_square, list(range(10)))
        finally:
            backend.close()
        assert results == [x * x for x in range(10)]
        assert len(seconds) == 10
        assert all(s >= 0.0 for s in seconds)
        # 10 items in chunks of 3 -> ceil(10/3) = 4 submissions.
        assert backend.stats()["chunks"] == 4

    def test_default_chunking_covers_all_items(self):
        backend = PoolBackend(workers=2)
        try:
            results, _ = backend.map_timed(_square, list(range(23)))
        finally:
            backend.close()
        assert results == [x * x for x in range(23)]

    def test_on_result_fires_once_per_item(self):
        landed = {}
        backend = PoolBackend(workers=2, chunk_size=4)
        try:
            backend.map_timed(
                _square, list(range(9)),
                on_result=lambda i, r, s: landed.__setitem__(i, r),
            )
        finally:
            backend.close()
        assert landed == {i: i * i for i in range(9)}

    def test_chunk_size_validated(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            PoolBackend(workers=2, chunk_size=0)


class TestRoster:
    def test_registry_contents(self):
        assert BACKENDS == {"serial", "pool"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("ssh")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            run_grid(composed_grid()[:1], backend="ssh")

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend


class TestEnvOverride:
    def test_pplb_workers_pins_width(self, monkeypatch):
        monkeypatch.setenv("PPLB_WORKERS", "3")
        assert resolve_workers(1) == 3
        assert resolve_workers(None) == 3
        backend = resolve_backend(None, workers=1)
        assert backend.name == "pool"
        assert backend.workers() == 3

    def test_pplb_workers_zero_means_per_core(self, monkeypatch):
        monkeypatch.setenv("PPLB_WORKERS", "0")
        assert resolve_workers(1) == max(os.cpu_count() or 1, 1)

    def test_pplb_workers_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("PPLB_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="PPLB_WORKERS"):
            resolve_workers(1)

    def test_empty_env_ignored(self, monkeypatch):
        monkeypatch.setenv("PPLB_WORKERS", "")
        assert resolve_workers(1) == 1


class TestFailFast:
    def test_worker_exception_propagates_and_pool_survives(self):
        backend = PoolBackend(workers=2, chunk_size=1)
        try:
            with pytest.raises(ValueError, match="task 5 exploded"):
                backend.map_timed(_boom, list(range(40)))
            # The pool is still healthy after the failure: the same
            # instance serves the next call, and every observed PID
            # belongs to the original spawn (≤ pool width — a worker
            # whose chunks were all cancelled is first *observed* here,
            # but no new process is created).
            results, _ = backend.map_timed(_square, [1, 2, 3])
            assert results == [1, 4, 9]
            assert backend.stats()["workers_spawned"] <= 2
        finally:
            backend.close()

    def test_serial_stops_at_first_error(self):
        backend = SerialBackend()
        landed = []
        with pytest.raises(ValueError):
            backend.map_timed(
                _boom, [1, 2, 5, 7],
                on_result=lambda i, r, s: landed.append(i),
            )
        assert landed == [0, 1]  # nothing after the failing task ran
