"""Runner-side telemetry: metrics collection, probe plumbing, cache fix.

Three properties. *Key stability*: the ``probe`` spec field is omitted
from the canonical encoding when it is the ``"null"`` default, so every
cache key computed before the telemetry layer existed stays valid.
*Passive metrics*: ``RunnerMetrics`` describes an execution pass
without changing which specs run or what they return. *Robust stats*:
a stray non-JSON (even binary) file inside the cache tree downgrades to
a warning instead of crashing ``pplb cache stats``.
"""

import json

import pytest

from repro.runner import (
    ResultCache,
    RunnerMetrics,
    RunSpec,
    expand_grid,
    grid_seeds,
    map_tasks_timed,
    metrics_to_rows,
    run_grid,
)

SMALL = {"scenario": "mesh-hotspot", "algorithm": "pplb", "max_rounds": 40}


class TestProbeInSpec:
    def test_null_probe_is_omitted_from_the_key(self):
        plain = RunSpec(seed=1, **SMALL)
        nulled = RunSpec(seed=1, probe="null", **SMALL)
        assert plain.key() == nulled.key()
        assert "probe" not in nulled.to_dict()

    def test_non_null_probe_changes_the_key(self):
        plain = RunSpec(seed=1, **SMALL)
        counted = RunSpec(seed=1, probe="counters", **SMALL)
        assert plain.key() != counted.key()
        assert counted.to_dict()["probe"] == "counters"
        assert RunSpec.from_dict(counted.to_dict()).probe == "counters"

    def test_probe_shows_in_label_only_when_enabled(self):
        assert "[counters]" in RunSpec(seed=1, probe="counters", **SMALL).label()
        assert "[" not in RunSpec(seed=1, **SMALL).label()

    def test_expand_grid_threads_the_probe(self):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40, probe="counters")
        assert all(spec.probe == "counters" for spec in specs)

    def test_probed_results_carry_telemetry_through_the_cache(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40, probe="counters")
        cache = ResultCache(tmp_path / "cache")
        fresh = run_grid(specs, cache=cache)
        replay = run_grid(specs, cache=cache)
        assert all(outcome.cached for outcome in replay)
        for a, b in zip(fresh, replay):
            assert a.result.telemetry is not None
            assert a.result.telemetry == b.result.telemetry


class TestRunnerMetrics:
    def test_execution_pass_is_measured(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40)
        metrics = RunnerMetrics()
        run_grid(specs, cache=ResultCache(tmp_path / "c"), metrics=metrics)
        assert metrics.total == 2
        assert metrics.cache_misses == 2 and metrics.cache_hits == 0
        assert metrics.task_s > 0 and metrics.wall_s >= 0
        assert 0 < metrics.utilization() <= 1.0
        assert len(metrics.spec_rows) == 2
        assert all(row["task_s"] > 0 for row in metrics.spec_rows)

    def test_all_hits_means_zero_work(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40)
        cache = ResultCache(tmp_path / "c")
        run_grid(specs, cache=cache)
        metrics = RunnerMetrics()
        run_grid(specs, cache=cache, metrics=metrics)
        assert metrics.cache_hits == 2 and metrics.cache_misses == 0
        assert metrics.task_s == 0.0 and metrics.wall_s == 0.0
        assert metrics.utilization() == 0.0
        assert metrics.mean_queue_wait_s() == 0.0
        assert all(row["cached"] for row in metrics.spec_rows)

    def test_metrics_do_not_change_results(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40)
        bare = run_grid(specs)
        measured = run_grid(specs, metrics=RunnerMetrics())

        def normalised(outcomes):
            payloads = [o.result.to_dict() for o in outcomes]
            for payload in payloads:
                payload["wall_time_s"] = 0.0  # the one run-varying field
            return payloads

        assert normalised(bare) == normalised(measured)

    def test_summary_and_rows_are_table_ready(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(2),
                            max_rounds=40)
        metrics = RunnerMetrics()
        run_grid(specs, metrics=metrics)
        summary = metrics.summary()
        assert summary["specs"] == 2 and summary["workers"] == 1
        rows = metrics_to_rows(metrics)
        assert len(rows) == 2
        assert set(rows[0]) == {"label", "cached", "task_s"}
        rows[0]["label"] = "mutated"  # rows are copies, not views
        assert metrics.spec_rows[0]["label"] != "mutated"

    def test_parallel_pass_keeps_spec_order(self, tmp_path):
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(3),
                            max_rounds=40)
        metrics = RunnerMetrics()
        outcomes = run_grid(specs, workers=2, metrics=metrics)
        assert metrics.workers == 2 and metrics.cache_misses == 3
        assert [o.spec.seed for o in outcomes] == [s.seed for s in specs]
        assert [row["label"] for row in metrics.spec_rows] == \
               [s.label() for s in specs]


class TestMapTasksTimed:
    def test_serial_returns_results_and_times(self):
        results, seconds = map_tasks_timed(abs, [-3, -2, 1])
        assert results == [3, 2, 1]
        assert len(seconds) == 3 and all(s >= 0 for s in seconds)

    def test_callback_receives_task_seconds(self):
        seen = []
        map_tasks_timed(abs, [-1, -2],
                        on_result=lambda i, r, s: seen.append((i, r, s)))
        assert [(i, r) for i, r, _ in seen] == [(0, 1), (1, 2)]
        assert all(s >= 0 for _, _, s in seen)

    def test_empty_input(self):
        assert map_tasks_timed(abs, []) == ([], [])


class TestCacheStrayFiles:
    def _seeded_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = expand_grid(["mesh-hotspot"], ["pplb"], grid_seeds(1),
                            max_rounds=30)
        run_grid(specs, cache=cache)
        return cache

    def test_stats_survives_binary_stray_file(self, tmp_path, caplog):
        cache = self._seeded_cache(tmp_path)
        shard = cache.root / "zz"
        shard.mkdir()
        (shard / "stray.json").write_bytes(b"\xff\xfe\x00not json at all")
        stats = cache.stats()  # must not raise
        assert stats["by_engine"]["(unreadable)"] == 1
        assert stats["by_engine"]["rounds"] == 1
        assert any("unreadable cache entry" in rec.message
                   for rec in caplog.records)

    def test_stats_survives_textual_garbage(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        shard = cache.root / "zz"
        shard.mkdir()
        (shard / "stray.json").write_text("definitely { not json")
        assert cache.stats()["by_engine"]["(unreadable)"] == 1

    def test_get_treats_binary_entry_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\xff\xfe\x00binary")
        assert cache.get(key) is None
        assert cache.misses == 1
