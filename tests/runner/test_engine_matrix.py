"""End-to-end smoke matrix: every registered scenario × every engine.

Each cell builds the scenario, runs 5 rounds under the ``summary``
recorder and checks the result shape — so every component (placements,
links, heterogeneity, dynamics) is exercised through the full
spec → worker → engine → recorder stack on all five execution models.
Sizes are overridden down through the legacy shared-kwargs path to keep
the matrix cheap.
"""

import pytest

from repro.runner import ResultCache, RunSpec, execute_spec, run_grid
from repro.workloads import SCENARIOS

def small_kwargs(scenario: str) -> dict:
    """Tiny-machine overrides per scenario.

    Legacy names tolerate the whole shared set; post-composition names
    are strict, so only keys they accept may appear. The fixed-machine
    fixtures (torus-32x32, mesh-4096) only shrink their task count
    (they ignore `side`, as they always did).
    """
    if scenario == "hypercube-hotspot":
        return {"dim": 3, "n_tasks": 32}
    return {"side": 4, "n_tasks": 32}

TASK_ENGINES = ("rounds", "rounds-fast", "events", "events-fast")

#: the genuinely new compositions the refactor ships (acceptance:
#: each must run under all four engines).
NEW_SCENARIOS = (
    "diurnal",
    "moving-hotspot",
    "power-law",
    "clustered",
    "fault-storm",
    "trace-replay",
)


def run_cell(scenario: str, engine: str, algorithm: str):
    spec = RunSpec(
        scenario=scenario,
        algorithm=algorithm,
        seed=1,
        max_rounds=5,
        scenario_kwargs=small_kwargs(scenario),
        engine=engine,
        recorder="summary",
    )
    result = execute_spec(spec)
    assert 1 <= result.n_rounds <= 5
    assert len(result.records) == 0  # summary keeps no per-round rows
    assert result.final_cov >= 0.0
    summary = result.final_summary
    assert summary["cov"] >= 0.0
    return result


@pytest.mark.parametrize("engine", TASK_ENGINES)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_every_scenario_runs_on_every_task_engine(scenario, engine):
    run_cell(scenario, engine, "diffusion")


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_every_scenario_runs_on_the_fluid_engine(scenario):
    run_cell(scenario, "fluid", "fluid-diffusion")


def test_fluid_engine_is_a_projection_onto_the_initial_surface():
    # Contract (documented on RunSpec.engine): the fluid engine
    # simulates the initial load surface in the continuous limit;
    # task-granular extras have no divisible-load counterpart. So
    # `straggler` (torus hotspot + slow nodes) under fluid is exactly
    # the `torus-hotspot` surface — pinned here so the projection is a
    # promise, not an accident.
    base = dict(algorithm="fluid-diffusion", seed=3, max_rounds=10,
                scenario_kwargs={"side": 5, "n_tasks": 50}, engine="fluid")
    a = execute_spec(RunSpec(scenario="straggler", **base)).to_dict()
    b = execute_spec(RunSpec(scenario="torus-hotspot", **base)).to_dict()
    a.pop("wall_time_s")
    b.pop("wall_time_s")
    assert a == b


@pytest.mark.parametrize("engine", TASK_ENGINES)
@pytest.mark.parametrize("scenario", NEW_SCENARIOS)
def test_new_compositions_balance_under_pplb(scenario, engine):
    # The paper's own algorithm on each new composition, not just the
    # cheap baseline.
    run_cell(scenario, engine, "pplb")


@pytest.mark.parametrize("engine", TASK_ENGINES + ("fluid",))
def test_fully_dressed_composed_string_runs_everywhere(engine):
    scenario = "mesh:6x6+clustered+fault-storm+tiered+diurnal"
    algorithm = "fluid-diffusion" if engine == "fluid" else "pplb"
    spec = RunSpec(scenario=scenario, algorithm=algorithm, seed=2,
                   max_rounds=5, engine=engine, recorder="summary")
    result = execute_spec(spec)
    assert 1 <= result.n_rounds <= 5


class TestEventsFastCaching:
    """The fifth engine through the cached runner stack."""

    BASE = dict(algorithm="pplb", seed=5, max_rounds=15,
                scenario_kwargs={"side": 5, "n_tasks": 60})

    def test_cache_round_trip(self, tmp_path):
        # Run → populate → replay: the second pass must be a pure cache
        # hit whose payload equals the freshly executed one.
        cache = ResultCache(tmp_path)
        specs = [RunSpec(scenario="torus-hotspot", engine="events-fast",
                         **self.BASE)]
        first = run_grid(specs, cache=cache)
        assert not first[0].cached
        second = run_grid(specs, cache=cache)
        assert second[0].cached
        a = first[0].result.to_dict()
        b = second[0].result.to_dict()
        a.pop("wall_time_s")
        b.pop("wall_time_s")
        assert a == b

    def test_engines_never_share_cache_entries(self):
        keys = {
            RunSpec(scenario="torus-hotspot", engine=e, **self.BASE).key()
            for e in TASK_ENGINES
        }
        assert len(keys) == len(TASK_ENGINES)

    def test_old_events_cache_keys_are_untouched(self):
        # Adding the fifth engine must not re-key existing caches: the
        # canonical encoding (and the library version) of an "events"
        # spec is exactly what it was before events-fast existed.
        spec = RunSpec("torus-hotspot", "pplb", seed=1, max_rounds=5,
                       scenario_kwargs={"side": 4, "n_tasks": 32},
                       engine="events")
        assert spec.key() == (
            "ede32026076c6f25adf75c58115adbab8463d52df711533a06d1fefd6f74f792"
        )
