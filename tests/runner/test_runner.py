"""Integration tests for the grid runner: parallel/serial equivalence,
cache replay, and the merge into existing analysis structures."""

import json

import pytest

import repro.runner.runner as runner_mod
from repro.analysis import run_sweep
from repro.runner import (
    ResultCache,
    RunSpec,
    expand_grid,
    outcomes_to_rows,
    outcomes_to_sweep,
    run_grid,
    spec_value,
)
from repro.runner.worker import execute_spec


def small_grid():
    """8 fast specs: 2 scenarios × 2 algorithms × 2 seeds on a 4x4 mesh."""
    return expand_grid(
        ["mesh-hotspot", "mesh-random"],
        ["pplb", "diffusion"],
        [11, 22],
        max_rounds=80,
        scenario_kwargs={"side": 4, "n_tasks": 64},
    )


def deterministic_payloads(outcomes):
    """Result payloads stripped of the only nondeterministic field."""
    out = []
    for o in outcomes:
        payload = o.result.to_dict()
        payload.pop("wall_time_s")
        out.append(payload)
    return out


class TestSerialParallelEquivalence:
    def test_parallel_results_identical_to_serial(self):
        specs = small_grid()
        serial = run_grid(specs, workers=1)
        parallel = run_grid(specs, workers=2)
        assert json.dumps(deterministic_payloads(serial)) == json.dumps(
            deterministic_payloads(parallel)
        )
        assert all(not o.cached for o in serial + parallel)

    def test_runner_matches_direct_execution(self):
        spec = small_grid()[0]
        direct = execute_spec(spec)
        [outcome] = run_grid([spec])
        a, b = direct.to_dict(), outcome.result.to_dict()
        a.pop("wall_time_s"), b.pop("wall_time_s")
        assert a == b

    def test_outcomes_in_spec_order(self):
        specs = small_grid()
        outcomes = run_grid(specs, workers=2)
        assert [o.spec for o in outcomes] == specs


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path):
        specs = small_grid()
        cache = ResultCache(tmp_path)
        first = run_grid(specs, cache=cache)
        assert all(not o.cached for o in first)
        assert len(cache) == len(specs)

        second = run_grid(specs, cache=cache)
        assert all(o.cached for o in second)
        assert json.dumps(deterministic_payloads(first)) == json.dumps(
            deterministic_payloads(second)
        )

    def test_cache_hit_skips_simulation(self, tmp_path, monkeypatch):
        specs = small_grid()[:2]
        run_grid(specs, cache=tmp_path)

        def boom(spec_dict):
            raise AssertionError(f"re-simulated a cached spec: {spec_dict}")

        monkeypatch.setattr(runner_mod, "execute_payload", boom)
        outcomes = run_grid(specs, cache=tmp_path)
        assert all(o.cached for o in outcomes)

    def test_cache_accepts_path_argument(self, tmp_path):
        specs = small_grid()[:1]
        run_grid(specs, cache=tmp_path / "c")
        [outcome] = run_grid(specs, cache=str(tmp_path / "c"))
        assert outcome.cached

    def test_changed_spec_misses_cache(self, tmp_path):
        spec = small_grid()[0]
        run_grid([spec], cache=tmp_path)
        changed = RunSpec.from_dict({**spec.to_dict(), "seed": spec.seed + 1})
        [outcome] = run_grid([changed], cache=tmp_path)
        assert not outcome.cached

    def test_progress_reports_every_spec(self, tmp_path):
        specs = small_grid()[:3]
        seen = []
        run_grid(specs, cache=tmp_path,
                 progress=lambda o, done, total: seen.append((done, total, o.cached)))
        assert [s[:2] for s in seen] == [(1, 3), (2, 3), (3, 3)]
        assert all(not cached for _, _, cached in seen)


class TestMerge:
    def test_outcomes_to_sweep_feeds_existing_tooling(self):
        specs = expand_grid(
            ["mesh-hotspot"], ["pplb", "diffusion"], [1, 2, 3],
            max_rounds=80, scenario_kwargs={"side": 4, "n_tasks": 64},
        )
        outcomes = run_grid(specs)
        sweep = outcomes_to_sweep("algorithm", outcomes)
        assert sweep.points == ["pplb", "diffusion"]
        assert len(sweep.raw[0]) == 3  # three seeds per point
        # SweepResult API works unchanged downstream.
        covs = sweep.series("final_cov")
        assert len(covs) == 2 and all(c >= 0 for c in covs)
        assert "final_cov_ci" in sweep.rows[0]

    def test_spec_value_resolution(self):
        spec = RunSpec("mesh-hotspot", "pplb", seed=9,
                       scenario_kwargs={"side": 4})
        assert spec_value(spec, "side") == 4
        assert spec_value(spec, "seed") == 9
        assert spec_value(spec, "algorithm") == "pplb"
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            spec_value(spec, "nonexistent")

    def test_rows_include_spec_coordinates(self):
        outcomes = run_grid(small_grid()[:1])
        [row] = outcomes_to_rows(outcomes)
        assert row["scenario"] == "mesh-hotspot"
        assert row["seed"] == 11
        assert row["cached"] is False
        assert "final_cov" in row

    def test_row_algorithm_is_registry_key_not_display_name(self):
        # pplb-greedy's balancer reports itself as "pplb"; the row must
        # keep the registry key so grid output stays unambiguous.
        spec = RunSpec("mesh-hotspot", "pplb-greedy", seed=1, max_rounds=40,
                       scenario_kwargs={"side": 4, "n_tasks": 32})
        [outcome] = run_grid([spec])
        row = outcome.row()
        assert row["algorithm"] == "pplb-greedy"
        assert row["balancer"] == "pplb"


def _touch_or_fail(job):
    """Pool task: records its execution on disk; the poison item raises."""
    out_dir, index = job
    import pathlib
    import time

    if index == 0:
        raise RuntimeError("poison task")
    time.sleep(0.02)
    pathlib.Path(out_dir, f"{index}.done").touch()
    return index


class TestPoolFailFast:
    def test_worker_exception_cancels_queued_tasks(self, tmp_path):
        from repro.runner.pool import map_tasks

        jobs = [(str(tmp_path), i) for i in range(40)]
        with pytest.raises(RuntimeError, match="poison"):
            map_tasks(_touch_or_fail, jobs, workers=2)
        # The poison task fails almost immediately; queued tasks must be
        # cancelled rather than all 39 running to completion first.
        executed = len(list(tmp_path.glob("*.done")))
        assert executed < 39, f"{executed} tasks ran after the failure"

    def test_serial_exception_propagates_immediately(self, tmp_path):
        from repro.runner.pool import map_tasks

        jobs = [(str(tmp_path), i) for i in [0, 1, 2]]
        with pytest.raises(RuntimeError, match="poison"):
            map_tasks(_touch_or_fail, jobs, workers=1)
        assert not list(tmp_path.glob("*.done"))


def _sweep_experiment(n_tasks, seed):
    """Module-level (hence picklable) experiment for run_sweep tests."""
    spec = RunSpec("mesh-hotspot", "pplb", seed=seed, max_rounds=60,
                   scenario_kwargs={"side": 4, "n_tasks": int(n_tasks)})
    result = execute_spec(spec)
    return {"final_cov": result.final_cov, "migrations": result.total_migrations}


class TestSweepWorkers:
    def test_parallel_sweep_identical_to_serial(self):
        serial = run_sweep("n_tasks", [32, 64], _sweep_experiment,
                           repetitions=2, base_seed=3, workers=1)
        parallel = run_sweep("n_tasks", [32, 64], _sweep_experiment,
                             repetitions=2, base_seed=3, workers=2)
        assert serial.rows == parallel.rows
        assert serial.raw == parallel.raw
