"""Replicate batching through the runner: transparent seed grouping.

``run_grid(..., batch_replicates=N)`` (or specs built with
``engine="rounds-batch"``) must be *invisible* in every output the
runner produces: per-spec outcomes in input order, cache entries byte-
identical to serial execution (modulo the measured ``wall_time_s``
inside the payload — the one execution-varying field), index sidecar
lines that answer metric-level replays, and cache keys shared with
plain ``rounds-fast`` runs so batched and solo caches interoperate.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import (
    ResultCache,
    RunSpec,
    SerialBackend,
    expand_grid,
    grid_seeds,
    run_grid,
)
from repro.runner.runner import _replicate_tasks

SIZE = {"side": 5, "n_tasks": 100}


def _specs(seeds=4, engine="rounds-fast", scenarios=("mesh-hotspot",),
           algorithms=("pplb",), probe="null"):
    return expand_grid(
        list(scenarios), list(algorithms), grid_seeds(seeds),
        max_rounds=40, scenario_kwargs=dict(SIZE), engine=engine, probe=probe,
    )


class _SpyBackend(SerialBackend):
    """Serial execution that records the task items it was handed."""

    def __init__(self):
        super().__init__()
        self.items = []

    def map_timed(self, fn, items, on_result=None):
        items = list(items)
        self.items.extend(items)
        return super().map_timed(fn, items, on_result=on_result)


def _normalised_entries(cache: ResultCache) -> dict[str, str]:
    """Every cache entry as canonical JSON with wall_time_s removed."""
    out = {}
    for shard in sorted(cache.root.iterdir()):
        if not shard.is_dir():
            continue
        for path in sorted(shard.iterdir()):
            entry = json.loads(path.read_text())
            entry["result"].pop("wall_time_s", None)
            out[path.name] = json.dumps(entry, sort_keys=True)
    return out


class TestBatchedGrid:
    def test_outcomes_match_serial_in_order(self):
        specs = _specs(seeds=5)
        serial = run_grid(specs)
        batched = run_grid(specs, batch_replicates=5)
        for s, b in zip(serial, batched):
            assert s.spec is b.spec and s.key == b.key
            ds, db = s.result.to_dict(), b.result.to_dict()
            ds.pop("wall_time_s")
            db.pop("wall_time_s")
            assert ds == db

    def test_cache_entries_byte_identical_to_serial(self, tmp_path):
        specs = _specs(seeds=4, scenarios=("mesh-hotspot", "torus-hotspot"))
        serial_cache = ResultCache(tmp_path / "serial")
        batch_cache = ResultCache(tmp_path / "batched")
        run_grid(specs, cache=serial_cache)
        run_grid(specs, cache=batch_cache, batch_replicates=4)
        assert _normalised_entries(serial_cache) == _normalised_entries(
            batch_cache
        )

    def test_batched_cache_replays_under_scalar_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _specs(seeds=3)
        fresh = run_grid(specs, cache=cache, batch_replicates=3)
        assert not any(o.cached for o in fresh)
        # Same specs, no batching: every entry must replay.
        replay = run_grid(specs, cache=cache)
        assert all(o.cached for o in replay)
        # ... including at metric level from the index sidecar.
        slim = run_grid(specs, cache=cache, keep_results=False)
        assert all(o.cached and o.metrics is not None for o in slim)

    def test_grouping_caps_and_keys(self):
        specs = _specs(seeds=5, scenarios=("mesh-hotspot", "torus-hotspot"))
        tasks = _replicate_tasks(specs, range(len(specs)), 3)
        # Per (scenario) cell: 5 replicates chunked as 3 + 2.
        assert [len(t) for t in tasks] == [3, 2, 3, 2]
        # Grouping never crosses spec families.
        for task in tasks:
            assert len({specs[i].scenario for i in task}) == 1

    def test_only_eligible_specs_group(self):
        mixed = (
            _specs(seeds=2)  # eligible
            + _specs(seeds=2, engine="events")  # wrong engine
            + _specs(seeds=2, probe="counters")  # probed
        )
        tasks = _replicate_tasks(mixed, range(len(mixed)), 4)
        assert [len(t) for t in tasks] == [2, 1, 1, 1, 1]

    def test_spec_level_opt_in_via_rounds_batch_engine(self):
        specs = _specs(seeds=3, engine="rounds-batch")
        assert all(s.engine == "rounds-fast" and s.batch_requested
                   for s in specs)
        spy = _SpyBackend()
        batched = run_grid(specs, backend=spy)
        assert len(spy.items) == 1 and spy.items[0].get("__batch__")
        solo = run_grid(_specs(seeds=3))
        for b, s in zip(batched, solo):
            db, ds = b.result.to_dict(), s.result.to_dict()
            db.pop("wall_time_s")
            ds.pop("wall_time_s")
            assert db == ds

    def test_no_batching_without_request(self):
        specs = _specs(seeds=3)
        spy = _SpyBackend()
        run_grid(specs, backend=spy)
        assert len(spy.items) == 3
        assert not any(item.get("__batch__") for item in spy.items)

    def test_mixed_grid_executes_batched_and_solo_tasks(self):
        specs = _specs(seeds=2) + _specs(seeds=2, engine="events")
        spy = _SpyBackend()
        outcomes = run_grid(specs, backend=spy, batch_replicates=2)
        assert [bool(item.get("__batch__")) for item in spy.items] == [
            True, False, False,
        ]
        assert all(o.result is not None for o in outcomes)


class TestRoundsBatchSpec:
    def test_engine_alias_canonicalises_and_shares_cache_key(self):
        batch = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=2,
                        max_rounds=50, engine="rounds-batch")
        fast = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=2,
                       max_rounds=50, engine="rounds-fast")
        assert batch.engine == "rounds-fast"
        assert batch.batch_requested and not fast.batch_requested
        assert batch.to_dict() == fast.to_dict()
        assert batch.key() == fast.key()
        # Round-tripping serialises as rounds-fast (no batch request).
        rebuilt = RunSpec.from_dict(batch.to_dict())
        assert rebuilt.engine == "rounds-fast" and not rebuilt.batch_requested


class TestExpandGridOrder:
    def test_seed_major_order(self):
        specs = expand_grid(
            ["mesh-hotspot", "torus-hotspot"], ["pplb", "diffusion"], [1, 2],
            order="seed-major",
        )
        assert [(s.scenario, s.algorithm, s.seed) for s in specs[:4]] == [
            ("mesh-hotspot", "pplb", 1),
            ("mesh-hotspot", "diffusion", 1),
            ("torus-hotspot", "pplb", 1),
            ("torus-hotspot", "diffusion", 1),
        ]
        assert all(s.seed == 2 for s in specs[4:])

    def test_orders_cover_the_same_grid(self):
        a = expand_grid(["mesh-hotspot"], ["pplb"], [1, 2, 3])
        b = expand_grid(["mesh-hotspot"], ["pplb"], [1, 2, 3],
                        order="seed-major")
        assert {s.key() for s in a} == {s.key() for s in b}

    def test_unknown_order_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(["mesh-hotspot"], ["pplb"], [1], order="algorithm")
