"""The cache's metadata index sidecar: fast stats, metric-level reads,
rebuild, torn-line tolerance, and concurrent multi-process writers."""

import json
import subprocess
import sys

import pytest

from repro.runner import ResultCache, default_metrics, expand_grid, run_grid
from repro.runner.cache import INDEX_NAME
from repro.sim import SimulationResult


def tiny_grid():
    return expand_grid(
        ["mesh-hotspot", "mesh-random"],
        ["pplb", "diffusion"],
        [11, 22],
        max_rounds=40,
        scenario_kwargs={"side": 4, "n_tasks": 64},
        engine="rounds-fast",
        recorder="summary",
    )


@pytest.fixture()
def warm_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    outcomes = run_grid(tiny_grid(), cache=cache)
    return cache, outcomes


class TestIndexWrites:
    def test_put_appends_index_line(self, warm_cache):
        cache, outcomes = warm_cache
        assert cache.index_path.exists()
        lines = cache.index_path.read_text().splitlines()
        assert len(lines) == len(outcomes)
        keys = {json.loads(line)["key"] for line in lines}
        assert keys == {o.key for o in outcomes}

    def test_index_invisible_to_entry_scan(self, warm_cache):
        cache, outcomes = warm_cache
        # The sidecar lives at the root, outside the shard dirs, so
        # len() (a */*.json scan) never counts it as an entry.
        assert len(cache) == len(outcomes)
        assert cache.index_path.name == INDEX_NAME

    def test_index_carries_metrics(self, warm_cache):
        cache, outcomes = warm_cache
        for outcome in outcomes:
            indexed = cache.metrics_for(outcome.key)
            assert indexed == default_metrics(outcome.result)

    def test_metrics_for_stat_checks_entry(self, warm_cache):
        cache, outcomes = warm_cache
        victim = outcomes[0].key
        cache.path_for(victim).unlink()
        # Index line still present, entry gone: never fabricate a hit.
        assert cache.metrics_for(victim) is None


class TestStatsFastPath:
    def test_stats_match_legacy_scan(self, warm_cache):
        cache, outcomes = warm_cache
        fast = cache.stats()
        assert fast["indexed"] == len(outcomes)
        cache.index_path.unlink()
        cache.invalidate_index()
        legacy = cache.stats()
        assert legacy["indexed"] == 0
        for field in ("entries", "total_bytes", "mean_bytes", "by_engine"):
            assert fast[field] == legacy[field]
        assert fast["by_engine"] == {"rounds-fast": len(outcomes)}

    def test_rebuild_index_restores_fast_path(self, warm_cache):
        cache, outcomes = warm_cache
        before = cache.index_path.read_text()
        cache.index_path.unlink()
        cache.invalidate_index()
        count = cache.rebuild_index()
        assert count == len(outcomes)
        assert cache.stats()["indexed"] == len(outcomes)
        # Rebuilt metrics equal the put-time metrics line for line.
        rebuilt = {
            json.loads(line)["key"]: json.loads(line)["metrics"]
            for line in cache.index_path.read_text().splitlines()
        }
        original = {
            json.loads(line)["key"]: json.loads(line)["metrics"]
            for line in before.splitlines()
        }
        assert rebuilt == original

    def test_clear_removes_index(self, warm_cache):
        cache, _ = warm_cache
        cache.clear()
        assert not cache.index_path.exists()
        assert not any(cache.root.iterdir())


class TestTornLines:
    def test_torn_and_foreign_lines_skipped(self, warm_cache):
        cache, outcomes = warm_cache
        with open(cache.index_path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "deadbeef", "engine"')  # torn, no newline
        cache.invalidate_index()
        index = cache.load_index()
        assert len(index) == len(outcomes)
        assert "deadbeef" not in index

    def test_last_write_wins_per_key(self, warm_cache):
        cache, outcomes = warm_cache
        key = outcomes[0].key
        newer = {"key": key, "engine": "events", "seed": 99}
        with open(cache.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(newer) + "\n")
        cache.invalidate_index()
        assert cache.load_index()[key]["engine"] == "events"

    def test_missing_sidecar_is_empty_index(self, tmp_path):
        cache = ResultCache(tmp_path / "never-written")
        assert cache.load_index() == {}
        assert cache.metrics_for("0" * 64) is None


_WRITER_SNIPPET = """
import sys
from repro.runner import ResultCache, expand_grid, run_grid

root, base_seed = sys.argv[1], int(sys.argv[2])
specs = expand_grid(
    ["mesh-hotspot"], ["pplb", "diffusion"],
    [7, int(base_seed)],  # seed 7 overlaps between both writers
    max_rounds=30,
    scenario_kwargs={"side": 4, "n_tasks": 64},
    engine="rounds-fast", recorder="summary",
)
run_grid(specs, cache=ResultCache(root))
"""


class TestConcurrentWriters:
    def test_two_process_pools_overlapping_keys(self, tmp_path):
        """Satellite 3: two writer processes put/get overlapping keys
        simultaneously — no torn reads, no duplicate entries, index
        consistent with the store afterwards."""
        root = tmp_path / "shared-cache"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SNIPPET,
                 str(root), str(seed)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for seed in (101, 202)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()

        cache = ResultCache(root)
        # 2 algorithms × 3 distinct seeds (7 shared, 101, 202).
        assert len(cache) == 6
        # Every entry parses whole (no torn JSON payloads).
        for path in sorted(root.glob("*/*.json")):
            entry = json.loads(path.read_text())
            assert entry["key"] == path.stem
        # The index covers the store exactly: every key resolvable,
        # every line whole, overlapping keys deduped last-write-wins.
        index = cache.load_index()
        store_keys = {p.stem for p in root.glob("*/*.json")}
        assert set(index) == store_keys
        assert cache.stats()["indexed"] == 6
        for key in store_keys:
            assert cache.metrics_for(key) is not None

    def test_crash_simulated_partial_write(self, tmp_path):
        """A writer dying mid-append leaves a torn trailing line; the
        index still serves every whole line and a rebuild resyncs it
        with the store."""
        cache = ResultCache(tmp_path / "cache")
        outcomes = run_grid(tiny_grid()[:4], cache=cache)
        whole = cache.index_path.read_text()
        # Simulate a crash: half of a new line makes it to disk.
        cache.index_path.write_text(
            whole + '{"key": "cafe', encoding="utf-8"
        )
        fresh = ResultCache(cache.root)
        assert set(fresh.load_index()) == {o.key for o in outcomes}
        assert fresh.rebuild_index() == 4
        assert set(fresh.load_index()) == {o.key for o in outcomes}
        # The rebuilt sidecar ends with a clean newline again.
        assert fresh.index_path.read_text().endswith("\n")
