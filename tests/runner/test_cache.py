"""Unit tests for the content-addressed result cache."""

import json

from repro.runner import ResultCache

KEY = "ab" + "0" * 62
PAYLOAD = {"records": [], "converged_round": 3, "final_summary": {"cov": 0.125}}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get(KEY) is None
        cache.put(KEY, {"scenario": "mesh-hotspot"}, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD
        assert cache.misses == 1 and cache.hits == 1
        assert len(cache) == 1

    def test_entries_are_sharded_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {}, PAYLOAD)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_entry_records_spec_and_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {"scenario": "mesh-hotspot", "seed": 5}, PAYLOAD)
        entry = json.loads(path.read_text())
        assert entry["spec"] == {"scenario": "mesh-hotspot", "seed": 5}
        assert entry["key"] == KEY
        assert entry["version"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {}, PAYLOAD)
        path.write_text("{not json")
        assert cache.get(KEY) is None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {}, PAYLOAD)
        path.write_text(json.dumps(["not", "a", "dict"]))
        assert cache.get(KEY) is None

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, {}, PAYLOAD)
        entry = json.loads(path.read_text())
        entry["version"] = 0  # a stale format
        path.write_text(json.dumps(entry))
        assert cache.get(KEY) is None

    def test_float_payload_roundtrips_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"cov": 0.1 + 0.2, "spread": 1e-17, "neg": -0.0}
        cache.put(KEY, {}, payload)
        got = cache.get(KEY)
        assert got["cov"] == payload["cov"]
        assert got["spread"] == payload["spread"]

    def test_len_of_empty_root(self, tmp_path):
        assert len(ResultCache(tmp_path / "never-created")) == 0


class TestStatsAndClear:
    def test_stats_on_missing_root(self, tmp_path):
        stats = ResultCache(tmp_path / "nope").stats()
        assert stats["exists"] is False
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0
        assert stats["mean_bytes"] == 0.0

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, PAYLOAD)
        cache.put("cd" + "0" * 62, {}, PAYLOAD)
        stats = cache.stats()
        assert stats["exists"] is True
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["mean_bytes"] == stats["total_bytes"] / 2
        assert stats["root"] == str(cache.root)

    def test_mean_entry_size_reflects_recorder_payloads(self, tmp_path):
        # The columnar/summary shrink must be visible on disk: a
        # summary-recorded entry is far smaller than a full one.
        from repro.runner import RunSpec, run_grid

        base = dict(scenario="mesh-hotspot", algorithm="diffusion", seed=1,
                    max_rounds=60, scenario_kwargs={"side": 5, "n_tasks": 75})
        full_cache = ResultCache(tmp_path / "full")
        summary_cache = ResultCache(tmp_path / "summary")
        run_grid([RunSpec(**base)], cache=full_cache)
        run_grid([RunSpec(**base, recorder="summary")], cache=summary_cache)
        full_mean = full_cache.stats()["mean_bytes"]
        summary_mean = summary_cache.stats()["mean_bytes"]
        # The entry shares the spec dict and summaries; the per-round
        # columns are what the summary recorder removes entirely.
        assert summary_mean < full_mean / 2

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, PAYLOAD)
        cache.put("cd" + "0" * 62, {}, PAYLOAD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(KEY) is None
        # Shard directories are pruned; the root itself survives.
        assert cache.root.is_dir()
        assert not any(cache.root.iterdir())

    def test_clear_on_missing_root_is_a_noop(self, tmp_path):
        assert ResultCache(tmp_path / "nope").clear() == 0


class TestLegacyFormatReplay:
    """Cache entries written before the columnar wire format must keep
    replaying: same key (the default recorder is omitted from the
    canonical spec encoding) and a readable record-list payload."""

    def test_default_spec_key_has_no_recorder_field(self):
        from repro.runner import RunSpec

        spec = RunSpec(scenario="mesh-hotspot", algorithm="pplb", seed=3)
        assert "recorder" not in spec.to_dict()
        explicit = RunSpec.from_dict({**spec.to_dict(), "recorder": "full"})
        assert explicit.key() == spec.key()  # canonical forms agree

    def test_legacy_record_list_entry_is_replayed(self, tmp_path):
        from dataclasses import asdict

        from repro.runner import RunSpec, execute_spec, run_grid

        spec = RunSpec(scenario="mesh-hotspot", algorithm="diffusion",
                       seed=2, max_rounds=30,
                       scenario_kwargs={"side": 4, "n_tasks": 32})
        fresh = execute_spec(spec)

        # Write the entry exactly as the pre-columnar code would have.
        legacy_payload = {
            "records": [asdict(r) for r in fresh.records],
            "converged_round": fresh.converged_round,
            "initial_summary": dict(fresh.initial_summary),
            "final_summary": dict(fresh.final_summary),
            "balancer_name": fresh.balancer_name,
            "wall_time_s": fresh.wall_time_s,
        }
        cache = ResultCache(tmp_path / "c")
        cache.put(spec.key(), spec.to_dict(), legacy_payload)

        [outcome] = run_grid([spec], cache=cache)
        assert outcome.cached  # served from the legacy entry, no re-run
        assert outcome.result == fresh
        assert list(outcome.result.records) == list(fresh.records)
