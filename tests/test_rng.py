"""Unit tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import derive, ensure_rng, spawn


class TestEnsureRng:
    def test_from_int(self):
        a = ensure_rng(5)
        b = ensure_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_from_none_is_fresh(self):
        a = ensure_rng(None)
        assert isinstance(a, np.random.Generator)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(42)
        a = ensure_rng(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a = spawn(ensure_rng(7), 3)
        b = spawn(ensure_rng(7), 3)
        for x, y in zip(a, b):
            assert x.integers(0, 1 << 30) == y.integers(0, 1 << 30)
        draws = {g.integers(0, 1 << 30) for g in spawn(ensure_rng(7), 8)}
        assert len(draws) == 8  # overwhelmingly likely distinct

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestDerive:
    def test_keyed_streams_deterministic(self):
        a = derive(9, 1, 2).integers(0, 1 << 30)
        b = derive(9, 1, 2).integers(0, 1 << 30)
        assert a == b

    def test_different_keys_differ(self):
        a = derive(9, 1, 2).integers(0, 1 << 30)
        b = derive(9, 2, 1).integers(0, 1 << 30)
        assert a != b

    def test_none_seed_gives_generator(self):
        assert isinstance(derive(None, 1), np.random.Generator)

    def test_generator_seed_consumes_state(self):
        g = np.random.default_rng(3)
        a = derive(g, 0)
        b = derive(g, 0)  # second call sees advanced parent state
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)
