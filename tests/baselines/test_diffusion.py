"""Unit tests for repro.baselines.diffusion."""

import numpy as np
import pytest

from repro.baselines import FluidDiffusion, TaskDiffusion, optimal_alpha
from repro.exceptions import ConfigurationError
from repro.network import hypercube, mesh, torus
from repro.sim import FluidSimulator, Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot
from tests.conftest import make_context


class TestOptimalAlpha:
    def test_hypercube_known_value(self):
        # Hypercube-d Laplacian eigenvalues are 2k, k=0..d: λ2=2, λn=2d
        # → α* = 2/(2 + 2d) = 1/(d+1).
        for d in (3, 4, 5):
            assert optimal_alpha(hypercube(d)) == pytest.approx(1.0 / (d + 1))

    def test_stable_range(self):
        for topo in (mesh(4, 4), torus(4, 4)):
            a = optimal_alpha(topo)
            lam_max = np.linalg.eigvalsh(topo.laplacian)[-1]
            assert 0 < a < 2.0 / lam_max * 1.0001  # inside the stability window


class TestFluidDiffusion:
    @pytest.mark.parametrize("policy", ["uniform", "boillat", "optimal"])
    def test_converges_on_mesh(self, policy):
        topo = mesh(4, 4)
        h0 = np.zeros(16)
        h0[0] = 160.0
        sim = FluidSimulator(topo, h0, FluidDiffusion(policy))
        res = sim.run(max_rounds=2000)
        assert res.converged
        np.testing.assert_allclose(sim.h, 10.0, atol=1e-4)

    def test_conserves_total(self):
        topo = mesh(4, 4)
        h0 = np.arange(16, dtype=float)
        sim = FluidSimulator(topo, h0, FluidDiffusion("uniform"))
        sim.run(max_rounds=50)
        assert sim.h.sum() == pytest.approx(h0.sum())

    def test_optimal_not_slower_than_uniform(self):
        topo = torus(6, 6)
        h0 = np.zeros(36)
        h0[0] = 360.0

        def rounds(policy):
            sim = FluidSimulator(topo, h0, FluidDiffusion(policy))
            res = sim.run(max_rounds=5000)
            assert res.converged
            return res.converged_round

        assert rounds("optimal") <= rounds("uniform")

    def test_unknown_policy(self):
        topo = mesh(3, 3)
        sim = FluidSimulator(topo, np.ones(9), FluidDiffusion("magic"))
        with pytest.raises(ConfigurationError):
            sim.run(max_rounds=2)

    def test_matches_matrix_iteration(self):
        # Fluid diffusion must equal h <- (I - αL) h exactly.
        topo = mesh(3, 3)
        alpha = optimal_alpha(topo)
        h0 = np.arange(9, dtype=float)
        sim = FluidSimulator(topo, h0, FluidDiffusion("optimal"),
                             )
        sim.run(max_rounds=5)
        m = np.eye(9) - alpha * topo.laplacian
        expected = np.linalg.matrix_power(m, 5) @ h0
        np.testing.assert_allclose(sim.h, expected, atol=1e-9)


class TestTaskDiffusion:
    def test_balances_hotspot(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 512, rng=0)
        sim = Simulator(mesh8, system, TaskDiffusion(), seed=0)
        res = sim.run(max_rounds=400)
        assert res.final_cov < 0.5
        assert system.total_load == pytest.approx(res.initial_summary["mean"] * 64)

    def test_respects_link_capacity(self, mesh4):
        system = TaskSystem(mesh4)
        single_hotspot(system, 64, rng=0, node=5)
        bal = TaskDiffusion()
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        links = [(min(m.src, m.dst), max(m.src, m.dst)) for m in migrations]
        assert len(links) == len(set(links))
        tids = [m.task_id for m in migrations]
        assert len(tids) == len(set(tids))

    def test_min_quota_quiesces_near_balance(self, mesh4):
        system = TaskSystem(mesh4)
        from repro.workloads import balanced

        balanced(system, tasks_per_node=4, rng=0)
        bal = TaskDiffusion(min_quota=0.5)
        ctx = make_context(mesh4, system)
        bal.reset(ctx)
        assert bal.step(ctx) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskDiffusion(min_quota=-1.0)
