"""Unit tests for work stealing, sender-initiated and no-op baselines."""

import pytest

from repro.baselines import NoBalancer, RandomWorkStealing, SenderInitiated
from repro.exceptions import ConfigurationError
from repro.network import complete
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import balanced, single_hotspot, uniform_random
from tests.conftest import make_context


class TestWorkStealing:
    def test_improves_on_rich_neighborhoods(self):
        # On a complete graph every hungry node can reach the hotspot.
        # Random probing has no-progress rounds, so quiescence detection
        # is loosened to let the stochastic process run its course.
        from repro.sim.engine import ConvergenceCriteria

        topo = complete(16)
        system = TaskSystem(topo)
        single_hotspot(system, 256, rng=0, node=0)
        sim = Simulator(topo, system, RandomWorkStealing(), seed=0,
                        criteria=ConvergenceCriteria(quiet_rounds=50))
        res = sim.run(max_rounds=600)
        assert res.final_cov < res.initial_summary["cov"] / 2

    def test_flat_no_moves(self, mesh4):
        system = TaskSystem(mesh4)
        balanced(system, tasks_per_node=4, rng=0)
        bal = RandomWorkStealing()
        ctx = make_context(mesh4, system)
        assert bal.step(ctx) == []

    def test_empty_system_no_moves(self, mesh4):
        system = TaskSystem(mesh4)
        bal = RandomWorkStealing()
        ctx = make_context(mesh4, system)
        assert bal.step(ctx) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWorkStealing(delta=0.0)
        with pytest.raises(ConfigurationError):
            RandomWorkStealing(delta=1.0)


class TestSenderInitiated:
    def test_improves_random_imbalance(self, mesh8):
        system = TaskSystem(mesh8)
        uniform_random(system, 512, rng=0)
        sim = Simulator(mesh8, system, SenderInitiated(probes=3), seed=0)
        res = sim.run(max_rounds=300)
        assert res.final_cov <= res.initial_summary["cov"]

    def test_sends_only_to_probed_light_nodes(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(20):
            system.add_task(1.0, 5)
        for n in range(16):
            if n != 5:
                system.add_task(1.0, n)
        bal = SenderInitiated(probes=4)
        ctx = make_context(mesh4, system)
        migrations = bal.step(ctx)
        for m in migrations:
            assert m.src == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SenderInitiated(delta=1.5)
        with pytest.raises(ConfigurationError):
            SenderInitiated(probes=0)


class TestNoBalancer:
    def test_never_moves(self, mesh4):
        system = TaskSystem(mesh4)
        single_hotspot(system, 64, rng=0)
        sim = Simulator(mesh4, system, NoBalancer(), seed=0)
        res = sim.run(max_rounds=20)
        assert res.total_migrations == 0
        assert res.final_cov == pytest.approx(res.initial_summary["cov"])
        assert res.converged_round == 0
