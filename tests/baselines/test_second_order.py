"""Unit tests for the second-order diffusion baseline."""

import numpy as np
import pytest

from repro.baselines import FluidDiffusion, SecondOrderDiffusion, optimal_beta
from repro.exceptions import ConfigurationError
from repro.network import hypercube, mesh, torus
from repro.sim import FluidSimulator
from repro.sim.engine import ConvergenceCriteria


class TestOptimalBeta:
    def test_in_valid_range(self):
        for topo in (mesh(4, 4), torus(5, 5), hypercube(4)):
            b = optimal_beta(topo)
            assert 1.0 < b < 2.0

    def test_better_connected_graphs_need_less_overrelaxation(self):
        # Larger spectral gap (hypercube) -> smaller gamma -> beta closer to 1.
        assert optimal_beta(hypercube(4)) < optimal_beta(mesh(6, 6))


class TestSecondOrderDiffusion:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecondOrderDiffusion(beta=0.0)
        with pytest.raises(ConfigurationError):
            SecondOrderDiffusion(beta=2.0)

    def test_converges_and_conserves(self):
        topo = mesh(6, 6)
        h0 = np.zeros(36)
        h0[0] = 360.0
        sim = FluidSimulator(topo, h0, SecondOrderDiffusion(),
                             criteria=ConvergenceCriteria(spread_tol=1e-6))
        res = sim.run(max_rounds=3000)
        assert res.converged
        assert sim.h.sum() == pytest.approx(360.0)
        np.testing.assert_allclose(sim.h, 10.0, atol=1e-5)

    def test_faster_than_fos_on_mesh(self):
        """The point of SOS: beats first-order diffusion's round count."""
        topo = mesh(8, 8)
        h0 = np.zeros(64)
        h0[0] = 640.0

        def rounds(balancer):
            sim = FluidSimulator(topo, h0, balancer,
                                 criteria=ConvergenceCriteria(spread_tol=1e-3))
            res = sim.run(max_rounds=20000)
            assert res.converged
            return res.converged_round

        assert rounds(SecondOrderDiffusion()) < rounds(FluidDiffusion("optimal"))

    def test_never_negative(self):
        topo = mesh(5, 5)
        h0 = np.zeros(25)
        h0[12] = 25.0
        sim = FluidSimulator(topo, h0, SecondOrderDiffusion())
        sim.run(max_rounds=500)  # engine would raise on negative loads
        assert (sim.h >= 0).all()

    def test_round0_equals_fos(self):
        topo = mesh(4, 4)
        h = np.arange(16, dtype=float)
        sos = SecondOrderDiffusion()
        fos = FluidDiffusion("optimal")
        from tests.conftest import make_context

        ctx = make_context(topo, None)
        sos.reset(ctx)
        fos.reset(ctx)
        np.testing.assert_allclose(sos.fluid_step(h, ctx), fos.fluid_step(h, ctx))
