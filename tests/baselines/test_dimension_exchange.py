"""Unit tests for repro.baselines.dimension_exchange."""

import numpy as np
import pytest

from repro.baselines import DimensionExchange, FluidDimensionExchange
from repro.baselines.dimension_exchange import edge_coloring
from repro.network import hypercube, mesh, ring
from repro.sim import FluidSimulator, Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


class TestEdgeColoring:
    def test_hypercube_colors_are_dimensions(self):
        topo = hypercube(3)
        colors, n = edge_coloring(topo)
        assert n == 3
        for k, (u, v) in enumerate(topo.edges):
            assert colors[k] == (int(u) ^ int(v)).bit_length() - 1

    def test_coloring_is_proper(self):
        for topo in (mesh(4, 4), ring(7), hypercube(4)):
            colors, n = edge_coloring(topo)
            assert n >= 1
            # No two same-colored edges share a node.
            for c in range(n):
                seen: set[int] = set()
                for k in np.nonzero(colors == c)[0]:
                    u, v = topo.edges[k]
                    assert u not in seen and v not in seen
                    seen.add(int(u))
                    seen.add(int(v))


class TestFluidDE:
    def test_hypercube_one_sweep_exact(self):
        """Cybenko: one exchange with every neighbor balances a hypercube."""
        d = 4
        topo = hypercube(d)
        rng = np.random.default_rng(0)
        h0 = rng.uniform(0, 10, topo.n_nodes)
        sim = FluidSimulator(topo, h0, FluidDimensionExchange())
        sim.run(max_rounds=d)  # exactly one sweep of all d dimensions
        np.testing.assert_allclose(sim.h, h0.mean(), atol=1e-9)

    def test_conserves_total(self):
        topo = mesh(4, 4)
        h0 = np.arange(16, dtype=float)
        sim = FluidSimulator(topo, h0, FluidDimensionExchange())
        sim.run(max_rounds=40)
        assert sim.h.sum() == pytest.approx(h0.sum())

    def test_converges_on_general_graph(self):
        topo = mesh(4, 4)
        h0 = np.zeros(16)
        h0[0] = 160.0
        sim = FluidSimulator(topo, h0, FluidDimensionExchange())
        res = sim.run(max_rounds=2000)
        assert res.converged


class TestTaskDE:
    def test_balances_hotspot_hypercube(self):
        topo = hypercube(4)
        system = TaskSystem(topo)
        single_hotspot(system, 160, rng=0, node=0)
        sim = Simulator(topo, system, DimensionExchange(min_quota=0.5), seed=0)
        res = sim.run(max_rounds=300)
        assert res.final_cov < 0.5

    def test_only_active_color_used(self):
        topo = hypercube(3)
        system = TaskSystem(topo)
        single_hotspot(system, 64, rng=0, node=0)
        bal = DimensionExchange()
        from tests.conftest import make_context

        ctx = make_context(topo, system, round_index=0)
        bal.reset(ctx)
        migrations = bal.step(ctx)
        colors, _ = edge_coloring(topo)
        active = 0 % colors.max() + 1 if False else 0  # round 0 -> color 0
        for m in migrations:
            assert colors[topo.edge_id(m.src, m.dst)] == active
