"""Unit tests for the GM and CWN baselines."""

import numpy as np
import pytest

from repro.baselines import ContractingWithinNeighborhood, GradientModel
from repro.baselines.gradient_model import proximity_map
from repro.exceptions import ConfigurationError
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import balanced, single_hotspot
from tests.conftest import make_context


class TestProximityMap:
    def test_multi_source_bfs(self, mesh4):
        light = np.zeros(16, dtype=bool)
        light[0] = True
        prox = proximity_map(mesh4, light)
        assert prox[0] == 0
        assert prox[1] == 1
        assert prox[15] == 6

    def test_no_light_nodes_all_inf(self, mesh4):
        prox = proximity_map(mesh4, np.zeros(16, dtype=bool))
        assert np.isinf(prox).all()

    def test_two_sources_take_min(self, mesh4):
        light = np.zeros(16, dtype=bool)
        light[0] = light[15] = True
        prox = proximity_map(mesh4, light)
        assert prox[3] == min(3, 3)
        assert prox.max() <= 3


class TestGradientModel:
    def test_balances_hotspot(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 512, rng=0)
        sim = Simulator(mesh8, system, GradientModel(), seed=0)
        res = sim.run(max_rounds=800)
        assert res.final_cov < 1.0
        assert res.final_cov < res.initial_summary["cov"] / 4

    def test_flat_system_no_moves(self, mesh4):
        system = TaskSystem(mesh4)
        balanced(system, tasks_per_node=4, rng=0)
        bal = GradientModel()
        ctx = make_context(mesh4, system)
        assert bal.step(ctx) == []

    def test_moves_toward_lower_proximity(self, mesh4):
        system = TaskSystem(mesh4)
        # heavy at 0, light at 15, moderate elsewhere
        for _ in range(20):
            system.add_task(1.0, 0)
        for n in range(1, 15):
            for _ in range(4):
                system.add_task(1.0, n)
        bal = GradientModel()
        ctx = make_context(mesh4, system)
        migrations = bal.step(ctx)
        assert migrations
        for m in migrations:
            assert m.src == 0
            # neighbors of 0: 1 (distance 5 to 15... ) and 4; both fine,
            # but the chosen one must be the neighbor nearest to node 15.
        hd = mesh4.hop_distances
        chosen = migrations[0].dst
        others = [int(j) for j in mesh4.neighbors(0)]
        assert hd[chosen, 15] == min(hd[j, 15] for j in others)

    def test_absolute_watermarks(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(20):
            system.add_task(1.0, 0)
        bal = GradientModel(absolute_low=1.0, absolute_high=10.0)
        ctx = make_context(mesh4, system)
        assert bal.step(ctx)  # 20 > 10 high; empty nodes < 1 low

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GradientModel(delta=0.0)
        with pytest.raises(ConfigurationError):
            GradientModel(absolute_low=5.0)
        with pytest.raises(ConfigurationError):
            GradientModel(absolute_low=5.0, absolute_high=4.0)


class TestCWN:
    def test_balances_hotspot_partially(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 512, rng=0)
        sim = Simulator(mesh8, system, ContractingWithinNeighborhood(max_hops=8), seed=0)
        res = sim.run(max_rounds=800)
        assert res.final_cov < res.initial_summary["cov"] / 2

    def test_threshold_blocks_small_diffs(self, mesh4):
        system = TaskSystem(mesh4)
        system.add_task(1.5, 0)
        system.add_task(1.0, 1)
        bal = ContractingWithinNeighborhood(threshold=1.0)
        ctx = make_context(mesh4, system)
        assert bal.step(ctx) == []

    def test_radius_pins_tasks(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(3.0, 0)
        system.add_task(1.0, 0)  # keeps the source above the destination
        bal = ContractingWithinNeighborhood(threshold=0.5, max_hops=1)
        ctx = make_context(mesh4, system, round_index=0)
        bal.reset(ctx)
        m1 = bal.step(ctx)
        assert len(m1) == 1 and m1[0].task_id == tid
        system.move(tid, m1[0].dst)
        # Task used its 1-hop budget: it can never move again (and the
        # remaining 1.0 task is too small to clear the threshold).
        ctx = make_context(mesh4, system, round_index=1)
        assert bal.step(ctx) == []

    def test_sends_to_least_loaded_neighbor(self, mesh4):
        system = TaskSystem(mesh4)
        for _ in range(8):
            system.add_task(1.0, 5)
        system.add_task(1.0, 1)
        system.add_task(2.0, 4)
        system.add_task(3.0, 6)  # node 9 stays empty: the minimum
        bal = ContractingWithinNeighborhood(threshold=0.5)
        ctx = make_context(mesh4, system)
        migrations = [m for m in bal.step(ctx) if m.src == 5]
        assert migrations and migrations[0].dst == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContractingWithinNeighborhood(threshold=-1.0)
        with pytest.raises(ConfigurationError):
            ContractingWithinNeighborhood(max_hops=0)
