"""The sync ≡ async correctness anchor (ISSUE 2's key property).

With homogeneous unit-speed nodes, zero transfer latency and the
default uniform cadence (= the epoch length), the event-driven
:class:`~repro.sim.EventSimulator` must reproduce the synchronous
:class:`~repro.sim.Simulator` *exactly*: same seed ⇒ identical
per-round records (every float), identical final load vectors,
identical convergence round. This is what certifies that the event
engine simulates the same protocol rather than a similar one.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.runner.registry import make_balancer
from repro.sim import EventSimulator, Simulator
from repro.workloads import build_scenario

#: ≥3 scenarios (one with churn — the convergence-free regime) and
#: ≥3 algorithms (stateful PPLB, memoryless diffusion, stochastic
#: stealing, gradient fields) as demanded by the acceptance criteria.
SCENARIOS = ["mesh-hotspot", "torus-hotspot", "mesh-two-valleys", "bursty-arrivals"]
ALGORITHMS = ["pplb", "diffusion", "work-stealing", "gradient-model"]
SIZE = {"side": 6, "n_tasks": 180}


def _run(engine_cls, scenario_name, algorithm, seed, **sim_kwargs):
    scenario = build_scenario(scenario_name, seed=seed, **SIZE)
    sim = engine_cls(
        scenario.topology,
        scenario.system,
        make_balancer(algorithm),
        links=scenario.links,
        dynamic=scenario.dynamic,
        node_speeds=scenario.node_speeds,
        seed=seed,
        **sim_kwargs,
    )
    result = sim.run(max_rounds=70)
    return result, np.array(scenario.system.node_loads)


class TestDegenerateEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_event_engine_reproduces_sync_trajectory(self, scenario, algorithm):
        sync_result, sync_loads = _run(Simulator, scenario, algorithm, seed=11)
        ev_result, ev_loads = _run(EventSimulator, scenario, algorithm, seed=11)

        # Identical per-round records — every field, every float.
        assert [asdict(r) for r in sync_result.records] == [
            asdict(r) for r in ev_result.records
        ]
        assert sync_result.converged_round == ev_result.converged_round
        assert sync_result.initial_summary == ev_result.initial_summary
        assert sync_result.final_summary == ev_result.final_summary
        # Identical final placement aggregate.
        assert (sync_loads == ev_loads).all()

    def test_equivalence_holds_across_seeds(self):
        # The property is seed-independent, not a lucky draw.
        for seed in (0, 1, 2):
            s, _ = _run(Simulator, "mesh-hotspot", "pplb", seed=seed)
            e, _ = _run(EventSimulator, "mesh-hotspot", "pplb", seed=seed)
            assert [asdict(r) for r in s.records] == [asdict(r) for r in e.records]

    def test_degenerate_wave_marks_no_asleep_drops(self):
        # Every wave covers every node, so nothing is ever refused for
        # being planned at a sleeping source.
        result, _ = _run(EventSimulator, "mesh-hotspot", "pplb", seed=5)
        assert all(r.asleep == 0 for r in result.records)

    def test_non_degenerate_config_breaks_lockstep(self):
        # Sanity check that the property above is not vacuous: jitter
        # desynchronises the clocks and the trajectories diverge.
        sync_result, _ = _run(Simulator, "mesh-hotspot", "pplb", seed=11)
        ev_result, _ = _run(
            EventSimulator, "mesh-hotspot", "pplb", seed=11, wake_jitter=0.4
        )
        assert [asdict(r) for r in sync_result.records] != [
            asdict(r) for r in ev_result.records
        ]
