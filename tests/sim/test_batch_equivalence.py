"""The replicate-batched ≡ solo rounds-fast correctness anchor.

:class:`~repro.sim.BatchSimulator` runs S seed replicates of one
scenario as a single vectorised simulation. Its contract is the same
one every fast path in this repo carries: pure evaluation-order
optimisation, never a decision. Replicate *i* of a batch must therefore
reproduce a solo :class:`~repro.sim.FastSimulator` run of seed *i*
exactly — identical per-round records (every float), identical
convergence round, identical final load vector, and an identical
*terminal RNG state* (the batch consumed exactly the draws the solo run
would have). Covered here across the differential scenario matrix,
under per-replicate fallback (friction jitter), under probes (decision
counters included), on long steady-state horizons (the frozen-lane
caches), and over fuzzed composed-grammar scenarios.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runner.registry import make_balancer
from repro.sim import BatchSimulator, FastSimulator
from repro.sim.engine import ConvergenceCriteria
from repro.workloads import build_scenario

#: ≥6 scenarios × 4 algorithms as demanded by the acceptance criteria:
#: faulted links (up-mask screening), heterogeneous speeds (the
#: effective-surface inv_s path), churn (dynamic floors), multi-valley
#: surfaces and the two standard hotspots.
SCENARIOS = [
    "mesh-hotspot",
    "torus-hotspot",
    "mesh-two-valleys",
    "mesh-faulty",
    "straggler",
    "bursty-arrivals",
]
ALGORITHMS = ["pplb", "pplb-greedy", "diffusion", "work-stealing"]
SIZE = {"side": 6, "n_tasks": 180}
SEEDS = [0, 1, 2, 3]


def _build_sim(scenario_name, algorithm, seed, size=SIZE, topology=None,
               criteria=None, probe="null", algorithm_kwargs=None):
    scenario = build_scenario(scenario_name, seed=seed, topology=topology,
                              **size)
    extra = {} if criteria is None else {"criteria": criteria}
    sim = FastSimulator(
        scenario.topology,
        scenario.system,
        make_balancer(algorithm, **(algorithm_kwargs or {})),
        links=scenario.links,
        dynamic=scenario.dynamic,
        node_speeds=scenario.node_speeds,
        seed=seed,
        probe=probe,
        **extra,
    )
    return sim


def _batch_vs_solo(scenario_name, algorithm, seeds=SEEDS, rounds=60,
                   size=SIZE, criteria=None, probe="null",
                   algorithm_kwargs=None):
    """Run seeds batched and solo; return [(batch, solo), ...] where
    each element is an (result, final_loads, rng_state) triple."""
    sims = []
    topology = None
    for seed in seeds:
        sim = _build_sim(scenario_name, algorithm, seed, size=size,
                         topology=topology, criteria=criteria, probe=probe,
                         algorithm_kwargs=algorithm_kwargs)
        if topology is None:
            topology = sim.topology
        sims.append(sim)
    batch_results = BatchSimulator(sims).run(max_rounds=rounds)
    pairs = []
    for seed, sim, batch_result in zip(seeds, sims, batch_results):
        solo = _build_sim(scenario_name, algorithm, seed, size=size,
                          criteria=criteria, probe=probe,
                          algorithm_kwargs=algorithm_kwargs)
        solo_result = solo.run(max_rounds=rounds)
        pairs.append((
            (batch_result, np.array(sim.system.node_loads),
             sim.rng.bit_generator.state),
            (solo_result, np.array(solo.system.node_loads),
             solo.rng.bit_generator.state),
        ))
    return pairs


def _assert_identical(batch, solo):
    (b_result, b_loads, b_rng), (s_result, s_loads, s_rng) = batch, solo
    assert [asdict(r) for r in b_result.records] == [
        asdict(r) for r in s_result.records
    ]
    assert b_result.converged_round == s_result.converged_round
    assert b_result.initial_summary == s_result.initial_summary
    assert b_result.final_summary == s_result.final_summary
    assert (b_loads == s_loads).all()
    assert b_rng == s_rng


class TestBatchEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batched_replicates_reproduce_solo_runs(self, scenario, algorithm):
        for batch, solo in _batch_vs_solo(scenario, algorithm):
            _assert_identical(batch, solo)

    def test_replicates_drop_out_independently(self):
        # Different seeds converge at different rounds; the active mask
        # must retire each lane exactly when its solo run would stop.
        pairs = _batch_vs_solo("mesh-hotspot", "pplb", seeds=list(range(6)),
                               rounds=200)
        converged = {p[0][0].converged_round for p in pairs}
        assert len(converged) > 1, "seeds converged in lock-step; weak case"
        for batch, solo in pairs:
            _assert_identical(batch, solo)

    def test_jittered_config_falls_back_per_replicate(self):
        # friction_jitter != 0 draws RNG per evaluated candidate, so the
        # batch cannot precompute — those lanes ride along unhinted and
        # must still match their solo runs bit for bit.
        for batch, solo in _batch_vs_solo(
            "mesh-hotspot", "pplb",
            algorithm_kwargs={"friction_jitter": 0.05},
        ):
            _assert_identical(batch, solo)

    def test_long_steady_horizon_with_frozen_lanes(self):
        # A fixed horizon far past convergence: lanes freeze (cached
        # screen + cached summary) and every later round must replay
        # the exact skipped state the solo run keeps recomputing.
        no_exit = ConvergenceCriteria(quiet_rounds=10**9, min_rounds=0)
        for batch, solo in _batch_vs_solo(
            "mesh-hotspot", "pplb", seeds=[0, 1, 2], rounds=300,
            criteria=no_exit,
        ):
            _assert_identical(batch, solo)

    def test_probed_lanes_keep_identical_decision_counters(self):
        # Probes observe, never steer — in a batch too. Records and the
        # structured decision counters must match the solo run; the
        # batch.* counters are additive batch-only telemetry.
        for batch, solo in _batch_vs_solo(
            "mesh-hotspot", "pplb", seeds=[0, 1], probe="counters",
        ):
            _assert_identical(batch, solo)
            b_counters = dict(batch[0].telemetry["counters"])
            replicates = b_counters.pop("batch.replicates")
            fill = b_counters.pop("batch.fill_ratio")
            fallbacks = b_counters.pop("batch.fallbacks")
            assert replicates == 2
            assert 0.0 < fill <= 1.0
            assert fallbacks == 0
            assert b_counters == solo[0].telemetry["counters"]

    def test_singleton_batch(self):
        for batch, solo in _batch_vs_solo("torus-hotspot", "pplb", seeds=[7]):
            _assert_identical(batch, solo)

    def test_rejects_unshared_topology(self):
        a = _build_sim("mesh-hotspot", "pplb", 0)
        b = _build_sim("mesh-hotspot", "pplb", 1)  # its own topology
        with pytest.raises(ConfigurationError):
            BatchSimulator([a, b])

    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError):
            BatchSimulator([])


class TestComposedScenarioFuzz:
    """Seeded fuzz over the composition grammar: random component
    stacks, each batch checked replicate-by-replicate against solo."""

    TOPOLOGIES = ["mesh:6x6", "torus:6x6", "hypercube:5", "ring:30"]
    PLACEMENTS = ["hotspot:n_tasks=150", "uniform:n_tasks=150",
                  "clustered:n_tasks=150", "two-valleys:n_tasks=150"]
    LINKS = [None, "faulty:fault=0.05", "jittered"]
    HETEROGENEITY = [None, "stragglers:frac=0.2"]
    DYNAMICS = [None, "churn:rate=2.0,completion_prob=0.02",
                "bursty:rate=4.0,completion_prob=0.05"]

    def test_fuzzed_compositions(self):
        rng = np.random.default_rng(20260807)
        for trial in range(6):
            parts = [
                str(rng.choice(self.TOPOLOGIES)),
                str(rng.choice(self.PLACEMENTS)),
            ]
            for axis in (self.LINKS, self.HETEROGENEITY, self.DYNAMICS):
                choice = axis[int(rng.integers(len(axis)))]
                if choice is not None:
                    parts.append(choice)
            scenario = "+".join(parts)
            algorithm = str(rng.choice(["pplb", "pplb-greedy", "diffusion"]))
            seeds = [int(s) for s in rng.integers(0, 1000, size=3)]
            for batch, solo in _batch_vs_solo(
                scenario, algorithm, seeds=seeds, rounds=50, size={},
            ):
                _assert_identical(batch, solo)
