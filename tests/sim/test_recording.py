"""Unit and parity tests for the columnar round log and recorders.

The recorder contract: ``full`` reproduces the eager record list
bit-for-bit; ``thin:k`` keeps every k-th round plus the last while its
running totals stay exact; ``summary`` retains no per-round Python
objects at all yet answers the whole summary surface exactly. The
parity suites hold these properties across all four engines through
the shared kernel.
"""

import json

import numpy as np
import pytest

from repro.baselines import FluidDiffusion
from repro.exceptions import ConfigurationError
from repro.runner.registry import make_balancer
from repro.sim import (
    EventSimulator,
    FastSimulator,
    FluidSimulator,
    FullRecorder,
    RoundLog,
    RoundRecord,
    SimulationResult,
    Simulator,
    SummaryRecorder,
    ThinningRecorder,
    make_recorder,
    recorder_tag,
)
from repro.workloads import build_scenario

SIZE = {"side": 5, "n_tasks": 100}


def rec(i, migrations=1, spread=10.0):
    return RoundRecord(
        round_index=i,
        n_migrations=migrations,
        traffic_work=float(migrations) * 1.5,
        heat=float(migrations) * 0.25,
        cov=spread / 10.0,
        spread=spread,
        max_load=spread,
        min_load=0.0,
        in_flight=i % 3,
        blocked=i % 2,
        n_tasks=100,
        asleep=0,
    )


class TestRoundLog:
    def test_append_and_materialise(self):
        log = RoundLog()
        records = [rec(i, migrations=i) for i in range(100)]  # forces growth
        for r in records:
            log.append_record(r)
        assert len(log) == 100
        assert log.records() == records
        assert log.record(-1) == records[-1]

    def test_columns_are_read_only_views(self):
        log = RoundLog.from_records([rec(0), rec(1)])
        col = log.column("spread")
        assert col.shape == (2,)
        with pytest.raises(ValueError):
            col[0] = 99.0

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown round field"):
            RoundLog().column("nope")

    def test_wire_roundtrip_is_exact_through_json(self):
        log = RoundLog.from_records(
            [rec(i, spread=0.1 + 0.2 * i) for i in range(7)]
        )
        cols = json.loads(json.dumps(log.to_columns()))
        clone = RoundLog.from_columns(cols)
        assert clone == log
        assert clone.records() == log.records()

    def test_ragged_columns_rejected(self):
        cols = RoundLog.from_records([rec(0), rec(1)]).to_columns()
        cols["spread"] = cols["spread"][:1]
        with pytest.raises(ConfigurationError, match="ragged"):
            RoundLog.from_columns(cols)

    def test_missing_column_rejected(self):
        cols = RoundLog.from_records([rec(0)]).to_columns()
        del cols["heat"]
        with pytest.raises(ConfigurationError, match="missing"):
            RoundLog.from_columns(cols)


class TestMakeRecorder:
    def test_spec_strings(self):
        assert isinstance(make_recorder("full"), FullRecorder)
        assert isinstance(make_recorder("summary"), SummaryRecorder)
        thin = make_recorder("thin:7")
        assert isinstance(thin, ThinningRecorder) and thin.every == 7

    def test_instance_passthrough(self):
        recorder = SummaryRecorder()
        assert make_recorder(recorder) is recorder

    def test_tags_canonicalise(self):
        assert recorder_tag("thin:07") == "thin:7"
        assert recorder_tag("full") == "full"

    @pytest.mark.parametrize("bad", ["thin", "thin:", "thin:x", "thin:0",
                                     "eager", "THIN:3"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_recorder(bad)


def run_scenario(engine_cls, recorder, scenario="mesh-hotspot", seed=3,
                 rounds=60, algorithm="pplb"):
    scenario_obj = build_scenario(scenario, seed=seed, **SIZE)
    sim = engine_cls(
        scenario_obj.topology,
        scenario_obj.system,
        make_balancer(algorithm),
        links=scenario_obj.links,
        dynamic=scenario_obj.dynamic,
        node_speeds=scenario_obj.node_speeds,
        seed=seed,
        recorder=recorder,
    )
    return sim.run(max_rounds=rounds)


ENGINES = [Simulator, FastSimulator, EventSimulator]


class TestRecorderParity:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_summary_totals_match_full(self, engine_cls):
        full = run_scenario(engine_cls, "full")
        summary = run_scenario(engine_cls, "summary")
        assert len(summary.records) == 0  # no per-round history retained
        assert summary.aggregates is not None
        assert summary.n_rounds == full.n_rounds
        assert summary.total_migrations == full.total_migrations
        assert summary.total_traffic == pytest.approx(full.total_traffic)
        assert summary.total_heat == pytest.approx(full.total_heat)
        assert summary.converged_round == full.converged_round
        assert summary.initial_summary == full.initial_summary
        assert summary.final_summary == full.final_summary
        assert summary.aggregates["spread_min"] == pytest.approx(
            float(full.series("spread").min())
        )
        assert summary.aggregates["cov_mean"] == pytest.approx(
            float(full.series("cov").mean())
        )

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_thinning_keeps_every_kth_and_last(self, engine_cls):
        full = run_scenario(engine_cls, "full")
        thin = run_scenario(engine_cls, "thin:10")
        full_records = list(full.records)
        kept = full_records[::10]
        if full_records[-1] != kept[-1]:
            kept.append(full_records[-1])
        assert list(thin.records) == kept
        # Totals are exact despite the thinned log.
        assert thin.n_rounds == full.n_rounds
        assert thin.total_migrations == full.total_migrations
        assert thin.total_traffic == pytest.approx(full.total_traffic)

    def test_thin_1_equals_full_history(self):
        full = run_scenario(Simulator, "full")
        thin = run_scenario(Simulator, "thin:1")
        assert list(thin.records) == list(full.records)
        assert thin.aggregates is not None  # still streams exact totals

    def test_recorder_never_perturbs_the_trajectory(self):
        # Recording is pure observation: the balancer's RNG stream and
        # decisions are identical whatever the recorder keeps.
        full = run_scenario(Simulator, "full", scenario="bursty-arrivals")
        summary = run_scenario(Simulator, "summary", scenario="bursty-arrivals")
        assert summary.final_summary == full.final_summary
        assert summary.total_migrations == full.total_migrations

    def test_recorder_instance_is_reusable_across_runs(self):
        recorder = SummaryRecorder()
        first = run_scenario(Simulator, recorder)
        second = run_scenario(Simulator, recorder)
        assert first.aggregates == second.aggregates  # restarted, not resumed

    def test_summary_result_roundtrips_through_wire_format(self):
        res = run_scenario(Simulator, "summary")
        clone = SimulationResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone == res
        assert clone.summary_row() == res.summary_row()

    def test_thin_result_roundtrips_through_wire_format(self):
        res = run_scenario(Simulator, "thin:10")
        clone = SimulationResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone == res
        assert list(clone.records) == list(res.records)


class TestFluidRecorderParity:
    def _run(self, recorder, rounds=200):
        topo = build_scenario("mesh-hotspot", seed=0, **SIZE).topology
        h = np.zeros(topo.n_nodes)
        h[0] = float(topo.n_nodes)
        sim = FluidSimulator(topo, h, FluidDiffusion("optimal"),
                             recorder=recorder)
        return sim.run(max_rounds=rounds)

    def test_summary_matches_full(self):
        full = self._run("full")
        summary = self._run("summary")
        assert len(summary.records) == 0
        assert summary.n_rounds == full.n_rounds
        assert summary.total_traffic == pytest.approx(full.total_traffic)
        assert summary.converged_round == full.converged_round
        assert summary.final_summary == full.final_summary

    def test_thinning_matches_full_subset(self):
        full = self._run("full")
        thin = self._run("thin:25")
        full_records = list(full.records)
        kept = full_records[::25]
        if full_records[-1] != kept[-1]:
            kept.append(full_records[-1])
        assert list(thin.records) == kept
