"""Tests for the transfer-latency (wire) model."""

import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError, TaskError
from repro.interfaces import Balancer, Migration
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


class OneShot(Balancer):
    """Moves one scripted task at round 0, then nothing."""

    name = "one-shot"

    def __init__(self, tid, src, dst):
        self.order = Migration(tid, src, dst)

    def step(self, ctx):
        return [self.order] if ctx.round_index == 0 else []


class TestTaskSystemWire:
    def test_transit_removes_from_node(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(2.0, 3)
        s.send_to_transit(tid)
        assert s.in_transit(tid)
        assert s.node_loads[3] == 0.0
        assert s.wire_load == 2.0
        assert s.total_load == 2.0  # conserved including the wire
        assert tid not in s.tasks_at(3)
        assert s.location_of(tid) == TaskSystem.TRANSIT

    def test_deliver(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(2.0, 3)
        s.send_to_transit(tid)
        s.deliver(tid, 7)
        assert not s.in_transit(tid)
        assert s.node_loads[7] == 2.0
        assert s.wire_load == 0.0
        assert s.location_of(tid) == 7

    def test_cannot_move_in_transit(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(1.0, 0)
        s.send_to_transit(tid)
        with pytest.raises(TaskError):
            s.move(tid, 1)
        with pytest.raises(TaskError):
            s.send_to_transit(tid)

    def test_deliver_requires_transit(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(1.0, 0)
        with pytest.raises(TaskError):
            s.deliver(tid, 1)

    def test_remove_while_in_transit(self, mesh4):
        s = TaskSystem(mesh4)
        tid = s.add_task(1.5, 0)
        s.send_to_transit(tid)
        s.remove_task(tid)
        assert s.wire_load == 0.0
        assert not s.is_alive(tid)
        assert s.total_load == 0.0


class TestEngineLatency:
    def test_validation(self, mesh4):
        system = TaskSystem(mesh4)
        with pytest.raises(ConfigurationError):
            Simulator(mesh4, system, OneShot(0, 0, 1), transfer_latency=-1)
        with pytest.raises(ConfigurationError):
            Simulator(mesh4, system, OneShot(0, 0, 1), transfer_latency="huge")

    def test_fixed_latency_delays_arrival(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        sim = Simulator(mesh4, system, OneShot(tid, 0, 1), transfer_latency=3)
        # After round 0 the task is on the wire.
        sim.run(max_rounds=1)
        assert system.in_transit(tid)
        assert system.node_loads.sum() == 0.0
        # Rounds 1 and 2: still flying. Lands at round 3's start.
        sim.run(max_rounds=2, reset=False)
        assert system.in_transit(tid)
        sim.run(max_rounds=1, reset=False)
        assert not system.in_transit(tid)
        assert system.location_of(tid) == 1

    def test_size_latency_scales_with_load(self, mesh4):
        system = TaskSystem(mesh4)
        small = system.add_task(1.0, 0)
        big = system.add_task(4.0, 5)

        class TwoShots(Balancer):
            name = "two-shots"

            def step(self, ctx):
                if ctx.round_index == 0:
                    return [Migration(small, 0, 1), Migration(big, 5, 6)]
                return []

        sim = Simulator(mesh4, system, TwoShots(), transfer_latency="size")
        sim.run(max_rounds=1)
        assert system.in_transit(small) and system.in_transit(big)
        sim.run(max_rounds=1, reset=False)  # round 1: small (ceil(1)=1) lands
        assert not system.in_transit(small)
        assert system.in_transit(big)
        sim.run(max_rounds=3, reset=False)  # big lands at round 4 (ceil(4)=4)
        assert not system.in_transit(big)
        assert system.location_of(big) == 6

    def test_no_false_convergence_while_flying(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        sim = Simulator(mesh4, system, OneShot(tid, 0, 1), transfer_latency=30)
        res = sim.run(max_rounds=20)
        # Engine may not declare quiescence while the wire is busy.
        assert res.converged_round is None or res.converged_round > 20

    def test_pplb_balances_under_latency(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 256, rng=0)
        total0 = system.total_load
        sim = Simulator(
            mesh8,
            system,
            ParticlePlaneBalancer(PPLBConfig()),
            transfer_latency=2,
            seed=0,
        )
        res = sim.run(max_rounds=800)
        assert res.converged
        assert system.n_in_transit == 0
        assert res.final_cov < 0.3
        assert system.total_load == pytest.approx(total0)  # conserved

    def test_latency_slows_convergence(self, mesh8):
        def rounds(latency):
            system = TaskSystem(mesh8)
            single_hotspot(system, 256, rng=0)
            sim = Simulator(
                mesh8,
                system,
                ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
                transfer_latency=latency,
                seed=0,
            )
            res = sim.run(max_rounds=1500)
            assert res.converged
            return res.converged_round

        assert rounds(0) < rounds(4)
