"""Unit tests for repro.sim.engine.Simulator (task mode)."""

import pytest

from repro.baselines import NoBalancer
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import Balancer, Migration
from repro.network import FaultModel, LinkAttributes, mesh
from repro.sim import Simulator
from repro.sim.engine import ConvergenceCriteria
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload, single_hotspot


class ScriptedBalancer(Balancer):
    """Returns pre-scripted migrations per round (for engine tests)."""

    name = "scripted"

    def __init__(self, script):
        self.script = script

    def step(self, ctx):
        return self.script.get(ctx.round_index, [])


class TestValidationAndSetup:
    def test_mismatched_system_topology(self, mesh4):
        other = mesh(3, 3)
        system = TaskSystem(other)
        with pytest.raises(ConfigurationError):
            Simulator(mesh4, system, NoBalancer())

    def test_mismatched_links(self, mesh4):
        system = TaskSystem(mesh4)
        links = LinkAttributes.uniform(mesh(3, 3))
        with pytest.raises(ConfigurationError):
            Simulator(mesh4, system, NoBalancer(), links=links)

    def test_bad_capacity_and_rounds(self, mesh4):
        system = TaskSystem(mesh4)
        with pytest.raises(ConfigurationError):
            Simulator(mesh4, system, NoBalancer(), link_capacity=0)
        sim = Simulator(mesh4, system, NoBalancer())
        with pytest.raises(ConfigurationError):
            sim.run(max_rounds=0)

    def test_criteria_validation(self):
        with pytest.raises(ConfigurationError):
            ConvergenceCriteria(quiet_rounds=0)
        with pytest.raises(ConfigurationError):
            ConvergenceCriteria(spread_tol=-1.0)


class TestOrderValidation:
    def test_rejects_move_of_dead_task(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        system.remove_task(tid)
        sim = Simulator(mesh4, system, ScriptedBalancer({0: [Migration(tid, 0, 1)]}))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)

    def test_rejects_wrong_source(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        sim = Simulator(mesh4, system, ScriptedBalancer({0: [Migration(tid, 5, 6)]}))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)

    def test_rejects_non_edge(self, mesh4):
        from repro.exceptions import TopologyError

        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        sim = Simulator(mesh4, system, ScriptedBalancer({0: [Migration(tid, 0, 5)]}))
        with pytest.raises(TopologyError):
            sim.run(max_rounds=1)

    def test_rejects_over_capacity(self, mesh4):
        system = TaskSystem(mesh4)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        sim = Simulator(
            mesh4,
            system,
            ScriptedBalancer({0: [Migration(a, 0, 1), Migration(b, 0, 1)]}),
        )
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)

    def test_capacity_2_allows_pairs(self, mesh4):
        system = TaskSystem(mesh4)
        a = system.add_task(1.0, 0)
        b = system.add_task(1.0, 0)
        sim = Simulator(
            mesh4,
            system,
            ScriptedBalancer({0: [Migration(a, 0, 1), Migration(b, 0, 1)]}),
            link_capacity=2,
        )
        res = sim.run(max_rounds=1)
        assert res.total_migrations == 2


class TestFaults:
    def test_blocked_migrations_counted_not_applied(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        attrs = LinkAttributes.uniform(mesh4)
        fm = FaultModel(attrs, rng=0, permanent={0: [(0, 1)]})
        sim = Simulator(
            mesh4,
            system,
            ScriptedBalancer({0: [Migration(tid, 0, 1)]}),
            links=attrs,
            fault_model=fm,
        )
        res = sim.run(max_rounds=1)
        assert res.total_migrations == 0
        assert res.records[0].blocked == 1
        assert system.location_of(tid) == 0


class TestAccounting:
    def test_traffic_is_load_times_cost(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(2.0, 0)
        attrs = LinkAttributes.uniform(mesh4, distance=3.0)  # e = 3
        sim = Simulator(
            mesh4, system, ScriptedBalancer({0: [Migration(tid, 0, 1)]}), links=attrs
        )
        res = sim.run(max_rounds=1)
        assert res.records[0].traffic_work == pytest.approx(6.0)

    def test_heat_passthrough(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        sim = Simulator(
            mesh4, system, ScriptedBalancer({0: [Migration(tid, 0, 1, heat=7.5)]})
        )
        res = sim.run(max_rounds=1)
        assert res.records[0].heat == pytest.approx(7.5)

    def test_journey_tracking(self, mesh4):
        system = TaskSystem(mesh4)
        tid = system.add_task(1.0, 0)
        script = {0: [Migration(tid, 0, 1)], 1: [Migration(tid, 1, 2)]}
        sim = Simulator(mesh4, system, ScriptedBalancer(script), track_journeys=True)
        sim.run(max_rounds=3)
        assert sim.task_hops[tid] == 2
        disp = sim.journey_displacements()
        assert disp[tid] == 2  # 0 -> 2 is two hops on the mesh

    def test_journey_tracking_requires_flag(self, mesh4):
        system = TaskSystem(mesh4)
        sim = Simulator(mesh4, system, NoBalancer())
        with pytest.raises(ConfigurationError):
            sim.journey_displacements()


class TestConvergence:
    def test_quiet_rounds_trigger(self, mesh4):
        system = TaskSystem(mesh4)
        system.add_task(1.0, 0)
        sim = Simulator(
            mesh4, system, NoBalancer(), criteria=ConvergenceCriteria(quiet_rounds=3)
        )
        res = sim.run(max_rounds=100)
        assert res.converged_round == 0
        assert res.n_rounds == 3

    def test_spread_tol_with_idle_balancer(self, mesh4):
        system = TaskSystem(mesh4)
        from repro.workloads import balanced

        balanced(system, tasks_per_node=2, rng=0)
        sim = Simulator(
            mesh4,
            system,
            NoBalancer(),
            criteria=ConvergenceCriteria(quiet_rounds=50, spread_tol=0.1),
        )
        res = sim.run(max_rounds=100)
        assert res.converged_round == 0
        assert res.n_rounds == 1

    def test_no_convergence_under_churn(self, mesh4):
        system = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=2.0, completion_prob=0.05, rng=0)
        sim = Simulator(mesh4, system, NoBalancer(), dynamic=wl)
        res = sim.run(max_rounds=30)
        assert res.n_rounds == 30
        assert res.converged_round is None

    def test_records_task_counts_under_churn(self, mesh4):
        system = TaskSystem(mesh4)
        wl = DynamicWorkload(arrival_rate=3.0, completion_prob=0.0, rng=0)
        sim = Simulator(mesh4, system, NoBalancer(), dynamic=wl)
        res = sim.run(max_rounds=10)
        counts = res.series("n_tasks")
        assert counts[-1] >= counts[0]
        assert counts[-1] > 0


class TestEndToEnd:
    def test_pplb_full_run_properties(self, mesh8):
        system = TaskSystem(mesh8)
        single_hotspot(system, 256, rng=0)
        total0 = system.total_load
        sim = Simulator(
            mesh8, system, ParticlePlaneBalancer(PPLBConfig()), seed=0
        )
        res = sim.run(max_rounds=300)
        assert system.total_load == pytest.approx(total0)  # conservation
        assert res.final_cov < res.initial_summary["cov"] / 10
        assert res.converged
        # spread series is eventually non-increasing-ish: final < initial
        assert res.records[-1].spread < res.records[0].spread
