"""The scalar ≡ vectorized correctness anchor (ISSUE 3's key property).

The ``rounds-fast`` engine (:class:`~repro.sim.FastSimulator`) must
reproduce the scalar synchronous :class:`~repro.sim.Simulator`
*exactly*: same seed ⇒ identical per-round records (every float),
identical final load vectors, identical convergence round — across
hotspot, multi-valley, faulted-link, heterogeneous-speed and churn
scenarios, for PPLB (stochastic and greedy) and the baselines. This is
what certifies that the fast path is a pure evaluation-order
optimisation: its batch screen skips exactly the work the scalar sweep
would have done with no effect and no RNG consumption, never a
decision.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.runner.registry import make_balancer
from repro.sim import FastSimulator, Simulator
from repro.workloads import build_scenario

#: ≥4 scenarios × 4 algorithms as demanded by the acceptance criteria,
#: plus faulted links (up-mask screening), heterogeneous speeds (the
#: effective-surface inv_s path) and churn (dynamic floors).
SCENARIOS = [
    "mesh-hotspot",
    "torus-hotspot",
    "mesh-two-valleys",
    "mesh-faulty",
    "straggler",
    "bursty-arrivals",
]
ALGORITHMS = ["pplb", "pplb-greedy", "diffusion", "work-stealing"]
SIZE = {"side": 6, "n_tasks": 180}


def _run(engine_cls, scenario_name, algorithm, seed, rounds=70, size=SIZE,
         balancer=None):
    scenario = build_scenario(scenario_name, seed=seed, **size)
    sim = engine_cls(
        scenario.topology,
        scenario.system,
        balancer if balancer is not None else make_balancer(algorithm),
        links=scenario.links,
        dynamic=scenario.dynamic,
        node_speeds=scenario.node_speeds,
        seed=seed,
    )
    result = sim.run(max_rounds=rounds)
    return result, np.array(scenario.system.node_loads)


def _assert_identical(sync_result, sync_loads, fast_result, fast_loads):
    assert [asdict(r) for r in sync_result.records] == [
        asdict(r) for r in fast_result.records
    ]
    assert sync_result.converged_round == fast_result.converged_round
    assert sync_result.initial_summary == fast_result.initial_summary
    assert sync_result.final_summary == fast_result.final_summary
    assert (sync_loads == fast_loads).all()


class TestFastEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_fast_engine_reproduces_scalar_trajectory(self, scenario, algorithm):
        sync_result, sync_loads = _run(Simulator, scenario, algorithm, seed=11)
        fast_result, fast_loads = _run(FastSimulator, scenario, algorithm, seed=11)
        _assert_identical(sync_result, sync_loads, fast_result, fast_loads)

    def test_equivalence_holds_across_seeds(self):
        # The property is seed-independent, not a lucky draw.
        for seed in (0, 1, 2):
            s, sl = _run(Simulator, "mesh-hotspot", "pplb", seed=seed)
            f, fl = _run(FastSimulator, "mesh-hotspot", "pplb", seed=seed)
            _assert_identical(s, sl, f, fl)

    def test_equivalence_at_large_n(self):
        # The screen/heap machinery sees real traffic only at scale;
        # anchor one 1024-node trajectory end to end.
        s, sl = _run(Simulator, "torus-32x32", "pplb", seed=5, rounds=40,
                     size={"n_tasks": 2048})
        f, fl = _run(FastSimulator, "torus-32x32", "pplb", seed=5, rounds=40,
                     size={"n_tasks": 2048})
        _assert_identical(s, sl, f, fl)

    def test_balancer_stats_match(self):
        # Not just the records: the balancer's own journey accounting
        # (initiated / settled / hops / heat) is identical too.
        stats = []
        for engine_cls in (Simulator, FastSimulator):
            scenario = build_scenario("mesh-hotspot", seed=7, **SIZE)
            balancer = ParticlePlaneBalancer(PPLBConfig())
            sim = engine_cls(scenario.topology, scenario.system, balancer,
                             links=scenario.links, seed=7)
            sim.run(max_rounds=70)
            stats.append(dict(balancer.stats))
        assert stats[0] == stats[1]

    def test_jittered_config_falls_back_and_still_matches(self):
        # Friction jitter draws RNG per evaluated candidate, which the
        # screen cannot reproduce — the fast engine must detect this and
        # take the scalar path, keeping equivalence rather than speed.
        cfg = PPLBConfig(friction_jitter=0.3)
        s, sl = _run(Simulator, "mesh-hotspot", "pplb", seed=3,
                     balancer=ParticlePlaneBalancer(cfg))
        f, fl = _run(FastSimulator, "mesh-hotspot", "pplb", seed=3,
                     balancer=ParticlePlaneBalancer(cfg))
        _assert_identical(s, sl, f, fl)

    @pytest.mark.parametrize("overrides", [
        {"motion_rule": "energy-only"},
        {"arbiter_score": "raw"},
        {"max_departures_per_node": 1},
        {"max_hops": 2},
        {"candidates_per_node": 1},
        {"kappa": 0.5},
    ])
    def test_config_variants_match(self, overrides):
        cfg = PPLBConfig(**overrides)
        s, sl = _run(Simulator, "mesh-two-valleys", "pplb", seed=13,
                     balancer=ParticlePlaneBalancer(cfg))
        f, fl = _run(FastSimulator, "mesh-two-valleys", "pplb", seed=13,
                     balancer=ParticlePlaneBalancer(cfg))
        _assert_identical(s, sl, f, fl)

    @pytest.mark.parametrize("sim_kwargs", [
        {"transfer_latency": 2},
        {"link_capacity": 2},
    ])
    def test_engine_kwargs_match(self, sim_kwargs):
        # Wire transit (tasks on no node) and multi-task links flow
        # through the floor cache and the reservation mask respectively.
        results = []
        for engine_cls in (Simulator, FastSimulator):
            scenario = build_scenario("mesh-hotspot", seed=9, **SIZE)
            sim = engine_cls(scenario.topology, scenario.system,
                             make_balancer("pplb"), links=scenario.links,
                             seed=9, **sim_kwargs)
            results.append((sim.run(max_rounds=70),
                            np.array(scenario.system.node_loads)))
        (s, sl), (f, fl) = results
        _assert_identical(s, sl, f, fl)

    def test_fast_context_flag_is_set(self):
        # Sanity: the dispatch actually reaches the balancer (the
        # equivalence above would hold vacuously if fast were never on).
        seen = []

        class Probe(ParticlePlaneBalancer):
            def step(self, ctx):
                seen.append(ctx.fast)
                return super().step(ctx)

        scenario = build_scenario("mesh-hotspot", seed=0, **SIZE)
        sim = FastSimulator(scenario.topology, scenario.system, Probe(),
                            links=scenario.links, seed=0)
        sim.run(max_rounds=3)
        assert seen and all(seen)
