"""Tests for chained Simulator.run(reset=False) continuation."""

import numpy as np

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot


def build(seed=0):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    single_hotspot(system, 256, rng=0)
    bal = ParticlePlaneBalancer(PPLBConfig(beta0=0.0))
    return topo, system, Simulator(topo, system, bal, seed=seed)


class TestContinuation:
    def test_chained_equals_single_run(self):
        # One 120-round run...
        _t1, s1, sim1 = build()
        sim1.run(max_rounds=120)

        # ...equals 3 chained 40-round slices with reset=False.
        _t2, s2, sim2 = build()
        sim2.run(max_rounds=40)
        sim2.run(max_rounds=40, reset=False)
        sim2.run(max_rounds=40, reset=False)

        np.testing.assert_allclose(s1.node_loads, s2.node_loads)

    def test_reset_true_restarts_balancer(self):
        _t, _s, sim = build()
        sim.run(max_rounds=5)
        assert not sim.balancer.idle()  # particles in flight mid-drain
        sim.run(max_rounds=1, reset=True)
        # reset cleared journeys before the round ran; new ones may have
        # started, but the round counter restarted from 0.
        assert sim._rounds_done == 1

    def test_round_counter_advances(self):
        _t, _s, sim = build()
        sim.run(max_rounds=10)
        assert sim._rounds_done == 10
        sim.run(max_rounds=5, reset=False)
        assert sim._rounds_done == 15

    def test_continuation_converges_and_stops(self):
        _t, _s, sim = build()
        r1 = sim.run(max_rounds=400)
        assert r1.converged
        r2 = sim.run(max_rounds=20, reset=False)
        # Already quiesced: the continuation sees only quiet rounds.
        assert r2.total_migrations == 0
