"""Unit tests for repro.sim.engine.FluidSimulator."""

import numpy as np
import pytest

from repro.baselines import FluidDiffusion
from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import FluidBalancer
from repro.sim import FluidSimulator
from repro.sim.engine import ConvergenceCriteria


class ConstantFlow(FluidBalancer):
    name = "constant-flow"

    def __init__(self, flow):
        self.flow = flow

    def fluid_step(self, h, ctx):
        return self.flow


class TestValidation:
    def test_shape_checked(self, mesh4):
        with pytest.raises(ConfigurationError):
            FluidSimulator(mesh4, np.ones(5), FluidDiffusion())

    def test_negative_initial_rejected(self, mesh4):
        h = np.ones(16)
        h[0] = -1.0
        with pytest.raises(ConfigurationError):
            FluidSimulator(mesh4, h, FluidDiffusion())

    def test_flow_shape_checked(self, mesh4):
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(np.zeros(3)))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)

    def test_oversupply_flow_rejected(self, mesh4):
        # Demand 100 units out of node 0 which holds 1.
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = 100.0
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)


class TestBehaviour:
    def test_initial_loads_copied(self, mesh4):
        h0 = np.ones(16)
        sim = FluidSimulator(mesh4, h0, FluidDiffusion())
        sim.run(max_rounds=3)
        np.testing.assert_allclose(h0, 1.0)  # caller's array untouched

    def test_traffic_is_flow_times_cost(self, mesh4):
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = 0.5
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        res = sim.run(max_rounds=1)
        assert res.records[0].traffic_work == pytest.approx(0.5)

    def test_convergence_criterion(self, mesh4):
        h0 = np.zeros(16)
        h0[0] = 16.0
        sim = FluidSimulator(
            mesh4, h0, FluidDiffusion("optimal"),
            criteria=ConvergenceCriteria(spread_tol=1e-3),
        )
        res = sim.run(max_rounds=3000)
        assert res.converged
        assert res.final_spread <= 1e-3

    def test_negative_flow_moves_reverse(self, mesh4):
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = -0.5  # move from node 1 to node 0
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        sim.run(max_rounds=1)
        assert sim.h[0] == pytest.approx(1.5)
        assert sim.h[1] == pytest.approx(0.5)
