"""Unit tests for repro.sim.engine.FluidSimulator.

Includes the engine's dedicated regression suite: record parity
through the shared simulation kernel (the fluid driver produces the
same record shape/fields as the task engines) and a convergence-rate
regression pinning the optimal-α diffusion run against the spectral
prediction ``γ = max |1 − α·λ|``.
"""

import numpy as np
import pytest

from repro.analysis.convergence import fit_convergence_rate, spectral_gamma
from repro.baselines import FluidDiffusion
from repro.baselines.diffusion import optimal_alpha
from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import FluidBalancer
from repro.sim import FluidSimulator
from repro.sim.engine import ConvergenceCriteria


class ConstantFlow(FluidBalancer):
    name = "constant-flow"

    def __init__(self, flow):
        self.flow = flow

    def fluid_step(self, h, ctx):
        return self.flow


class TestValidation:
    def test_shape_checked(self, mesh4):
        with pytest.raises(ConfigurationError):
            FluidSimulator(mesh4, np.ones(5), FluidDiffusion())

    def test_negative_initial_rejected(self, mesh4):
        h = np.ones(16)
        h[0] = -1.0
        with pytest.raises(ConfigurationError):
            FluidSimulator(mesh4, h, FluidDiffusion())

    def test_flow_shape_checked(self, mesh4):
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(np.zeros(3)))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)

    def test_oversupply_flow_rejected(self, mesh4):
        # Demand 100 units out of node 0 which holds 1.
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = 100.0
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        with pytest.raises(SimulationError):
            sim.run(max_rounds=1)


class TestBehaviour:
    def test_initial_loads_copied(self, mesh4):
        h0 = np.ones(16)
        sim = FluidSimulator(mesh4, h0, FluidDiffusion())
        sim.run(max_rounds=3)
        np.testing.assert_allclose(h0, 1.0)  # caller's array untouched

    def test_traffic_is_flow_times_cost(self, mesh4):
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = 0.5
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        res = sim.run(max_rounds=1)
        assert res.records[0].traffic_work == pytest.approx(0.5)

    def test_convergence_criterion(self, mesh4):
        h0 = np.zeros(16)
        h0[0] = 16.0
        sim = FluidSimulator(
            mesh4, h0, FluidDiffusion("optimal"),
            criteria=ConvergenceCriteria(spread_tol=1e-3),
        )
        res = sim.run(max_rounds=3000)
        assert res.converged
        assert res.final_spread <= 1e-3

    def test_negative_flow_moves_reverse(self, mesh4):
        flow = np.zeros(mesh4.n_edges)
        flow[mesh4.edge_id(0, 1)] = -0.5  # move from node 1 to node 0
        sim = FluidSimulator(mesh4, np.ones(16), ConstantFlow(flow))
        sim.run(max_rounds=1)
        assert sim.h[0] == pytest.approx(1.5)
        assert sim.h[1] == pytest.approx(0.5)


class TestKernelRecordParity:
    """The fluid driver speaks the same record dialect as task engines."""

    def test_record_fields_through_the_kernel(self, mesh4):
        h0 = np.zeros(16)
        h0[0] = 16.0
        sim = FluidSimulator(mesh4, h0, FluidDiffusion())
        res = sim.run(max_rounds=5)
        for i, r in enumerate(res.records):
            assert r.round_index == i
            # Fluid mode has no tasks, wire or clocks: those record
            # fields are identically zero, never junk.
            assert r.in_flight == 0 and r.blocked == 0
            assert r.n_tasks == 0 and r.asleep == 0
            assert r.heat == 0.0
            assert r.spread == pytest.approx(r.max_load - r.min_load)
        assert res.balancer_name == "diffusion-uniform"

    def test_series_and_totals_agree_with_records(self, mesh4):
        h0 = np.zeros(16)
        h0[0] = 16.0
        res = FluidSimulator(mesh4, h0, FluidDiffusion()).run(max_rounds=20)
        np.testing.assert_array_equal(
            res.series("traffic_work"),
            np.asarray([r.traffic_work for r in res.records]),
        )
        assert res.total_traffic == pytest.approx(
            sum(r.traffic_work for r in res.records)
        )

    def test_spread_series_is_monotone_under_diffusion(self, mesh8):
        h0 = np.zeros(64)
        h0[0] = 64.0
        res = FluidSimulator(mesh8, h0, FluidDiffusion("optimal")).run(
            max_rounds=200
        )
        spread = res.series("spread")
        assert (np.diff(spread) <= 1e-9).all()


class TestConvergenceRegression:
    """Optimal-α diffusion must contract at the spectral rate.

    A regression anchor for the whole fluid pipeline (engine → kernel →
    recorder → series → rate fit): if any stage corrupts the per-round
    spread series, the fitted γ drifts off the eigenvalue prediction.
    """

    def test_measured_rate_matches_spectral_prediction(self, mesh8):
        alpha = optimal_alpha(mesh8)
        predicted = spectral_gamma(mesh8.laplacian, alpha)
        h0 = np.zeros(64)
        h0[0] = 64.0
        res = FluidSimulator(
            mesh8, h0, FluidDiffusion("optimal"),
            criteria=ConvergenceCriteria(spread_tol=1e-9),
        ).run(max_rounds=3000)
        assert res.converged
        # Fit on the geometric tail (skip the non-asymptotic opening).
        series = res.series("spread")[20:400]
        gamma, _ = fit_convergence_rate(series)
        assert gamma == pytest.approx(predicted, rel=0.05)
        assert gamma < 1.0

    def test_convergence_round_is_stable(self, mesh8):
        # The exact converged_round is deterministic; pin it so silent
        # changes to the kernel's convergence bookkeeping surface here.
        h0 = np.zeros(64)
        h0[0] = 64.0
        runs = [
            FluidSimulator(
                mesh8, h0, FluidDiffusion("optimal"),
                criteria=ConvergenceCriteria(spread_tol=1e-6),
            ).run(max_rounds=5000)
            for _ in range(2)
        ]
        assert runs[0].converged and runs[1].converged
        assert runs[0].converged_round == runs[1].converged_round
        assert runs[0].log == runs[1].log
