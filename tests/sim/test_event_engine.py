"""Unit tests for the discrete-event asynchronous engine.

Covers defensive validation on the event path (invalid orders raise
:class:`~repro.exceptions.SimulationError` exactly as on the
synchronous path), the heterogeneous clock model (speeds, stragglers,
jitter), latency-delayed transfers and configuration validation.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError, TopologyError
from repro.interfaces import Balancer, Migration
from repro.network import mesh
from repro.runner.registry import make_balancer
from repro.sim import EventSimulator
from repro.tasks import TaskSystem
from repro.workloads import build_scenario, single_hotspot


def _setup(side=4, n_tasks=48, seed=0):
    topo = mesh(side, side)
    system = TaskSystem(topo)
    ids = single_hotspot(system, n_tasks, rng=seed)
    return topo, system, ids


class _ScriptedBalancer(Balancer):
    """Returns a fixed order list on the first step, then nothing."""

    name = "scripted"

    def __init__(self, orders):
        self.orders = list(orders)

    def step(self, ctx):
        orders, self.orders = self.orders, []
        return orders


class TestDefensiveValidation:
    def test_dead_task_raises(self):
        topo, system, ids = _setup()
        dead = ids[0]
        system.remove_task(dead)
        sim = EventSimulator(topo, system, _ScriptedBalancer([Migration(dead, 0, 1)]))
        with pytest.raises(SimulationError, match="dead task"):
            sim.run(max_rounds=3)

    def test_wrong_source_raises(self):
        topo, system, ids = _setup()
        tid = ids[0]
        src = system.location_of(tid)
        wrong = (src + 1) % topo.n_nodes
        nbr = int(topo.neighbors(wrong)[0])
        sim = EventSimulator(topo, system, _ScriptedBalancer([Migration(tid, wrong, nbr)]))
        with pytest.raises(SimulationError, match="not at claimed source"):
            sim.run(max_rounds=3)

    def test_non_edge_raises(self):
        topo, system, ids = _setup()
        tid = ids[0]
        src = system.location_of(tid)
        # Opposite mesh corner is never adjacent on a 4×4 mesh.
        far = topo.n_nodes - 1 - src
        sim = EventSimulator(topo, system, _ScriptedBalancer([Migration(tid, src, far)]))
        with pytest.raises(TopologyError):
            sim.run(max_rounds=3)

    def test_link_capacity_spans_waves_within_an_epoch(self):
        # "A single load per link per time unit" must hold across
        # desynchronised waves: with cadence 0.5 the waves at t=0.5 and
        # t=1.0 fall in the same epoch, so the second transfer over the
        # same link is refused as busy, not applied.
        topo, system, ids = _setup()
        src = system.location_of(ids[0])  # the hotspot node
        on_src = [int(t) for t in system.tasks_at(src)][:3]
        nbr = int(topo.neighbors(src)[0])
        orders = [Migration(t, src, nbr) for t in on_src]

        class OnePerStep(Balancer):
            name = "one-per-step"

            def step(self, ctx):
                return [orders.pop(0)] if orders else []

        sim = EventSimulator(topo, system, OnePerStep(), cadence=0.5,
                             link_capacity=1, seed=0)
        result = sim.run(max_rounds=3)
        # t=0 wave: applied (epoch 0). t=0.5 wave: applied; t=1.0 wave:
        # link busy (both land in epoch 1's record).
        assert result.records[0].n_migrations == 1
        assert result.records[1].n_migrations == 1
        assert result.records[1].blocked == 1
        # The refused task never moved.
        assert system.location_of(on_src[2]) == src

    def test_over_capacity_raises(self):
        topo, system, ids = _setup()
        src = system.location_of(ids[0])
        nbr = int(topo.neighbors(src)[0])
        on_src = [int(t) for t in system.tasks_at(src)][:2]
        assert len(on_src) == 2
        orders = [Migration(t, src, nbr) for t in on_src]
        sim = EventSimulator(topo, system, _ScriptedBalancer(orders), link_capacity=1)
        with pytest.raises(SimulationError, match="over capacity"):
            sim.run(max_rounds=3)


class TestClockModel:
    def test_stragglers_wake_less_often(self):
        topo, system, _ = _setup(n_tasks=64)
        sim = EventSimulator(
            topo, system, make_balancer("diffusion"),
            stragglers={0: 4.0}, seed=0,
            # Disable early convergence so every clock runs the full span.
        )
        sim.run(max_rounds=40)
        assert sim.wakes_per_node[0] < sim.wakes_per_node[1]
        # 4x slowdown => roughly a quarter of the wakes.
        assert sim.wakes_per_node[0] == pytest.approx(
            sim.wakes_per_node[1] / 4, abs=2
        )

    def test_string_straggler_keys_accepted(self):
        # sim_kwargs cross a JSON boundary in the runner cache, where
        # mapping keys become strings.
        topo, system, _ = _setup()
        sim = EventSimulator(
            topo, system, make_balancer("diffusion"), stragglers={"0": 2.0}, seed=0
        )
        sim.run(max_rounds=10)
        assert sim.wakes_per_node[0] < sim.wakes_per_node[1]

    def test_node_speeds_drive_default_cadence(self):
        topo, system, _ = _setup(n_tasks=64)
        speeds = np.ones(topo.n_nodes)
        speeds[3] = 0.25
        sim = EventSimulator(
            topo, system, make_balancer("diffusion"), node_speeds=speeds, seed=0
        )
        sim.run(max_rounds=40)
        assert sim.wakes_per_node[3] < sim.wakes_per_node[0]

    def test_wake_jitter_desynchronises_clocks(self):
        topo, system, _ = _setup(n_tasks=64)
        sim = EventSimulator(
            topo, system, make_balancer("diffusion"), wake_jitter=0.3, seed=0
        )
        result = sim.run(max_rounds=30)
        # Once desynchronised, waves are smaller than the full machine:
        # strictly more wake events than epochs-with-a-single-wave.
        assert sim.wakes_per_node.sum() > len(result.records)
        assert result.n_rounds >= 1

    def test_generator_seed_with_jitter_leaves_context_stream_untouched(self):
        # When the seed IS a Generator, deriving the clock stream must
        # not consume draws from it (spawn only bumps the spawn
        # counter) — otherwise toggling jitter would change stochastic
        # balancer trajectories at construction time.
        topo, system, _ = _setup()
        plain = np.random.default_rng(7)
        jittered = np.random.default_rng(7)
        EventSimulator(topo, system, make_balancer("none"), seed=plain)
        EventSimulator(topo, system, make_balancer("none"), seed=jittered,
                       wake_jitter=0.3)
        assert plain.integers(0, 2**31) == jittered.integers(0, 2**31)

    def test_wake_jitter_draws_do_not_perturb_balancer_stream(self):
        # Two runs with/without jitter use the same ctx rng stream for
        # the first (full) wave at t=0; jitter must come from its own
        # derived stream, not the context generator.
        topo_a, system_a, _ = _setup()
        topo_b, system_b, _ = _setup()
        a = EventSimulator(topo_a, system_a, make_balancer("work-stealing"), seed=9)
        b = EventSimulator(
            topo_b, system_b, make_balancer("work-stealing"), seed=9, wake_jitter=0.2
        )
        ra = a.run(max_rounds=1)
        rb = b.run(max_rounds=1)
        # Epoch 0 is a full wave in both runs (first jittered period
        # only affects wakes after t=0), so round 0 must be identical.
        assert ra.records[0] == rb.records[0]


class TestLatency:
    def test_size_latency_puts_tasks_on_the_wire(self):
        topo, system, _ = _setup(n_tasks=64)
        total_before = system.total_load
        sim = EventSimulator(
            topo, system, make_balancer("pplb"),
            transfer_latency="size", latency_scale=0.5, seed=0,
        )
        result = sim.run(max_rounds=120)
        # Load is conserved through transit, and everything eventually lands.
        assert system.total_load == pytest.approx(total_before)
        assert system.n_in_transit == 0
        assert result.n_rounds >= 1

    def test_constant_latency_delays_arrivals(self):
        topo, system, ids = _setup()
        tid = ids[0]
        src = system.location_of(tid)
        nbr = int(topo.neighbors(src)[0])
        sim = EventSimulator(
            topo, system, _ScriptedBalancer([Migration(tid, src, nbr)]),
            transfer_latency=2.5, seed=0,
        )
        result = sim.run(max_rounds=10)
        assert system.location_of(tid) == nbr
        # While on the wire the task is on no node: round 0 records the
        # post-departure surface.
        assert result.records[0].n_migrations == 1

    def test_second_run_lands_leftover_in_transit_tasks(self):
        # A run cut off with tasks on the wire must not strand them: a
        # fresh run() first lands everything (the event-engine analogue
        # of the sync engine draining its wire dict on reset).
        topo, system, _ = _setup(n_tasks=64)
        total = system.total_load
        sim = EventSimulator(
            topo, system, make_balancer("pplb"),
            transfer_latency=3.0, seed=0,
        )
        sim.run(max_rounds=3)  # stops mid-flight: arrivals still queued
        assert system.n_in_transit > 0
        result = sim.run(max_rounds=200)
        assert system.n_in_transit == 0
        assert system.total_load == pytest.approx(total)
        assert float(np.sum(system.node_loads)) == pytest.approx(total)
        assert result.converged

    def test_faulted_link_blocks_on_event_path(self):
        from repro.network.faults import FaultModel
        from repro.network.links import LinkAttributes

        topo, system, ids = _setup()
        tid = ids[0]
        src = system.location_of(tid)
        nbr = int(topo.neighbors(src)[0])
        attrs = LinkAttributes.uniform(topo)
        fm = FaultModel(attrs, permanent={0: [(src, nbr)]}, repair_after=None)
        sim = EventSimulator(
            topo, system, _ScriptedBalancer([Migration(tid, src, nbr)]),
            links=attrs, fault_model=fm, seed=0,
        )
        result = sim.run(max_rounds=5)
        assert system.location_of(tid) == src
        assert result.records[0].blocked == 1


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        topo, system, _ = _setup()
        bal = make_balancer("none")
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, cadence=0.0)
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, epoch=-1.0)
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, wake_jitter=1.0)
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, transfer_latency=-1)
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, transfer_latency="huge")
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, stragglers={0: 0.5})
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, stragglers={99: 2.0})
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal, clock_speeds=np.zeros(topo.n_nodes))
        with pytest.raises(ConfigurationError):
            EventSimulator(topo, system, bal).run(max_rounds=0)

    def test_counts_events_and_reports_progress(self):
        topo, system, _ = _setup()
        sim = EventSimulator(topo, system, make_balancer("diffusion"), seed=0)
        result = sim.run(max_rounds=20)
        # At least one wake per node per epoch plus the epoch events.
        assert sim.events_processed > result.n_rounds * topo.n_nodes
        assert sim.now == pytest.approx(result.n_rounds - 1)


class TestScenarios:
    def test_straggler_scenario_carries_speeds(self):
        sc = build_scenario("straggler", seed=0, side=4, n_tasks=32)
        assert sc.node_speeds is not None
        assert (sc.node_speeds < 1).sum() >= 1
        assert ((sc.node_speeds == 1) | (sc.node_speeds == 0.25)).all()

    def test_bursty_scenario_carries_churn(self):
        sc = build_scenario("bursty-arrivals", seed=0, side=4, n_tasks=32)
        assert sc.dynamic is not None
        assert sc.dynamic.arrival_nodes is not None
        assert len(sc.dynamic.arrival_nodes) == 4

    def test_bursty_runs_on_both_engines(self):
        from repro.runner import RunSpec, execute_spec

        for engine in ("rounds", "events"):
            spec = RunSpec(
                scenario="bursty-arrivals", algorithm="diffusion", seed=2,
                max_rounds=30, scenario_kwargs={"side": 4, "n_tasks": 32},
                engine=engine,
            )
            result = execute_spec(spec)
            assert result.n_rounds == 30  # churn: no quiescent convergence

    def test_sim_kwargs_override_scenario_extras(self):
        # A spec may override scenario-carried engine extras (e.g. the
        # straggler scenario's node_speeds) without a duplicate-keyword
        # crash; lists coerce like any node_speeds input.
        from repro.runner import RunSpec, execute_spec

        spec = RunSpec(
            scenario="straggler", algorithm="diffusion", seed=0, max_rounds=20,
            scenario_kwargs={"side": 4, "n_tasks": 32},
            sim_kwargs={"node_speeds": [1.0] * 16, "dynamic": None},
            engine="events",
        )
        result = execute_spec(spec)
        assert result.n_rounds >= 1
