"""Unit tests for repro.sim.metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim import (
    coefficient_of_variation,
    imbalance_summary,
    max_min_spread,
    normalized_spread,
)
from repro.sim.metrics import transport_work


class TestImbalance:
    def test_flat_is_zero(self):
        h = np.full(10, 3.0)
        assert coefficient_of_variation(h) == 0.0
        assert max_min_spread(h) == 0.0
        assert normalized_spread(h) == 0.0

    def test_empty_system_is_zero(self):
        h = np.zeros(5)
        assert coefficient_of_variation(h) == 0.0
        assert normalized_spread(h) == 0.0

    def test_known_values(self):
        h = np.array([0.0, 10.0])
        assert max_min_spread(h) == 10.0
        assert coefficient_of_variation(h) == pytest.approx(1.0)  # std=5, mean=5
        assert normalized_spread(h) == pytest.approx(2.0)

    def test_scale_invariance_of_cov(self):
        h = np.array([1.0, 2.0, 3.0])
        assert coefficient_of_variation(h) == pytest.approx(
            coefficient_of_variation(10 * h)
        )

    def test_summary_consistent(self):
        h = np.array([1.0, 2.0, 3.0, 6.0])
        s = imbalance_summary(h)
        assert s["mean"] == pytest.approx(3.0)
        assert s["spread"] == pytest.approx(5.0)
        assert s["cov"] == pytest.approx(coefficient_of_variation(h))
        assert s["max"] == 6.0 and s["min"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation(np.array([]))
        with pytest.raises(ConfigurationError):
            max_min_spread(np.array([[1.0, 2.0]]))
        with pytest.raises(ConfigurationError):
            imbalance_summary(np.array([-1.0, 2.0]))


class TestTransportWork:
    def test_sum_of_products(self):
        assert transport_work(np.array([2.0, 3.0]), np.array([1.0, 2.0])) == 8.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            transport_work(np.ones(3), np.ones(2))
