"""Unit tests for repro.sim.results."""

import json

import numpy as np
import pytest

from repro.sim import RoundRecord, SimulationResult


def make_result(spreads, migrations=None, converged=None):
    migrations = migrations or [1] * len(spreads)
    res = SimulationResult(balancer_name="test")
    for r, (s, m) in enumerate(zip(spreads, migrations)):
        res.records.append(
            RoundRecord(
                round_index=r,
                n_migrations=m,
                traffic_work=float(m) * 2.0,
                heat=float(m) * 0.5,
                cov=s / 10.0,
                spread=s,
                max_load=s,
                min_load=0.0,
            )
        )
    res.converged_round = converged
    res.initial_summary = {"cov": 5.0, "spread": 50.0}
    res.final_summary = {"cov": spreads[-1] / 10.0, "spread": spreads[-1]}
    return res


class TestSeries:
    def test_series_extraction(self):
        res = make_result([10.0, 5.0, 1.0])
        np.testing.assert_allclose(res.series("spread"), [10.0, 5.0, 1.0])
        np.testing.assert_allclose(res.series("n_migrations"), [1, 1, 1])

    def test_totals(self):
        res = make_result([10.0, 5.0], migrations=[3, 2])
        assert res.total_migrations == 5
        assert res.total_traffic == pytest.approx(10.0)
        assert res.total_heat == pytest.approx(2.5)
        assert res.n_rounds == 2

    def test_final_metrics(self):
        res = make_result([10.0, 4.0])
        assert res.final_spread == 4.0
        assert res.final_cov == pytest.approx(0.4)

    def test_converged_flags(self):
        assert make_result([1.0], converged=0).converged
        assert not make_result([1.0]).converged

    def test_rounds_to_spread(self):
        res = make_result([10.0, 5.0, 1.0, 0.5])
        assert res.rounds_to_spread(5.0) == 1
        assert res.rounds_to_spread(0.6) == 3
        assert res.rounds_to_spread(0.1) is None

    def test_summary_row_keys(self):
        row = make_result([2.0], converged=0).summary_row()
        assert row["algorithm"] == "test"
        assert {"rounds", "final_cov", "migrations", "traffic", "heat"} <= set(row)


class TestSerialization:
    def test_dict_roundtrip_is_exact(self):
        res = make_result([10.0, 5.0, 1.0], migrations=[3, 2, 0], converged=2)
        res.wall_time_s = 0.123456789
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone == res

    def test_roundtrip_survives_json(self):
        # The runner's cache stores to_dict() as JSON; floats must
        # survive the encode/decode unchanged.
        res = make_result([0.1 + 0.2, 1e-17], converged=None)
        clone = SimulationResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone == res
        assert clone.records[0].spread == 0.1 + 0.2

    def test_roundtrip_preserves_behavior(self):
        res = make_result([10.0, 5.0, 1.0], migrations=[3, 2, 0], converged=2)
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone.converged and clone.converged_round == 2
        assert clone.total_migrations == res.total_migrations
        np.testing.assert_array_equal(clone.series("spread"), res.series("spread"))
        assert clone.summary_row() == res.summary_row()

    def test_to_dict_is_json_ready(self):
        payload = make_result([1.0]).to_dict()
        json.dumps(payload)  # must not raise
        assert set(payload) == {
            "records", "converged_round", "initial_summary",
            "final_summary", "balancer_name", "wall_time_s",
        }
