"""Unit tests for repro.sim.results."""

import json

import numpy as np
import pytest

from repro.sim import RoundRecord, SimulationResult


def make_result(spreads, migrations=None, converged=None):
    migrations = migrations or [1] * len(spreads)
    res = SimulationResult(balancer_name="test")
    for r, (s, m) in enumerate(zip(spreads, migrations)):
        res.records.append(
            RoundRecord(
                round_index=r,
                n_migrations=m,
                traffic_work=float(m) * 2.0,
                heat=float(m) * 0.5,
                cov=s / 10.0,
                spread=s,
                max_load=s,
                min_load=0.0,
            )
        )
    res.converged_round = converged
    res.initial_summary = {"cov": 5.0, "spread": 50.0}
    res.final_summary = {"cov": spreads[-1] / 10.0, "spread": spreads[-1]}
    return res


class TestSeries:
    def test_series_extraction(self):
        res = make_result([10.0, 5.0, 1.0])
        np.testing.assert_allclose(res.series("spread"), [10.0, 5.0, 1.0])
        np.testing.assert_allclose(res.series("n_migrations"), [1, 1, 1])

    def test_totals(self):
        res = make_result([10.0, 5.0], migrations=[3, 2])
        assert res.total_migrations == 5
        assert res.total_traffic == pytest.approx(10.0)
        assert res.total_heat == pytest.approx(2.5)
        assert res.n_rounds == 2

    def test_final_metrics(self):
        res = make_result([10.0, 4.0])
        assert res.final_spread == 4.0
        assert res.final_cov == pytest.approx(0.4)

    def test_converged_flags(self):
        assert make_result([1.0], converged=0).converged
        assert not make_result([1.0]).converged

    def test_rounds_to_spread(self):
        res = make_result([10.0, 5.0, 1.0, 0.5])
        assert res.rounds_to_spread(5.0) == 1
        assert res.rounds_to_spread(0.6) == 3
        assert res.rounds_to_spread(0.1) is None

    def test_summary_row_keys(self):
        row = make_result([2.0], converged=0).summary_row()
        assert row["algorithm"] == "test"
        assert {"rounds", "final_cov", "migrations", "traffic", "heat"} <= set(row)


class TestSerialization:
    def test_dict_roundtrip_is_exact(self):
        res = make_result([10.0, 5.0, 1.0], migrations=[3, 2, 0], converged=2)
        res.wall_time_s = 0.123456789
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone == res

    def test_roundtrip_survives_json(self):
        # The runner's cache stores to_dict() as JSON; floats must
        # survive the encode/decode unchanged.
        res = make_result([0.1 + 0.2, 1e-17], converged=None)
        clone = SimulationResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert clone == res
        assert clone.records[0].spread == 0.1 + 0.2

    def test_roundtrip_preserves_behavior(self):
        res = make_result([10.0, 5.0, 1.0], migrations=[3, 2, 0], converged=2)
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone.converged and clone.converged_round == 2
        assert clone.total_migrations == res.total_migrations
        np.testing.assert_array_equal(clone.series("spread"), res.series("spread"))
        assert clone.summary_row() == res.summary_row()

    def test_to_dict_is_json_ready_and_columnar(self):
        payload = make_result([1.0]).to_dict()
        json.dumps(payload)  # must not raise
        assert set(payload) == {
            "format", "columns", "aggregates", "converged_round",
            "initial_summary", "final_summary", "balancer_name",
            "wall_time_s",
        }
        assert payload["format"] == 2
        # One array per field, keys stored once — not one dict per round.
        assert payload["columns"]["spread"] == [1.0]
        assert payload["columns"]["n_migrations"] == [1]

    def test_from_dict_reads_legacy_record_list_format(self):
        # Results cached before the columnar switch keep replaying.
        res = make_result([10.0, 5.0], migrations=[3, 2], converged=1)
        legacy = {
            "records": [
                {
                    "round_index": r.round_index,
                    "n_migrations": r.n_migrations,
                    "traffic_work": r.traffic_work,
                    "heat": r.heat,
                    "cov": r.cov,
                    "spread": r.spread,
                    "max_load": r.max_load,
                    "min_load": r.min_load,
                    "in_flight": r.in_flight,
                    "blocked": r.blocked,
                    "n_tasks": r.n_tasks,
                    "asleep": r.asleep,
                }
                for r in res.records
            ],
            "converged_round": res.converged_round,
            "initial_summary": dict(res.initial_summary),
            "final_summary": dict(res.final_summary),
            "balancer_name": res.balancer_name,
            "wall_time_s": res.wall_time_s,
        }
        clone = SimulationResult.from_dict(json.loads(json.dumps(legacy)))
        assert clone == res
        assert list(clone.records) == list(res.records)

    def test_columnar_payload_is_smaller_than_legacy(self):
        res = make_result([float(s) for s in range(200, 0, -1)])
        legacy_size = len(json.dumps({
            "records": [
                {f: getattr(r, f) for f in (
                    "round_index", "n_migrations", "traffic_work", "heat",
                    "cov", "spread", "max_load", "min_load", "in_flight",
                    "blocked", "n_tasks", "asleep")}
                for r in res.records
            ],
        }))
        columnar_size = len(json.dumps({"columns": res.to_dict()["columns"]}))
        assert columnar_size < 0.6 * legacy_size
