"""Seeded fuzz: composed-grammar scenarios through three engines.

Property: for *any* workload the composition grammar can express, the
batched event engine reproduces the scalar event engine bit for bit —
and under unit clocks both reproduce the synchronous engine. The
scenario pool is the :func:`repro.runner.spec.expand_component_grid`
cross product over topology × placement × links × heterogeneity ×
dynamics axes; a seeded sampler draws a fixed pseudo-random subset so
the suite stays fast while every run exercises the same (reproducible)
slice. Bump ``FUZZ_SEED`` to re-roll the slice.
"""

import random
from dataclasses import asdict

import numpy as np
import pytest

from repro.runner.registry import make_balancer
from repro.runner.spec import expand_component_grid, grid_seeds
from repro.sim import EventFastSimulator, EventSimulator, Simulator
from repro.workloads import build_scenario

FUZZ_SEED = 20260807
N_SAMPLES = 8

#: component axes — every kind of the grammar is represented, sizes
#: kept small so a sampled run finishes in well under a second.
TOPOLOGIES = ["mesh:6x6", "torus:6x6", "hypercube:4", "ring:24", "kary:k=3,n=3"]
PLACEMENTS = [
    "hotspot:n_tasks=140",
    "uniform:n_tasks=140",
    "clustered:n_tasks=140",
    "power-law:n_tasks=140",
    "two-valleys:n_tasks=140",
]
LINKS = ["unit", "jittered", "faulty:fault=0.05"]
HETEROGENEITY = [None, "stragglers:frac=0.2"]
DYNAMICS = [None, "churn:rate=3.0", "diurnal"]
ALGORITHMS = ["pplb", "diffusion", "work-stealing", "gradient-model"]


def _sampled_specs():
    """A deterministic pseudo-random slice of the full component grid."""
    pool = expand_component_grid(
        ALGORITHMS,
        grid_seeds(2),
        topologies=TOPOLOGIES,
        placements=PLACEMENTS,
        links=LINKS,
        heterogeneity=HETEROGENEITY,
        dynamics=DYNAMICS,
        max_rounds=40,
    )
    return random.Random(FUZZ_SEED).sample(pool, N_SAMPLES)


SPECS = _sampled_specs()


def _run(engine_cls, spec, unit_clocks=False, **sim_kwargs):
    scenario = build_scenario(spec.scenario, seed=spec.seed)
    if unit_clocks and engine_cls is not Simulator:
        # Heterogeneity components slow straggler *clocks* along with
        # their processing speed (clock_speeds defaults to
        # node_speeds); the sync-equivalence leg of the property is
        # about unit clocks, so pin them while keeping the processing
        # heterogeneity the sync engine also sees.
        sim_kwargs["clock_speeds"] = np.ones(scenario.topology.n_nodes)
    sim = engine_cls(
        scenario.topology,
        scenario.system,
        make_balancer(spec.algorithm),
        links=scenario.links,
        dynamic=scenario.dynamic,
        node_speeds=scenario.node_speeds,
        seed=spec.seed,
        **sim_kwargs,
    )
    result = sim.run(max_rounds=spec.max_rounds)
    return result, np.array(scenario.system.node_loads), sim


@pytest.mark.parametrize("spec", SPECS, ids=[s.label() for s in SPECS])
def test_three_engines_agree_under_unit_clocks(spec):
    rounds_res, rounds_loads, _ = _run(Simulator, spec)
    ev_res, ev_loads, ev_sim = _run(EventSimulator, spec, unit_clocks=True)
    fast_res, fast_loads, fast_sim = _run(EventFastSimulator, spec, unit_clocks=True)

    rounds_records = [asdict(r) for r in rounds_res.records]
    ev_records = [asdict(r) for r in ev_res.records]
    fast_records = [asdict(r) for r in fast_res.records]
    # Unit clocks: the async engines degenerate to the sync protocol.
    assert rounds_records == ev_records
    # And batched ≡ scalar events, down to the RNG stream.
    assert ev_records == fast_records
    assert (ev_loads == fast_loads).all()
    assert (rounds_loads == ev_loads).all()
    assert ev_sim.events_processed == fast_sim.events_processed
    assert ev_sim.rng.bit_generator.state == fast_sim.rng.bit_generator.state


@pytest.mark.parametrize("spec", SPECS, ids=[s.label() for s in SPECS])
def test_event_engines_agree_under_jittered_clocks(spec):
    # Off the degenerate configuration the sync engine no longer
    # applies, but events-fast must still track events exactly.
    kwargs = {"wake_jitter": 0.3, "transfer_latency": 0.4}
    ev_res, ev_loads, ev_sim = _run(EventSimulator, spec, **kwargs)
    fast_res, fast_loads, fast_sim = _run(EventFastSimulator, spec, **kwargs)
    assert [asdict(r) for r in ev_res.records] == [
        asdict(r) for r in fast_res.records
    ]
    assert (ev_loads == fast_loads).all()
    assert ev_sim.events_processed == fast_sim.events_processed
    assert ev_sim.rng.bit_generator.state == fast_sim.rng.bit_generator.state
