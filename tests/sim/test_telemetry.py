"""Unit and differential tests for the probe-based telemetry layer.

The probe contract has two halves. *Passivity*: no probe may change a
simulation — records, RNG consumption and the wire payload are
bit-identical whether a run carries the null probe, the counters probe
or the trace probe, and a probe-less payload has no ``telemetry`` key
at all (byte-identical to the pre-telemetry wire format). *Fidelity*:
the counters a probe reports describe the decisions actually taken, so
the decision-invariant subset must agree exactly between each scalar
engine and its vectorised twin (``rounds`` ↔ ``rounds-fast``,
``events`` ↔ ``events-fast``) while the screen-effectiveness counters
(``balancer.phase_b_nodes``, ``screen.*``) are exactly the ones allowed
to differ.
"""

import dataclasses
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runner.registry import make_balancer
from repro.sim import (
    CountersProbe,
    EventFastSimulator,
    EventSimulator,
    FastSimulator,
    NullProbe,
    Probe,
    SimulationResult,
    Simulator,
    TraceProbe,
    make_probe,
    probe_tag,
)
from repro.sim.telemetry import DEFAULT_TRACE_PATH, NULL_PROBE
from repro.workloads import build_scenario

SIZE = {"side": 6, "n_tasks": 180}

#: counters that must agree between an engine and its vectorised twin:
#: everything describing a *decision* (what moved, what the RNG fed).
DECISION_INVARIANT = [
    "balancer.initiated",
    "balancer.settled",
    "balancer.hops",
    "balancer.arbiter_choices",
    "balancer.rng_draws",
    "balancer.phase_a_decisions",
    "engine.transfers_applied",
    "engine.transfers_blocked",
]


def _run(engine_cls, scenario="mesh-hotspot", seed=11, rounds=60,
         algorithm="pplb", probe="null", **bal_kwargs):
    sc = build_scenario(scenario, seed=seed, **SIZE)
    bal = make_balancer(algorithm, **bal_kwargs)
    sim = engine_cls(
        sc.topology, sc.system, bal,
        links=sc.links, dynamic=sc.dynamic, node_speeds=sc.node_speeds,
        seed=seed, probe=probe,
    )
    return sim.run(max_rounds=rounds)


def _records(result):
    return [dataclasses.asdict(r) for r in result.records]


class TestProbeFactory:
    def test_null_is_the_shared_singleton(self):
        assert make_probe("null") is NULL_PROBE
        assert isinstance(NULL_PROBE, NullProbe)
        assert NULL_PROBE.enabled is False

    def test_counters_and_trace_specs(self):
        assert isinstance(make_probe("counters"), CountersProbe)
        trace = make_probe("trace")
        assert isinstance(trace, TraceProbe)
        assert trace.path == DEFAULT_TRACE_PATH
        assert make_probe("trace:/tmp/t.json").path == "/tmp/t.json"

    def test_probe_instance_passes_through(self):
        probe = CountersProbe()
        assert make_probe(probe) is probe

    def test_tags_round_trip(self):
        assert probe_tag("null") == "null"
        assert probe_tag("counters") == "counters"
        assert probe_tag("trace:/x.json") == "trace:/x.json"

    def test_unknown_spec_is_a_clean_error(self):
        with pytest.raises(ConfigurationError, match="probe"):
            make_probe("wat")

    def test_empty_trace_path_is_a_clean_error(self):
        with pytest.raises(ConfigurationError):
            make_probe("trace:")

    def test_base_probe_is_inert(self):
        probe = Probe()
        probe.start()
        probe.incr("x")
        probe.span("y", 0.0, 1.0)
        assert probe.enabled is False and probe.tag() == "null"


class TestNullProbePassivity:
    """The default probe provably changes nothing."""

    @pytest.mark.parametrize("engine_cls", [
        Simulator, FastSimulator, EventSimulator, EventFastSimulator,
    ])
    def test_counters_probe_changes_no_records(self, engine_cls):
        base = _run(engine_cls)
        probed = _run(engine_cls, probe="counters")
        assert _records(base) == _records(probed)
        assert base.final_summary == probed.final_summary
        assert base.converged_round == probed.converged_round

    def test_trace_probe_changes_no_records(self, tmp_path):
        base = _run(Simulator)
        probed = _run(Simulator, probe=f"trace:{tmp_path / 't.json'}")
        assert _records(base) == _records(probed)

    def test_null_run_payload_has_no_telemetry_key(self):
        result = _run(Simulator, rounds=20)
        assert result.telemetry is None
        payload = result.to_dict()
        assert "telemetry" not in payload
        # Byte-identical to the pre-telemetry wire format.
        rebuilt = SimulationResult.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.telemetry is None

    def test_payload_bytes_identical_modulo_wall_time(self):
        a = _run(Simulator, rounds=20).to_dict()
        b = _run(Simulator, rounds=20, probe="counters").to_dict()
        b.pop("telemetry")
        a["wall_time_s"] = b["wall_time_s"] = 0.0
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestCountersProbe:
    def test_phases_cover_every_round(self):
        result = _run(Simulator, rounds=40, probe="counters")
        phases = result.telemetry["phases"]
        for name in ("play_round", "observe", "record", "converge"):
            assert phases[name]["calls"] == result.n_rounds
            assert phases[name]["total_s"] >= 0.0

    def test_counters_describe_the_run(self):
        result = _run(Simulator, rounds=60, probe="counters")
        counters = result.telemetry["counters"]
        assert counters["engine.transfers_applied"] == result.total_migrations
        assert counters["balancer.hops"] == result.total_migrations
        assert counters["balancer.arbiter_choices"] > 0
        assert counters["balancer.rng_draws"] > 0

    def test_greedy_arbiter_draws_no_rng(self):
        result = _run(Simulator, rounds=60, algorithm="pplb-greedy",
                      probe="counters")
        counters = result.telemetry["counters"]
        # The greedy arbiter is deterministic; only friction jitter
        # could draw, and the registry default is jitter-free.
        assert counters.get("balancer.rng_draws", 0) == 0
        assert counters["balancer.arbiter_choices"] > 0

    def test_telemetry_round_trips_the_wire(self):
        result = _run(Simulator, rounds=30, probe="counters")
        rebuilt = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.telemetry == result.telemetry

    def test_legacy_payload_without_telemetry_loads(self):
        payload = _run(Simulator, rounds=20).to_dict()
        assert "telemetry" not in payload  # pre-telemetry shape
        assert SimulationResult.from_dict(payload).telemetry is None


class TestDifferentialCounters:
    """The probes report the same decisions from scalar and fast paths."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_rounds_vs_rounds_fast(self, seed):
        scalar = _run(Simulator, seed=seed, probe="counters")
        fast = _run(FastSimulator, seed=seed, probe="counters")
        assert _records(scalar) == _records(fast)
        cs, cf = (r.telemetry["counters"] for r in (scalar, fast))
        for name in DECISION_INVARIANT:
            assert cs.get(name, 0) == cf.get(name, 0), name
        # The fast path exists to *skip* Phase-B work; the screen
        # counters must show it actually did.
        assert cf["balancer.phase_b_nodes"] < cs["balancer.phase_b_nodes"]
        assert "screen.waves" in cf and "screen.waves" not in cs

    @pytest.mark.parametrize("seed", [3, 11])
    def test_events_vs_events_fast(self, seed):
        heap = _run(EventSimulator, seed=seed, probe="counters")
        fast = _run(EventFastSimulator, seed=seed, probe="counters")
        assert _records(heap) == _records(fast)
        ch, cf = (r.telemetry["counters"] for r in (heap, fast))
        for name in DECISION_INVARIANT:
            assert ch.get(name, 0) == cf.get(name, 0), name
        # Same event stream, different carrier: every heap pop has a
        # columnar-buffer counterpart.
        assert ch["engine.heap_pops"] == cf["engine.buffer_pops"]
        assert ch["engine.waves"] == cf["engine.waves"]
        assert ch["engine.wake_nodes"] == cf["engine.wake_nodes"]


class TestTraceProbe:
    def test_writes_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        result = _run(Simulator, rounds=30, probe=f"trace:{path}")
        assert result.telemetry["trace_path"] == str(path)
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events and trace["displayTimeUnit"] == "ms"
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        names = {event["name"] for event in events}
        assert {"play_round", "observe", "record", "converge"} <= names
        # The counters ride along for context.
        assert trace["otherData"]["counters"]["balancer.hops"] > 0

    def test_wake_wave_spans_on_event_engines(self, tmp_path):
        path = tmp_path / "trace.json"
        _run(EventFastSimulator, rounds=30, probe=f"trace:{path}")
        names = {e["name"] for e in json.loads(path.read_text())["traceEvents"]}
        assert "wake_wave" in names

    def test_timestamps_are_monotone_per_phase(self, tmp_path):
        path = tmp_path / "trace.json"
        _run(Simulator, rounds=30, probe=f"trace:{path}")
        events = json.loads(path.read_text())["traceEvents"]
        per_phase: dict = {}
        for event in events:
            per_phase.setdefault(event["name"], []).append(event["ts"])
        for name, stamps in per_phase.items():
            assert stamps == sorted(stamps), name
