"""The events ≡ events-fast bit-exactness anchor (PR 6's key property).

:class:`~repro.sim.EventFastSimulator` replays the scalar event
engine's schedule through batched wake waves, the no-effect screen and
columnar event buffers. None of that is allowed to show up in the
results: same seed ⇒ identical per-round records (every float),
identical final load vectors, identical ``events_processed`` *and*
identical terminal RNG state — the strongest available witness that the
fast path skipped only work that draws no randomness and changes no
state. Unlike the sync ≡ async anchor, this property must hold on
*every* clock model (jitter, latency, stragglers, churn), because
events-fast is a reimplementation of the same engine, not a degenerate
configuration of it.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.balancer import ParticlePlaneBalancer
from repro.runner.registry import make_balancer
from repro.sim import EventFastSimulator, EventSimulator, Simulator
from repro.workloads import build_scenario

#: ≥6 scenarios covering churn (``bursty-arrivals``), heterogeneous
#: clocks (``straggler``), link failure (``fault-storm``) and plain
#: static surfaces, × the 4 algorithm families (stateful PPLB,
#: memoryless diffusion, stochastic stealing, gradient fields).
SCENARIOS = [
    "mesh-hotspot",
    "torus-hotspot",
    "mesh-two-valleys",
    "bursty-arrivals",
    "straggler",
    "fault-storm",
]
ALGORITHMS = ["pplb", "diffusion", "work-stealing", "gradient-model"]
SIZE = {"side": 6, "n_tasks": 180}

#: asynchronous clock/wire models; each scenario × algorithm cell runs
#: one of these (rotating) so the grid covers unit clocks, jittered
#: clocks, latency-delayed transfers and their combination without
#: quadrupling the suite.
CLOCK_VARIANTS = [
    {},
    {"wake_jitter": 0.3},
    {"transfer_latency": 0.4},
    {"wake_jitter": 0.2, "transfer_latency": 0.4},
]


def _run(engine_cls, scenario_name, algorithm, seed, balancer=None, **sim_kwargs):
    scenario = build_scenario(scenario_name, seed=seed, **SIZE)
    sim = engine_cls(
        scenario.topology,
        scenario.system,
        balancer if balancer is not None else make_balancer(algorithm),
        links=scenario.links,
        dynamic=scenario.dynamic,
        node_speeds=scenario.node_speeds,
        seed=seed,
        **sim_kwargs,
    )
    result = sim.run(max_rounds=50)
    return result, np.array(scenario.system.node_loads), sim


def _assert_bit_identical(scenario, algorithm, seed=7, **sim_kwargs):
    s_res, s_loads, s_sim = _run(
        EventSimulator, scenario, algorithm, seed, **sim_kwargs
    )
    f_res, f_loads, f_sim = _run(
        EventFastSimulator, scenario, algorithm, seed, **sim_kwargs
    )
    # Identical per-round records — every field, every float.
    assert [asdict(r) for r in s_res.records] == [asdict(r) for r in f_res.records]
    assert s_res.converged_round == f_res.converged_round
    assert s_res.final_summary == f_res.final_summary
    # Identical final placement.
    assert (s_loads == f_loads).all()
    # Identical event count and terminal RNG state: the fast path
    # consumed exactly the same randomness in exactly the same order.
    assert s_sim.events_processed == f_sim.events_processed
    assert s_sim.rng.bit_generator.state == f_sim.rng.bit_generator.state


class TestEventsFastEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bit_identical_across_scenarios_and_algorithms(self, scenario, algorithm):
        # Rotate the clock variant so the full grid covers every
        # asynchrony model while each cell stays one paired run.
        variant = CLOCK_VARIANTS[
            (SCENARIOS.index(scenario) + ALGORITHMS.index(algorithm))
            % len(CLOCK_VARIANTS)
        ]
        _assert_bit_identical(scenario, algorithm, **variant)

    @pytest.mark.parametrize(
        "variant", CLOCK_VARIANTS, ids=["unit", "jitter", "latency", "jitter+latency"]
    )
    def test_every_clock_model_on_the_anchor_scenario(self, variant):
        _assert_bit_identical("torus-hotspot", "pplb", **variant)

    def test_equivalence_holds_across_seeds(self):
        for seed in (0, 1, 2):
            _assert_bit_identical(
                "mesh-hotspot", "pplb", seed=seed, wake_jitter=0.25
            )

    def test_matches_sync_engine_under_unit_clocks(self):
        # Transitivity anchor: events-fast ≡ events ≡ rounds in the
        # degenerate configuration, so the fast engine inherits the
        # sync ≡ async certificate too.
        sync_res, sync_loads, _ = _run(Simulator, "mesh-hotspot", "pplb", seed=11)
        fast_res, fast_loads, _ = _run(
            EventFastSimulator, "mesh-hotspot", "pplb", seed=11
        )
        assert [asdict(r) for r in sync_res.records] == [
            asdict(r) for r in fast_res.records
        ]
        assert (sync_loads == fast_loads).all()


class TestScalarFallback:
    """Friction jitter draws RNG per *evaluated* candidate — work the
    batch screen elides — so jittered-friction configs must fall back
    to the scalar decision loops (and stay bit-exact through them)."""

    def test_jittered_friction_stays_bit_exact(self):
        balancer_kwargs = {"friction_jitter": 0.05}
        s_res, s_loads, s_sim = _run(
            EventSimulator, "torus-hotspot", "pplb", 7,
            balancer=make_balancer("pplb", **balancer_kwargs),
        )
        f_res, f_loads, f_sim = _run(
            EventFastSimulator, "torus-hotspot", "pplb", 7,
            balancer=make_balancer("pplb", **balancer_kwargs),
        )
        assert [asdict(r) for r in s_res.records] == [
            asdict(r) for r in f_res.records
        ]
        assert (s_loads == f_loads).all()
        assert s_sim.rng.bit_generator.state == f_sim.rng.bit_generator.state

    def test_fallback_is_actually_taken(self, monkeypatch):
        # Prove the gate routes around the batch phases rather than the
        # batch phases happening to agree: poison them and check the
        # jittered run never touches them while the unjittered run does.
        def _boom(self, s):
            raise AssertionError("batch phase used despite friction jitter")

        monkeypatch.setattr(ParticlePlaneBalancer, "_phase_a_fast", _boom)
        monkeypatch.setattr(ParticlePlaneBalancer, "_phase_b_fast", _boom)
        result, _, _ = _run(
            EventFastSimulator, "torus-hotspot", "pplb", 7,
            balancer=make_balancer("pplb", friction_jitter=0.05),
        )
        assert result.records  # ran to completion on the scalar path
        with pytest.raises(AssertionError, match="batch phase"):
            _run(EventFastSimulator, "torus-hotspot", "pplb", 7)
