"""E1 — Theorem 2: convergence trace on a mesh hotspot.

Paper claim: "this model converges to the nearly optimal solution"
(Theorem 2). Reproduced as the classic convergence figure: imbalance
(CoV) vs round for PPLB and the §2 baselines on an 8x8 mesh with a
single hotspot, one task per link per round.

Expected shape: PPLB reaches near-balance (CoV well
below the hotspot granularity floor), quiesces, and its curve dominates
GM/CWN; probing schemes (work stealing, sender-initiated) stall on the
severe hotspot because most probes find empty neighborhoods.
"""

from repro.analysis import ascii_plot, format_table
from repro.baselines import (
    ContractingWithinNeighborhood,
    GradientModel,
    RandomWorkStealing,
    SenderInitiated,
    TaskDiffusion,
)
from repro.network import mesh

from _harness import default_pplb, emit, once, run_hotspot


def _balancers():
    return [
        default_pplb(),
        TaskDiffusion("uniform"),
        GradientModel(),
        ContractingWithinNeighborhood(max_hops=8),
        RandomWorkStealing(),
        SenderInitiated(probes=3),
    ]


def test_e1_convergence_trace(benchmark):
    results = {}

    def run_all():
        for bal in _balancers():
            _sim, res = run_hotspot(mesh(8, 8), bal, n_tasks=512, max_rounds=500)
            results[bal.name] = res
        return results

    once(benchmark, run_all)

    rows = [res.summary_row() for res in results.values()]
    table = format_table(
        rows,
        columns=["algorithm", "converged_round", "final_cov", "final_spread",
                 "migrations", "traffic"],
        title="E1 — hotspot on mesh-8x8 (512 tasks): convergence summary",
    )
    plot = ascii_plot(
        {name: res.series("cov")
         for name, res in results.items()
         if name in ("pplb", "task-diffusion-uniform", "gradient-model", "cwn")},
        title="E1 — imbalance (CoV) vs round (log scale)",
        logy=True,
        height=16,
    )
    emit("E1_convergence", table + "\n\n" + plot)

    pplb = results["pplb"]
    # Theorem 2 shape: PPLB converges to near balance.
    assert pplb.converged, "PPLB must quiesce (Theorem 2)"
    assert pplb.final_cov < 0.3
    # PPLB's final balance beats GM (which dithers around its watermarks).
    assert pplb.final_cov < results["gradient-model"].final_cov
    # CWN can eventually match PPLB's balance, but takes several times
    # longer to quiesce — PPLB wins the convergence race decisively.
    cwn = results["cwn"]
    pplb_round = pplb.converged_round if pplb.converged else pplb.n_rounds
    cwn_round = cwn.converged_round if cwn.converged else cwn.n_rounds
    assert pplb_round * 2 < cwn_round, (pplb_round, cwn_round)
    # Probing schemes stall far from balance on a severe hotspot.
    assert results["work-stealing"].final_cov > 5 * pplb.final_cov
