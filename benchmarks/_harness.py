"""Shared machinery for the experiment benchmarks.

Every ``bench_*`` module reproduces one experiment (T1 and E1–E17,
plus the BENCH engine perf baseline); docs/BENCHMARKS.md indexes them
all, with the paper claim each one checks and how to run it.
Conventions:

* Each benchmark times its workload once (``benchmark.pedantic(...,
  rounds=1)``) — these are *experiments*, not micro-benchmarks; the
  timing shows the cost of regenerating the result.
* Each prints its paper-style table/figure to stdout (visible with
  ``pytest -s``) **and** writes it to ``benchmarks/results/<id>.txt`` so
  the artifacts persist regardless of capture settings (``pplb report``
  stitches them into one document).
* Shapes asserted here are the paper's qualitative claims (who wins,
  monotonicity, bounds) — never absolute numbers.
* Grid-shaped experiments go through :func:`run_grid_specs`, the
  parallel runner's entry point: serial by default, parallel when
  ``PPLB_BENCH_WORKERS`` is set (parallel results are identical to
  serial ones), cached when ``PPLB_BENCH_CACHE`` names a directory.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Sequence

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError
from repro.interfaces import Balancer
from repro.runner import RunOutcome, RunSpec, run_grid
from repro.sim import SimulationResult, Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print an experiment artifact and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def run_hotspot(
    topology,
    balancer: Balancer,
    n_tasks: int | None = None,
    seed: int = 0,
    max_rounds: int = 500,
    links=None,
    fault_model=None,
    task_graph=None,
    resources=None,
    dynamic=None,
    track_journeys: bool = False,
    c1: float = 1.0,
) -> tuple[Simulator, SimulationResult]:
    """One hotspot run: the workhorse scenario of E1/E2/E3/E5/E9."""
    if n_tasks is None:
        n_tasks = 8 * topology.n_nodes
    system = TaskSystem(topology)
    single_hotspot(system, n_tasks, rng=seed)
    sim = Simulator(
        topology,
        system,
        balancer,
        links=links,
        fault_model=fault_model,
        task_graph=task_graph,
        resources=resources,
        dynamic=dynamic,
        seed=seed,
        track_journeys=track_journeys,
        c1=c1,
    )
    return sim, sim.run(max_rounds=max_rounds)


def default_pplb(**overrides) -> ParticlePlaneBalancer:
    """A PPLB instance with optional config overrides."""
    return ParticlePlaneBalancer(PPLBConfig(**overrides) if overrides else PPLBConfig())


def run_grid_specs(specs: Sequence[RunSpec]) -> list[RunOutcome]:
    """Run an experiment grid through the parallel runner.

    Workers come from ``PPLB_BENCH_WORKERS`` (default 1 = serial, so
    benchmark results are reproducible with no environment setup;
    0 = one per core); set ``PPLB_BENCH_CACHE`` to a directory to reuse
    results across benchmark invocations.
    """
    raw = os.environ.get("PPLB_BENCH_WORKERS", "1")
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"PPLB_BENCH_WORKERS must be an integer (0 = one per core), got {raw!r}"
        ) from None
    cache = os.environ.get("PPLB_BENCH_CACHE") or None
    return run_grid(specs, workers=workers, cache=cache)


def once(benchmark, fn: Callable[[], object]):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
