"""Shared machinery for the experiment benchmarks.

Every ``bench_*`` module reproduces one experiment from DESIGN.md's
index (T1, E1-E12). Conventions:

* Each benchmark times its workload once (``benchmark.pedantic(...,
  rounds=1)``) — these are *experiments*, not micro-benchmarks; the
  timing shows the cost of regenerating the result.
* Each prints its paper-style table/figure to stdout (visible with
  ``pytest -s``) **and** writes it to ``benchmarks/results/<id>.txt`` so
  the artifacts persist regardless of capture settings. EXPERIMENTS.md
  records the committed reference outputs.
* Shapes asserted here are the paper's qualitative claims (who wins,
  monotonicity, bounds) — never absolute numbers.
"""

from __future__ import annotations

import pathlib
from typing import Callable

from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.interfaces import Balancer
from repro.sim import SimulationResult, Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print an experiment artifact and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def run_hotspot(
    topology,
    balancer: Balancer,
    n_tasks: int | None = None,
    seed: int = 0,
    max_rounds: int = 500,
    links=None,
    fault_model=None,
    task_graph=None,
    resources=None,
    dynamic=None,
    track_journeys: bool = False,
    c1: float = 1.0,
) -> tuple[Simulator, SimulationResult]:
    """One hotspot run: the workhorse scenario of E1/E2/E3/E5/E9."""
    if n_tasks is None:
        n_tasks = 8 * topology.n_nodes
    system = TaskSystem(topology)
    single_hotspot(system, n_tasks, rng=seed)
    sim = Simulator(
        topology,
        system,
        balancer,
        links=links,
        fault_model=fault_model,
        task_graph=task_graph,
        resources=resources,
        dynamic=dynamic,
        seed=seed,
        track_journeys=track_journeys,
        c1=c1,
    )
    return sim, sim.run(max_rounds=max_rounds)


def default_pplb(**overrides) -> ParticlePlaneBalancer:
    """A PPLB instance with optional config overrides."""
    return ParticlePlaneBalancer(PPLBConfig(**overrides) if overrides else PPLBConfig())


def once(benchmark, fn: Callable[[], object]):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
