"""E3 — kinetic friction keeps migration local (§4.1 locality claim).

Paper claim: "The analogy of a system in the presence of kinetic
friction in load balancing is that a node's additional loads are more
tended to be assigned to the local neighbors" — larger µk ⇒ shorter
journeys.

Reproduced artifact: hop-displacement distribution of migrated tasks as
a function of µk on a 16x16 mesh hotspot.

Expected shape: mean and p95 journey displacement decrease monotonically
in µk; with very large µk nearly everything lands within a couple of
hops of the hotspot.
"""

import numpy as np

from repro.analysis import format_table
from repro.network import mesh

from _harness import default_pplb, emit, once, run_hotspot


def test_e3_muk_locality(benchmark):
    mu_ks = [0.05, 0.25, 1.0, 4.0]
    rows = []

    def run_all():
        for mu_k in mu_ks:
            sim, res = run_hotspot(
                mesh(16, 16),
                default_pplb(mu_k_base=mu_k),
                n_tasks=512,
                max_rounds=600,
                track_journeys=True,
            )
            disp = np.array(list(sim.journey_displacements().values()), dtype=float)
            disp = disp if disp.size else np.zeros(1)
            rows.append(
                {
                    "mu_k": mu_k,
                    "migrated_tasks": int((disp > 0).sum()),
                    "mean_hops_from_origin": round(float(disp.mean()), 2),
                    "p95_hops": round(float(np.percentile(disp, 95)), 2),
                    "max_hops": int(disp.max()),
                    "final_cov": round(res.final_cov, 3),
                    "traffic": round(res.total_traffic, 1),
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E3_locality",
        format_table(rows, title="E3 — journey displacement vs kinetic friction "
                                 "(mesh-16x16, 512-task hotspot)"),
    )

    means = [r["mean_hops_from_origin"] for r in rows]
    p95s = [r["p95_hops"] for r in rows]
    # Monotone locality in µk (the paper's §4.1 claim).
    assert all(means[i] >= means[i + 1] for i in range(len(means) - 1)), means
    assert p95s[0] > p95s[-1]
    # Traffic also shrinks as journeys shorten.
    assert rows[0]["traffic"] > rows[-1]["traffic"]
