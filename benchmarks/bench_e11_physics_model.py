"""E11 — Corollaries 1 & 2 in the continuous physics model (§3.3).

Paper claims:
* Corollary 1: with ``µs = µk = 0`` the object is never trapped in any
  contour whose peak is below ``h0`` — it keeps moving forever on a
  closed terrain (energy conservation).
* Corollary 2: with ``µk > 0`` there exists a contour and a time at
  which the object is trapped — friction always wins eventually.

Reproduced artifact: the frictionless particle never settles within the
step budget and conserves energy; the frictional particle settles on
every random terrain, and its settle point is a local minimum (slope
below µs).
"""

import numpy as np

from repro.analysis import format_table
from repro.physics import (
    HeightField,
    ParticleSimulator,
    ParticleState,
    PhysicsParams,
)

from _harness import emit, once


def test_e11_corollaries(benchmark):
    rows = []

    def run_all():
        for rep in range(5):
            field = HeightField.random_terrain(
                np.random.default_rng(rep), roughness=0.6, n_bumps=10, shape=(49, 49)
            )
            start = np.random.default_rng(100 + rep).uniform(0.15, 0.85, 2)
            h0 = float(field.height(start))

            # Corollary 1 setting: no friction.
            free = ParticleSimulator(
                field, PhysicsParams(mu_s=0.0, mu_k=0.0, dt=1e-3, max_steps=30_000)
            ).run(ParticleState(position=start.copy()))

            # Corollary 2 setting: kinetic friction present.
            fric = ParticleSimulator(
                field, PhysicsParams(mu_s=0.05, mu_k=0.15, dt=1e-3, max_steps=400_000)
            ).run(ParticleState(position=start.copy()))

            end_slope = float(field.slope(fric.end))
            energy_drift = abs(
                0.5 * free.final_state.speed**2
                + free.ledger.g * field.height(free.end)
                - free.ledger.g * h0
            ) / max(free.ledger.g * h0, 1e-12)
            # Residual kinetic budget at settle: h* − h_end (height units).
            residual = fric.ledger.potential_height() - float(field.height(fric.end))
            at_wall = bool(
                min(
                    fric.end[0],
                    fric.end[1],
                    field.extent[0] - fric.end[0],
                    field.extent[1] - fric.end[1],
                )
                < 2 * field.dx
            )

            rows.append(
                {
                    "terrain": rep,
                    "h0": round(h0, 3),
                    "frictionless_settled": free.settled,
                    "energy_drift_rel": round(energy_drift, 4),
                    "frictional_settled": fric.settled,
                    "settle_slope": round(end_slope, 4),
                    "residual_budget": round(residual, 5),
                    "at_wall": at_wall,
                    "heat/initial_energy": round(
                        fric.ledger.heat / max(fric.ledger.initial_total, 1e-12), 3
                    ),
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E11_physics_model",
        format_table(rows, title="E11 — Corollary 1 (frictionless never traps) "
                                 "and Corollary 2 (friction always settles)"),
    )

    for r in rows:
        # Corollary 1: no settling without friction (on bumpy terrain),
        # with energy conserved to integrator tolerance.
        if r["h0"] > 0.05:  # a start on the global floor may trivially rest
            assert not r["frictionless_settled"], r
        assert r["energy_drift_rel"] < 0.05, r
        # Corollary 2: friction settles — in one of the three legitimate
        # equilibria: (a) a sub-friction slope (static µs=0.05, or the
        # kinetic stick-slip limit µk=0.15: a resting particle whose
        # slope cannot beat µk sticks); (b) the kinetic budget is
        # exhausted (h* ≈ height: the paper's trapping event);
        # (c) pressed against a domain wall.
        assert r["frictional_settled"], r
        valid = (
            r["settle_slope"] <= max(0.05, 0.15) + 1e-9
            or r["residual_budget"] <= 1e-3
            or r["at_wall"]
        )
        assert valid, r
