"""E6 — fault model: the F matrix in action (§4.2).

Paper claim: PPLB "takes into account ... the probability of the
occurrence of fault in the links", via the link cost
``e_ij ∝ 1/(1−f)^(c1·d/bw)``; classical algorithms ignore F entirely.

Reproduced artifact: fault-rate sweep on a mesh hotspot. PPLB (fault-
aware e_ij + up-mask awareness) vs fault-oblivious diffusion: final
balance, blocked transfer attempts, traffic.

Expected shape: PPLB never schedules onto a down link (blocked = 0 at
every fault rate) and keeps converging; diffusion accumulates blocked
attempts that grow with the fault rate.
"""

import numpy as np

from repro.analysis import format_table
from repro.network import FaultModel, LinkAttributes, mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot

from _harness import default_pplb, emit, once


class FaultObliviousDiffusion:
    """TaskDiffusion that ignores the up-mask (the classical model)."""

    def __new__(cls):
        from repro.baselines import TaskDiffusion

        inner = TaskDiffusion("uniform")
        orig_step = inner.step

        def blind_step(ctx):
            blind_ctx = type(ctx)(
                topology=ctx.topology,
                system=ctx.system,
                links=ctx.links,
                link_costs=ctx.link_costs,
                up_mask=np.ones_like(ctx.up_mask),  # pretends all links work
                round_index=ctx.round_index,
                rng=ctx.rng,
                task_graph=ctx.task_graph,
                resources=ctx.resources,
            )
            return orig_step(blind_ctx)

        inner.step = blind_step
        inner.name = "diffusion-fault-oblivious"
        return inner


def _run(balancer, fault_prob, seed=0):
    topo = mesh(8, 8)
    attrs = LinkAttributes.uniform(topo, fault_prob=fault_prob)
    system = TaskSystem(topo)
    single_hotspot(system, 512, rng=0)
    fm = FaultModel(attrs, rng=seed + 1)
    sim = Simulator(topo, system, balancer, links=attrs, fault_model=fm,
                    seed=seed, c1=2.0)
    return sim.run(max_rounds=500)


def test_e6_fault_sweep(benchmark):
    fault_rates = [0.0, 0.05, 0.15, 0.3]
    rows = []

    def run_all():
        for f in fault_rates:
            for make in (default_pplb, FaultObliviousDiffusion):
                bal = make()
                res = _run(bal, f)
                rows.append(
                    {
                        "fault_prob": f,
                        "algorithm": bal.name,
                        "final_cov": round(res.final_cov, 3),
                        "blocked": int(res.series("blocked").sum()),
                        "migrations": res.total_migrations,
                        "converged_round": res.converged_round,
                    }
                )
        return rows

    once(benchmark, run_all)
    emit(
        "E6_faults",
        format_table(rows, title="E6 — link fault sweep (mesh-8x8 hotspot): "
                                 "fault-aware PPLB vs fault-oblivious diffusion"),
    )

    pplb_rows = [r for r in rows if r["algorithm"] == "pplb"]
    blind_rows = [r for r in rows if r["algorithm"] != "pplb"]
    # PPLB respects the up-mask: zero blocked attempts at every rate.
    assert all(r["blocked"] == 0 for r in pplb_rows), pplb_rows
    # The oblivious balancer's blocked attempts grow with the fault rate.
    blocked = [r["blocked"] for r in blind_rows]
    assert blocked[0] == 0 and blocked[-1] > 0
    assert blocked[-1] >= blocked[1]
    # PPLB still balances under heavy transient faults.
    assert pplb_rows[-1]["final_cov"] < 0.5
