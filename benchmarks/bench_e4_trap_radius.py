"""E4 — Theorem 1 / Corollary 3: the trap-radius bound, measured.

Paper claims:
* Theorem 1: not trapped in contour c if ``P_c ≤ h* − µk·r_{c,p}``.
* Corollary 3: certainly trapped once ``r_{c,p} > h*/µk``.

Reproduced artifacts:
1. Continuous physics: release particles on random terrains across a µk
   sweep; measured horizontal path length never exceeds ``h0/µk``, and
   no trajectory exits a contour whose escape radius exceeds the bound.
2. Discrete load system: per-journey hop counts never exceed
   ``h*_0/(c0·µk·e_min)`` (the engine's analogue of the same bound).

Expected shape: 0 violations anywhere; measured max displacement tracks
the 1/µk curve.
"""

import numpy as np

from repro.analysis import format_table
from repro.network import mesh
from repro.physics import (
    HeightField,
    ParticleSimulator,
    ParticleState,
    PhysicsParams,
)

from _harness import default_pplb, emit, once, run_hotspot


def test_e4_trap_radius_bounds(benchmark):
    mu_ks = [0.05, 0.1, 0.2, 0.4, 0.8]
    rows = []

    def run_all():
        rng = np.random.default_rng(0)
        for mu_k in mu_ks:
            # --- continuous physics runs -------------------------------
            max_path = 0.0
            worst_ratio = 0.0
            h0_used = 0.0
            for rep in range(4):
                field = HeightField.random_terrain(
                    np.random.default_rng(rep), roughness=0.6, n_bumps=10,
                    shape=(49, 49),
                )
                start = rng.uniform(0.1, 0.9, 2)
                sim = ParticleSimulator(
                    field, PhysicsParams(mu_s=0.02, mu_k=mu_k, dt=2e-3)
                )
                res = sim.run(ParticleState(position=start), max_steps=40_000)
                h0 = float(field.height(start))
                if h0 > 0:
                    worst_ratio = max(worst_ratio, res.path_length / (h0 / mu_k))
                max_path = max(max_path, res.path_length)
                h0_used = max(h0_used, h0)

            # --- discrete load system ---------------------------------
            sim, dres = run_hotspot(
                mesh(8, 8),
                default_pplb(mu_k_base=mu_k),
                n_tasks=256,
                max_rounds=400,
                track_journeys=True,
            )
            h0_max = dres.initial_summary["max"]
            hop_bound = h0_max / (1.0 * mu_k * 1.0)
            hops = np.array(list(sim.task_hops.values()) or [0], dtype=float)

            rows.append(
                {
                    "mu_k": mu_k,
                    "phys_max_path": round(max_path, 2),
                    "phys_bound_h0/muk": round(h0_used / mu_k, 2),
                    "phys_path/bound": round(worst_ratio, 3),
                    "load_max_hops": int(hops.max()),
                    "load_hop_bound": round(hop_bound, 1),
                    "load_violations": int((hops > hop_bound + 1e-9).sum()),
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E4_trap_radius",
        format_table(rows, title="E4 — Corollary 3 bound: measured travel vs "
                                 "h*/µk (physics + load system)"),
    )

    for r in rows:
        # Corollary 3, continuous: within the integrator's documented
        # O(dt) tolerance (1%).
        assert r["phys_path/bound"] <= 1.01, r
        assert r["load_violations"] == 0, r           # Corollary 3, discrete
    # Travel shrinks as µk grows (both layers).
    paths = [r["phys_max_path"] for r in rows]
    assert paths[0] > paths[-1]
