"""E8 — the annealed stochastic arbiter (§5.2) and the motion-rule
ablation.

Paper claims: the arbiter "gives the most of the chance to the links
which are the steepest [and] considers some rare probabilities for
choosing the less steep slopes", with rigidity increasing over time "in
an attempt to make the system converge to an optimal solution".

Reproduced artifacts:
1. β0 sweep on the two-valleys scenario (two unequal hotspots separated
   by the mesh): final balance and traffic for greedy (β0=0) through
   heavy exploration.
2. Motion-rule ablation: the default ``arbiter-settle`` rule vs the
   paper-literal ``energy-only`` rule — same scenario, comparing
   convergence round, hops per journey and traffic.

Expected shapes (and one honest negative result, recorded in
docs/BENCHMARKS.md): every β0 converges to near-balance, confirming the
arbiter never *breaks* convergence; however on this scenario greedy
(β0=0) already matches or slightly beats exploration on final balance —
the gradient surface has no deceptive local minima for exploration to
escape, so the paper's annealing buys nothing here and costs a little
balance while exploring. The measured assertion is therefore a
*stability band* (all β0 within a narrow quality/traffic envelope), not
an exploration win. The motion-rule ablation is the decisive part: the
paper-literal ``energy-only`` rule produces strictly more hops per
journey (wandering) than ``arbiter-settle``.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import multi_hotspot

from _harness import emit, once


def _run(cfg, seed=0, max_rounds=500):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    multi_hotspot(system, 512, rng=seed, n_spots=2, weights=[0.7, 0.3])
    bal = ParticlePlaneBalancer(cfg)
    sim = Simulator(topo, system, bal, seed=seed)
    res = sim.run(max_rounds=max_rounds)
    return res, bal


def test_e8_beta0_sweep_and_motion_ablation(benchmark):
    rows = []
    ablation = []

    def run_all():
        # --- β0 sweep (3 seeds each, averaged) -------------------------
        for beta0 in (0.0, 0.1, 0.25, 0.5, 0.8):
            covs, traffics, rounds = [], [], []
            for seed in range(3):
                res, _bal = _run(PPLBConfig(beta0=beta0), seed=seed)
                covs.append(res.final_cov)
                traffics.append(res.total_traffic)
                rounds.append(res.converged_round if res.converged else res.n_rounds)
            rows.append(
                {
                    "beta0": beta0,
                    "final_cov": round(float(np.mean(covs)), 3),
                    "traffic": round(float(np.mean(traffics)), 1),
                    "rounds": round(float(np.mean(rounds)), 1),
                }
            )
        # --- motion-rule ablation --------------------------------------
        for rule in ("arbiter-settle", "energy-only"):
            res, bal = _run(PPLBConfig(motion_rule=rule, mu_k_base=0.25), seed=0)
            journeys = max(bal.stats["initiated"], 1)
            ablation.append(
                {
                    "motion_rule": rule,
                    "final_cov": round(res.final_cov, 3),
                    "hops_per_journey": round(bal.stats["hops"] / journeys, 2),
                    "traffic": round(res.total_traffic, 1),
                    "rounds": res.converged_round if res.converged else res.n_rounds,
                }
            )
        return rows

    once(benchmark, run_all)
    table1 = format_table(rows, title="E8a — arbiter exploration sweep "
                                      "(two unequal hotspots, mesh-8x8, 3 seeds)")
    table2 = format_table(ablation, title="E8b — motion-rule ablation "
                                          "(arbiter-settle vs paper-literal energy-only)")
    emit("E8_arbiter", table1 + "\n\n" + table2)

    # All β0 values converge to sane balance: exploration never breaks
    # Theorem 2.
    assert all(r["final_cov"] < 0.5 for r in rows), rows
    # Stability band: the whole sweep stays within a narrow traffic and
    # balance envelope (the honest measured result — see module docstring).
    traffics = [r["traffic"] for r in rows]
    covs = [r["final_cov"] for r in rows]
    assert max(traffics) / min(traffics) < 1.15, traffics
    assert max(covs) - min(covs) < 0.2, covs
    # Greedy is at least as balanced as heavy exploration here.
    assert covs[0] <= covs[-1] + 1e-9, covs
    # The literal energy rule wanders: more hops per journey.
    assert ablation[1]["hops_per_journey"] > ablation[0]["hops_per_journey"]
