"""Benchmark-suite conftest: make the local harness importable.

The benchmark modules import shared machinery from ``_harness.py`` in
this directory; inserting the directory on sys.path keeps that import
working regardless of pytest's rootdir configuration.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
