"""E10 — dynamic workloads: churn, the paper's §1 motivation.

Paper claim: dynamic load balancing exists because "new tasks may enter
the system at any time and at any node" — precisely what static mapping
and the quiescent-assumption analyses cannot handle.

Reproduced artifact: skewed Poisson arrivals (two ingress nodes) with
geometric completions on a torus; steady-state imbalance under PPLB,
task diffusion, and no balancing.

Expected shape: no-op's imbalance stays at ingress-skew levels; PPLB
and diffusion hold the steady-state CoV near the granularity floor,
with PPLB at or below diffusion.
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import NoBalancer, TaskDiffusion
from repro.network import torus
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import DynamicWorkload

from _harness import default_pplb, emit, once


def _run(balancer, seed=0, rounds=400):
    topo = torus(8, 8)
    system = TaskSystem(topo)
    workload = DynamicWorkload(
        arrival_rate=6.0,
        completion_prob=0.02,
        arrival_nodes=[0, 36],
        rng=seed + 17,
    )
    sim = Simulator(topo, system, balancer, dynamic=workload, seed=seed)
    res = sim.run(max_rounds=rounds)
    covs = res.series("cov")[rounds // 2:]
    return {
        "algorithm": balancer.name,
        "steady_cov_mean": round(float(covs.mean()), 3),
        "steady_cov_p95": round(float(np.percentile(covs, 95)), 3),
        "migrations": res.total_migrations,
        "final_tasks": int(res.records[-1].n_tasks),
    }


def test_e10_churn(benchmark):
    rows = []

    def run_all():
        for make in (
            lambda: default_pplb(mu_s_base=0.5),
            lambda: TaskDiffusion("uniform"),
            NoBalancer,
        ):
            rows.append(_run(make()))
        return rows

    once(benchmark, run_all)
    emit(
        "E10_dynamic",
        format_table(rows, title="E10 — sustained imbalance under churn "
                                 "(torus-8x8, skewed arrivals, 400 rounds)"),
    )

    by = {r["algorithm"]: r for r in rows}
    # Balancing beats not balancing by a wide margin under churn.
    assert by["pplb"]["steady_cov_mean"] < by["none"]["steady_cov_mean"] / 3
    # PPLB is competitive with diffusion in steady state.
    assert by["pplb"]["steady_cov_mean"] <= 1.5 * by["task-diffusion-uniform"][
        "steady_cov_mean"
    ]
