"""T1 — regenerate the paper's Table 1 from the parameter registry.

Paper artifact: Table 1, "The mapping of the physical parameters as
defined in the object model to load balancing concepts".

The table is generated from ``PPLBConfig.TABLE1``, whose third column
names the implementing symbol; a test in tests/core/test_config.py
verifies every symbol resolves, so this table cannot drift from the
code.
"""

from repro.analysis import format_table
from repro.core import PPLBConfig

from _harness import emit, once


def test_table1_regeneration(benchmark):
    def build() -> str:
        rows = [
            {
                "Parameter": p,
                "Equivalent in load balancing model": meaning,
                "Implemented by": symbol,
            }
            for p, meaning, symbol in PPLBConfig.table1_rows()
        ]
        return format_table(
            rows,
            title="Paper Table 1 — physical parameters mapped to load "
                  "balancing concepts",
            max_col_width=70,
        )

    table = once(benchmark, build)
    emit("T1_table1", table)

    # Shape assertions: all seven physical parameters, in paper order.
    params = [r[0] for r in PPLBConfig.table1_rows()]
    assert params == ["µs", "µk", "m", "tanβ", "h", "Eh", "e_ij"]
