"""E9 — scalability across machine sizes.

Paper context: a decentralized algorithm's value depends on how its
convergence scales with the machine. Neither theorem quantifies this;
the implied claim is graceful scaling through purely local decisions.

Reproduced artifact: rounds-to-quiescence, per-round wall time and
traffic on meshes 4x4 → 16x16 and hypercubes d=4 → d=8, with load
proportional to machine size (8 tasks/node).

Expected shape: rounds-to-converge grows with diameter (hotspot drain
is outflow-limited: the paper's one-load-per-link rule makes ~h0/degree
rounds a lower bound); per-round wall time grows roughly linearly in
nodes + in-flight tasks.
"""

from repro.analysis import format_table
from repro.network import hypercube, mesh

from _harness import default_pplb, emit, once, run_hotspot


def test_e9_scalability(benchmark):
    topologies = [
        mesh(4, 4), mesh(8, 8), mesh(12, 12), mesh(16, 16),
        hypercube(4), hypercube(6), hypercube(8),
    ]
    rows = []

    def run_all():
        for topo in topologies:
            # candidates_per_node must cover the degree, or departures are
            # candidate-limited instead of link-limited and high-degree
            # topologies cannot exploit their extra outflow capacity.
            bal = default_pplb(candidates_per_node=max(8, topo.max_degree))
            _sim, res = run_hotspot(
                topo, bal, n_tasks=8 * topo.n_nodes, max_rounds=1500
            )
            rows.append(
                {
                    "topology": topo.name,
                    "nodes": topo.n_nodes,
                    "diameter": topo.diameter,
                    "rounds_to_quiesce": res.converged_round,
                    "final_cov": round(res.final_cov, 3),
                    "migrations": res.total_migrations,
                    "ms_per_round": round(1000 * res.wall_time_s / res.n_rounds, 2),
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E9_scalability",
        format_table(rows, title="E9 — PPLB scalability (8 tasks/node hotspot)"),
    )

    # Everything converges to near-balance.
    assert all(r["rounds_to_quiesce"] is not None for r in rows), rows
    assert all(r["final_cov"] < 0.5 for r in rows), rows
    mesh_rows = [r for r in rows if r["topology"].startswith("mesh")]
    cube_rows = [r for r in rows if r["topology"].startswith("hypercube")]
    # Rounds grow with machine size within a family (outflow-limited drain).
    mesh_rounds = [r["rounds_to_quiesce"] for r in mesh_rows]
    assert mesh_rounds == sorted(mesh_rounds), mesh_rounds
    cube_rounds = [r["rounds_to_quiesce"] for r in cube_rows]
    assert cube_rounds == sorted(cube_rounds), cube_rounds
    # Hypercubes (log diameter, high degree) quiesce faster than the
    # equal-sized mesh: 64-node cube vs 8x8 mesh.
    m64 = next(r for r in rows if r["topology"] == "mesh-8x8")
    h64 = next(r for r in rows if r["topology"] == "hypercube-6")
    assert h64["rounds_to_quiesce"] < m64["rounds_to_quiesce"]
