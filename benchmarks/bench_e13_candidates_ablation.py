"""E13 (ablation) — the candidates-per-node design choice.

``candidates_per_node`` (see ``PPLBConfig``) is the knob bounding
per-round work: each node offers only its M largest tasks. E9 exposed
its interaction with topology degree — when M < degree, hotspot
departures are candidate-limited instead of link-limited and
high-degree topologies cannot use their outflow capacity.

Reproduced artifact: M sweep on mesh-8x8 (degree 4) and hypercube-6
(degree 6) hotspots: rounds to quiesce, per-round time, final balance.

Expected shape: on the mesh, M >= 4 saturates (links bind); on the
hypercube, raising M from 2 -> 8 cuts rounds roughly by the degree
ratio; per-round cost grows mildly with M.
"""

from repro.analysis import format_table
from repro.network import hypercube, mesh

from _harness import default_pplb, emit, once, run_hotspot


def test_e13_candidates_sweep(benchmark):
    rows = []

    def run_all():
        for topo_fn in (lambda: mesh(8, 8), lambda: hypercube(6)):
            for m in (1, 2, 4, 8, 16):
                topo = topo_fn()
                _sim, res = run_hotspot(
                    topo,
                    default_pplb(candidates_per_node=m),
                    n_tasks=512,
                    max_rounds=1200,
                )
                rows.append(
                    {
                        "topology": topo.name,
                        "degree": int(topo.max_degree),
                        "candidates": m,
                        "rounds": res.converged_round
                        if res.converged
                        else res.n_rounds,
                        "final_cov": round(res.final_cov, 3),
                        "ms_per_round": round(
                            1000 * res.wall_time_s / res.n_rounds, 2
                        ),
                    }
                )
        return rows

    once(benchmark, run_all)
    emit(
        "E13_candidates",
        format_table(rows, title="E13 — candidates_per_node ablation "
                                 "(512-task hotspot)"),
    )

    mesh_rows = {r["candidates"]: r for r in rows if r["topology"] == "mesh-8x8"}
    cube_rows = {r["candidates"]: r for r in rows if r["topology"] == "hypercube-6"}
    # Raising M speeds both up to the degree, then saturates (links bind).
    assert mesh_rows[1]["rounds"] > mesh_rows[4]["rounds"]
    assert mesh_rows[4]["rounds"] <= mesh_rows[2]["rounds"]
    assert abs(mesh_rows[16]["rounds"] - mesh_rows[4]["rounds"]) <= 0.15 * mesh_rows[4]["rounds"]
    assert cube_rows[2]["rounds"] > cube_rows[8]["rounds"]
    # Everyone still balances.
    assert all(r["final_cov"] < 0.5 for r in rows), rows
