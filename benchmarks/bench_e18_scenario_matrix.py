"""E18 — the workload cross product: scenario algebra as an experiment.

Paper claim (§6 and the systematic-comparison literature it leans on,
e.g. Eibl & Rüde's assessment methodology): a balancer's value shows
across *settings*, not on one benchmark — topology × load shape ×
churn must be swept as a cross product.

Reproduced artifact: a component grid (`expand_component_grid`) over
{mesh, torus} × {hotspot, clustered, power-law} × {static, diurnal
churn}, PPLB vs task diffusion, aggregated per scenario axis. Every
cell is a composed-spec string, so the whole matrix is cacheable data.

Expected shape: PPLB converges on every static cell; under diurnal
churn nothing converges (arrivals never stop) but imbalance stays
bounded and PPLB's mean steady CoV is no worse than ~1.5× diffusion's
on every cell (it is usually better; the guard is deliberately loose
for small-sample noise).
"""

import numpy as np

from repro.analysis import format_table
from repro.runner import expand_component_grid, grid_seeds

from _harness import emit, once, run_grid_specs

TOPOLOGIES = ["mesh:8", "torus:8"]
PLACEMENTS = ["hotspot", "clustered", "power-law"]
DYNAMICS = [None, "diurnal:rate=4.0"]
ALGORITHMS = ["pplb", "diffusion"]
ROUNDS = 200


def test_e18_scenario_matrix(benchmark):
    specs = expand_component_grid(
        ALGORITHMS,
        grid_seeds(2),
        topologies=TOPOLOGIES,
        placements=PLACEMENTS,
        dynamics=DYNAMICS,
        max_rounds=ROUNDS,
    )
    assert len(specs) == 2 * 3 * 2 * 2 * 2  # topo × place × dyn × alg × seed

    outcomes = once(benchmark, lambda: run_grid_specs(specs))

    cells: dict[tuple[str, str], dict[str, list]] = {}
    for out in outcomes:
        cell = cells.setdefault((out.spec.scenario, out.spec.algorithm),
                                {"cov": [], "converged": []})
        res = out.result
        covs = res.series("cov")[ROUNDS // 2:]
        cell["cov"].append(float(covs.mean()) if covs.shape[0] else res.final_cov)
        cell["converged"].append(res.converged_round is not None)

    rows = []
    for (scenario, algorithm), agg in sorted(cells.items()):
        rows.append({
            "scenario": scenario,
            "algorithm": algorithm,
            "steady_cov": round(float(np.mean(agg["cov"])), 3),
            "converged": f"{sum(agg['converged'])}/{len(agg['converged'])}",
        })
    emit("E18_scenario_matrix", format_table(
        rows,
        columns=["scenario", "algorithm", "steady_cov", "converged"],
        title="E18 — component cross product (steady-state CoV, "
              "2 seeds per cell)",
    ))

    by_cell = {(r["scenario"], r["algorithm"]): r for r in rows}
    for scenario in {r["scenario"] for r in rows}:
        pplb = by_cell[(scenario, "pplb")]
        diff = by_cell[(scenario, "diffusion")]
        if "diurnal" in scenario:
            # Churn never stops; quality is bounded steady imbalance.
            assert pplb["steady_cov"] < 1.5
            assert pplb["steady_cov"] <= 1.5 * max(diff["steady_cov"], 0.05)
        else:
            # Static cells: PPLB must actually converge everywhere.
            assert pplb["converged"] == "2/2", scenario
