"""E7 — task dependencies & resource constraints (§4.2's T and R).

Paper claim: "Most of the work mentioned above have not considered data
dependencies between the tasks, resource constraints ... The algorithm
proposed here, however, takes into account all of the mentioned issues."

Reproduced artifact: a fork-join program released on a hotspot, swept
over the dependency-friction weight; metrics are communication cost of
the final placement (Σ T_ij·hops), fraction of dependent pairs within
one hop, and balance. A resource-affinity column shows the satisfied
affinity weight.

Expected shape: communication cost falls monotonically as w_dependency
rises; the within-1-hop fraction rises; balance degrades gracefully.
The oblivious setting (w=0) is the classical gradient balancer.
"""

from repro.analysis import format_table
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import ResourceMap, TaskSystem
from repro.tasks.generators import fork_join_tasks, place_all_on
from repro.workloads import balanced

from _harness import emit, once


def _run(w_dependency, w_resource=0.0, seed=0):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    balanced(system, tasks_per_node=2, rng=seed)
    ids, graph = fork_join_tasks(
        system, width=8, depth=4, placement=place_all_on(27), rng=seed,
        comm_weight=1.0,
    )
    resources = ResourceMap(topo.n_nodes)
    # Pin the first layer to the hotspot's region (its "input data").
    for tid in ids[:8]:
        resources.set_affinity(tid, 27, 4.0)
    cfg = PPLBConfig(
        w_dependency=w_dependency, w_resource=w_resource, kappa=1.0, mu_k_base=0.1
    )
    bal = ParticlePlaneBalancer(cfg, task_graph=graph, resources=resources)
    sim = Simulator(topo, system, bal, task_graph=graph, resources=resources,
                    seed=seed)
    res = sim.run(max_rounds=400)
    locations = system.snapshot_placement()
    hd = topo.hop_distances
    sat, tot = resources.satisfied_weight(locations)
    return {
        "w_dependency": w_dependency,
        "w_resource": w_resource,
        "comm_cost": round(graph.communication_cost(locations, hd), 1),
        "pairs<=1hop": round(graph.colocated_fraction(locations, hd, 1), 3),
        "affinity_satisfied": f"{sat:.0f}/{tot:.0f}",
        "final_cov": round(res.final_cov, 3),
        "migrations": res.total_migrations,
    }


def test_e7_dependency_sweep(benchmark):
    rows = []

    def run_all():
        for w in (0.0, 0.5, 2.0, 8.0):
            rows.append(_run(w))
        rows.append(_run(0.0, w_resource=8.0))
        return rows

    once(benchmark, run_all)
    emit(
        "E7_dependencies",
        format_table(rows, title="E7 — fork-join program (8x4) on mesh-8x8: "
                                 "dependency/resource friction sweep"),
    )

    dep_rows = rows[:4]
    costs = [r["comm_cost"] for r in dep_rows]
    closeness = [r["pairs<=1hop"] for r in dep_rows]
    # Dependency friction buys locality...
    assert costs[0] > costs[-1], costs
    assert closeness[-1] > closeness[0], closeness
    # ...and the oblivious run is the best-balanced.
    assert dep_rows[0]["final_cov"] <= dep_rows[-1]["final_cov"] + 1e-9
    # Resource affinity keeps pinned weight satisfied vs the oblivious run.
    sat_obliv = int(dep_rows[0]["affinity_satisfied"].split("/")[0])
    sat_aware = int(rows[-1]["affinity_satisfied"].split("/")[0])
    assert sat_aware >= sat_obliv
