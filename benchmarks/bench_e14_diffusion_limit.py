"""E14 (ablation) — convergence rates against the diffusion speed limit.

The paper's related work leans on diffusion convergence theory
([6] Cybenko, [19] Xu & Lau optimal parameters). This bench measures
the actual contraction rates of the fluid diffusion family — uniform α,
spectrally optimal α, and second-order (SOS) over-relaxation — against
the spectral predictions, and places task-granular PPLB's imbalance
decay next to them.

Reproduced artifact: per-algorithm fitted contraction factor γ
(spread(t) ≈ A·γ^t) vs the predicted ``max|1 − αλ|``, plus
rounds-to-1% for each.

Expected shapes: measured FOS rates match spectral predictions to a few
percent; optimal α beats uniform; SOS beats optimal FOS; PPLB (discrete,
link-capacity-limited) drains a hotspot *linearly* (a front of tasks,
not an exponential mode), so its "rate" is reported for context, not
asserted against the fluid theory.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.convergence import (
    fit_convergence_rate,
    rounds_to_fraction,
    spectral_gamma,
)
from repro.baselines import FluidDiffusion, SecondOrderDiffusion, optimal_alpha
from repro.network import torus
from repro.sim import FluidSimulator
from repro.sim.engine import ConvergenceCriteria

from _harness import default_pplb, emit, once, run_hotspot


def test_e14_rates_vs_spectral_theory(benchmark):
    topo = torus(8, 8)
    h0 = np.zeros(topo.n_nodes)
    h0[0] = 512.0
    rows = []

    def run_all():
        lam = np.linalg.eigvalsh(topo.laplacian)
        alpha_uni = 1.0 / (topo.max_degree + 1.0)
        alpha_opt = optimal_alpha(topo)
        predictions = {
            "diffusion-uniform": spectral_gamma(topo.laplacian, alpha_uni),
            "diffusion-optimal": spectral_gamma(topo.laplacian, alpha_opt),
        }

        for bal in (FluidDiffusion("uniform"), FluidDiffusion("optimal"),
                    SecondOrderDiffusion()):
            sim = FluidSimulator(
                topo, h0, bal, criteria=ConvergenceCriteria(spread_tol=1e-9)
            )
            res = sim.run(max_rounds=5000)
            series = res.series("spread")
            # fit on the asymptotic tail, away from the transient
            tail = series[20:400]
            gamma, _ = fit_convergence_rate(tail)
            rows.append(
                {
                    "algorithm": bal.name,
                    "measured_gamma": round(gamma, 4),
                    "predicted_gamma": round(predictions.get(bal.name, float("nan")), 4)
                    if bal.name in predictions
                    else "—",
                    "rounds_to_1pct": rounds_to_fraction(series, 0.01),
                }
            )

        # PPLB for context (task mode, one task per link per round).
        _sim, res = run_hotspot(topo, default_pplb(), n_tasks=512, max_rounds=600)
        series = res.series("spread")
        rows.append(
            {
                "algorithm": "pplb (task mode)",
                "measured_gamma": "linear drain",
                "predicted_gamma": "—",
                "rounds_to_1pct": rounds_to_fraction(series, 0.01),
            }
        )
        return rows

    once(benchmark, run_all)
    emit(
        "E14_diffusion_limit",
        format_table(rows, title="E14 — contraction rates on torus-8x8 "
                                 "(hotspot, spread decay)"),
    )

    by = {r["algorithm"]: r for r in rows}
    # Measured FOS rates match the spectral predictions.
    for name in ("diffusion-uniform", "diffusion-optimal"):
        meas = float(by[name]["measured_gamma"])
        pred = float(by[name]["predicted_gamma"])
        assert abs(meas - pred) < 0.05, (name, meas, pred)
    # Optimal alpha contracts faster than uniform; SOS faster still.
    g_uni = float(by["diffusion-uniform"]["measured_gamma"])
    g_opt = float(by["diffusion-optimal"]["measured_gamma"])
    g_sos = float(by["sos-diffusion"]["measured_gamma"])
    assert g_opt <= g_uni + 1e-9
    assert g_sos < g_opt
    # Everyone reaches 1% of the initial spread.
    assert all(r["rounds_to_1pct"] is not None for r in rows), rows
