"""E17b — the asynchronous study at scale: 4096 nodes on events-fast.

Paper context: E17 established that asynchronous execution does not
qualitatively break the algorithm ranking — on 64- and 256-node
topologies, sizes where the scalar event engine is still usable. This
extension pushes the async axis to a 64×64 mesh (4096 nodes, the top
of the scaling curve), which is only tractable through the batched
``events-fast`` engine, and runs the grid through the persistent pool
backend — the two specs (hotspot transient, uniform steady state)
execute concurrently on warm workers.

Reproduced artifact: per-spec events/sec at N=4096 — measured from the
``counters`` probe's ``engine.buffer_pops`` total (the engine's event
count) over the simulation's own wall clock — appended to the
machine-readable perf baseline (``benchmarks/results/
BENCH_engine.json``, key ``e17b``) next to the 256-node async pairs,
plus the usual text table. A second pass replays the whole grid from
the result cache (probe-carrying specs are first-class cacheable
runs), and the backend's spawn count pins the pool reuse.

Expected shape: the balancer still flattens the 4096-node hotspot
(CoV strictly decreasing from the initial placement) while the uniform
workload stays balanced, and the events-fast engine sustains a
meaningful event rate at a node count the scalar engine cannot touch.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e17b_async_large.py -s``
"""

import json

from repro.analysis import format_table
from repro.runner import PoolBackend, RunSpec, RunnerMetrics, run_grid

from _harness import RESULTS_DIR, emit, once

SIDE = 64  # 64x64 mesh = 4096 nodes
N_TASKS = 8192
EPOCHS = 6
#: per-wake clock jitter: waves are genuinely per-node, so the async
#: machinery (heap, wave screening, columnar buffers) is all on the
#: hot path — the degenerate config would re-time the sync loop.
ASYNC_SIM_KWARGS = {"wake_jitter": 0.2}

SCENARIOS = {
    # The decision-bound transient: a hotspot the balancer must drain.
    "transient": f"mesh:{SIDE}x{SIDE}+hotspot:n_tasks={N_TASKS}",
    # The steady-serving regime: balanced from the start, every wake a
    # no-effect visit the fast path's screen rejects wholesale.
    "steady": f"mesh:{SIDE}x{SIDE}+uniform:n_tasks={N_TASKS}",
}


def _grid() -> list[RunSpec]:
    return [
        RunSpec(
            scenario=scenario,
            algorithm="pplb",
            seed=0,
            max_rounds=EPOCHS,
            sim_kwargs=dict(ASYNC_SIM_KWARGS),
            engine="events-fast",
            recorder="summary",
            probe="counters",
        )
        for scenario in SCENARIOS.values()
    ]


def _events_of(result) -> int:
    """The engine's event count, off the counters probe.

    ``engine.buffer_pops`` accumulates the events processed per epoch,
    so its total is exactly the engine's ``events_processed``.
    """
    return int(result.telemetry["counters"]["engine.buffer_pops"])


def test_e17b_async_at_scale(benchmark, tmp_path):
    cache_dir = tmp_path / "e17b-cache"
    specs = _grid()
    backend = PoolBackend(workers=2)
    metrics = RunnerMetrics()
    try:
        outcomes = once(benchmark, lambda: run_grid(
            specs, cache=cache_dir, backend=backend, metrics=metrics,
        ))
        # Both specs through one warm pool: at most one spawn per slot.
        assert 1 <= metrics.workers_spawned <= 2
        assert metrics.backend == "pool"

        # Second pass: the probe-carrying 4096-node specs replay from
        # the cache through the same (still-warm) backend.
        again = run_grid(specs, cache=cache_dir, backend=backend)
        assert all(o.cached for o in again)
        assert [o.result.to_dict() for o in again] == [
            o.result.to_dict() for o in outcomes
        ]
        spawned_total = backend.stats()["workers_spawned"]
        assert spawned_total <= 2
    finally:
        backend.close()

    by_tag = dict(zip(SCENARIOS, outcomes))
    rows = []
    e17b_points = []
    for tag, outcome in by_tag.items():
        result = outcome.result
        events = _events_of(result)
        events_per_sec = events / result.wall_time_s
        rows.append({
            "regime": tag,
            "N": SIDE * SIDE,
            "tasks": N_TASKS,
            "epochs": result.n_rounds,
            "events": events,
            "ev/s": round(events_per_sec, 1),
            "final_cov": round(result.final_cov, 3),
        })
        e17b_points.append({
            "regime": tag,
            "scenario": outcome.spec.scenario,
            "n_nodes": SIDE * SIDE,
            "n_tasks": N_TASKS,
            "epochs": result.n_rounds,
            "events": events,
            "events_per_sec": events_per_sec,
            "final_cov": float(result.final_cov),
        })
    emit(
        "E17b_async_large",
        format_table(rows, title="E17b — events-fast at 4096 nodes "
                                 "(64x64 mesh, jittered clocks, pplb, "
                                 "persistent pool backend)"),
    )

    # Shape: the hotspot is being drained (strict improvement on the
    # initial imbalance), the uniform workload stays balanced, and the
    # engine processed roughly one wake per node per epoch (jittered
    # clocks push some final-epoch wakes past the horizon, so the floor
    # allows one boundary epoch of slack).
    transient = by_tag["transient"].result
    steady = by_tag["steady"].result
    assert transient.final_cov < transient.initial_summary["cov"]
    assert steady.final_cov < 1.0
    for outcome in outcomes:
        assert _events_of(outcome.result) >= SIDE * SIDE * (EPOCHS - 1)
        assert outcome.result.n_rounds == EPOCHS

    # Merge the section into the perf baseline artifact so `pplb
    # report` and the diffable JSON carry the 4096-node async rates
    # next to BENCH's 256-node pairs (read-modify-write: this bench
    # never clobbers BENCH's own sections).
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = RESULTS_DIR / "BENCH_engine.json"
    payload = {}
    if bench_path.exists():
        payload = json.loads(bench_path.read_text())
    payload["e17b"] = {
        "engine": "events-fast",
        "backend": "pool",
        "epochs": EPOCHS,
        "points": e17b_points,
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")
    assert json.loads(bench_path.read_text())["e17b"]["points"]
