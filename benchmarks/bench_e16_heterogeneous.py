"""E16 (extension) — heterogeneous processor speeds.

The paper's surface model carries over unchanged to machines whose
processors differ in speed: balance should then mean *capacity-
proportional* load (``h_i ∝ s_i``), which the framework achieves by
building the surface from effective heights ``h_i/s_i``. This bench
ablates that choice.

Reproduced artifact: hotspot on an 8x8 mesh whose right half is 2x
fast; speed-aware PPLB vs speed-oblivious PPLB vs (speed-oblivious)
task diffusion, measured on the capacity-weighted CoV and the
fast/slow load split.

Expected shape: speed-aware PPLB reaches weighted near-balance with a
~2:1 fast:slow load split; the oblivious variants equalise raw loads
(1:1 split) and plateau at the weighted imbalance that implies.
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import TaskDiffusion
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot

from _harness import emit, once


def _run(balancer, seed=0):
    topo = mesh(8, 8)
    speeds = np.ones(64)
    speeds[topo.coords[:, 0] > 0.5] = 2.0
    system = TaskSystem(topo)
    single_hotspot(system, 512, rng=0)
    sim = Simulator(topo, system, balancer, node_speeds=speeds, seed=seed)
    res = sim.run(max_rounds=500)
    h = system.node_loads
    fast = float(h[speeds == 2.0].sum())
    slow = float(h[speeds == 1.0].sum())
    return {
        "algorithm": balancer.name,
        "weighted_cov": round(res.final_cov, 3),
        "fast/slow_load": round(fast / max(slow, 1e-9), 2),
        "migrations": res.total_migrations,
        "converged_round": res.converged_round,
    }


def test_e16_speed_heterogeneity(benchmark):
    rows = []

    def run_all():
        aware = ParticlePlaneBalancer(PPLBConfig(beta0=0.0, speed_aware=True))
        aware.name = "pplb-speed-aware"
        oblivious = ParticlePlaneBalancer(PPLBConfig(beta0=0.0, speed_aware=False))
        oblivious.name = "pplb-oblivious"
        for bal in (aware, oblivious, TaskDiffusion("uniform")):
            rows.append(_run(bal))
        return rows

    once(benchmark, run_all)
    emit(
        "E16_heterogeneous",
        format_table(rows, title="E16 — 2x-fast right half (mesh-8x8 hotspot): "
                                 "capacity-proportional balancing"),
    )

    by = {r["algorithm"]: r for r in rows}
    # Speed-aware PPLB approaches the 2:1 capacity split and weighted balance.
    assert 1.5 < by["pplb-speed-aware"]["fast/slow_load"] < 2.5
    assert by["pplb-speed-aware"]["weighted_cov"] < 0.3
    # Oblivious balancers split ~1:1 and carry the implied weighted error.
    assert by["pplb-oblivious"]["fast/slow_load"] < 1.4
    assert by["pplb-oblivious"]["weighted_cov"] > by["pplb-speed-aware"]["weighted_cov"]
    assert by["task-diffusion-uniform"]["weighted_cov"] > by["pplb-speed-aware"][
        "weighted_cov"
    ]
