"""E15 (extension) — migration data-transfer latency.

Paper §1: the basic mechanism of dynamic balancing "is the migration of
a task from one node to another which usually means the transfer of a
considerable amount of data" — yet classical models (and the paper's
own round rules) deliver tasks instantaneously. This experiment turns
the concern into a measurement using the engine's wire model: a
migrating task spends rounds in transit (uniform latency, or
``ceil(load·d/bw)`` under the size-proportional model), during which its
load is on no node.

Reproduced artifact: latency sweep on the mesh hotspot — rounds to
quiesce, peak in-transit load, final balance.

Expected shape: convergence time grows roughly linearly with latency
(the drain pipeline lengthens), final balance is unaffected (latency
delays, it does not misplace), and the size-proportional model lands
between the small fixed latencies.
"""


from repro.analysis import format_table
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.workloads import single_hotspot

from _harness import emit, once


def _run(latency, seed=0):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    single_hotspot(system, 512, rng=0)
    sim = Simulator(
        topo,
        system,
        ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
        transfer_latency=latency,
        seed=seed,
    )
    return sim.run(max_rounds=2500)


def test_e15_latency_sweep(benchmark):
    latencies = [0, 1, 2, 4, 8, "size"]
    rows = []

    def run_all():
        for lat in latencies:
            res = _run(lat)
            rows.append(
                {
                    "latency": lat,
                    "rounds": res.converged_round if res.converged else res.n_rounds,
                    "converged": res.converged,
                    "final_cov": round(res.final_cov, 3),
                    "migrations": res.total_migrations,
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E15_transfer_latency",
        format_table(rows, title="E15 — migration latency sweep "
                                 "(mesh-8x8, 512-task hotspot)"),
    )

    # Everyone converges to the same balance ballpark.
    assert all(r["converged"] for r in rows), rows
    covs = [r["final_cov"] for r in rows[:-1]]
    assert max(covs) - min(covs) < 0.15, covs
    # Latency costs rounds, monotonically across the fixed sweep.
    fixed = [r["rounds"] for r in rows[:-1]]
    assert all(fixed[i] <= fixed[i + 1] for i in range(len(fixed) - 1)), fixed
    assert fixed[-1] > fixed[0]
    # The size-proportional model (unit-ish tasks -> 1-2 rounds on the
    # wire) behaves like a small fixed latency.
    assert abs(rows[-1]["rounds"] - fixed[0]) <= 10
