"""E17 — synchronous vs asynchronous execution (the event engine).

Paper context: the protocol is specified in lock-step rounds, but real
multiprocessors are asynchronous and latency-dominated; related work
(Demiralp et al. on diffusive balancing for particle advection; Eibl &
Rüde's systematic comparison) stresses that algorithm rankings change
with runtime conditions. E17 opens that axis: the same scenarios and
algorithms run under the synchronous engine and under the event engine
with desynchronised clocks and size-proportional transfer latency.

Reproduced artifact: a sync-vs-async table of (converged round, final
CoV, migrations, heat) per scenario × algorithm × engine, produced via
the runner grid — and replayed from the result cache on a second pass,
demonstrating the async specs are first-class cacheable runs.

Expected shape: asynchrony does not qualitatively break any algorithm
— each lands within a constant factor of its own synchronous balance
(random work stealing is poor on an extreme hotspot under *both*
engines; that is the algorithm, not the engine) — gradient-driven
algorithms still flatten the hotspot outright, and the degenerate
event config reproduces the synchronous result exactly.
"""

from repro.analysis import format_table
from repro.runner import RunSpec, run_grid

from _harness import emit, once

SCENARIOS = {
    "torus-hotspot": {"side": 8, "n_tasks": 512},
    "straggler": {"side": 8, "n_tasks": 512},
}
ALGORITHMS = ["pplb", "diffusion", "gradient-model", "work-stealing"]

#: the async runtime condition: per-wake clock jitter plus
#: size-proportional transfer latency (continuous time).
ASYNC_SIM_KWARGS = {"wake_jitter": 0.3, "transfer_latency": "size",
                    "latency_scale": 0.25}


def _grid() -> list[RunSpec]:
    specs = []
    for scenario, size in SCENARIOS.items():
        for algorithm in ALGORITHMS:
            for engine, sim_kwargs in (("rounds", {}), ("events", ASYNC_SIM_KWARGS)):
                specs.append(RunSpec(
                    scenario=scenario,
                    algorithm=algorithm,
                    seed=0,
                    max_rounds=400,
                    scenario_kwargs=dict(size),
                    sim_kwargs=dict(sim_kwargs),
                    engine=engine,
                ))
    # The degenerate pair: default event config must replay the sync run.
    specs.append(RunSpec(scenario="torus-hotspot", algorithm="pplb", seed=0,
                         max_rounds=400, scenario_kwargs=SCENARIOS["torus-hotspot"],
                         engine="events"))
    return specs


def test_e17_sync_vs_async(benchmark, tmp_path):
    cache_dir = tmp_path / "e17-cache"
    specs = _grid()
    outcomes = once(benchmark, lambda: run_grid(specs, cache=cache_dir))

    rows = [
        {
            "scenario": o.spec.scenario,
            "algorithm": o.spec.algorithm,
            "engine": "async" if o.spec.sim_kwargs else o.spec.engine,
            "converged_round": o.result.converged_round,
            "final_cov": round(o.result.final_cov, 3),
            "migrations": o.result.total_migrations,
            "heat": round(o.result.total_heat, 1),
        }
        for o in outcomes[:-1]  # the degenerate pair is an assert, not a row
    ]
    emit(
        "E17_async",
        format_table(rows, title="E17 — synchronous rounds vs asynchronous "
                                 "events (jittered clocks, size latency)"),
    )

    by = {(o.spec.scenario, o.spec.algorithm, o.spec.engine, bool(o.spec.sim_kwargs)):
          o.result for o in outcomes}

    # Degenerate event config ≡ synchronous engine, inside the grid.
    sync_ref = by[("torus-hotspot", "pplb", "rounds", False)]
    degenerate = by[("torus-hotspot", "pplb", "events", False)]
    assert degenerate.converged_round == sync_ref.converged_round
    assert degenerate.final_summary == sync_ref.final_summary

    # Async execution does not qualitatively break anyone: each
    # algorithm lands within a constant factor of its own synchronous
    # balance (or at an absolute good-balance floor).
    for (scenario, algorithm) in ((s, a) for s in SCENARIOS for a in ALGORITHMS):
        sync_cov = by[(scenario, algorithm, "rounds", False)].final_cov
        async_cov = by[(scenario, algorithm, "events", True)].final_cov
        assert async_cov <= max(2.0 * sync_cov, 0.5), (
            f"{algorithm} on {scenario}: async CoV {async_cov:.3f} vs "
            f"sync {sync_cov:.3f}"
        )

    # Gradient-driven algorithms still flatten the hotspot outright.
    for (scenario, algorithm) in ((s, a) for s in SCENARIOS
                                  for a in ("pplb", "diffusion", "gradient-model")):
        res = by[(scenario, algorithm, "events", True)]
        assert res.final_cov < 0.15 * res.initial_summary["cov"], (
            f"{algorithm} failed to balance {scenario} under async execution"
        )

    # Second pass: the whole grid (async specs included) replays from
    # the result cache.
    again = run_grid(specs, cache=cache_dir)
    assert all(o.cached for o in again)
    assert [o.result.to_dict() for o in again] == [
        o.result.to_dict() for o in outcomes
    ]
