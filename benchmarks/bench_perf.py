"""BENCH — engine performance baseline and scaling curve.

Not a paper experiment: this is the repository's performance artifact,
the baseline CI's ``perf-gate`` job compares against. It records:

* **Scaling curve** — the synchronous engine vs its vectorised
  ``rounds-fast`` twin on a uniform-random mesh workload at
  N ∈ {64, 256, 1024, 4096} nodes, simulated for a fixed round budget
  with convergence exit disabled (a production balancer keeps serving
  rounds at equilibrium — the steady-state sweep is the common case,
  and exactly the regime the scalar per-node Python loop makes O(N)
  per round). Both engines are verified to produce identical records
  before their rates are reported, so the curve compares the same
  trajectory.
* **Event engine** — jittered clocks (so waves are genuinely per-node):
  processed events/sec and rounds/sec on a 16×16 torus hotspot.

The artifact is machine-readable (``benchmarks/results/
BENCH_engine.json``) so successive baselines can be diffed and CI can
gate on regressions, plus the usual text table. Absolute numbers are
hardware-dependent; the asserts require progress, well-formed JSON and
one ratio that is machine-independent by construction: the vectorised
path must be ≥5× the scalar path at N ≥ 1024 (ISSUE 3's acceptance
bar — both sides slow down together on a loaded runner).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -s``
"""

from dataclasses import asdict

import json
import os

from repro.analysis import format_table
from repro.runner.registry import make_balancer
from repro.sim import EventSimulator, FastSimulator, Simulator
from repro.sim.engine import ConvergenceCriteria
from repro.workloads import build_scenario

from _harness import RESULTS_DIR, emit, once

ALGORITHM = "pplb"
SEED = 0

#: scaling curve: uniform-random mesh workloads, side² nodes each.
CURVE_SCENARIO = "mesh-random"
CURVE_SIDES = (8, 16, 32, 64)
CURVE_ROUNDS = 40
#: the acceptance bar: vectorised ≥ 5× scalar at N ≥ 1024.
SPEEDUP_FLOOR = 5.0
SPEEDUP_FROM_N = 1024

EVENT_SCENARIO = "torus-hotspot"
EVENT_SIZE = {"side": 16, "n_tasks": 2048}
#: desynchronised clocks mean one balancer step per *node* wake — a 256
#: node torus runs ~256 waves per epoch, so a smaller epoch budget keeps
#: the baseline under a minute while the measured rates stay stable.
EVENT_ROUNDS = 40

#: convergence exit disabled: every budgeted round is simulated, so the
#: curve measures the sustained service rate, not the length of one
#: transient.
_NO_EXIT = ConvergenceCriteria(quiet_rounds=10**9, min_rounds=0)


def _timed_run(engine_cls, side: int):
    scenario = build_scenario(CURVE_SCENARIO, seed=SEED, side=side)
    sim = engine_cls(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, criteria=_NO_EXIT,
    )
    return sim.run(max_rounds=CURVE_ROUNDS)


def measure() -> dict:
    """One full measurement pass (also invoked by scripts/perf_gate.py)."""
    points = []
    for side in CURVE_SIDES:
        scalar = _timed_run(Simulator, side)
        fast = _timed_run(FastSimulator, side)
        # The comparison is only meaningful because both engines ran the
        # exact same trajectory (the fast path's core contract).
        assert [asdict(r) for r in scalar.records] == [
            asdict(r) for r in fast.records
        ], f"fast path diverged from scalar at side={side}"
        scalar_rps = scalar.n_rounds / scalar.wall_time_s
        fast_rps = fast.n_rounds / fast.wall_time_s
        points.append({
            "side": side,
            "n_nodes": side * side,
            "n_tasks": scalar.records[-1].n_tasks,
            "rounds": scalar.n_rounds,
            "scalar_rps": scalar_rps,
            "fast_rps": fast_rps,
            "speedup": fast_rps / scalar_rps,
        })

    # The event engine is measured desynchronised (per-wake jitter), so
    # the heap, wave batching and per-node clocks are all on the hot
    # path — the degenerate config would just re-time the sync loop.
    scenario = build_scenario(EVENT_SCENARIO, seed=SEED, **EVENT_SIZE)
    sim = EventSimulator(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, wake_jitter=0.2,
    )
    ev = sim.run(max_rounds=EVENT_ROUNDS)

    return {
        "algorithm": ALGORITHM,
        "seed": SEED,
        # Machine-class fingerprint: absolute rates only compare across
        # the same class (scripts/perf_gate.py), since a dev-box
        # baseline says nothing about a CI runner's throughput.
        "environment": {"ci": bool(os.environ.get("CI"))},
        "curve": {
            "scenario": CURVE_SCENARIO,
            "rounds_budget": CURVE_ROUNDS,
            "points": points,
        },
        "events": {
            "scenario": EVENT_SCENARIO,
            "scenario_kwargs": EVENT_SIZE,
            "rounds_budget": EVENT_ROUNDS,
            "rounds": ev.n_rounds,
            "events": sim.events_processed,
            "wall_time_s": ev.wall_time_s,
            "rounds_per_sec": ev.n_rounds / ev.wall_time_s,
            "events_per_sec": sim.events_processed / ev.wall_time_s,
        },
    }


def test_perf_baseline(benchmark):
    payload = once(benchmark, measure)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        {
            "N": pt["n_nodes"],
            "tasks": pt["n_tasks"],
            "rounds": pt["rounds"],
            "scalar r/s": round(pt["scalar_rps"], 1),
            "fast r/s": round(pt["fast_rps"], 1),
            "speedup": f"{pt['speedup']:.1f}x",
        }
        for pt in payload["curve"]["points"]
    ]
    ev = payload["events"]
    rows.append({
        "N": 256,
        "tasks": EVENT_SIZE["n_tasks"],
        "rounds": ev["rounds"],
        "scalar r/s": f"events: {round(ev['rounds_per_sec'], 1)} r/s",
        "fast r/s": f"{round(ev['events_per_sec'], 1)} ev/s",
        "speedup": "-",
    })
    emit(
        "BENCH_engine",
        format_table(rows, title="BENCH — engine perf: scalar vs rounds-fast "
                                 f"scaling curve ({CURVE_SCENARIO}, {ALGORITHM}) "
                                 "+ async baseline"),
    )

    # Shape, not absolute speed — except the one machine-independent
    # ratio the acceptance criteria pin down.
    for pt in payload["curve"]["points"]:
        assert pt["rounds"] == CURVE_ROUNDS
        assert pt["scalar_rps"] > 0 and pt["fast_rps"] > 0
        if pt["n_nodes"] >= SPEEDUP_FROM_N:
            assert pt["speedup"] >= SPEEDUP_FLOOR, (
                f"vectorised path only {pt['speedup']:.1f}x at "
                f"N={pt['n_nodes']} (need >= {SPEEDUP_FLOOR}x)"
            )
    assert payload["events"]["events"] > payload["events"]["rounds"]
    assert payload["events"]["events_per_sec"] > 0
    reread = json.loads((RESULTS_DIR / "BENCH_engine.json").read_text())
    assert reread == payload
