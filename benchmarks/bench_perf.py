"""BENCH — engine performance baseline (rounds/sec and events/sec).

Not a paper experiment: this is the repository's first *performance*
artifact, seeding the perf trajectory future PRs measure against. It
times both engines on one fixed scenario — a 16×16 torus hotspot with
2048 tasks under PPLB — and records:

* synchronous engine: simulated **rounds/sec**,
* event engine (jittered clocks, so waves are genuinely per-node):
  processed **events/sec** and rounds/sec.

The artifact is machine-readable (``benchmarks/results/
BENCH_engine.json``) so successive baselines can be diffed, plus the
usual text table. Absolute numbers are hardware-dependent; the asserts
only require that both engines made progress and that the JSON is
well-formed.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -s``
"""

import json

from repro.analysis import format_table
from repro.runner import RunSpec, execute_spec

from _harness import RESULTS_DIR, emit, once

SCENARIO = "torus-hotspot"
SIZE = {"side": 16, "n_tasks": 2048}
ALGORITHM = "pplb"
SYNC_ROUNDS = 200
#: desynchronised clocks mean one balancer step per *node* wake — a 256
#: node torus runs ~256 waves per epoch, so a smaller epoch budget keeps
#: the baseline under a minute while the measured rates stay stable.
EVENT_ROUNDS = 40
SEED = 0


def _measure() -> dict:
    sync = execute_spec(RunSpec(
        scenario=SCENARIO, algorithm=ALGORITHM, seed=SEED,
        max_rounds=SYNC_ROUNDS, scenario_kwargs=dict(SIZE), engine="rounds",
    ))

    # The event engine is measured desynchronised (per-wake jitter), so
    # the heap, wave batching and per-node clocks are all on the hot
    # path — the degenerate config would just re-time the sync loop.
    from repro.runner.registry import make_balancer
    from repro.sim import EventSimulator
    from repro.workloads import build_scenario

    scenario = build_scenario(SCENARIO, seed=SEED, **SIZE)
    sim = EventSimulator(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, wake_jitter=0.2,
    )
    ev = sim.run(max_rounds=EVENT_ROUNDS)

    return {
        "scenario": SCENARIO,
        "scenario_kwargs": SIZE,
        "algorithm": ALGORITHM,
        "seed": SEED,
        "sync_rounds_budget": SYNC_ROUNDS,
        "event_rounds_budget": EVENT_ROUNDS,
        "sync": {
            "rounds": sync.n_rounds,
            "wall_time_s": sync.wall_time_s,
            "rounds_per_sec": sync.n_rounds / sync.wall_time_s,
        },
        "events": {
            "rounds": ev.n_rounds,
            "events": sim.events_processed,
            "wall_time_s": ev.wall_time_s,
            "rounds_per_sec": ev.n_rounds / ev.wall_time_s,
            "events_per_sec": sim.events_processed / ev.wall_time_s,
        },
    }


def test_perf_baseline(benchmark):
    payload = once(benchmark, _measure)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        {
            "engine": "rounds",
            "rounds": payload["sync"]["rounds"],
            "events": "-",
            "wall_s": round(payload["sync"]["wall_time_s"], 3),
            "rounds/s": round(payload["sync"]["rounds_per_sec"], 1),
            "events/s": "-",
        },
        {
            "engine": "events",
            "rounds": payload["events"]["rounds"],
            "events": payload["events"]["events"],
            "wall_s": round(payload["events"]["wall_time_s"], 3),
            "rounds/s": round(payload["events"]["rounds_per_sec"], 1),
            "events/s": round(payload["events"]["events_per_sec"], 1),
        },
    ]
    emit(
        "BENCH_engine",
        format_table(rows, title="BENCH — engine perf baseline "
                                 f"({SCENARIO} {SIZE['side']}×{SIZE['side']}, "
                                 f"{SIZE['n_tasks']} tasks, {ALGORITHM})"),
    )

    # Shape, not speed: both engines made progress and the JSON is sane.
    assert payload["sync"]["rounds"] >= 1
    assert payload["sync"]["rounds_per_sec"] > 0
    assert payload["events"]["events"] > payload["events"]["rounds"]
    assert payload["events"]["events_per_sec"] > 0
    reread = json.loads((RESULTS_DIR / "BENCH_engine.json").read_text())
    assert reread == payload
