"""BENCH — engine performance baseline and scaling curve.

Not a paper experiment: this is the repository's performance artifact,
the baseline CI's ``perf-gate`` job compares against. It records:

* **Scaling curve** — the synchronous engine vs its vectorised
  ``rounds-fast`` twin on a uniform-random mesh workload at
  N ∈ {64, 256, 1024, 4096} nodes, simulated for a fixed round budget
  with convergence exit disabled (a production balancer keeps serving
  rounds at equilibrium — the steady-state sweep is the common case,
  and exactly the regime the scalar per-node Python loop makes O(N)
  per round). Both engines are verified to produce identical records
  before their rates are reported, so the curve compares the same
  trajectory.
* **Event engine** — jittered clocks (so waves are genuinely per-node):
  processed events/sec and rounds/sec on a 16×16 torus hotspot.
* **Record throughput** — the long-run measurement pipeline: a
  1024-node ``rounds-fast`` run over 2000 rounds under the
  ``summary`` recorder (O(1) memory, no per-round history) next to
  the same run under ``full`` columnar recording. Both rates are
  tracked; the summary run must retain zero per-round records and
  never lag full recording by more than noise — the recorder is pure
  observation, not a tax on the loop.

The artifact is machine-readable (``benchmarks/results/
BENCH_engine.json``) so successive baselines can be diffed and CI can
gate on regressions, plus the usual text table. Absolute numbers are
hardware-dependent; the asserts require progress, well-formed JSON and
one ratio that is machine-independent by construction: the vectorised
path must be ≥5× the scalar path at N ≥ 1024 (ISSUE 3's acceptance
bar — both sides slow down together on a loaded runner).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -s``
"""

from dataclasses import asdict

import json
import os

from repro.analysis import format_table
from repro.runner.registry import make_balancer
from repro.sim import EventSimulator, FastSimulator, Simulator
from repro.sim.engine import ConvergenceCriteria
from repro.workloads import build_scenario

from _harness import RESULTS_DIR, emit, once

ALGORITHM = "pplb"
SEED = 0

#: scaling curve: uniform-random mesh workloads, side² nodes each.
CURVE_SCENARIO = "mesh-random"
CURVE_SIDES = (8, 16, 32, 64)
CURVE_ROUNDS = 40
#: the acceptance bar: vectorised ≥ 5× scalar at N ≥ 1024.
SPEEDUP_FLOOR = 5.0
SPEEDUP_FROM_N = 1024

#: record-throughput (long-run measurement pipeline) workload.
RECORD_SIDE = 32  # 1024 nodes
RECORD_ROUNDS = 2000
#: summary recording may never cost more than this fraction vs full —
#: machine-independent by construction (both runs share the machine);
#: the slack absorbs run-to-run noise on loaded runners.
RECORD_RPS_FLOOR = 0.85

EVENT_SCENARIO = "torus-hotspot"
EVENT_SIZE = {"side": 16, "n_tasks": 2048}
#: desynchronised clocks mean one balancer step per *node* wake — a 256
#: node torus runs ~256 waves per epoch, so a smaller epoch budget keeps
#: the baseline under a minute while the measured rates stay stable.
EVENT_ROUNDS = 40

#: convergence exit disabled: every budgeted round is simulated, so the
#: curve measures the sustained service rate, not the length of one
#: transient.
_NO_EXIT = ConvergenceCriteria(quiet_rounds=10**9, min_rounds=0)


def _timed_run(engine_cls, side: int, rounds: int = CURVE_ROUNDS,
               recorder: str = "full"):
    scenario = build_scenario(CURVE_SCENARIO, seed=SEED, side=side)
    sim = engine_cls(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, criteria=_NO_EXIT,
        recorder=recorder,
    )
    return sim.run(max_rounds=rounds)


def measure() -> dict:
    """One full measurement pass (also invoked by scripts/perf_gate.py)."""
    points = []
    for side in CURVE_SIDES:
        scalar = _timed_run(Simulator, side)
        fast = _timed_run(FastSimulator, side)
        # The comparison is only meaningful because both engines ran the
        # exact same trajectory (the fast path's core contract).
        assert [asdict(r) for r in scalar.records] == [
            asdict(r) for r in fast.records
        ], f"fast path diverged from scalar at side={side}"
        scalar_rps = scalar.n_rounds / scalar.wall_time_s
        fast_rps = fast.n_rounds / fast.wall_time_s
        points.append({
            "side": side,
            "n_nodes": side * side,
            "n_tasks": scalar.records[-1].n_tasks,
            "rounds": scalar.n_rounds,
            "scalar_rps": scalar_rps,
            "fast_rps": fast_rps,
            "speedup": fast_rps / scalar_rps,
        })

    # Record throughput: the sustained service rate of a long run when
    # nothing per-round is retained (summary aggregates) vs the full
    # columnar log. Totals must agree exactly — the recorder observes,
    # it never steers.
    full = _timed_run(FastSimulator, RECORD_SIDE, rounds=RECORD_ROUNDS,
                      recorder="full")
    summary = _timed_run(FastSimulator, RECORD_SIDE, rounds=RECORD_ROUNDS,
                         recorder="summary")
    assert len(summary.records) == 0, "summary recorder retained history"
    assert summary.n_rounds == full.n_rounds == RECORD_ROUNDS
    assert summary.total_migrations == full.total_migrations
    record_throughput = {
        "scenario": CURVE_SCENARIO,
        "n_nodes": RECORD_SIDE * RECORD_SIDE,
        "rounds": RECORD_ROUNDS,
        "full_rps": full.n_rounds / full.wall_time_s,
        "summary_rps": summary.n_rounds / summary.wall_time_s,
        "records_retained_full": len(full.records),
        "records_retained_summary": len(summary.records),
    }
    # Enforced here (not only in the pytest wrapper) so every
    # scripts/perf_gate.py attempt gates it too — the one
    # machine-independent record-throughput check.
    assert record_throughput["summary_rps"] >= (
        RECORD_RPS_FLOOR * record_throughput["full_rps"]
    ), (
        f"summary recording lagged full recording: "
        f"{record_throughput['summary_rps']:.1f} < {RECORD_RPS_FLOOR} * "
        f"{record_throughput['full_rps']:.1f}"
    )

    # The event engine is measured desynchronised (per-wake jitter), so
    # the heap, wave batching and per-node clocks are all on the hot
    # path — the degenerate config would just re-time the sync loop.
    scenario = build_scenario(EVENT_SCENARIO, seed=SEED, **EVENT_SIZE)
    sim = EventSimulator(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, wake_jitter=0.2,
    )
    ev = sim.run(max_rounds=EVENT_ROUNDS)

    return {
        "algorithm": ALGORITHM,
        "seed": SEED,
        # Machine-class fingerprint: absolute rates only compare across
        # the same class (scripts/perf_gate.py), since a dev-box
        # baseline says nothing about a CI runner's throughput.
        "environment": {"ci": bool(os.environ.get("CI"))},
        "curve": {
            "scenario": CURVE_SCENARIO,
            "rounds_budget": CURVE_ROUNDS,
            "points": points,
        },
        "record_throughput": record_throughput,
        "events": {
            "scenario": EVENT_SCENARIO,
            "scenario_kwargs": EVENT_SIZE,
            "rounds_budget": EVENT_ROUNDS,
            "rounds": ev.n_rounds,
            "events": sim.events_processed,
            "wall_time_s": ev.wall_time_s,
            "rounds_per_sec": ev.n_rounds / ev.wall_time_s,
            "events_per_sec": sim.events_processed / ev.wall_time_s,
        },
    }


def test_perf_baseline(benchmark):
    payload = once(benchmark, measure)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        {
            "N": pt["n_nodes"],
            "tasks": pt["n_tasks"],
            "rounds": pt["rounds"],
            "scalar r/s": round(pt["scalar_rps"], 1),
            "fast r/s": round(pt["fast_rps"], 1),
            "speedup": f"{pt['speedup']:.1f}x",
        }
        for pt in payload["curve"]["points"]
    ]
    rt = payload["record_throughput"]
    rows.append({
        "N": rt["n_nodes"],
        "tasks": "-",
        "rounds": rt["rounds"],
        "scalar r/s": f"full rec: {round(rt['full_rps'], 1)} r/s",
        "fast r/s": f"summary: {round(rt['summary_rps'], 1)} r/s",
        "speedup": f"{rt['summary_rps'] / rt['full_rps']:.2f}x",
    })
    ev = payload["events"]
    rows.append({
        "N": 256,
        "tasks": EVENT_SIZE["n_tasks"],
        "rounds": ev["rounds"],
        "scalar r/s": f"events: {round(ev['rounds_per_sec'], 1)} r/s",
        "fast r/s": f"{round(ev['events_per_sec'], 1)} ev/s",
        "speedup": "-",
    })
    emit(
        "BENCH_engine",
        format_table(rows, title="BENCH — engine perf: scalar vs rounds-fast "
                                 f"scaling curve ({CURVE_SCENARIO}, {ALGORITHM}) "
                                 "+ async baseline"),
    )

    # Shape, not absolute speed — except the one machine-independent
    # ratio the acceptance criteria pin down.
    for pt in payload["curve"]["points"]:
        assert pt["rounds"] == CURVE_ROUNDS
        assert pt["scalar_rps"] > 0 and pt["fast_rps"] > 0
        if pt["n_nodes"] >= SPEEDUP_FROM_N:
            assert pt["speedup"] >= SPEEDUP_FLOOR, (
                f"vectorised path only {pt['speedup']:.1f}x at "
                f"N={pt['n_nodes']} (need >= {SPEEDUP_FLOOR}x)"
            )
    rt = payload["record_throughput"]
    assert rt["rounds"] == RECORD_ROUNDS
    assert rt["records_retained_summary"] == 0  # O(1) record memory
    assert rt["records_retained_full"] == RECORD_ROUNDS
    assert payload["events"]["events"] > payload["events"]["rounds"]
    assert payload["events"]["events_per_sec"] > 0
    reread = json.loads((RESULTS_DIR / "BENCH_engine.json").read_text())
    assert reread == payload
