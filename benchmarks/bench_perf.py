"""BENCH — engine performance baseline and scaling curve.

Not a paper experiment: this is the repository's performance artifact,
the baseline CI's ``perf-gate`` job compares against. It records:

* **Scaling curve** — the synchronous engine vs its vectorised
  ``rounds-fast`` twin on a uniform-random mesh workload at
  N ∈ {64, 256, 1024, 4096} nodes, simulated for a fixed round budget
  with convergence exit disabled (a production balancer keeps serving
  rounds at equilibrium — the steady-state sweep is the common case,
  and exactly the regime the scalar per-node Python loop makes O(N)
  per round). Both engines are verified to produce identical records
  before their rates are reported, so the curve compares the same
  trajectory.
* **Event engine** — jittered clocks (so waves are genuinely per-node):
  the scalar ``events`` engine vs its batched ``events-fast`` twin,
  verified record-identical before rates are reported, in two regimes
  on the same 16×16 torus: the decision-bound *hotspot transient*
  (rates tracked) and the *steady-state serving* pair — uniform-random
  placement that quiesces after a short transient, after which every
  wake is a no-effect visit the fast path's screen rejects wholesale
  (the production regime, mirroring the curve's no-exit rationale).
  The steady pair carries the acceptance bar: events-fast must process
  ≥10× the scalar engine's events/sec, a machine-independent ratio
  since both engines run the identical event stream back to back.
* **Record throughput** — the long-run measurement pipeline: a
  1024-node ``rounds-fast`` run over 2000 rounds under the
  ``summary`` recorder (O(1) memory, no per-round history) next to
  the same run under ``full`` columnar recording. Both rates are
  tracked; the summary run must retain zero per-round records and
  never lag full recording by more than noise — the recorder is pure
  observation, not a tax on the loop.
* **Probe overhead** — the telemetry layer's cost ceiling: the same
  1024-node ``rounds-fast`` workload under the default ``null`` probe
  vs the ``counters`` probe (per-phase wall times + structured
  decision counters), best-of-3 interleaved pairs to shed scheduler
  noise, records verified identical before the rates are reported.
  The counters run may cost at most 5% wall time over null —
  machine-independent by construction (interleaved runs share the
  machine) — so telemetry stays cheap enough to leave on in
  experiments. The ceiling is asserted by this test and per-attempt
  by ``scripts/perf_gate.py`` (where noise earns a retry).

The artifact is machine-readable (``benchmarks/results/
BENCH_engine.json``) so successive baselines can be diffed and CI can
gate on regressions, plus the usual text table. Absolute numbers are
hardware-dependent; the asserts require progress, well-formed JSON and
two ratios that are machine-independent by construction (both sides
slow down together on a loaded runner): the vectorised rounds path
must be ≥5× the scalar path at N ≥ 1024 (ISSUE 3's acceptance bar)
and events-fast must be ≥10× scalar events/sec on the steady-state
torus pair (PR 6's acceptance bar).

* **Grid dispatch** — the runner's fully-cached replay rate: a
  200-spec grid, already cached, re-run twice per attempt — once
  through the per-spec JSON path (every payload parsed, every result
  rebuilt) and once at metric level (``keep_results=False``, answered
  from the cache's index sidecar). Interleaved best-of-3 pairs; the
  metric values are verified identical before the rates are reported.
  The indexed path must re-dispatch ≥5× faster than the per-spec JSON
  baseline — machine-independent by construction — and its absolute
  rate is tracked as ``grid_dispatch_rps`` by ``scripts/perf_gate.py``.

* **Batch throughput** — the replicate-batching engine (PR 10): a
  32-seed sweep over four uniform serving scenarios, run once as a
  per-seed ``rounds-fast`` loop and once through ``BatchSimulator``
  with the topology shared across replicates (exactly how
  ``run_grid(..., batch_replicates=…)`` groups a grid's seed axis).
  Every replicate is verified record-identical to its per-seed twin
  before the specs/sec rates are reported; the batched run must clear
  ≥3× the per-seed loop — machine-independent by construction, since
  both sides run the identical trajectories back to back.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -s``
"""

from dataclasses import asdict

import json
import os
import tempfile
import time

from repro.analysis import format_table
from repro.runner import ResultCache, default_metrics, expand_grid, run_grid
from repro.runner.registry import make_balancer
from repro.sim import (
    BatchSimulator,
    EventFastSimulator,
    EventSimulator,
    FastSimulator,
    Simulator,
)
from repro.sim.engine import ConvergenceCriteria
from repro.workloads import build_scenario

from _harness import RESULTS_DIR, emit, once

ALGORITHM = "pplb"
SEED = 0

#: scaling curve: uniform-random mesh workloads, side² nodes each.
CURVE_SCENARIO = "mesh-random"
CURVE_SIDES = (8, 16, 32, 64)
CURVE_ROUNDS = 40
#: the acceptance bar: vectorised ≥ 5× scalar at N ≥ 1024.
SPEEDUP_FLOOR = 5.0
SPEEDUP_FROM_N = 1024

#: record-throughput (long-run measurement pipeline) workload.
RECORD_SIDE = 32  # 1024 nodes
RECORD_ROUNDS = 2000
#: summary recording may never cost more than this fraction vs full —
#: machine-independent by construction (both runs share the machine);
#: the slack absorbs run-to-run noise on loaded runners.
RECORD_RPS_FLOOR = 0.85

#: probe-overhead workload: rounds-fast at N=1024 (the acceptance
#: size); the counters probe may cost at most this wall-time factor
#: over the null probe, best-of-2 runs each.
PROBE_SIDE = 32
PROBE_ROUNDS = 200
PROBE_OVERHEAD_CEILING = 1.05

EVENT_SCENARIO = "torus-hotspot"
EVENT_SIZE = {"side": 16, "n_tasks": 2048}
#: desynchronised clocks mean one balancer step per *node* wake — a 256
#: node torus runs ~256 waves per epoch, so a smaller epoch budget keeps
#: the baseline under a minute while the measured rates stay stable.
EVENT_ROUNDS = 40

#: steady-state serving pair: uniform-random placement on the same
#: 256-node torus balances within a couple of epochs, after which the
#: engines keep serving wake waves with nothing left to move — exactly
#: the no-effect regime the events-fast screen rejects without touching
#: scalar decision bodies (or the RNG).
EVENT_STEADY_SCENARIO = "torus:side=16+uniform:n_tasks=2048"
EVENT_STEADY_ROUNDS = 10
#: the async acceptance bar: events-fast ≥ 10x scalar events/sec on the
#: steady-state pair — machine-independent by construction (the engines
#: process the identical event stream back to back, so the events/sec
#: ratio is the wall-time ratio).
ASYNC_SPEEDUP_FLOOR = 10.0

#: grid-dispatch workload: 200 tiny specs (2 scenarios × 2 algorithms
#: × 50 seeds), cached once, then replayed — the dispatch benchmark
#: times the *runner*, so the simulations themselves stay minimal.
DISPATCH_SCENARIOS = ("mesh-hotspot", "mesh-random")
DISPATCH_ALGORITHMS = ("pplb", "diffusion")
DISPATCH_SEEDS = 50
DISPATCH_ROUNDS = 20
#: the dispatch acceptance bar: the indexed metric-level replay must
#: beat the per-spec JSON replay ≥ 5× — machine-independent by
#: construction (interleaved re-runs of the same cached grid).
DISPATCH_SPEEDUP_FLOOR = 5.0

#: replicate-batching workload: uniform serving scenarios (the steady
#: regime a seed sweep spends its time in), each run once per-seed and
#: once through ``BatchSimulator`` with the topology shared — exactly
#: how ``run_grid(..., batch_replicates=…)`` groups a grid's seed axis.
BATCH_SCENARIOS = (
    "mesh:8x8+uniform:n_tasks=256",
    "torus:8x8+uniform:n_tasks=256",
    "mesh:10x10+uniform:n_tasks=400",
    "torus:10x10+uniform:n_tasks=400",
)
BATCH_SEEDS = 32
BATCH_ROUNDS = 500
#: the replicate-batching acceptance bar: batched ≥ 3× the per-seed
#: loop in specs/sec — machine-independent by construction (both sides
#: run the identical 128 trajectories back to back, verified record-
#: identical before the rates are reported).
BATCH_SPEEDUP_FLOOR = 3.0

#: convergence exit disabled: every budgeted round is simulated, so the
#: curve measures the sustained service rate, not the length of one
#: transient.
_NO_EXIT = ConvergenceCriteria(quiet_rounds=10**9, min_rounds=0)


def _timed_run(engine_cls, side: int, rounds: int = CURVE_ROUNDS,
               recorder: str = "full", probe: str = "null"):
    scenario = build_scenario(CURVE_SCENARIO, seed=SEED, side=side)
    sim = engine_cls(
        scenario.topology, scenario.system, make_balancer(ALGORITHM),
        links=scenario.links, seed=SEED, criteria=_NO_EXIT,
        recorder=recorder, probe=probe,
    )
    return sim.run(max_rounds=rounds)


def _probe_overhead() -> dict:
    """Null vs counters probe on the N=1024 fast path, best-of-3 each.

    The pairs are *interleaved* (null, counters, null, counters, …) so
    a load drift on a busy machine hits both variants alike instead of
    biasing whichever ran second. The ceiling itself is enforced by the
    pytest wrapper and by ``scripts/perf_gate.py``'s per-attempt check
    (where a noisy attempt is retried), not here — a hard assert inside
    the measurement would turn runner noise into a crash.
    """
    null = counted = None
    for _ in range(3):
        null_run = _timed_run(FastSimulator, PROBE_SIDE,
                              rounds=PROBE_ROUNDS, probe="null")
        counted_run = _timed_run(FastSimulator, PROBE_SIDE,
                                 rounds=PROBE_ROUNDS, probe="counters")
        if null is None or null_run.wall_time_s < null.wall_time_s:
            null = null_run
        if counted is None or counted_run.wall_time_s < counted.wall_time_s:
            counted = counted_run
    # The comparison is meaningful only if the probe truly observed
    # without steering — identical trajectories, counters on the side.
    assert [asdict(r) for r in null.records] == [
        asdict(r) for r in counted.records
    ], "counters probe changed the simulation"
    assert null.telemetry is None
    assert counted.telemetry["counters"]["engine.transfers_applied"] == \
        counted.total_migrations
    return {
        "scenario": CURVE_SCENARIO,
        "n_nodes": PROBE_SIDE * PROBE_SIDE,
        "rounds": PROBE_ROUNDS,
        "null_rps": null.n_rounds / null.wall_time_s,
        "counters_rps": counted.n_rounds / counted.wall_time_s,
        "overhead": counted.wall_time_s / null.wall_time_s,
    }


def _grid_dispatch() -> dict:
    """Fully-cached 200-spec replay: per-spec JSON vs indexed metrics.

    Interleaved best-of-3 pairs (like the probe-overhead measurement)
    so machine-load drift hits both variants alike. The metric values
    must agree exactly — they were computed by the same function at
    store time and round-trip exactly through JSON — or the rates
    compare nothing.
    """
    specs = expand_grid(
        DISPATCH_SCENARIOS, DISPATCH_ALGORITHMS,
        list(range(DISPATCH_SEEDS)),
        max_rounds=DISPATCH_ROUNDS,
        scenario_kwargs={"side": 4, "n_tasks": 64},
        engine="rounds-fast",  # default full recorder: the payloads
        # carry per-round records, like any real experiment grid.
    )
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        run_grid(specs, cache=cache)  # populate (untimed)

        baseline_s = fast_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            full = run_grid(specs, cache=cache)
            baseline_s = min(baseline_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            slim = run_grid(specs, cache=cache, keep_results=False)
            fast_s = min(fast_s, time.perf_counter() - t0)
        assert all(o.cached for o in full) and all(o.cached for o in slim)
        assert [default_metrics(o.result) for o in full] == [
            o.metrics for o in slim
        ], "indexed metric replay diverged from the payload path"

    n = len(specs)
    dispatch = {
        "n_specs": n,
        "rounds": DISPATCH_ROUNDS,
        "baseline_rps": n / baseline_s,
        "fast_rps": n / fast_s,
        "speedup": baseline_s / fast_s,
    }
    # Enforced here (not only in the pytest wrapper) so every
    # scripts/perf_gate.py attempt gates it too.
    assert dispatch["speedup"] >= DISPATCH_SPEEDUP_FLOOR, (
        f"indexed grid dispatch only {dispatch['speedup']:.1f}x the "
        f"per-spec JSON replay (need >= {DISPATCH_SPEEDUP_FLOOR}x)"
    )
    return dispatch


def _batch_throughput() -> dict:
    """Per-seed loop vs one replicate-batched run, verified equal.

    Simulator construction stays outside both timers (it is identical
    work on both sides); the ``BatchSimulator`` wrapper itself is timed
    — its stacking cost is real batch-path overhead. Every replicate is
    verified record-identical to its per-seed twin before the rates are
    reported, so the specs/sec ratio compares the same 128 trajectories.
    The floor is asserted here (not only in the pytest wrapper) so every
    ``scripts/perf_gate.py`` attempt gates it too.
    """

    def build(name: str, seed: int, topology=None):
        scenario = build_scenario(name, seed=seed, topology=topology)
        sim = FastSimulator(
            scenario.topology, scenario.system, make_balancer(ALGORITHM),
            links=scenario.links, seed=seed, criteria=_NO_EXIT,
        )
        return scenario.topology, sim

    solo_s = batch_s = 0.0
    for name in BATCH_SCENARIOS:
        solo_sims = [build(name, seed)[1] for seed in range(BATCH_SEEDS)]
        batch_sims = []
        topology = None
        for seed in range(BATCH_SEEDS):
            topo, sim = build(name, seed, topology=topology)
            topology = topo
            batch_sims.append(sim)

        t0 = time.perf_counter()
        solo_results = [s.run(max_rounds=BATCH_ROUNDS) for s in solo_sims]
        solo_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        batch_results = BatchSimulator(batch_sims).run(
            max_rounds=BATCH_ROUNDS
        )
        batch_s += time.perf_counter() - t0

        # The rates compare the same trajectories or they compare
        # nothing — the batch engine's core contract, per replicate.
        for solo, batched in zip(solo_results, batch_results):
            assert [asdict(r) for r in solo.records] == [
                asdict(r) for r in batched.records
            ], f"batched replicate diverged from per-seed run on {name}"

    n = len(BATCH_SCENARIOS) * BATCH_SEEDS
    batch = {
        "scenarios": list(BATCH_SCENARIOS),
        "n_specs": n,
        "replicates": BATCH_SEEDS,
        "rounds": BATCH_ROUNDS,
        "solo_sps": n / solo_s,
        "batch_sps": n / batch_s,
        "speedup": solo_s / batch_s,
    }
    assert batch["speedup"] >= BATCH_SPEEDUP_FLOOR, (
        f"replicate batching only {batch['speedup']:.1f}x the per-seed "
        f"loop (need >= {BATCH_SPEEDUP_FLOOR}x)"
    )
    return batch


def _timed_event_pair(scenario_name: str, scenario_kwargs: dict,
                      rounds: int, criteria=None) -> dict:
    """Scalar vs batched event engine on one workload, verified equal."""

    def run(engine_cls):
        scenario = build_scenario(scenario_name, seed=SEED, **scenario_kwargs)
        extra = {} if criteria is None else {"criteria": criteria}
        sim = engine_cls(
            scenario.topology, scenario.system, make_balancer(ALGORITHM),
            links=scenario.links, seed=SEED, wake_jitter=0.2, **extra,
        )
        return sim, sim.run(max_rounds=rounds)

    scalar_sim, scalar = run(EventSimulator)
    fast_sim, fast = run(EventFastSimulator)
    # The rates compare the same trajectory or they compare nothing:
    # identical records and identical event streams, like the curve.
    assert [asdict(r) for r in scalar.records] == [
        asdict(r) for r in fast.records
    ], f"events-fast diverged from events on {scenario_name}"
    assert scalar_sim.events_processed == fast_sim.events_processed
    events = scalar_sim.events_processed
    return {
        "scenario": scenario_name,
        "scenario_kwargs": dict(scenario_kwargs),
        "rounds_budget": rounds,
        "rounds": scalar.n_rounds,
        "events": events,
        "scalar": {
            "wall_time_s": scalar.wall_time_s,
            "rounds_per_sec": scalar.n_rounds / scalar.wall_time_s,
            "events_per_sec": events / scalar.wall_time_s,
        },
        "fast": {
            "wall_time_s": fast.wall_time_s,
            "rounds_per_sec": fast.n_rounds / fast.wall_time_s,
            "events_per_sec": events / fast.wall_time_s,
        },
        "speedup": scalar.wall_time_s / fast.wall_time_s,
    }


def measure() -> dict:
    """One full measurement pass (also invoked by scripts/perf_gate.py)."""
    points = []
    for side in CURVE_SIDES:
        scalar = _timed_run(Simulator, side)
        fast = _timed_run(FastSimulator, side)
        # The comparison is only meaningful because both engines ran the
        # exact same trajectory (the fast path's core contract).
        assert [asdict(r) for r in scalar.records] == [
            asdict(r) for r in fast.records
        ], f"fast path diverged from scalar at side={side}"
        scalar_rps = scalar.n_rounds / scalar.wall_time_s
        fast_rps = fast.n_rounds / fast.wall_time_s
        points.append({
            "side": side,
            "n_nodes": side * side,
            "n_tasks": scalar.records[-1].n_tasks,
            "rounds": scalar.n_rounds,
            "scalar_rps": scalar_rps,
            "fast_rps": fast_rps,
            "speedup": fast_rps / scalar_rps,
        })

    # Record throughput: the sustained service rate of a long run when
    # nothing per-round is retained (summary aggregates) vs the full
    # columnar log. Totals must agree exactly — the recorder observes,
    # it never steers.
    full = _timed_run(FastSimulator, RECORD_SIDE, rounds=RECORD_ROUNDS,
                      recorder="full")
    summary = _timed_run(FastSimulator, RECORD_SIDE, rounds=RECORD_ROUNDS,
                         recorder="summary")
    assert len(summary.records) == 0, "summary recorder retained history"
    assert summary.n_rounds == full.n_rounds == RECORD_ROUNDS
    assert summary.total_migrations == full.total_migrations
    record_throughput = {
        "scenario": CURVE_SCENARIO,
        "n_nodes": RECORD_SIDE * RECORD_SIDE,
        "rounds": RECORD_ROUNDS,
        "full_rps": full.n_rounds / full.wall_time_s,
        "summary_rps": summary.n_rounds / summary.wall_time_s,
        "records_retained_full": len(full.records),
        "records_retained_summary": len(summary.records),
    }
    # Enforced here (not only in the pytest wrapper) so every
    # scripts/perf_gate.py attempt gates it too — the one
    # machine-independent record-throughput check.
    assert record_throughput["summary_rps"] >= (
        RECORD_RPS_FLOOR * record_throughput["full_rps"]
    ), (
        f"summary recording lagged full recording: "
        f"{record_throughput['summary_rps']:.1f} < {RECORD_RPS_FLOOR} * "
        f"{record_throughput['full_rps']:.1f}"
    )

    # The event engines are measured desynchronised (per-wake jitter),
    # so the heap/wave machinery and per-node clocks are all on the hot
    # path — the degenerate config would just re-time the sync loop.
    # Transient: the hotspot keeps ~10 particles in flight the whole
    # budget, so every wave pays mandatory Phase-A decisions (tracked
    # rates, no floor — the regime is decision-bound by construction).
    events = _timed_event_pair(EVENT_SCENARIO, EVENT_SIZE, EVENT_ROUNDS)
    # Steady state: quiesces after a short transient; from there the
    # screen rejects whole waves, which is where the batching pays.
    events_steady = _timed_event_pair(
        EVENT_STEADY_SCENARIO, {}, EVENT_STEADY_ROUNDS, criteria=_NO_EXIT
    )
    # Enforced here (not only in the pytest wrapper) so every
    # scripts/perf_gate.py attempt gates it too.
    assert events_steady["speedup"] >= ASYNC_SPEEDUP_FLOOR, (
        f"events-fast only {events_steady['speedup']:.1f}x scalar events "
        f"on the steady-state pair (need >= {ASYNC_SPEEDUP_FLOOR}x)"
    )

    return {
        "algorithm": ALGORITHM,
        "seed": SEED,
        # Machine-class fingerprint: absolute rates only compare across
        # the same class (scripts/perf_gate.py), since a dev-box
        # baseline says nothing about a CI runner's throughput.
        "environment": {"ci": bool(os.environ.get("CI"))},
        "curve": {
            "scenario": CURVE_SCENARIO,
            "rounds_budget": CURVE_ROUNDS,
            "points": points,
        },
        "record_throughput": record_throughput,
        "probe_overhead": _probe_overhead(),
        "grid_dispatch": _grid_dispatch(),
        "batch_throughput": _batch_throughput(),
        "events": events,
        "events_steady": events_steady,
    }


def test_perf_baseline(benchmark):
    payload = once(benchmark, measure)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        {
            "N": pt["n_nodes"],
            "tasks": pt["n_tasks"],
            "rounds": pt["rounds"],
            "scalar r/s": round(pt["scalar_rps"], 1),
            "fast r/s": round(pt["fast_rps"], 1),
            "speedup": f"{pt['speedup']:.1f}x",
        }
        for pt in payload["curve"]["points"]
    ]
    rt = payload["record_throughput"]
    rows.append({
        "N": rt["n_nodes"],
        "tasks": "-",
        "rounds": rt["rounds"],
        "scalar r/s": f"full rec: {round(rt['full_rps'], 1)} r/s",
        "fast r/s": f"summary: {round(rt['summary_rps'], 1)} r/s",
        "speedup": f"{rt['summary_rps'] / rt['full_rps']:.2f}x",
    })
    po = payload["probe_overhead"]
    rows.append({
        "N": po["n_nodes"],
        "tasks": "probe",
        "rounds": po["rounds"],
        "scalar r/s": f"null: {round(po['null_rps'], 1)} r/s",
        "fast r/s": f"counters: {round(po['counters_rps'], 1)} r/s",
        "speedup": f"{po['overhead']:.3f}x cost",
    })
    gd = payload["grid_dispatch"]
    rows.append({
        "N": gd["n_specs"],
        "tasks": "dispatch",
        "rounds": gd["rounds"],
        "scalar r/s": f"json: {round(gd['baseline_rps'], 1)} spec/s",
        "fast r/s": f"indexed: {round(gd['fast_rps'], 1)} spec/s",
        "speedup": f"{gd['speedup']:.1f}x",
    })
    bt = payload["batch_throughput"]
    rows.append({
        "N": bt["n_specs"],
        "tasks": "batch",
        "rounds": bt["rounds"],
        "scalar r/s": f"per-seed: {round(bt['solo_sps'], 2)} spec/s",
        "fast r/s": f"batched: {round(bt['batch_sps'], 2)} spec/s",
        "speedup": f"{bt['speedup']:.1f}x",
    })
    for tag, ev in (("async transient", payload["events"]),
                    ("async steady", payload["events_steady"])):
        rows.append({
            "N": 256,
            "tasks": tag,
            "rounds": ev["rounds"],
            "scalar r/s": f"{round(ev['scalar']['events_per_sec'], 1)} ev/s",
            "fast r/s": f"{round(ev['fast']['events_per_sec'], 1)} ev/s",
            "speedup": f"{ev['speedup']:.1f}x",
        })
    emit(
        "BENCH_engine",
        format_table(rows, title="BENCH — engine perf: scalar vs rounds-fast "
                                 f"scaling curve ({CURVE_SCENARIO}, {ALGORITHM}) "
                                 "+ events vs events-fast async pairs"),
    )

    # Shape, not absolute speed — except the one machine-independent
    # ratio the acceptance criteria pin down.
    for pt in payload["curve"]["points"]:
        assert pt["rounds"] == CURVE_ROUNDS
        assert pt["scalar_rps"] > 0 and pt["fast_rps"] > 0
        if pt["n_nodes"] >= SPEEDUP_FROM_N:
            assert pt["speedup"] >= SPEEDUP_FLOOR, (
                f"vectorised path only {pt['speedup']:.1f}x at "
                f"N={pt['n_nodes']} (need >= {SPEEDUP_FLOOR}x)"
            )
    rt = payload["record_throughput"]
    assert rt["rounds"] == RECORD_ROUNDS
    assert rt["records_retained_summary"] == 0  # O(1) record memory
    assert rt["records_retained_full"] == RECORD_ROUNDS
    po = payload["probe_overhead"]
    assert po["rounds"] == PROBE_ROUNDS and po["n_nodes"] == 1024
    assert po["null_rps"] > 0 and po["counters_rps"] > 0
    # The telemetry acceptance bar (the CI gate re-checks it per
    # attempt, so a noisy runner earns a retry there).
    assert po["overhead"] <= PROBE_OVERHEAD_CEILING, (
        f"counters probe costs {po['overhead']:.3f}x the null probe "
        f"(ceiling {PROBE_OVERHEAD_CEILING}x)"
    )
    for ev in (payload["events"], payload["events_steady"]):
        assert ev["events"] > ev["rounds"]
        assert ev["scalar"]["events_per_sec"] > 0
        assert ev["fast"]["events_per_sec"] > 0
        assert ev["speedup"] > 0
    # The async acceptance bar (also enforced inside measure(), so the
    # CI gate hits it on every attempt).
    assert payload["events_steady"]["speedup"] >= ASYNC_SPEEDUP_FLOOR
    gd = payload["grid_dispatch"]
    assert gd["n_specs"] == (
        len(DISPATCH_SCENARIOS) * len(DISPATCH_ALGORITHMS) * DISPATCH_SEEDS
    )
    assert gd["baseline_rps"] > 0 and gd["fast_rps"] > 0
    # The dispatch acceptance bar (also enforced inside measure()).
    assert gd["speedup"] >= DISPATCH_SPEEDUP_FLOOR
    bt = payload["batch_throughput"]
    assert bt["n_specs"] == len(BATCH_SCENARIOS) * BATCH_SEEDS
    assert bt["replicates"] == BATCH_SEEDS and bt["rounds"] == BATCH_ROUNDS
    assert bt["solo_sps"] > 0 and bt["batch_sps"] > 0
    # The replicate-batching acceptance bar (also enforced inside
    # measure(), so the CI gate hits it on every attempt).
    assert bt["speedup"] >= BATCH_SPEEDUP_FLOOR
    reread = json.loads((RESULTS_DIR / "BENCH_engine.json").read_text())
    assert reread == payload
