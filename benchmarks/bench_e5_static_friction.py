"""E5 — the static friction tradeoff (§4.1, inequality (1)).

Paper claim: "while we are always interested in a perfect distribution
of loads, this ideal goal may cost us too much due to the communication
delay ... This can be modeled physically as the presence of static
friction force. Static friction force hinders the object from movement
if the slope is not steep enough."

Reproduced artifact: µs sweep on the mesh hotspot — migrations, traffic
and final balance per µs.

Expected shape: migrations and traffic decrease monotonically in µs;
final imbalance increases; at extreme µs nothing moves at all (the
"ignore load balancing completely" regime).
"""

from repro.analysis import ascii_plot, format_table
from repro.network import mesh

from _harness import default_pplb, emit, once, run_hotspot


def test_e5_mu_s_sweep(benchmark):
    mu_ss = [0.25, 1.0, 4.0, 16.0, 64.0, 100_000.0]
    rows = []

    def run_all():
        for mu_s in mu_ss:
            _sim, res = run_hotspot(
                mesh(8, 8), default_pplb(mu_s_base=mu_s), n_tasks=512, max_rounds=500
            )
            rows.append(
                {
                    "mu_s": mu_s,
                    "migrations": res.total_migrations,
                    "traffic": round(res.total_traffic, 1),
                    "final_cov": round(res.final_cov, 3),
                    "final_spread": round(res.final_spread, 2),
                    "converged_round": res.converged_round,
                }
            )
        return rows

    once(benchmark, run_all)
    table = format_table(
        rows, title="E5 — static friction sweep (mesh-8x8, 512-task hotspot)"
    )
    plot = ascii_plot(
        {
            "migrations": [r["migrations"] for r in rows],
            "final_cov x1000": [r["final_cov"] * 1000 for r in rows],
        },
        title="E5 — balance/traffic tradeoff across the µs sweep "
              "(x = sweep index)",
        x_label="sweep idx",
        height=12,
    )
    emit("E5_static_friction", table + "\n\n" + plot)

    migr = [r["migrations"] for r in rows]
    covs = [r["final_cov"] for r in rows]
    # Monotone-decreasing migrations, with a 3% slack for arbiter noise
    # between near-identical thresholds.
    assert all(migr[i] >= 0.97 * migr[i + 1] for i in range(len(migr) - 1)), migr
    assert migr[1] > migr[3] > migr[5]
    assert covs[0] < covs[-1]
    assert migr[-1] == 0, "extreme µs must freeze the system (inequality (1))"
    assert covs[-1] == rows[-1]["final_cov"]  # untouched hotspot imbalance
