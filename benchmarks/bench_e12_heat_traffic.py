"""E12 — heat ≙ traffic: the §4.1 analogy, measured.

Paper claim: "the heat produced in the environment due to the friction
... can be interpreted as the traffic generated as a result of the
transport of loads in the network. ... The produced heat is a function
of the mass of the object, a constant µk and the length of the path."

Reproduced artifact: across scenarios (hotspot, random, two-valley;
uniform and heterogeneous links) compare the balancer's heat ledger
against the engine's independently-computed transport work Σ load·e.

Expected shape: with constant µk, heat = g·c0·µk · transport-work
*exactly* (same products, same hops); with dependency-varying µk the
ratio spreads but stays within the [µk_min, µk_max] band.
"""

from repro.analysis import format_table
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.network import LinkAttributes, mesh
from repro.sim import Simulator
from repro.tasks import TaskSystem
from repro.tasks.generators import random_dag_tasks, place_all_on
from repro.workloads import multi_hotspot, single_hotspot, uniform_random

from _harness import emit, once


def _scenario(name, seed=0):
    topo = mesh(8, 8)
    system = TaskSystem(topo)
    graph = None
    links = None
    if name == "hotspot":
        single_hotspot(system, 512, rng=seed)
    elif name == "random":
        uniform_random(system, 512, rng=seed)
    elif name == "two-valley":
        multi_hotspot(system, 512, rng=seed, n_spots=2, weights=[0.7, 0.3])
    elif name == "hotspot-hetero-links":
        single_hotspot(system, 512, rng=seed)
        links = LinkAttributes.heterogeneous(
            topo, seed=seed, bandwidth_range=(0.5, 2.0), distance_range=(0.5, 2.0)
        )
    elif name == "dag-dependent":
        _ids, graph = random_dag_tasks(
            system, 256, place_all_on(27), rng=seed, edge_prob=0.02
        )
    else:  # pragma: no cover
        raise ValueError(name)
    return topo, system, links, graph


def test_e12_heat_traffic_proportionality(benchmark):
    mu_k = 0.3
    rows = []

    def run_all():
        for name in ("hotspot", "random", "two-valley", "hotspot-hetero-links",
                     "dag-dependent"):
            topo, system, links, graph = _scenario(name)
            w_dep = 0.5 if name == "dag-dependent" else 0.0
            kappa = 1.0 if name == "dag-dependent" else 0.0
            cfg = PPLBConfig(mu_k_base=mu_k, w_dependency=w_dep, kappa=kappa,
                             c0=1.0, g=1.0)
            bal = ParticlePlaneBalancer(cfg, task_graph=graph)
            sim = Simulator(topo, system, bal, links=links, task_graph=graph, seed=0)
            res = sim.run(max_rounds=500)
            ratio = res.total_heat / max(res.total_traffic, 1e-12)
            rows.append(
                {
                    "scenario": name,
                    "heat": round(res.total_heat, 1),
                    "transport_work": round(res.total_traffic, 1),
                    "heat/work": round(ratio, 4),
                    "expected(c0·µk·g)": mu_k if w_dep == 0 else f">= {mu_k}",
                }
            )
        return rows

    once(benchmark, run_all)
    emit(
        "E12_heat_traffic",
        format_table(rows, title="E12 — heat ledger vs transport work "
                                 "(g·c0·µk proportionality)"),
    )

    for r in rows:
        if isinstance(r["expected(c0·µk·g)"], float):
            # Constant µk: exact proportionality, any link heterogeneity.
            assert abs(r["heat/work"] - mu_k) < 1e-6, r
        else:
            # Dependency-raised µk: ratio at least the base, bounded above
            # by base + κ·max(µs) which the dag scenario keeps modest.
            assert r["heat/work"] >= mu_k - 1e-9, r
