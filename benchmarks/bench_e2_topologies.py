"""E2 — Theorem 2 across topologies: the cross-topology comparison table.

Paper context: the related work derives optimal diffusion parameters on
mesh, torus and hypercube [19] and proves dimension-exchange results on
the hypercube [6]; PPLB claims topology-independent convergence
(Theorem 2 never references a topology).

Reproduced artifact: a table of (final CoV, rounds to quiesce, total
traffic) per algorithm × topology.

Expected shape: PPLB converges on every topology; richer topologies
(torus > mesh; hypercube > torus) converge faster for every gradient-
driven algorithm because hotspot outflow capacity grows with degree and
diameter shrinks.
"""

from repro.analysis import format_table
from repro.baselines import GradientModel, TaskDiffusion
from repro.network import hypercube, mesh, random_connected, torus

from _harness import default_pplb, emit, once


def _topologies():
    return [mesh(8, 8), torus(8, 8), hypercube(6), random_connected(64, 4.0, seed=1)]


def test_e2_cross_topology_table(benchmark):
    from _harness import run_hotspot

    records = []

    def run_all():
        for topo in _topologies():
            for make in (default_pplb, lambda: TaskDiffusion("uniform"), GradientModel):
                bal = make()
                _sim, res = run_hotspot(topo, bal, n_tasks=512, max_rounds=600)
                records.append((topo.name, topo.diameter, bal.name, res))
        return records

    once(benchmark, run_all)

    rows = [
        {
            "topology": tname,
            "diam": diam,
            "algorithm": bname,
            "converged_round": res.converged_round,
            "final_cov": round(res.final_cov, 3),
            "migrations": res.total_migrations,
            "traffic": round(res.total_traffic, 1),
        }
        for tname, diam, bname, res in records
    ]
    emit(
        "E2_topologies",
        format_table(rows, title="E2 — 512-task hotspot across topologies"),
    )

    by = {(t, b): r for t, _d, b, r in records}
    # Theorem 2: PPLB converges to near balance on every topology.
    for topo in _topologies():
        res = by[(topo.name, "pplb")]
        assert res.converged, f"PPLB failed to quiesce on {topo.name}"
        assert res.final_cov < 0.35, f"PPLB poor balance on {topo.name}"
    # Degree/diameter effect: hypercube quiesces no later than mesh.
    assert (
        by[("hypercube-6", "pplb")].converged_round
        <= by[("mesh-8x8", "pplb")].converged_round
    )
