"""E2 — Theorem 2 across topologies: the cross-topology comparison table.

Paper context: the related work derives optimal diffusion parameters on
mesh, torus and hypercube [19] and proves dimension-exchange results on
the hypercube [6]; PPLB claims topology-independent convergence
(Theorem 2 never references a topology).

Reproduced artifact: a table of (final CoV, rounds to quiesce, total
traffic) per algorithm × topology. The 12-run grid goes through the
parallel runner (see ``_harness.run_grid_specs``): serial by default,
``PPLB_BENCH_WORKERS=4`` fans it across 4 processes with identical
results.

Expected shape: PPLB converges on every topology; richer topologies
(torus > mesh; hypercube > torus) converge faster for every gradient-
driven algorithm because hotspot outflow capacity grows with degree and
diameter shrinks.
"""

from repro.analysis import format_table
from repro.network import hypercube, mesh, random_connected, torus
from repro.runner import RunSpec

from _harness import emit, once, run_grid_specs

#: scenario name -> (scenario size kwargs, topology for the diam column)
SETTINGS = {
    "mesh-hotspot": ({"side": 8}, lambda: mesh(8, 8)),
    "torus-hotspot": ({"side": 8}, lambda: torus(8, 8)),
    "hypercube-hotspot": ({"dim": 6}, lambda: hypercube(6)),
    "random-hotspot": (
        {"n_nodes": 64, "avg_degree": 4.0, "graph_seed": 1},
        lambda: random_connected(64, 4.0, seed=1),
    ),
}
ALGORITHMS = ["pplb", "diffusion", "gradient-model"]


def _grid():
    return [
        RunSpec(
            scenario=scenario,
            algorithm=algorithm,
            seed=0,
            max_rounds=600,
            scenario_kwargs={**kwargs, "n_tasks": 512},
        )
        for scenario, (kwargs, _topo) in SETTINGS.items()
        for algorithm in ALGORITHMS
    ]


def test_e2_cross_topology_table(benchmark):
    outcomes = once(benchmark, lambda: run_grid_specs(_grid()))
    diameters = {name: make() for name, (_kw, make) in SETTINGS.items()}

    rows = [
        {
            "topology": diameters[o.spec.scenario].name,
            "diam": diameters[o.spec.scenario].diameter,
            "algorithm": o.result.balancer_name,
            "converged_round": o.result.converged_round,
            "final_cov": round(o.result.final_cov, 3),
            "migrations": o.result.total_migrations,
            "traffic": round(o.result.total_traffic, 1),
        }
        for o in outcomes
    ]
    emit(
        "E2_topologies",
        format_table(rows, title="E2 — 512-task hotspot across topologies"),
    )

    by = {(o.spec.scenario, o.spec.algorithm): o.result for o in outcomes}
    # Theorem 2: PPLB converges to near balance on every topology.
    for scenario in SETTINGS:
        res = by[(scenario, "pplb")]
        assert res.converged, f"PPLB failed to quiesce on {scenario}"
        assert res.final_cov < 0.35, f"PPLB poor balance on {scenario}"
    # Degree/diameter effect: hypercube quiesces no later than mesh.
    assert (
        by[("hypercube-hotspot", "pplb")].converged_round
        <= by[("mesh-hotspot", "pplb")].converged_round
    )
