"""E19 — the self-tuning leaderboard: tuned PPLB vs defaults vs baselines.

Paper claim (conclusion): the framework's parameters can be "easily
… fine-tun[ed]" per system. E19 operationalises that as an experiment:
the optimizer harness (:mod:`repro.tuning`) searches the physics
parameter space per scenario family — successive halving over cheap
``rounds-fast``/``summary`` evaluations, survivors promoted to the full
budget, then a small genetic refinement — and the winners enter a
leaderboard against paper-default PPLB and the three baselines across
the full 18-scenario × {rounds-fast, events-fast} matrix.

Expected shape: on every family it was tuned for, tuned PPLB's
objective is no worse than paper-default PPLB's (the optimizer re-scores
the default at the full budget, so this is a guarantee on the tuning
engine, and the tuned families carry no clock heterogeneity, so it
holds bit-for-bit on the events engines too); across the whole matrix
the tuned entrant's mean rank is no worse than default PPLB's.

The whole experiment is deterministic and cache-addressed: with
``PPLB_BENCH_CACHE`` set, a second invocation replays every one of the
~400 underlying runs from the result cache.
"""

from repro.analysis import format_table
from repro.tuning import (
    TUNED_NAME,
    TuneBudget,
    TunedConfig,
    TunedConfigRegistry,
    build_leaderboard,
    leaderboard_rows,
    summary_rows,
    tune_scenario,
)
from repro.workloads import SCENARIOS

from _harness import emit, once

#: the families the optimizer tunes (static, clock-homogeneous —
#: so the tuned-beats-default guarantee transfers to the event engines).
TUNE_FAMILIES = ["mesh-hotspot", "torus-hotspot", "power-law"]
BUDGET = TuneBudget(
    n_initial=6, eta=2, base_rounds=40, full_rounds=160, eval_seeds=2,
    engine="rounds-fast", recorder="summary", ga_generations=2, ga_population=3,
)
ENGINES = ["rounds-fast", "events-fast"]
SEED = 0


def _run(cache):
    registry = TunedConfigRegistry()
    reports = {}
    for family in TUNE_FAMILIES:
        report = tune_scenario(family, seed=SEED, budget=BUDGET, cache=cache)
        reports[report.scenario] = report
        registry.put(report.scenario, TunedConfig(
            algorithm=report.algorithm, overrides=report.winner,
            score=report.score, default_score=report.default_score,
            n_evals=report.n_evals, seed=SEED, budget=BUDGET.to_dict(),
        ))
    payload = build_leaderboard(
        sorted(SCENARIOS),
        engines=ENGINES,
        registry=registry,
        n_seeds=BUDGET.eval_seeds,
        base_seed=SEED,
        max_rounds=BUDGET.full_rounds,
        recorder=BUDGET.recorder,
        cache=cache,
    )
    return reports, registry, payload


def test_e19_leaderboard(benchmark):
    import os

    cache = os.environ.get("PPLB_BENCH_CACHE") or None
    reports, registry, payload = once(benchmark, lambda: _run(cache))

    # -------- the tuning sessions delivered what they promise -------- #
    for family, report in reports.items():
        # the default is always re-scored at the full budget, so the
        # winner can never lose to it on the tuning objective.
        assert report.score <= report.default_score, family
        assert report.winner == registry.get(family).overrides

    # ------------------- matrix shape and ranking -------------------- #
    n_cells = len(SCENARIOS) * len(ENGINES)
    assert len(payload["rows"]) == n_cells * 5  # tuned + default + 3 baselines
    by_cell: dict = {}
    for row in payload["rows"]:
        by_cell.setdefault((row["scenario"], row["engine"]), []).append(row)
    for cell, rows in by_cell.items():
        assert sorted(r["rank"] for r in rows) == [1, 2, 3, 4, 5], cell

    # ------- tuned >= default on every family it was tuned for ------- #
    # Exact on the tuning engine (same budget, same seeds — the scores
    # are the tuning scores); the tuned families are static and
    # clock-homogeneous, so events-fast reproduces rounds-fast and the
    # guarantee transfers. The 1e-5 slack absorbs the payload's
    # 6-decimal rounding only.
    tuned_families = {r.scenario for r in reports.values()}
    for row in payload["tuned_vs_default"]:
        if row["scenario"] in tuned_families:
            assert row["tuned_score"] <= row["default_score"] + 1e-5, row

    # Across the whole matrix: untuned families run the identical spec
    # (exact tie, resolved in roster order), tuned families are no
    # worse by construction — so the tuned entrant's mean rank can
    # never trail default PPLB's.
    summary = payload["summary"]
    mean_rank_gap = summary[TUNED_NAME]["mean_rank"] - summary["pplb"]["mean_rank"]
    assert mean_rank_gap <= 0.0, summary

    # ------------------------- the artifact -------------------------- #
    lines = [
        "E19 — self-tuning leaderboard "
        f"({len(TUNE_FAMILIES)} tuned families, "
        f"{len(SCENARIOS)} scenarios x {len(ENGINES)} engines, "
        f"{BUDGET.eval_seeds} seeds, {BUDGET.full_rounds} rounds)",
        "",
        format_table(
            [{
                "family": family,
                "winner": ", ".join(f"{k}={v}" for k, v in
                                    sorted(report.winner.items())) or "defaults",
                "score": round(report.score, 4),
                "default": round(report.default_score, 4),
                "gain_%": round(100.0 * report.improvement(), 1),
                "evals": report.n_evals,
            } for family, report in sorted(reports.items())],
            title="tuned configurations (successive halving + GA, "
                  f"{BUDGET.base_rounds}->{BUDGET.full_rounds} rounds)",
        ),
        "",
        format_table(
            summary_rows(payload),
            columns=["algorithm", "wins", "mean_rank"],
            title="leaderboard summary (wins = rank-1 cells of "
                  f"{n_cells})",
        ),
        "",
        format_table(
            [r for r in leaderboard_rows(payload)
             if r["scenario"] in tuned_families],
            columns=["scenario", "engine", "rank", "algorithm",
                     "final_cov", "rounds", "migrations"],
            title="tuned families, full ranking",
        ),
    ]
    emit("E19_leaderboard", "\n".join(lines))
