#!/usr/bin/env python
"""Fault tolerance: the F matrix steering traffic around unreliable links.

Builds an 8x8 mesh whose left half has fault-prone links (f = 0.5 per
round), piles work onto the border between the halves, and shows that
PPLB — whose link cost e_ij = d/(bw·(1−f)^(c1·d/bw)) penalises
unreliable links — *places* its load preferentially in the reliable
half. Diffusion also avoids links that are down in a given round (the
engine exposes availability to everyone), but its placement ignores
fault probability, so it stores much more load behind flaky links.

Run:  python examples/fault_tolerant_mesh.py
"""

import numpy as np

from repro import (
    FaultModel,
    LinkAttributes,
    ParticlePlaneBalancer,
    PPLBConfig,
    Simulator,
    TaskSystem,
    mesh,
)
from repro.analysis import format_table
from repro.baselines import TaskDiffusion
from repro.workloads import single_hotspot


def build_links(topology, fault_prob):
    """Left-half links are unreliable; right-half links are clean."""
    coords = topology.coords
    fault = np.zeros(topology.n_edges)
    for k, (u, v) in enumerate(topology.edges):
        if coords[u][0] < 0.5 and coords[v][0] <= 0.5:
            fault[k] = fault_prob
    return LinkAttributes(
        topology,
        bandwidth=np.ones(topology.n_edges),
        distance=np.ones(topology.n_edges),
        fault_prob=fault,
    )


def run(balancer, fault_prob=0.5, seed=0):
    topology = mesh(8, 8)
    links = build_links(topology, fault_prob)
    system = TaskSystem(topology)
    single_hotspot(system, 512, rng=0, node=28)  # border column
    fm = FaultModel(links, rng=seed + 1)
    sim = Simulator(topology, system, balancer, links=links, fault_model=fm,
                    seed=seed, c1=4.0)
    result = sim.run(max_rounds=400)
    coords = topology.coords
    h = system.node_loads
    left = float(h[coords[:, 0] < 0.45].sum())
    right = float(h[coords[:, 0] > 0.55].sum())
    return {
        "algorithm": balancer.name,
        "final_cov": round(result.final_cov, 3),
        "blocked_transfers": int(result.series("blocked").sum()),
        "load_left(faulty)": round(left, 1),
        "load_right(clean)": round(right, 1),
        "migrations": result.total_migrations,
    }


def main() -> None:
    rows = [
        run(ParticlePlaneBalancer(PPLBConfig())),
        run(TaskDiffusion("uniform")),
    ]
    print(format_table(
        rows,
        title="Unreliable left half (f=0.5/round), hotspot on the border: "
              "fault-aware PPLB vs fault-oblivious diffusion",
    ))
    print(
        "\nPPLB never schedules over a down link (blocked = 0) and, because "
        "F raises e_ij on the left,\nplaces most load in the clean half. "
        "Diffusion's placement ignores F: it leaves far more load\nstranded "
        "behind the unreliable links."
    )


if __name__ == "__main__":
    main()
