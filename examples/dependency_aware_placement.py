#!/usr/bin/env python
"""Task dependencies: friction from the T matrix keeps partners together.

A fork-join parallel program (layers of tasks with dense inter-layer
communication) starts on one node. An oblivious balancer scatters the
program across the machine — great balance, terrible communication
cost. PPLB with dependency friction (µs, µk grow with co-located
dependency weight) balances more gently and keeps communicating tasks
near each other.

This is experiment E7's story in example form (paper §4.2).

Run:  python examples/dependency_aware_placement.py
"""

from repro import ParticlePlaneBalancer, PPLBConfig, Simulator, TaskSystem, mesh
from repro.analysis import format_table
from repro.tasks.generators import fork_join_tasks, place_all_on
from repro.workloads import balanced


def run(w_dependency, seed=0):
    topology = mesh(8, 8)
    system = TaskSystem(topology)
    # Background load so the program lands in a busy machine.
    balanced(system, tasks_per_node=2, rng=seed)
    ids, graph = fork_join_tasks(
        system, width=8, depth=4, placement=place_all_on(27), rng=seed,
        comm_weight=1.0, mean=1.0,
    )
    cfg = PPLBConfig(w_dependency=w_dependency, kappa=1.0, mu_k_base=0.1)
    balancer = ParticlePlaneBalancer(cfg, task_graph=graph)
    sim = Simulator(topology, system, balancer, task_graph=graph, seed=seed)
    result = sim.run(max_rounds=400)

    locations = system.snapshot_placement()
    hd = topology.hop_distances
    return {
        "w_dependency": w_dependency,
        "final_cov": round(result.final_cov, 3),
        "comm_cost": round(graph.communication_cost(locations, hd), 1),
        "pairs_within_1_hop": round(graph.colocated_fraction(locations, hd, 1), 3),
        "migrations": result.total_migrations,
    }


def main() -> None:
    rows = [run(w) for w in (0.0, 0.5, 2.0, 8.0)]
    print(format_table(
        rows,
        title="Fork-join program (8 wide x 4 deep) on mesh-8x8: "
              "dependency friction vs placement quality",
    ))
    print(
        "\nw_dependency = 0 reproduces an oblivious gradient balancer: "
        "lowest CoV, highest communication cost.\nRaising it buys locality "
        "(higher within-1-hop fraction, lower comm cost) at a modest "
        "balance penalty\n— the paper's µs/µk-from-T mechanism in action."
    )


if __name__ == "__main__":
    main()
