#!/usr/bin/env python
"""The raw physics model (paper §3): particles, terrain, trapping.

Releases a particle on a two-valley terrain at several friction levels
and reports, for each run: where it settled, how far it travelled, the
energy ledger, and what Theorem 1 / Corollary 3 predicted — the physical
intuition behind every load-balancing rule in the paper.

Run:  python examples/physics_playground.py
"""

import numpy as np

from repro.analysis import format_table
from repro.physics import (
    HeightField,
    ParticleSimulator,
    PhysicsParams,
    contour_at,
    escape_radius,
    max_escape_radius_bound,
    peak_height,
)


def two_valley_terrain() -> HeightField:
    """A ridge of height 0.5 at x=0.5 separating two valleys; the right
    valley is deeper (carved below the plain)."""

    def f(X, Y):
        ridge = 0.6 * np.exp(-((X - 0.5) ** 2) / (2 * 0.06**2))
        right_pit = -0.3 * np.exp(
            -(((X - 0.8) ** 2) + (Y - 0.5) ** 2) / (2 * 0.08**2)
        )
        slope = 0.4 * (1.0 - X)  # gentle tilt pushing rightward
        return ridge + right_pit + slope + 0.3

    return HeightField.from_function(f, shape=(161, 161))


def main() -> None:
    field = two_valley_terrain()
    start = (0.08, 0.5)
    h0 = field.height(start)
    print(f"terrain: z in [{field.min_height():.2f}, {field.max_height():.2f}], "
          f"release at {start}, h0 = {h0:.3f}\n")

    rows = []
    for mu_k in (0.02, 0.08, 0.2, 0.6):
        params = PhysicsParams(mu_s=0.02, mu_k=mu_k, dt=1e-3)
        sim = ParticleSimulator(field, params, record_every=20)
        res = sim.release(start)

        # Theorem-1 analysis of the *starting* valley.
        level = min(h0 + 0.05, field.max_height() - 1e-6)
        contour = contour_at(field, start, level)
        r = escape_radius(contour, start)
        bound = max_escape_radius_bound(h0, mu_k)
        theorem1_escape_possible = (
            peak_height(contour) <= h0 - mu_k * r if np.isfinite(r) else False
        )
        crossed = res.end[0] > 0.5  # did it cross the ridge?

        rows.append({
            "mu_k": mu_k,
            "settled_at": f"({res.end[0]:.2f}, {res.end[1]:.2f})",
            "crossed_ridge": crossed,
            "path_len": round(res.path_length, 2),
            "corollary3_max_path": "inf" if np.isinf(bound) else round(bound, 2),
            "heat": round(res.ledger.heat, 3),
            "h*_final": round(res.ledger.potential_height(), 3),
            "thm1_escape_ok": theorem1_escape_possible,
        })

    print(format_table(
        rows,
        title="One particle, four friction levels (two-valley terrain)",
    ))
    print(
        "\nLow friction: the particle crosses the ridge into the deeper "
        "valley (global optimum).\nHigh friction: it is trapped in the "
        "first valley — exactly Corollary 3's r > h*/µk regime,\nwhich is "
        "the physics behind PPLB's locality (µk ≙ communication cost)."
    )


if __name__ == "__main__":
    main()
