#!/usr/bin/env python
"""Dynamic load balancing: task churn, the problem the paper motivates.

"New tasks may enter the system at any time and at any node" (§1).
Poisson arrivals land skewed on two ingress nodes while tasks complete
at a fixed rate; static mapping is impossible. Shows the sustained
imbalance under PPLB vs doing nothing, and the arrival/absorption
dynamics.

Run:  python examples/dynamic_cluster.py
"""

import numpy as np

from repro import (
    DynamicWorkload,
    ParticlePlaneBalancer,
    PPLBConfig,
    Simulator,
    TaskSystem,
    torus,
)
from repro.analysis import ascii_plot, format_table
from repro.baselines import NoBalancer, TaskDiffusion


def run(balancer_fn, rounds=400, seed=0):
    topology = torus(8, 8)
    system = TaskSystem(topology)
    workload = DynamicWorkload(
        arrival_rate=6.0,          # ~6 new tasks per round...
        completion_prob=0.02,      # ...mean lifetime 50 rounds
        arrival_nodes=[0, 36],     # skewed ingress (two gateways)
        rng=seed,
    )
    sim = Simulator(topology, system, balancer_fn(), dynamic=workload, seed=seed)
    result = sim.run(max_rounds=rounds)
    covs = result.series("cov")
    steady = covs[rounds // 2:]
    return result, {
        "algorithm": result.balancer_name,
        "steady_cov_mean": round(float(steady.mean()), 3),
        "steady_cov_p95": round(float(np.percentile(steady, 95)), 3),
        "final_tasks": int(result.records[-1].n_tasks),
        "migrations": result.total_migrations,
    }


def main() -> None:
    rows = []
    curves = {}
    for fn in (
        lambda: ParticlePlaneBalancer(PPLBConfig(mu_s_base=0.5)),
        lambda: TaskDiffusion("uniform"),
        NoBalancer,
    ):
        result, row = run(fn)
        rows.append(row)
        curves[row["algorithm"]] = result.series("cov")

    print(format_table(
        rows,
        title="Sustained imbalance under churn (torus-8x8, skewed Poisson "
              "arrivals, geometric completions)",
    ))
    print()
    print(ascii_plot(curves, title="Imbalance (CoV) under churn", height=14))
    print(
        "\nWithout balancing the ingress nodes pile up work indefinitely; "
        "PPLB holds the system near its granularity floor."
    )


if __name__ == "__main__":
    main()
