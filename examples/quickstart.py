#!/usr/bin/env python
"""Quickstart: balance a hotspot on an 8x8 mesh with PPLB.

The canonical scenario from the paper's motivation: a burst of work
lands on one processor ("a hill"), and the particle-and-plane balancer
lets the load slide downhill into the idle region, subject to static
friction (don't move for trivial gains) and kinetic friction (stay
local).

Run:  python examples/quickstart.py
"""

from repro import (
    ParticlePlaneBalancer,
    PPLBConfig,
    Simulator,
    TaskSystem,
    mesh,
    single_hotspot,
)
from repro.analysis import ascii_plot


def main() -> None:
    # 1. The machine: an 8x8 mesh multiprocessor with uniform links.
    topology = mesh(8, 8)

    # 2. The workload: 512 tasks (~1.0 load each) dumped on the most
    #    central node — one towering hill on a flat plain.
    system = TaskSystem(topology)
    single_hotspot(system, 512, rng=0)
    print(f"topology: {topology.name}, tasks: {system.n_tasks}, "
          f"initial max load: {system.node_loads.max():.1f}")

    # 3. The balancer: default paper parameters. Notable knobs:
    #    mu_s_base  - minimum slope before a task moves (threshold)
    #    mu_k_base  - heat per hop: larger values keep migration local
    #    beta0      - initial exploration of the stochastic arbiter
    config = PPLBConfig(mu_s_base=1.0, mu_k_base=0.25, beta0=0.25)
    balancer = ParticlePlaneBalancer(config)

    # 4. Simulate synchronous rounds until the system quiesces.
    sim = Simulator(topology, system, balancer, seed=0)
    result = sim.run(max_rounds=400)

    # 5. Report.
    print(f"\nconverged at round: {result.converged_round}")
    print(f"imbalance (CoV):    {result.initial_summary['cov']:.3f} -> "
          f"{result.final_cov:.3f}")
    print(f"max-min spread:     {result.initial_summary['spread']:.1f} -> "
          f"{result.final_spread:.2f}")
    print(f"migrations:         {result.total_migrations}")
    print(f"traffic (Σ load·e): {result.total_traffic:.1f}")
    print(f"heat (paper's E_h): {result.total_heat:.1f}")

    print()
    print(ascii_plot(
        {"max-min spread": result.series("spread")},
        title="Convergence of the load surface (spread vs round)",
        logy=True,
        height=14,
    ))


if __name__ == "__main__":
    main()
