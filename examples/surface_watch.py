#!/usr/bin/env python
"""Watch the load surface melt: the paper's terrain picture, animated.

Uses the auto-tuner (`suggest_config`, the paper's promised design
methodology made executable) to derive PPLB's constants from the system
itself, then renders ASCII snapshots of the load surface as the hotspot
"hill" slides down into the plain.

Run:  python examples/surface_watch.py
"""

import numpy as np

from repro import (
    ParticlePlaneBalancer,
    Simulator,
    TaskSystem,
    mesh,
    single_hotspot,
    suggest_config,
)
from repro.core import describe_config
from repro.viz import surface_film


def main() -> None:
    topology = mesh(16, 16)
    system = TaskSystem(topology)
    single_hotspot(system, 768, rng=0)

    # Derive the physics constants from the system's own scales.
    config = suggest_config(topology, system, locality_radius=8)
    print(describe_config(config))
    balancer = ParticlePlaneBalancer(config)

    sim = Simulator(topology, system, balancer, seed=0)
    snapshots: list[np.ndarray] = [np.array(system.node_loads)]
    labels = ["round 0 (the hill)"]
    checkpoints = (10, 40, 120, 300)

    # Drive the engine in slices so we can photograph the surface
    # (reset=False continues the same balancing run between snapshots).
    last = 0
    for cp in checkpoints:
        result = sim.run(max_rounds=cp - last, reset=last == 0)
        last = cp
        snapshots.append(np.array(system.node_loads))
        labels.append(f"round {cp} (cov={result.final_cov:.2f})")
        if result.converged:
            labels[-1] += " — quiesced"
            break

    print()
    print(surface_film(topology, snapshots, labels, width=32, height=16))
    print(
        "\nThe hotspot peak collapses outward in a wave — the paper's "
        "particle-and-plane analogy, drawn with load."
    )


if __name__ == "__main__":
    main()
