#!/usr/bin/env python
"""Head-to-head: PPLB against the classical balancers of the paper's §2.

Runs the same hotspot workload on a torus under PPLB, task-granular
diffusion, dimension exchange, the gradient model (GM), CWN, random work
stealing and sender-initiated probing, and prints the comparison table
(final balance, rounds, migrations, traffic).

Run:  python examples/compare_algorithms.py
"""

from repro import ParticlePlaneBalancer, PPLBConfig, Simulator, TaskSystem, torus
from repro.analysis import ascii_plot, format_table
from repro.baselines import (
    ContractingWithinNeighborhood,
    DimensionExchange,
    GradientModel,
    RandomWorkStealing,
    SenderInitiated,
    TaskDiffusion,
)
from repro.workloads import single_hotspot


def balancers():
    yield ParticlePlaneBalancer(PPLBConfig())
    yield TaskDiffusion("uniform")
    yield DimensionExchange(min_quota=0.5)
    yield GradientModel()
    yield ContractingWithinNeighborhood(max_hops=8)
    yield RandomWorkStealing()
    yield SenderInitiated(probes=3)


def main() -> None:
    rows = []
    curves = {}
    for balancer in balancers():
        topology = torus(8, 8)
        system = TaskSystem(topology)
        single_hotspot(system, 512, rng=0)
        sim = Simulator(topology, system, balancer, seed=0)
        result = sim.run(max_rounds=500)
        rows.append(result.summary_row())
        curves[balancer.name] = result.series("cov")

    print(format_table(
        rows,
        columns=["algorithm", "converged_round", "final_cov", "final_spread",
                 "migrations", "traffic"],
        title="Hotspot on torus-8x8: PPLB vs classical balancers "
              "(512 tasks, one task per link per round)",
    ))
    print()
    print(ascii_plot(
        {k: curves[k] for k in ("pplb", "task-diffusion-uniform", "gradient-model")},
        title="Imbalance (CoV) vs round",
        logy=True,
        height=16,
    ))


if __name__ == "__main__":
    main()
