#!/usr/bin/env python
"""Load balancing as literal physics: a swarm on its own surface.

The paper's §4 analogy run in reverse: instead of mapping physics onto
a network, drop N unit loads (particles) into continuous space where
each load *is* a bump in the surface. Every particle slides downhill
away from the others' mass — and the swarm spreads itself into a
uniform density with no algorithm anywhere. Friction (µk) makes the
process terminate; the density CoV is exactly the imbalance metric the
discrete system uses.

Run:  python examples/continuous_swarm.py
"""

import numpy as np

from repro.analysis import format_table
from repro.physics import MultiParticleSimulator, PhysicsParams
from repro.viz import render_heatmap


def main() -> None:
    n = 48
    rng = np.random.default_rng(7)
    start = np.asarray([0.5, 0.5]) + rng.uniform(-0.06, 0.06, (n, 2))

    sim = MultiParticleSimulator(
        masses=np.ones(n),
        params=PhysicsParams(mu_s=0.02, mu_k=0.25, dt=1e-3, max_steps=80_000),
        kernel_width=0.08,
    )
    res = sim.run(start, max_steps=80_000, snapshot_every=4000)

    rows = []
    for idx in (0, len(res.trajectory) // 3, -1):
        frame = res.trajectory[idx]
        rows.append(
            {
                "step": res.snapshot_times[idx],
                "density_cov": round(sim.density_cov(frame, bins=4), 3),
                "mean_pairwise_dist": round(sim.mean_pairwise_distance(frame), 3),
            }
        )
    print(format_table(rows, title=f"{n} unit loads, self-generated surface "
                                   f"(settled={res.settled}, steps={res.steps})"))

    yard = ((0.0, 1.0), (0.0, 1.0))
    print("\nInitial cluster:")
    print(render_heatmap(sim.masses, res.trajectory[0], width=32, height=14,
                         bounds=yard))
    print("\nFinal spread:")
    print(render_heatmap(sim.masses, res.positions, width=32, height=14,
                         bounds=yard))
    print(
        "\nNo balancer ran — gravity on the mass-generated surface did "
        "all the work. The discrete\nPPLB algorithm is this physics, "
        "constrained to a network."
    )


if __name__ == "__main__":
    main()
