#!/usr/bin/env python
"""CI perf-regression gate: fresh measurement vs the committed baseline.

Re-runs the ``benchmarks/bench_perf.py`` measurement and fails (exit 1)
if any tracked rate — scalar or vectorised rounds/sec at each curve
point, the long-run record-throughput rates (full and summary
recording at N=1024 over 2000 rounds), the null/counters-probe rates
at N=1024, the scalar/batched event engines' events/sec in both
async regimes (hotspot transient and steady-state serving), or the
runner's fully-cached grid-dispatch rates (``grid_dispatch_rps``, the
indexed metric-level replay, next to its per-spec JSON baseline), or
the replicate-batching specs/sec pair (``batch_sps`` batched next to
its per-seed ``batch_solo_sps`` baseline) —
regresses more than ``MAX_REGRESSION`` against
``benchmarks/results/BENCH_engine.json``, or if the vectorised
speedup drops below the acceptance floor at N ≥ 1024, or if the
events-fast steady-state speedup drops below its ≥10x floor, or if
the indexed dispatch path drops below its ≥5x floor over the per-spec
JSON replay, or if the replicate-batched engine drops below its ≥3x
floor over the per-seed loop, or if
summary recording lags full recording by more than the bench's floor,
or if the counters probe costs more than its ≤5% overhead ceiling
(machine-independent checks; the recording and async floors also ride
inside ``measure()`` itself, while the probe ceiling is enforced here
per attempt so one noisy measurement earns a retry, not a crash). A failing attempt is retried (up to
``ATTEMPTS`` total) to absorb runner noise: one quiet pass is proof
the code can still reach the rate.

Run from the repository root: ``python scripts/perf_gate.py``.
Refresh the baseline after intentional perf changes with
``PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -s``.

Absolute rates are hardware-dependent, so they are only compared when
the committed baseline comes from the same machine class as the gate
run (the baseline records whether it was measured under CI; see
``environment.ci`` in the JSON). Against a foreign-class baseline the
gate still enforces the machine-independent speedup floor — both
engines slow down together on a slower runner — and prints a notice to
refresh the baseline from the gating machine class (re-run the
benchmark on a CI runner and commit the JSON), which arms the absolute
checks. ``PERF_GATE_MAX_REGRESSION`` (default 0.30) widens the absolute
tolerance for noisier environments without editing this file.

Every run — pass or fail — prints a one-line digest of the tracked-rate
deltas and writes the per-rate detail to ``perf-gate-summary.txt``
(path overridable via ``PERF_GATE_SUMMARY``), which CI uploads as an
artifact with ``if: always()``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

BASELINE = ROOT / "benchmarks" / "results" / "BENCH_engine.json"
#: a rate may drop to this fraction below the committed baseline before
#: we fail (overridable per environment, see module docstring).
MAX_REGRESSION = float(os.environ.get("PERF_GATE_MAX_REGRESSION", "0.30"))
ATTEMPTS = 3
#: per-rate delta report, written on success *and* failure so CI can
#: always upload it as an artifact.
SUMMARY = pathlib.Path(os.environ.get("PERF_GATE_SUMMARY", "perf-gate-summary.txt"))


def tracked_rates(payload: dict) -> dict[str, float]:
    """The gated metrics, flattened to comparable names."""
    rates = {}
    for pt in payload["curve"]["points"]:
        rates[f"scalar_rps@N={pt['n_nodes']}"] = pt["scalar_rps"]
        rates[f"fast_rps@N={pt['n_nodes']}"] = pt["fast_rps"]
    rt = payload.get("record_throughput")
    if rt is not None:  # absent only in pre-recorder baselines
        rates[f"record_full_rps@N={rt['n_nodes']}"] = rt["full_rps"]
        rates[f"record_summary_rps@N={rt['n_nodes']}"] = rt["summary_rps"]
    po = payload.get("probe_overhead")
    if po is not None:  # absent only in pre-telemetry baselines
        rates[f"probe_null_rps@N={po['n_nodes']}"] = po["null_rps"]
        rates[f"probe_counters_rps@N={po['n_nodes']}"] = po["counters_rps"]
    gd = payload.get("grid_dispatch")
    if gd is not None:  # absent only in pre-backend baselines
        rates["grid_dispatch_rps"] = gd["fast_rps"]
        rates["grid_dispatch_baseline_rps"] = gd["baseline_rps"]
    bt = payload.get("batch_throughput")
    if bt is not None:  # absent only in pre-batching baselines
        rates["batch_sps"] = bt["batch_sps"]
        rates["batch_solo_sps"] = bt["solo_sps"]
    for tag, section in (("events", payload["events"]),
                         ("events_steady", payload.get("events_steady"))):
        if section is None:
            continue  # absent only in pre-events-fast baselines
        rates[f"{tag}_scalar_eps"] = section["scalar"]["events_per_sec"]
        rates[f"{tag}_fast_eps"] = section["fast"]["events_per_sec"]
    return rates


def same_machine_class(baseline: dict, fresh: dict) -> bool:
    """Whether absolute rates are comparable (dev box vs CI runner)."""
    return baseline.get("environment", {}).get("ci") == fresh.get(
        "environment", {}
    ).get("ci")


def check(baseline: dict, fresh: dict) -> list[str]:
    """Failure descriptions (empty = the attempt passes the gate)."""
    from bench_perf import (
        ASYNC_SPEEDUP_FLOOR,
        BATCH_SPEEDUP_FLOOR,
        DISPATCH_SPEEDUP_FLOOR,
        PROBE_OVERHEAD_CEILING,
        SPEEDUP_FLOOR,
        SPEEDUP_FROM_N,
    )

    failures = []
    if same_machine_class(baseline, fresh):
        base_rates = tracked_rates(baseline)
        fresh_rates = tracked_rates(fresh)
        floor = 1.0 - MAX_REGRESSION
        for name, base in base_rates.items():
            got = fresh_rates.get(name)
            if got is None:
                failures.append(f"{name}: missing from fresh measurement")
            elif got < floor * base:
                failures.append(
                    f"{name}: {got:.1f} < {floor:.0%} of baseline {base:.1f}"
                )
    else:
        print(
            "perf-gate: baseline was measured on a different machine class "
            "(environment.ci mismatch) — gating the speedup floor only. "
            "Refresh benchmarks/results/BENCH_engine.json from this machine "
            "class to arm the absolute-rate checks."
        )
    for pt in fresh["curve"]["points"]:
        if pt["n_nodes"] >= SPEEDUP_FROM_N and pt["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"speedup@N={pt['n_nodes']}: {pt['speedup']:.1f}x < "
                f"{SPEEDUP_FLOOR}x acceptance floor"
            )
    steady = fresh["events_steady"]["speedup"]
    if steady < ASYNC_SPEEDUP_FLOOR:
        failures.append(
            f"events_steady speedup: {steady:.1f}x < "
            f"{ASYNC_SPEEDUP_FLOOR}x acceptance floor"
        )
    overhead = fresh["probe_overhead"]["overhead"]
    if overhead > PROBE_OVERHEAD_CEILING:
        failures.append(
            f"counters-probe overhead: {overhead:.3f}x > "
            f"{PROBE_OVERHEAD_CEILING}x ceiling"
        )
    dispatch = fresh["grid_dispatch"]["speedup"]
    if dispatch < DISPATCH_SPEEDUP_FLOOR:
        failures.append(
            f"grid-dispatch speedup: {dispatch:.1f}x < "
            f"{DISPATCH_SPEEDUP_FLOOR}x acceptance floor"
        )
    batch = fresh["batch_throughput"]["speedup"]
    if batch < BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"replicate-batch speedup: {batch:.1f}x < "
            f"{BATCH_SPEEDUP_FLOOR}x acceptance floor"
        )
    return failures


def delta_summary(baseline: dict, fresh: dict) -> tuple[str, list[str]]:
    """(one-line digest, per-rate detail lines) of fresh vs baseline.

    Computed even across machine classes — there the deltas are
    informational (the gate does not enforce absolutes), and the digest
    says so rather than silently printing nothing.
    """
    base_rates = tracked_rates(baseline)
    fresh_rates = tracked_rates(fresh)
    deltas = {
        name: fresh_rates[name] / rate - 1.0
        for name, rate in base_rates.items()
        if name in fresh_rates and rate > 0
    }
    if not deltas:
        return "perf-gate deltas: no tracked rates shared with the baseline", []
    ordered = sorted(deltas, key=lambda name: deltas[name])
    detail = [
        f"{name}: {fresh_rates[name]:.1f} vs baseline {base_rates[name]:.1f} "
        f"({deltas[name]:+.1%})"
        for name in ordered
    ]
    median = sorted(deltas.values())[len(deltas) // 2]
    worst, best = ordered[0], ordered[-1]
    suffix = (
        "" if same_machine_class(baseline, fresh)
        else "; foreign machine class — informational only"
    )
    digest = (
        f"perf-gate deltas vs baseline ({len(deltas)} rates): "
        f"worst {deltas[worst]:+.1%} ({worst}), median {median:+.1%}, "
        f"best {deltas[best]:+.1%} ({best}){suffix}"
    )
    return digest, detail


def write_summary(status: str, digest: str, detail: list[str],
                  failures: list[str]) -> None:
    lines = [f"perf-gate: {status}", digest]
    if failures:
        lines += ["", "failures:"] + [f"  {f}" for f in failures]
    if detail:
        lines += ["", "tracked rates (worst delta first):"]
        lines += [f"  {line}" for line in detail]
    SUMMARY.write_text("\n".join(lines) + "\n")


def main() -> int:
    if not BASELINE.exists():
        print(f"perf-gate: no baseline at {BASELINE}", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE.read_text())

    from bench_perf import measure

    fresh: dict = {}
    last_failures: list[str] = []
    for attempt in range(1, ATTEMPTS + 1):
        print(f"perf-gate: measurement attempt {attempt}/{ATTEMPTS} ...")
        fresh = measure()
        last_failures = check(baseline, fresh)
        if not last_failures:
            digest, detail = delta_summary(baseline, fresh)
            print("perf-gate: OK")
            print(digest)
            for line in detail:
                print(f"  {line}")
            write_summary("OK", digest, detail, [])
            return 0
        print(f"perf-gate: attempt {attempt} failed:")
        for failure in last_failures:
            print(f"  {failure}")
    digest, detail = delta_summary(baseline, fresh)
    print(digest)
    write_summary("FAILED", digest, detail, last_failures)
    print(
        f"perf-gate: FAILED after {ATTEMPTS} attempts — a tracked rate "
        f"regressed >{MAX_REGRESSION:.0%} against {BASELINE}",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
