#!/bin/sh
# Tune smoke: the self-tuning pipeline's determinism contract, end to end.
#
# Usage: scripts/tune_smoke.sh   (from the repository root)
#        TUNE_SMOKE_OUT=path.json scripts/tune_smoke.sh
#
# Runs `pplb tune` on a tiny fixed-seed budget (2 scenario families,
# <=16 evaluations, summary recorder) twice against the same result
# cache and asserts the whole contract the tuning stack promises:
#
#   * the second tune run — forced onto the persistent pool backend at
#     width 2 via the PPLB_WORKERS environment override — executes zero
#     fresh simulations (pure cache replay) and writes a byte-identical
#     tuned-config registry — same winners, same scores, same eval
#     counts, regardless of execution backend;
#   * the registry survives a load -> save round trip byte-for-byte;
#   * `pplb leaderboard` emits byte-identical JSON across two
#     invocations (the payload carries no wall times or cache state).
#
# The final leaderboard JSON is left at $TUNE_SMOKE_OUT (default
# ./tune-smoke-leaderboard.json) for CI to upload as an artifact.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
OUT="${TUNE_SMOKE_OUT:-tune-smoke-leaderboard.json}"

# 4-candidate pool, rungs 40->80, 1 eval seed, 1 GA child: at most
# 8 evals per scenario, 16 total — small enough for a CI smoke job.
TUNE="--scenarios mesh-hotspot torus-hotspot --seed 0 \
      --initial 4 --eta 2 --base-rounds 40 --full-rounds 80 --eval-seeds 1 \
      --ga-generations 1 --ga-population 2 \
      --engine rounds-fast --recorder summary --cache-dir $WORK/cache"

echo "==> tune (2 scenarios, <=16 evals, cold cache)"
python -m repro.cli tune $TUNE --registry "$WORK/reg-a.json" | tee "$WORK/tune_a.out"
grep -q "registry written" "$WORK/tune_a.out"
grep -Eq "^(1[0-6]|[1-9]) evals," "$WORK/tune_a.out"

echo "==> tune again (pool backend via PPLB_WORKERS=2, zero fresh executions)"
PPLB_WORKERS=2 python -m repro.cli tune $TUNE --registry "$WORK/reg-b.json" \
    | tee "$WORK/tune_b.out"
grep -q ": 0 executed," "$WORK/tune_b.out"
cmp "$WORK/reg-a.json" "$WORK/reg-b.json"
echo "    registries byte-identical (serial vs pooled)"

echo "==> registry load/save round trip"
python - "$WORK" <<'EOF'
import sys

from repro.tuning import TunedConfigRegistry

work = sys.argv[1]
registry = TunedConfigRegistry.load(f"{work}/reg-a.json")
assert len(registry) == 2, f"expected 2 tuned scenarios, got {len(registry)}"
registry.save(f"{work}/reg-rt.json")
EOF
cmp "$WORK/reg-a.json" "$WORK/reg-rt.json"
echo "    round trip byte-identical"

# Same rounds/seed/engine/recorder/cache as the tune: the tuned and
# default PPLB cells replay straight from the tuning evaluations.
BOARD="--scenarios mesh-hotspot torus-hotspot --engines rounds-fast \
       --seeds 1 --rounds 80 --recorder summary \
       --registry $WORK/reg-a.json --cache-dir $WORK/cache"

echo "==> leaderboard (tuned + default + 3 baselines)"
python -m repro.cli leaderboard $BOARD --output "$WORK/board-a.json" \
    | tee "$WORK/board_a.out"
grep -q "pplb-tuned" "$WORK/board_a.out"
grep -q "tuned vs default" "$WORK/board_a.out"

echo "==> leaderboard again (byte-identical JSON)"
python -m repro.cli leaderboard $BOARD --output "$WORK/board-b.json" > /dev/null
cmp "$WORK/board-a.json" "$WORK/board-b.json"

cp "$WORK/board-a.json" "$OUT"
echo "==> tune-smoke OK (leaderboard JSON at $OUT)"
