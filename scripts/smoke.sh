#!/bin/sh
# Smoke check: tier-1 tests, then tiny runner grids end-to-end.
#
# Usage: scripts/smoke.sh   (from the repository root)
#        SMOKE_SKIP_TESTS=1 scripts/smoke.sh   (grids only — CI runs the
#        tier-1 suite as its own step first)
#
# Exercises the full stack: the unit/property/integration suite, an
# 8-spec (scenario × algorithm × seed) grid across 2 worker processes,
# a second invocation that must be served entirely from the result
# cache (through the persistent pool backend), a 2-spec grid on the
# asynchronous event engine, a 2-spec grid
# on its batched events-fast twin (distinct cache entries from the
# scalar event runs), a 2-spec large-N grid (1024-node machines) on
# the vectorized rounds-fast engine, a 2-spec grid under the
# O(1)-memory summary recorder (which must not share cache entries
# with the full-recorded runs), a replicate-batched 4-seed grid whose
# cache entries must replay under the plain scalar path (batched and
# solo runs share cache keys), the scenario catalogue listing, a
# composed-scenario (component grammar) grid on the fast path, and a
# 2-spec divisible-load grid on the fluid engine.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ "${SMOKE_SKIP_TESTS:-0}" != "1" ]; then
    echo "==> tier-1 tests"
    python -m pytest -x -q
fi

CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
GRID="--scenarios mesh-hotspot torus-hotspot --algorithms pplb diffusion \
      --seeds 2 --rounds 120 --cache-dir $CACHE_DIR/cache"

echo "==> runner grid (8 specs, 2 workers, cold cache)"
python -m repro.cli run-grid $GRID --workers 2 | tee "$CACHE_DIR/first.out"
grep -q "8 specs: 8 executed, 0 from cache" "$CACHE_DIR/first.out"
# workers=2 transparently upgrades to the persistent pool backend.
grep -q "runner: pool backend, 2 worker(s)" "$CACHE_DIR/first.out"

echo "==> runner grid again (must be fully cached, via the pool backend)"
python -m repro.cli run-grid $GRID --workers 2 --backend pool \
    | tee "$CACHE_DIR/second.out"
grep -q "8 specs: 0 executed, 8 from cache" "$CACHE_DIR/second.out"

echo "==> event-engine grid (2 specs, async execution model)"
python -m repro.cli run-grid --scenarios straggler --algorithms pplb diffusion \
    --seeds 1 --rounds 120 --engine events --cache-dir "$CACHE_DIR/cache" \
    | tee "$CACHE_DIR/events.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/events.out"

echo "==> events-fast grid (2 specs, batched async execution model)"
# Same scenarios/seeds as the scalar event grid above: the engines must
# never share cache entries, so these execute rather than replay.
python -m repro.cli run-grid --scenarios straggler --algorithms pplb diffusion \
    --seeds 1 --rounds 120 --engine events-fast --cache-dir "$CACHE_DIR/cache" \
    | tee "$CACHE_DIR/events_fast.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/events_fast.out"

echo "==> vectorized fast-path grid (2 specs, 1024-node machines)"
python -m repro.cli run-grid --scenarios torus-32x32 hotspot-scaled \
    --algorithms pplb --seeds 1 --rounds 60 --engine rounds-fast \
    --cache-dir "$CACHE_DIR/cache" | tee "$CACHE_DIR/fast.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/fast.out"

echo "==> summary-recorder grid (2 specs, O(1) record memory)"
# Same scenario/seed as the full-recorded grid above: distinct recorder
# policies must produce distinct cache entries, never replay each other.
python -m repro.cli run-grid --scenarios mesh-hotspot --algorithms pplb diffusion \
    --seeds 1 --rounds 120 --recorder summary --cache-dir "$CACHE_DIR/cache" \
    | tee "$CACHE_DIR/summary.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/summary.out"

echo "==> replicate-batched grid (4 seeds in one vectorised simulation)"
python -m repro.cli run-grid --scenarios mesh-random --algorithms pplb \
    --seeds 4 --rounds 60 --engine rounds-fast --batch-replicates 4 \
    --cache-dir "$CACHE_DIR/cache" | tee "$CACHE_DIR/batch.out"
grep -q "4 specs: 4 executed, 0 from cache" "$CACHE_DIR/batch.out"

echo "==> batched cache entries replay under the scalar path"
# Batching is invisible to the cache: the same grid without
# --batch-replicates must be served entirely from the batched entries.
python -m repro.cli run-grid --scenarios mesh-random --algorithms pplb \
    --seeds 4 --rounds 60 --engine rounds-fast \
    --cache-dir "$CACHE_DIR/cache" | tee "$CACHE_DIR/batch_replay.out"
grep -q "4 specs: 0 executed, 4 from cache" "$CACHE_DIR/batch_replay.out"

echo "==> scenario catalogue (registered names + component registries)"
python -m repro.cli scenarios > "$CACHE_DIR/scenarios.out"
grep -q "mesh-hotspot" "$CACHE_DIR/scenarios.out"
grep -q "dynamics components" "$CACHE_DIR/scenarios.out"

echo "==> composed-scenario grid (component grammar, 1024-node fast path)"
python -m repro.cli run-grid --scenarios "mesh:32x32+hotspot+stragglers" \
    --algorithms pplb diffusion --seeds 1 --rounds 60 --engine rounds-fast \
    --cache-dir "$CACHE_DIR/cache" | tee "$CACHE_DIR/composed.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/composed.out"

echo "==> fluid-engine grid (2 specs, divisible-load model)"
python -m repro.cli run-grid --scenarios mesh-hotspot \
    --algorithms fluid-diffusion fluid-sos --seeds 1 --rounds 120 \
    --engine fluid --cache-dir "$CACHE_DIR/cache" | tee "$CACHE_DIR/fluid.out"
grep -q "2 specs: 2 executed, 0 from cache" "$CACHE_DIR/fluid.out"

echo "==> cache stats / reindex / clear round-trip"
# Capture to files rather than piping into grep -q: grep exiting early
# would hand the CLI a broken pipe (and mask its exit status).
python -m repro.cli cache stats --cache-dir "$CACHE_DIR/cache" > "$CACHE_DIR/stats.out"
grep -q "entries    : 24" "$CACHE_DIR/stats.out"
grep -q "mean entry" "$CACHE_DIR/stats.out"
grep -q "indexed    : 24/24" "$CACHE_DIR/stats.out"
grep -q "events-fast: 2" "$CACHE_DIR/stats.out"
python -m repro.cli cache reindex --cache-dir "$CACHE_DIR/cache" \
    > "$CACHE_DIR/reindex.out"
grep -q "indexed 24 cached result" "$CACHE_DIR/reindex.out"
python -m repro.cli cache stats --cache-dir "$CACHE_DIR/cache" --engine events-fast \
    > "$CACHE_DIR/stats_filtered.out"
grep -q "entries    : 2 (events-fast)" "$CACHE_DIR/stats_filtered.out"
python -m repro.cli cache clear --cache-dir "$CACHE_DIR/cache" > "$CACHE_DIR/clear.out"
grep -q "removed 24 cached result" "$CACHE_DIR/clear.out"

echo "==> smoke OK"
