#!/bin/sh
# Smoke check: tier-1 tests, then a tiny runner grid end-to-end.
#
# Usage: scripts/smoke.sh   (from the repository root)
#
# Exercises the full stack: the unit/property/integration suite, an
# 8-spec (scenario × algorithm × seed) grid across 2 worker processes,
# and a second invocation that must be served entirely from the result
# cache.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> tier-1 tests"
python -m pytest -x -q

CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
GRID="--scenarios mesh-hotspot torus-hotspot --algorithms pplb diffusion \
      --seeds 2 --rounds 120 --cache-dir $CACHE_DIR/cache"

echo "==> runner grid (8 specs, 2 workers, cold cache)"
python -m repro.cli run-grid $GRID --workers 2 | tee "$CACHE_DIR/first.out"
grep -q "8 specs: 8 executed, 0 from cache" "$CACHE_DIR/first.out"

echo "==> runner grid again (must be fully cached)"
python -m repro.cli run-grid $GRID --workers 2 | tee "$CACHE_DIR/second.out"
grep -q "8 specs: 0 executed, 8 from cache" "$CACHE_DIR/second.out"

echo "==> smoke OK"
