"""ASCII line plots for the benchmark harness (headless 'figures').

:func:`ascii_plot` draws one or more named series on a character canvas
with a log-or-linear y axis — enough to *see* convergence curves and
crossovers directly in benchmark output and the artifacts under
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    logy: bool = False,
    y_label: str = "",
    x_label: str = "round",
) -> str:
    """Render named series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping name → y-values (x is the sample index; series may have
        different lengths).
    logy:
        Log-scale the y axis (non-positive values are clipped to the
        smallest positive sample).
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    if width < 16 or height < 4:
        raise ConfigurationError(f"canvas too small: {width}x{height}")

    data = {k: np.asarray(list(v), dtype=np.float64) for k, v in series.items()}
    for k, v in data.items():
        if v.ndim != 1 or v.shape[0] == 0:
            raise ConfigurationError(f"series {k!r} must be non-empty 1-D")

    max_len = max(v.shape[0] for v in data.values())
    all_vals = np.concatenate(list(data.values()))
    if logy:
        pos = all_vals[all_vals > 0]
        floor = float(pos.min()) if pos.shape[0] else 1e-12
        data = {k: np.maximum(v, floor) for k, v in data.items()}
        all_vals = np.concatenate(list(data.values()))
        lo, hi = np.log10(all_vals.min()), np.log10(all_vals.max())
    else:
        lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, v) in enumerate(data.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        y = np.log10(v) if logy else v
        for i in range(v.shape[0]):
            x = int(round(i * (width - 1) / max(max_len - 1, 1)))
            frac = (float(y[i]) - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            canvas[row][x] = marker

    top = f"{(10**hi if logy else hi):.4g}"
    bot = f"{(10**lo if logy else lo):.4g}"
    label_w = max(len(top), len(bot), len(y_label)) + 1
    out: list[str] = []
    if title:
        out.append(title)
    for r, rowchars in enumerate(canvas):
        prefix = top if r == 0 else (
            bot if r == height - 1 else y_label if r == height // 2 else ""
        )
        out.append(prefix.rjust(label_w) + " |" + "".join(rowchars))
    out.append(" " * label_w + " +" + "-" * width)
    out.append(" " * label_w + f"  0{x_label:>{width - 4}}={max_len - 1}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(data)
    )
    out.append(" " * label_w + "  " + legend)
    return "\n".join(out)
