"""Convergence analysis of imbalance time series.

Diffusion theory says the imbalance contracts geometrically:
``spread(t) ≈ spread(0) · γ^t`` with γ the subdominant eigenvalue of the
diffusion matrix. :func:`fit_convergence_rate` estimates γ from any
simulated series (least squares on the log-linear tail), letting the
benchmarks compare measured rates against the spectral prediction and
against PPLB's empirical behaviour.

Series come straight off the columnar round log
(``result.series("spread")`` is one NumPy column, no record objects
are materialised), so these fits stay cheap at million-round scale.
Note that summary-recorded runs keep no per-round history and have
nothing to fit; use ``full`` or ``thin:<k>`` recording for rate
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError


def rounds_to_fraction(series: np.ndarray, fraction: float = 0.05) -> int | None:
    """First index where the series drops to *fraction* of its start.

    ``None`` when the series never gets there. A start value of 0 means
    the system began balanced; index 0 is returned.
    """
    s = np.asarray(series, dtype=np.float64)
    if s.ndim != 1 or s.shape[0] == 0:
        raise ConvergenceError(f"series must be non-empty 1-D, got shape {s.shape}")
    if not 0 < fraction < 1:
        raise ConvergenceError(f"fraction must be in (0, 1), got {fraction}")
    if s[0] <= 0:
        return 0
    target = s[0] * fraction
    hits = np.nonzero(s <= target)[0]
    return int(hits[0]) if hits.shape[0] else None


def fit_convergence_rate(
    series: np.ndarray, tail_floor: float = 1e-9
) -> tuple[float, float]:
    """Least-squares fit of ``series[t] ≈ A·γ^t``; returns ``(γ, A)``.

    Entries at or below *tail_floor* are excluded (once a run bottoms out
    numerically, further samples carry no rate information). Requires at
    least 3 usable points.

    Raises
    ------
    ConvergenceError
        When fewer than 3 positive samples exist (e.g. the run converged
        instantly, or never produced a decaying signal).
    """
    s = np.asarray(series, dtype=np.float64)
    if s.ndim != 1:
        raise ConvergenceError(f"series must be 1-D, got shape {s.shape}")
    mask = s > tail_floor
    idx = np.nonzero(mask)[0]
    if idx.shape[0] < 3:
        raise ConvergenceError(
            f"need at least 3 positive samples to fit a rate, got {idx.shape[0]}",
            partial=s,
        )
    t = idx.astype(np.float64)
    y = np.log(s[idx])
    slope, intercept = np.polyfit(t, y, 1)
    gamma = float(np.exp(slope))
    a = float(np.exp(intercept))
    return gamma, a


def spectral_gamma(laplacian: np.ndarray, alpha: float) -> float:
    """Predicted diffusion contraction factor ``max |1 − α·λ|`` over λ≠0.

    The subdominant eigenvalue magnitude of ``M = I − αL`` — the rate
    diffusion theory promises and [19]'s optimum minimises.
    """
    lam = np.linalg.eigvalsh(np.asarray(laplacian, dtype=np.float64))
    lam_nonzero = lam[1:]  # λ1 = 0 carries the conserved total
    return float(np.abs(1.0 - alpha * lam_nonzero).max())
