"""Analysis & harness utilities.

* :mod:`convergence <repro.analysis.convergence>` — time-to-balance and
  exponential convergence-rate fits (the quantity [19] optimises),
  consuming columnar series (``result.series``) rather than per-round
  record objects.
* :mod:`stats <repro.analysis.stats>` — multi-seed means and confidence
  intervals.
* :mod:`sweep <repro.analysis.sweep>` — parameter-sweep harness used by
  the benchmark suite (fans out across processes via
  :mod:`repro.runner` when asked; serial results are bit-identical).
* :mod:`tables <repro.analysis.tables>` / :mod:`plots
  <repro.analysis.plots>` — ASCII rendering of the paper-style tables
  and series (the environment is headless; figures are printed, not
  drawn).
* :mod:`report <repro.analysis.report>` — stitch the per-experiment
  artifacts under ``benchmarks/results/`` into one browsable report
  (``pplb report``).
"""

from repro.analysis.convergence import fit_convergence_rate, rounds_to_fraction
from repro.analysis.stats import mean_ci, summarize_runs
from repro.analysis.sweep import SweepResult, run_sweep
from repro.analysis.tables import format_table
from repro.analysis.plots import ascii_plot

__all__ = [
    "fit_convergence_rate",
    "rounds_to_fraction",
    "mean_ci",
    "summarize_runs",
    "run_sweep",
    "SweepResult",
    "format_table",
    "ascii_plot",
]
