"""Parameter-sweep harness.

Runs a user-supplied experiment function over a grid of parameter values
× repetition seeds, collecting per-point rows. Every benchmark that
sweeps a knob (µs, µk, β0, fault rate, network size) goes through
:func:`run_sweep`, so sweep mechanics (seeding discipline, aggregation)
live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import mean_ci
from repro.exceptions import ConfigurationError
from repro.rng import derive

ExperimentFn = Callable[[object, int], Mapping[str, float]]
"""(parameter value, seed) -> metric dict for one run."""


@dataclass
class SweepResult:
    """Outcome of a parameter sweep.

    Attributes
    ----------
    parameter:
        Name of the swept knob.
    points:
        The swept values, in order.
    rows:
        Aggregated row per point: the parameter value plus, for each
        metric, its mean and CI half-width (keys ``<metric>`` and
        ``<metric>_ci``).
    raw:
        Per-point list of per-seed metric dicts (for deeper analysis).
    """

    parameter: str
    points: list[object] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)
    raw: list[list[Mapping[str, float]]] = field(default_factory=list)

    def series(self, metric: str) -> list[float]:
        """Mean values of *metric* across the sweep points."""
        return [float(row[metric]) for row in self.rows]


def run_sweep(
    parameter: str,
    values: Sequence[object],
    experiment: ExperimentFn,
    repetitions: int = 3,
    base_seed: int = 0,
) -> SweepResult:
    """Run *experiment* over every value × repetition; aggregate rows.

    Seeding: repetition *r* of point *k* receives the deterministic seed
    stream ``derive(base_seed, k, r)`` reduced to an int, so adding
    points or repetitions never perturbs existing ones.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")

    result = SweepResult(parameter=parameter)
    for k, value in enumerate(values):
        per_seed: list[Mapping[str, float]] = []
        for r in range(repetitions):
            seed = int(derive(base_seed, k, r).integers(0, 2**31 - 1))
            metrics = experiment(value, seed)
            if not metrics:
                raise ConfigurationError(
                    f"experiment returned no metrics at {parameter}={value!r}"
                )
            per_seed.append(metrics)
        keys = sorted(per_seed[0].keys())
        row: dict[str, object] = {parameter: value}
        for key in keys:
            m, ci = mean_ci([float(d[key]) for d in per_seed])
            row[key] = round(m, 6)
            row[f"{key}_ci"] = round(ci, 6)
        result.points.append(value)
        result.rows.append(row)
        result.raw.append(per_seed)
    return result
