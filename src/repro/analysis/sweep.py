"""Parameter-sweep harness.

Runs a user-supplied experiment function over a grid of parameter values
× repetition seeds, collecting per-point rows. :func:`run_sweep` is the
one place sweep mechanics (seeding discipline, aggregation) live for
knob sweeps (µs, µk, β0, fault rate, network size); spec-shaped grids
use :func:`repro.runner.run_grid` instead, whose
:func:`~repro.runner.merge.outcomes_to_sweep` merge produces the same
:class:`SweepResult` rows.

Execution routes through the parallel runner's process map
(:func:`repro.runner.pool.map_tasks`): the default ``workers=1`` is a
plain in-process loop whose results are bit-identical to the historical
serial harness, while ``workers > 1`` fans the (point × repetition)
evaluations across processes — the experiment function must then be
picklable (defined at module level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import mean_ci
from repro.exceptions import ConfigurationError
from repro.rng import seed_for

ExperimentFn = Callable[[object, int], Mapping[str, float]]
"""(parameter value, seed) -> metric dict for one run."""


@dataclass
class SweepResult:
    """Outcome of a parameter sweep.

    Attributes
    ----------
    parameter:
        Name of the swept knob.
    points:
        The swept values, in order.
    rows:
        Aggregated row per point: the parameter value plus, for each
        metric, its mean and CI half-width (keys ``<metric>`` and
        ``<metric>_ci``).
    raw:
        Per-point list of per-seed metric dicts (for deeper analysis).
    """

    parameter: str
    points: list[object] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)
    raw: list[list[Mapping[str, float]]] = field(default_factory=list)

    def series(self, metric: str) -> list[float]:
        """Mean values of *metric* across the sweep points."""
        return [float(row[metric]) for row in self.rows]


def _evaluate(
    job: tuple[ExperimentFn, str, object, int]
) -> Mapping[str, float]:
    """One grid cell (module-level so it survives pickling to workers).

    Validates eagerly so a broken experiment fails on its first cell,
    not after the whole grid has been simulated.
    """
    experiment, parameter, value, seed = job
    metrics = experiment(value, seed)
    if not metrics:
        raise ConfigurationError(
            f"experiment returned no metrics at {parameter}={value!r}"
        )
    return metrics


def run_sweep(
    parameter: str,
    values: Sequence[object],
    experiment: ExperimentFn,
    repetitions: int = 3,
    base_seed: int = 0,
    workers: int = 1,
) -> SweepResult:
    """Run *experiment* over every value × repetition; aggregate rows.

    Seeding: repetition *r* of point *k* receives the deterministic seed
    ``seed_for(base_seed, k, r)``, so adding points or repetitions never
    perturbs existing ones — and the seeds (hence results) do not depend
    on *workers*.

    With ``workers > 1`` the grid cells are evaluated across that many
    worker processes (*experiment* must be picklable); aggregation is
    unchanged, so the returned rows are identical to a serial run.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")

    # Imported lazily: repro.runner.merge imports this module.
    from repro.runner.pool import map_tasks

    jobs = [
        (experiment, parameter, value, seed_for(base_seed, k, r))
        for k, value in enumerate(values)
        for r in range(repetitions)
    ]
    metrics_flat = map_tasks(_evaluate, jobs, workers=workers)

    result = SweepResult(parameter=parameter)
    for k, value in enumerate(values):
        per_seed = metrics_flat[k * repetitions : (k + 1) * repetitions]
        keys = sorted(per_seed[0].keys())
        row: dict[str, object] = {parameter: value}
        for key in keys:
            m, ci = mean_ci([float(d[key]) for d in per_seed])
            row[key] = round(m, 6)
            row[f"{key}_ci"] = round(ci, 6)
        result.points.append(value)
        result.rows.append(row)
        result.raw.append(per_seed)
    return result
