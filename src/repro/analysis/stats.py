"""Multi-seed statistics for experiment repetitions.

Stochastic balancers are evaluated over several seeds; these helpers
aggregate the per-run summaries into mean ± confidence interval rows for
the benchmark tables.

Everything here reads the result's summary surface (``final_cov``,
``total_migrations``, …), which is computed from the columnar round log
— or, for thin/summary-recorded runs, from their exact streamed
aggregates — so aggregation works identically for every recorder.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sstats

from repro.exceptions import ConfigurationError
from repro.sim.results import SimulationResult


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """(mean, half-width of the t-based confidence interval).

    With a single sample the half-width is 0 (nothing to estimate);
    degenerate inputs raise.
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.shape[0] == 0:
        raise ConfigurationError("cannot aggregate zero values")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(x.mean())
    if x.shape[0] == 1:
        return mean, 0.0
    sem = float(x.std(ddof=1) / np.sqrt(x.shape[0]))
    if sem == 0.0:
        return mean, 0.0
    t = float(sstats.t.ppf(0.5 + confidence / 2.0, df=x.shape[0] - 1))
    return mean, t * sem


def summarize_runs(
    runs: Sequence[SimulationResult], confidence: float = 0.95
) -> dict[str, object]:
    """Aggregate repeated runs of one algorithm into a table row.

    Reports mean ± CI for final imbalance, migrations, traffic and
    rounds, plus how many repetitions converged.
    """
    if not runs:
        raise ConfigurationError("cannot summarize zero runs")
    names = {r.balancer_name for r in runs}
    if len(names) != 1:
        raise ConfigurationError(f"runs mix algorithms: {sorted(names)}")

    def agg(vals: Sequence[float]) -> str:
        m, ci = mean_ci(vals, confidence)
        return f"{m:.3g} ± {ci:.2g}" if ci > 0 else f"{m:.3g}"

    conv_rounds = [r.converged_round for r in runs if r.converged_round is not None]
    return {
        "algorithm": runs[0].balancer_name,
        "n_runs": len(runs),
        "converged": f"{len(conv_rounds)}/{len(runs)}",
        "rounds": agg([float(r.n_rounds) for r in runs]),
        "converged_round": agg([float(c) for c in conv_rounds]) if conv_rounds else "—",
        "final_cov": agg([r.final_cov for r in runs]),
        "final_spread": agg([r.final_spread for r in runs]),
        "migrations": agg([float(r.total_migrations) for r in runs]),
        "traffic": agg([r.total_traffic for r in runs]),
    }
