"""Experiment report aggregation.

After ``pytest benchmarks/ --benchmark-only`` every experiment has
written its artifact to ``benchmarks/results/<id>.txt``. This module
stitches them into one browsable report (and powers ``pplb report``),
so a reviewer can read the entire reproduction output in one place
without re-running anything.
"""

from __future__ import annotations

import pathlib

from repro.exceptions import ConfigurationError

#: canonical experiment ordering for the report
EXPERIMENT_ORDER = [
    "T1_table1",
    "E1_convergence",
    "E2_topologies",
    "E3_locality",
    "E4_trap_radius",
    "E5_static_friction",
    "E6_faults",
    "E7_dependencies",
    "E8_arbiter",
    "E9_scalability",
    "E10_dynamic",
    "E11_physics_model",
    "E12_heat_traffic",
    "E13_candidates",
    "E14_diffusion_limit",
    "E15_transfer_latency",
    "E16_heterogeneous",
    "E17_async",
    "E18_scenario_matrix",
    "E19_leaderboard",
    "BENCH_engine",
]


def collect_results(results_dir: str | pathlib.Path) -> dict[str, str]:
    """Read every experiment artifact in *results_dir* (id -> text)."""
    d = pathlib.Path(results_dir)
    if not d.is_dir():
        raise ConfigurationError(
            f"results directory {d} does not exist — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    out: dict[str, str] = {}
    for path in sorted(d.glob("*.txt")):
        out[path.stem] = path.read_text().rstrip("\n")
    if not out:
        raise ConfigurationError(f"no experiment artifacts found in {d}")
    return out


def build_report(results: dict[str, str], title: str = "PPLB experiment report") -> str:
    """Assemble artifacts into one report, canonical order first."""
    if not results:
        raise ConfigurationError("no results to report")
    ordered = [k for k in EXPERIMENT_ORDER if k in results]
    extras = sorted(k for k in results if k not in EXPERIMENT_ORDER)
    bar = "=" * 72
    parts = [bar, title, bar, ""]
    missing = [k for k in EXPERIMENT_ORDER if k not in results]
    parts.append(
        f"experiments present: {len(ordered) + len(extras)}"
        + (f"   (missing: {', '.join(missing)})" if missing else "")
    )
    for key in ordered + extras:
        parts.append("")
        parts.append("-" * 72)
        parts.append(results[key])
    return "\n".join(parts)


def write_report(
    results_dir: str | pathlib.Path,
    output: str | pathlib.Path | None = None,
) -> str:
    """Collect + build; optionally write to *output*. Returns the text."""
    report = build_report(collect_results(results_dir))
    if output is not None:
        pathlib.Path(output).write_text(report + "\n")
    return report
