"""ASCII table rendering for the benchmark harness.

The environment is headless, so every paper-style table and figure is
*printed*. :func:`format_table` renders a list of dict rows with aligned
columns, in the visual style of conference tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    max_col_width: int = 60,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Parameters
    ----------
    rows:
        One mapping per table row. Missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional caption printed above the table.
    max_col_width:
        Cells longer than this are truncated with an ellipsis.
    """
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    cols = list(columns) if columns is not None else list(rows[0].keys())
    if not cols:
        raise ConfigurationError("table must have at least one column")

    def cell(v: object) -> str:
        s = "" if v is None else str(v)
        if len(s) > max_col_width:
            s = s[: max_col_width - 1] + "…"
        return s

    grid = [[cell(c) for c in cols]]
    for row in rows:
        grid.append([cell(row.get(c)) for c in cols])
    widths = [max(len(r[k]) for r in grid) for k in range(len(cols))]

    def line(parts: list[str]) -> str:
        return "| " + " | ".join(p.ljust(w) for p, w in zip(parts, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(grid[0]))
    out.append(sep)
    for r in grid[1:]:
        out.append(line(r))
    out.append(sep)
    return "\n".join(out)
