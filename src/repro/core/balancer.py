"""The Particle & Plane load balancing algorithm (paper §5).

Each round has two phases, mirroring the paper's two decision points:

**Phase A — in-flight particles** ("as the load reaches node j ..."):
every task currently in motion evaluates its neighbors through the
energy model. Neighbor *j* is *energy-feasible* iff

    a_j = h* − c0·µk·e_ij − h(v_j)  >  0                       (§5.1)

i.e. after paying the hop's friction the flag still clears the
destination's height. Under the default ``motion_rule="arbiter-settle"``
the arbiter chooses among the feasible hops *and* an explicit settle
option scored ``a_settle = h* − (h(cur) − l)`` (the particle's own floor,
no hop cost): descent steep enough to out-earn friction continues the
journey, anything else settles — with the annealed exploration still able
to climb barriers early on (§5.2). Under ``motion_rule="energy-only"``
the paper's literal rule applies: keep hopping while any neighbor is
feasible.

**Phase B — stationary initiation** ("the condition for initiating the
motion"): every node offers its ``candidates_per_node`` largest resident
tasks; task *k* may start moving toward neighbor *j* iff

    tan β = (h(v_i) − h(v_j) − 2·l_k)/e_ij  >  µs(k, i)        (§5.1)

The arbiter picks among the feasible links; the new particle's flag is
initialised to the departure height ``h* = h(v_i)`` ("the height of the
initial position of the object, h0") minus the first hop's drop.

Both phases work on a private copy of the load vector updated as
decisions are made ("the algorithm updates ... the quantity of the loads
of the source and the destination nodes"), honour link faults, and
reserve one task per link per round ("at each time unit only a single
load is transferred over a link").

Termination: every hop costs at least ``c0·µk·min(e) > 0`` of flag
height while feasibility keeps the flag above the (non-negative) load
surface, so journeys are finite whenever ``µk > 0`` — the discrete
Corollary 2, and the bounded-time half of Theorem 2's proof.

Large-N fast path (``BalanceContext.fast``): both phases admit a
vectorised screen. During one ``step`` the task placements never change
(the engine applies the returned orders afterwards), so the only
decision inputs that evolve are the private surface ``h`` and the
per-link reservations. The fast path batch-evaluates every Phase-A hop
feasibility and every Phase-B initiation slope as whole-graph CSR array
expressions, then runs the *identical* per-decision code only where it
can matter: particles whose neighborhood changed since the batch, and
nodes that either passed the (provably sound, load-floor based) screen
or were touched by an earlier decision of the same round. Skipped work
is exactly the work the scalar path would have done with no effect and
no RNG consumption — which is why the fast path reproduces the scalar
trajectory bit for bit (property-tested in
``tests/sim/test_fast_equivalence.py``).
"""

from __future__ import annotations

import heapq
import logging
import math
from typing import Callable, Optional

import numpy as np

from repro.core.arbiter import GreedyArbiter, StochasticArbiter
from repro.core.config import PPLBConfig
from repro.core.energy import MotionState, hop_heat_energy, hop_height_drop
from repro.core.friction import FrictionModel
from repro.core.surface import NeighborCache, corrected_slopes_flat
from repro.interfaces import BalanceContext, Balancer, Migration
from repro.tasks.resources import ResourceMap
from repro.tasks.task_graph import TaskGraph

#: below this many candidate hops the Phase-A decision body uses plain
#: Python lists instead of numpy fancy indexing: identical float64
#: values flow into the arbiter (``tolist`` round-trips doubles
#: exactly), so the decision — and the RNG stream — is unchanged while
#: the per-call ufunc dispatch overhead disappears at typical graph
#: degrees.
_SMALL_DEG = 32

#: below this many in-flight particles the Phase-A fast path decides
#: each particle inline instead of batch-precomputing scores: the batch
#: CSR gather has a fixed ~15-array-op setup cost that outweighs the
#: per-particle work for small waves (the common case in the event
#: engine, where most waves carry a handful of particles).
_SMALL_WAVE = 64

logger = logging.getLogger(__name__)


class _StepState:
    """Shared working state of one balancing round.

    Bundles the context unpacking plus the round-private surface copy
    and link reservations, so the scalar loops and the vectorised fast
    path drive the *same* decision bodies. ``on_change`` is the fast
    path's invalidation hook — called after every applied decision with
    the (src, dst) endpoints; None under the scalar path.
    """

    __slots__ = (
        "system", "topo", "cache", "friction", "e", "up", "rng",
        "t", "h", "inv_s", "used", "migrations", "on_change", "probe",
        "batch",
    )

    def __init__(self, ctx: BalanceContext, cache, friction, inv_s: np.ndarray):
        self.system = ctx.system
        self.topo = ctx.topology
        self.cache = cache
        self.friction = friction
        self.e = ctx.link_costs
        self.up = ctx.up_mask
        self.rng = ctx.rng
        self.t = ctx.round_index
        self.inv_s = inv_s
        # Private working copy of the surface. With engine-supplied node
        # speeds (and speed_aware on) the surface is the *effective* load
        # h_i/s_i, making the equilibrium capacity-proportional; the
        # homogeneous case reduces to inv_s = 1 exactly.
        self.h = np.array(ctx.system.node_loads) * inv_s
        self.used = np.zeros(ctx.topology.n_edges, dtype=bool)
        self.migrations: list[Migration] = []
        self.on_change: Optional[Callable[[int, int], None]] = None
        # The engine's telemetry sink, or None when disabled — decision
        # bodies gate every counter emission on `s.probe is not None`,
        # so the default (null-probe) hot path pays one None check.
        probe = ctx.probe
        self.probe = probe if probe is not None and probe.enabled else None
        # Cross-replicate precompute from the batched engine, or None.
        self.batch = ctx.batch


class BatchHints:
    """Cross-replicate precompute for one round, from the batched engine.

    The replicate-batched engine (:class:`repro.sim.batch.
    BatchSimulator`) evaluates the Phase-A hop scores and the Phase-B
    initiation screen for *all* replicates of a batch in single stacked
    array expressions, then hands each balancer its replicate's slice
    through ``ctx.batch``. Every hinted array is bitwise equal to what
    the balancer's own fast path would have computed (same operands,
    same operation order — the same argument that lets ``_phase_a_fast``
    feed ``pre`` into ``_phase_a_decide``), so consuming a hint can
    never change a decision or the RNG stream.

    Phase-A hints carry the flat CSR-segment arrays for the predicted
    active-particle wave (``a_tids`` in decision order); the balancer
    validates the prediction against its actual wave and silently
    recomputes on mismatch (``a_stale`` flips so the engine can count
    the fallback). The Phase-B hint ``b_ok`` is the screen's admission
    mask over the cache's flat (node, neighbor) pairs; it is only valid
    while the round's surface is untouched, so the balancer consumes it
    only when Phase A produced no migrations.
    """

    __slots__ = (
        "a_tids", "a_cur", "a_offsets", "a_flat_js", "a_flat_eids",
        "a_drops", "a_hops", "a_feas", "b_ok",
        "a_used", "b_used", "a_stale",
    )

    def __init__(self, a_tids=None, a_cur=None, a_offsets=None,
                 a_flat_js=None, a_flat_eids=None, a_drops=None,
                 a_hops=None, a_feas=None, b_ok=None):
        self.a_tids = a_tids
        self.a_cur = a_cur
        self.a_offsets = a_offsets
        self.a_flat_js = a_flat_js
        self.a_flat_eids = a_flat_eids
        self.a_drops = a_drops
        self.a_hops = a_hops
        self.a_feas = a_feas
        self.b_ok = b_ok
        self.a_used = False
        self.b_used = False
        self.a_stale = False


class ParticlePlaneBalancer(Balancer):
    """The paper's algorithm. See module docstring for the round structure.

    Parameters
    ----------
    config:
        Model constants; defaults to :class:`PPLBConfig`'s defaults.
    task_graph, resources:
        Optional ``T``/``R`` structures feeding the friction model. When
        omitted here they are taken from the engine's context (so one
        balancer instance can serve any scenario).
    participation:
        Optional per-node participation levels ``p_i ∈ (0, 1]`` (Table 1:
        "degree of participation of a node in the load balancing");
        divides into µs at the node, so low-participation nodes resist
        giving up their tasks.

    Attributes
    ----------
    stats:
        Cumulative counters: journeys initiated, settled, hops taken,
        and heat dissipated (reset by :meth:`reset`).
    """

    name = "pplb"

    def __init__(
        self,
        config: Optional[PPLBConfig] = None,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        participation=None,
    ):
        self.config = config if config is not None else PPLBConfig()
        self._own_task_graph = task_graph
        self._own_resources = resources
        self._participation = participation
        if self.config.beta0 == 0.0:
            self.arbiter: StochasticArbiter = GreedyArbiter()
        else:
            self.arbiter = StochasticArbiter.from_config(self.config)
        # Telemetry bookkeeping: greedy arbiters draw no RNG per choice,
        # and the scalar-fallback warning fires once per instance.
        self._greedy_arbiter = isinstance(self.arbiter, GreedyArbiter)
        self._warned_fallback = False
        self._motion: dict[int, MotionState] = {}
        self._inv_s_ones: Optional[np.ndarray] = None
        self._cache: Optional[NeighborCache] = None
        self._friction: Optional[FrictionModel] = None
        self.stats: dict[str, float] = {}
        self._reset_stats()

    def _reset_stats(self) -> None:
        self.stats = {"initiated": 0, "settled": 0, "hops": 0, "heat": 0.0}

    # ------------------------------------------------------------------ #

    def reset(self, ctx: BalanceContext) -> None:
        """Bind to the context's topology and clear all journey state."""
        self._motion.clear()
        self._cache = NeighborCache(ctx.topology)
        tg = self._own_task_graph if self._own_task_graph is not None else ctx.task_graph
        rm = self._own_resources if self._own_resources is not None else ctx.resources
        self._friction = FrictionModel(self.config, tg, rm, self._participation)
        self._reset_stats()

    def idle(self) -> bool:
        """True when no particle is in flight."""
        return not self._motion

    @property
    def in_flight(self) -> int:
        """Number of tasks currently journeying."""
        return len(self._motion)

    # ------------------------------------------------------------------ #

    def step(self, ctx: BalanceContext) -> list[Migration]:
        """Plan one round of migrations (Phase A then Phase B).

        With ``ctx.fast`` (the ``rounds-fast`` engine) both phases run
        through the vectorised screen; the trajectory is identical
        either way (see module docstring). Friction jitter draws RNG per
        *evaluated* candidate, which the screen elides, so jittered
        configs always take the scalar path.
        """
        if self._cache is None or self._cache.topology is not ctx.topology:
            self.reset(ctx)
        cfg = self.config
        if cfg.speed_aware and ctx.node_speeds is not None:
            inv_s = 1.0 / np.asarray(ctx.node_speeds, dtype=np.float64)
        else:
            # Read-only in every decision body, so one shared array
            # serves all rounds of the homogeneous case.
            inv_s = self._inv_s_ones
            if inv_s is None or inv_s.shape[0] != ctx.topology.n_nodes:
                inv_s = np.ones(ctx.topology.n_nodes)
                self._inv_s_ones = inv_s
        s = _StepState(ctx, self._cache, self._friction, inv_s)
        probe = s.probe
        if probe is not None:
            initiated0 = self.stats["initiated"]
            settled0 = self.stats["settled"]
            hops0 = self.stats["hops"]

        if ctx.fast and cfg.friction_jitter == 0.0:
            self._phase_a_fast(s)
            self._phase_b_fast(s)
        else:
            if ctx.fast and not self._warned_fallback:
                self._warned_fallback = True
                logger.warning(
                    "friction_jitter=%g draws RNG per evaluated candidate, "
                    "which the vectorised screen cannot elide — falling "
                    "back to the scalar decision path (correct, but the "
                    "fast engine's speedup is lost)",
                    cfg.friction_jitter,
                )
            self._phase_a_scalar(s)
            self._phase_b_scalar(s)
        if probe is not None:
            probe.incr(
                "balancer.initiated", int(self.stats["initiated"] - initiated0)
            )
            probe.incr("balancer.settled", int(self.stats["settled"] - settled0))
            probe.incr("balancer.hops", int(self.stats["hops"] - hops0))
        return s.migrations

    # ------------------------- scalar phases -------------------------- #

    def _phase_a_scalar(self, s: _StepState) -> None:
        """Phase A reference loop: every in-flight particle, in id order."""
        cfg = self.config
        system = s.system
        for tid in sorted(self._motion):
            if not system.is_alive(tid):
                del self._motion[tid]
                continue
            if system.in_transit(tid):
                continue  # still on the wire; decides after landing
            st = self._motion[tid]
            if cfg.max_hops is not None and st.hops >= cfg.max_hops:
                self._settle(tid)
                continue
            self._phase_a_decide(
                s, tid, st, system.location_of(tid), system.load_of(tid)
            )

    def _phase_b_scalar(self, s: _StepState) -> None:
        """Phase B reference loop: every node, in descending height order."""
        node_order = np.argsort(-s.h, kind="stable")
        for i in node_order:
            i = int(i)
            if s.h[i] <= 0.0:
                break  # descending order: nothing left to shed anywhere
            self._phase_b_node(s, i)

    # ------------------------ decision bodies ------------------------- #
    # One body per phase, shared verbatim by the scalar loops and the
    # fast path — the single place the paper's §5.1 rules live, so the
    # two paths cannot drift.

    def _choose(self, s: _StepState, scores) -> int:
        """Arbiter choice with telemetry: same pick, same RNG stream.

        Counts the choice (and, for stochastic arbiters, the RNG values
        it consumes — one per score) before delegating; the probe never
        sees the scores, so it cannot influence the decision.
        """
        if s.probe is not None:
            s.probe.incr("balancer.arbiter_choices")
            if not self._greedy_arbiter:
                s.probe.incr("balancer.rng_draws", len(scores))
        return self.arbiter.choose(scores, s.t, s.rng)

    def _phase_a_decide(
        self,
        s: _StepState,
        tid: int,
        st: MotionState,
        cur: int,
        load: float,
        pre: Optional[tuple] = None,
    ) -> None:
        """One in-flight particle's §5.1 energy decision: hop or settle.

        *pre* optionally supplies the batch-computed ``(js, eids, drops,
        hop_scores, feasible)`` arrays; they are bitwise equal to the
        inline computation (same operands, same operation order), so the
        arbiter — and therefore the RNG stream — sees identical inputs.
        """
        if s.probe is not None:
            s.probe.incr("balancer.phase_a_decisions")
        cfg = self.config
        h = s.h
        if pre is None and len(s.cache.nbrs_l[cur]) <= _SMALL_DEG:
            # Fully scalar path: the same IEEE float64 operations in the
            # same order as the array expressions below — ``(c0·µk)·e``,
            # ``(h* − drop) − h_j`` — so every score (and therefore the
            # arbiter's pick and the RNG stream) is bitwise identical,
            # without any per-neighbor ufunc dispatch.
            js_l = s.cache.nbrs_l[cur]
            eids_l = s.cache.eids_l[cur]
            mu_k = s.friction.mu_k(s.system, s.topo, tid, cur) * self._jitter(s.t, s.rng, s.probe)
            cmu = cfg.c0 * mu_k
            e = s.e
            up = s.up
            used = s.used
            hstar = st.hstar
            cand: list[tuple[int, int, float]] = []
            scores_l = []
            for k in range(len(js_l)):
                eid = eids_l[k]
                d = cmu * e[eid]
                score = (hstar - d) - h[js_l[k]]
                if score > 0.0 and up[eid] and not used[eid]:
                    cand.append((js_l[k], eid, float(d)))
                    scores_l.append(float(score))
            if not cand:
                self._settle(tid)
                return
            if cfg.motion_rule == "arbiter-settle":
                scores_l.append(float(hstar - (h[cur] - load * s.inv_s[cur])))
                pick = self._choose(s, scores_l)
                if pick == len(cand):
                    self._settle(tid)
                    return
            else:  # "energy-only": the paper's literal rule
                pick = self._choose(s, scores_l)
            j, eid, drop = cand[pick]
            self._finish_hop(s, tid, st, cur, load, j, eid, drop)
            return
        if pre is None:
            js = s.cache.nbrs[cur]
            eids = s.cache.eids[cur]
            mu_k = s.friction.mu_k(s.system, s.topo, tid, cur) * self._jitter(s.t, s.rng, s.probe)
            drops = cfg.c0 * mu_k * s.e[eids]
            hop_scores = st.hstar - drops - h[js]
            feasible = s.up[eids] & ~s.used[eids] & (hop_scores > 0.0)
        else:
            js, eids, drops, hop_scores, feasible = pre

        if hop_scores.shape[0] <= _SMALL_DEG:
            # List path: same float64 values (tolist round-trips doubles
            # exactly), same arbiter inputs, same RNG stream.
            feas = feasible.tolist()
            idx_list = [k for k in range(len(feas)) if feas[k]]
            if not idx_list:
                self._settle(tid)
                return
            hs = hop_scores.tolist()
            if cfg.motion_rule == "arbiter-settle":
                settle_score = float(st.hstar - (h[cur] - load * s.inv_s[cur]))
                scores_l = [hs[k] for k in idx_list]
                scores_l.append(settle_score)
                pick = self._choose(s, scores_l)
                if pick == len(idx_list):
                    self._settle(tid)
                    return
                k = idx_list[pick]
            else:  # "energy-only": the paper's literal rule
                pick = self._choose(s, [hs[k] for k in idx_list])
                k = idx_list[pick]
        else:
            idxs = np.nonzero(feasible)[0]
            if idxs.shape[0] == 0:
                self._settle(tid)
                return
            if cfg.motion_rule == "arbiter-settle":
                settle_score = st.hstar - (h[cur] - load * s.inv_s[cur])
                scores = np.concatenate([hop_scores[idxs], [settle_score]])
                pick = self._choose(s, scores)
                if pick == idxs.shape[0]:
                    self._settle(tid)
                    return
                k = int(idxs[pick])
            else:  # "energy-only": the paper's literal rule
                pick = self._choose(s, hop_scores[idxs])
                k = int(idxs[pick])

        self._finish_hop(
            s, tid, st, cur, load, int(js[k]), int(eids[k]), float(drops[k])
        )

    def _finish_hop(
        self,
        s: _StepState,
        tid: int,
        st: MotionState,
        cur: int,
        load: float,
        j: int,
        eid: int,
        drop: float,
    ) -> None:
        """Apply a chosen Phase-A hop: record, reserve, update surface."""
        h = s.h
        heat = hop_heat_energy(self.config.g, load, drop)
        st.record_hop(drop, heat, cur)
        s.migrations.append(Migration(tid, cur, j, heat))
        s.used[eid] = True
        h[cur] -= load * s.inv_s[cur]
        h[j] += load * s.inv_s[j]
        self.stats["hops"] += 1
        self.stats["heat"] += heat
        if s.on_change is not None:
            s.on_change(cur, j)

    def _phase_b_node(self, s: _StepState, i: int) -> None:
        """One node's §5.1 initiation scan over its candidate tasks."""
        if s.probe is not None:
            s.probe.incr("balancer.phase_b_nodes")
        cfg = self.config
        system = s.system
        h = s.h
        inv_s = s.inv_s
        e = s.e
        max_dep = (
            cfg.max_departures_per_node
            if cfg.max_departures_per_node is not None
            else math.inf
        )
        js_l = s.cache.nbrs_l[i]
        eids_l = s.cache.eids_l[i]
        small = len(js_l) <= _SMALL_DEG
        departures = 0
        for tid in system.largest_tasks_at(i, cfg.candidates_per_node):
            tid = int(tid)
            if tid in self._motion:
                continue
            load = system.load_of(tid)
            if small:
                # Scalar path — the same IEEE operations in the same
                # order as the array expressions in the else-branch, so
                # slopes, arbiter inputs and the RNG stream are bitwise
                # identical (see the Phase-A body).
                avail_l = [s.up[eid] and not s.used[eid] for eid in eids_l]
                if not any(avail_l):
                    break  # no free links left at this node
                mu_s, mu_k = s.friction.both(system, s.topo, tid, i)
                jit = self._jitter(s.t, s.rng, s.probe)
                mu_s *= jit
                mu_k *= jit
                hi = h[i]
                isi = inv_s[i]
                uncorrected = cfg.arbiter_score != "corrected"
                cand: list[tuple[int, int]] = []
                scores_l = []
                for k in range(len(js_l)):
                    if not avail_l[k]:
                        continue
                    jj = js_l[k]
                    eid = eids_l[k]
                    # (h_i − h_j − 2l)/e generalised to effective
                    # heights: moving l lowers h_i by l/s_i and raises
                    # h_j by l/s_j.
                    t_k = ((hi - h[jj]) - load * (isi + inv_s[jj])) / e[eid]
                    if t_k > mu_s:
                        cand.append((jj, eid))
                        if uncorrected:
                            scores_l.append(float((hi - h[jj]) / e[eid]))
                        else:
                            scores_l.append(float(t_k))
                if not cand:
                    continue
                pick = self._choose(s, scores_l)
                j, eid = cand[pick]
            else:
                js = s.cache.nbrs[i]
                eids = s.cache.eids[i]
                avail = s.up[eids] & ~s.used[eids]
                if not avail.any():
                    break  # no free links left at this node
                mu_s, mu_k = s.friction.both(system, s.topo, tid, i)
                jit = self._jitter(s.t, s.rng, s.probe)
                mu_s *= jit
                mu_k *= jit
                # (h_i − h_j − 2l)/e generalised to effective heights:
                # moving l lowers h_i by l/s_i and raises h_j by l/s_j.
                corrected = (h[i] - h[js] - load * (inv_s[i] + inv_s[js])) / e[eids]
                feasible = avail & (corrected > mu_s)
                idxs = np.nonzero(feasible)[0]
                if idxs.shape[0] == 0:
                    continue
                if cfg.arbiter_score == "corrected":
                    scores = corrected[idxs]
                else:
                    scores = (h[i] - h[js[idxs]]) / e[eids[idxs]]
                pick = self._choose(s, scores)
                k = int(idxs[pick])
                j = int(js[k])
                eid = int(eids[k])
            drop = hop_height_drop(cfg.c0, mu_k, float(e[eid]))
            heat = hop_heat_energy(cfg.g, load, drop)
            st = MotionState(
                hstar=float(h[i]) - drop,
                origin=i,
                released_at=s.t,
                hops=1,
                heat=heat,
                prev_node=i,
            )
            self._motion[tid] = st
            s.migrations.append(Migration(tid, i, j, heat))
            s.used[eid] = True
            h[i] -= load * inv_s[i]
            h[j] += load * inv_s[j]
            self.stats["initiated"] += 1
            self.stats["hops"] += 1
            self.stats["heat"] += heat
            if s.on_change is not None:
                s.on_change(i, j)
            departures += 1
            if departures >= max_dep:
                break

    # ------------------------ vectorised phases ----------------------- #

    def _phase_a_fast(self, s: _StepState) -> None:
        """Phase A with batch-precomputed hop feasibilities.

        All particles still decide sequentially in id order (their
        decisions are coupled through the surface and the per-link
        reservations), but the per-particle score arrays come from one
        whole-batch CSR expression. A particle falls back to the inline
        computation only when an earlier decision touched its
        neighborhood — tracked by an affected-nodes mask.
        """
        cfg = self.config
        system = s.system
        active: list[tuple[int, MotionState]] = []
        for tid in sorted(self._motion):
            if not system.is_alive(tid):
                del self._motion[tid]
                continue
            if system.in_transit(tid):
                continue  # still on the wire; decides after landing
            st = self._motion[tid]
            if cfg.max_hops is not None and st.hops >= cfg.max_hops:
                self._settle(tid)
                continue
            active.append((tid, st))
        if not active:
            return
        cache = s.cache
        if s.topo.n_edges == 0 or len(active) <= _SMALL_WAVE:
            # Tiny batches: the inline body is bitwise-equal to the
            # batch precomputation (same operands, same order — that is
            # what lets the batch feed `pre` at all), so skipping the
            # fixed-cost CSR gather changes nothing but speed.
            for tid, st in active:
                self._phase_a_decide(
                    s, tid, st, system.location_of(tid), system.load_of(tid)
                )
            return

        n_act = len(active)
        hint = s.batch
        hinted = (
            hint is not None
            and hint.a_flat_js is not None
            and len(hint.a_tids) == n_act
            and all(hint.a_tids[p] == active[p][0] for p in range(n_act))
        )
        if hint is not None and hint.a_flat_js is not None and not hinted:
            hint.a_stale = True
        if hinted:
            # The batched engine predicted this exact wave and already
            # gathered its score arrays inside one cross-replicate
            # expression — bitwise equal to the block below (see
            # BatchHints), so the decisions and RNG stream cannot move.
            cur = hint.a_cur
            offsets = hint.a_offsets
            flat_js = hint.a_flat_js
            flat_eids = hint.a_flat_eids
            drops_flat = hint.a_drops
            hop_flat = hint.a_hops
            feas_flat = hint.a_feas
            hint.a_used = True
        else:
            cur = np.fromiter(
                (system.location_of(tid) for tid, _ in active), np.int64, count=n_act
            )
            hstar = np.fromiter((st.hstar for _, st in active), np.float64, count=n_act)
            mu_k = self._batch_mu_k(s, active, cur)

            # Flat (particle, neighbor) segments gathered from the CSR rows
            # of each particle's current node.
            starts = cache.indptr[cur]
            counts = cache.indptr[cur + 1] - starts
            offsets = np.concatenate(([0], np.cumsum(counts)))
            slot = (
                np.arange(offsets[-1], dtype=np.int64)
                - np.repeat(offsets[:-1], counts)
                + np.repeat(starts, counts)
            )
            flat_js = cache.flat_nbrs[slot]
            flat_eids = cache.flat_eids[slot]
            # Same operands and operation order as the inline body — bitwise
            # equal scores (see _phase_a_decide).
            drops_flat = np.repeat(cfg.c0 * mu_k, counts) * s.e[flat_eids]
            hop_flat = np.repeat(hstar, counts) - drops_flat - s.h[flat_js]
            # No link is reserved yet at Phase-A start, so `up & ~used`
            # reduces to `up` for every clean particle.
            feas_flat = s.up[flat_eids] & (hop_flat > 0.0)

        affected = np.zeros(s.topo.n_nodes, dtype=bool)

        def on_change(u: int, v: int) -> None:
            affected[u] = True
            affected[v] = True
            affected[cache.nbrs[u]] = True
            affected[cache.nbrs[v]] = True

        s.on_change = on_change
        try:
            for p, (tid, st) in enumerate(active):
                c = int(cur[p])
                if affected[c]:
                    self._phase_a_decide(s, tid, st, c, system.load_of(tid))
                else:
                    seg = slice(offsets[p], offsets[p + 1])
                    pre = (
                        flat_js[seg],
                        flat_eids[seg],
                        drops_flat[seg],
                        hop_flat[seg],
                        feas_flat[seg],
                    )
                    self._phase_a_decide(
                        s, tid, st, c, system.load_of(tid), pre=pre
                    )
        finally:
            s.on_change = None

    def _batch_mu_k(
        self, s: _StepState, active: list[tuple[int, MotionState]], cur: np.ndarray
    ) -> np.ndarray:
        """Per-particle µk, vectorised whenever friction is closed-form."""
        cfg = self.config
        if cfg.kappa == 0.0:
            return np.full(cur.shape[0], cfg.mu_k_base)
        if s.friction.uniform:
            return np.full(
                cur.shape[0], cfg.mu_k_base + cfg.kappa * cfg.mu_s_base
            )
        return np.fromiter(
            (
                s.friction.mu_k(s.system, s.topo, tid, int(c))
                for (tid, _), c in zip(active, cur)
            ),
            np.float64,
            count=cur.shape[0],
        )

    def _phase_b_fast(self, s: _StepState) -> None:
        """Phase B restricted to nodes that can possibly act.

        The screen: a node may initiate only if some up, unreserved link
        clears ``(h_i − h_j − l·(1/s_i + 1/s_j))/e_ij > µs`` for one of
        its ``candidates_per_node`` largest tasks. The slope is monotone
        decreasing in the moved load and ``µs ≥ mu_s_base`` always
        (dependency/resource terms are non-negative, participation only
        scales up), so evaluating every link of every node at the node's
        *candidate floor* load against ``mu_s_base`` — one whole-graph
        array expression — is a sound over-approximation, in floating
        point too (every step of the expression is weakly monotone).
        Screened-out nodes are exactly the nodes the scalar sweep would
        visit without effect or RNG use. Decisions during the sweep can
        re-enable a neighborhood, so every touched node later in the
        height order is re-queued through a position heap; nodes that
        were empty at the sort but received load mid-phase are handled
        by walking the zero-height tail in order, as the scalar loop
        does.

        When the screen admits *no* node at all the phase exits before
        even sorting: with zero decisions the surface cannot change, so
        the re-queue heap and the zero-height tail are provably empty
        too (a screened node needs ``h_i > 0``, hence the tail's first
        node would break immediately). This makes a fully balanced wave
        — the steady-state common case in the event engine — one array
        expression, which is where the ``events-fast`` throughput floor
        comes from.
        """
        topo = s.topo
        cache = s.cache
        h = s.h
        n = topo.n_nodes
        probe = s.probe
        if topo.n_edges == 0:
            return  # no links: no initiation anywhere, no surface change
        if probe is not None:
            probe.incr("screen.waves")
        hint = s.batch
        if hint is not None and hint.b_ok is not None and not s.migrations:
            # The batched engine screened this replicate inside one
            # stacked expression over the pre-step surface. No Phase-A
            # migration happened, so `h` is untouched and `used` is
            # all-False — the hinted mask is bitwise equal to the
            # expression below (see BatchHints).
            ok = hint.b_ok
            hint.b_used = True
        else:
            floor = s.system.candidate_floor(self.config.candidates_per_node)
            opt = corrected_slopes_flat(h, floor, s.inv_s, s.e, cache)
            ok = s.up[cache.flat_eids] & ~s.used[cache.flat_eids]
            ok &= opt > self.config.mu_s_base
        if not ok.any():
            if probe is not None:
                probe.incr("screen.waves_skipped")
            return  # every wake this wave is a no-effect, no-RNG visit
        node_order = np.argsort(-h, kind="stable")
        n_pos = int(np.count_nonzero(h > 0.0))
        screened = np.zeros(n, dtype=bool)
        screened[cache.flat_rows[ok]] = True
        static_rs = np.nonzero(screened[node_order[:n_pos]])[0]
        if probe is not None:
            # The screen-effectiveness signal: how many loaded nodes the
            # scalar sweep would have visited that the screen elided.
            probe.incr("screen.nodes_admitted", int(static_rs.shape[0]))
            probe.incr(
                "screen.nodes_screened_out", n_pos - int(static_rs.shape[0])
            )

        pos_of = np.empty(n, dtype=np.int64)
        pos_of[node_order] = np.arange(n)
        processed = np.zeros(n, dtype=bool)
        queued = np.zeros(n, dtype=bool)
        heap: list[int] = []
        cur_r = -1

        def on_change(u: int, v: int) -> None:
            for x in (u, v, *cache.nbrs[u], *cache.nbrs[v]):
                x = int(x)
                r = int(pos_of[x])
                if cur_r < r < n_pos and not queued[x] and not processed[x]:
                    queued[x] = True
                    heapq.heappush(heap, r)

        s.on_change = on_change
        try:
            si = 0
            n_static = static_rs.shape[0]
            while si < n_static or heap:
                if si < n_static and (not heap or static_rs[si] <= heap[0]):
                    r = int(static_rs[si])
                    si += 1
                else:
                    r = heapq.heappop(heap)
                i = int(node_order[r])
                if processed[i]:
                    continue
                processed[i] = True
                cur_r = r
                self._phase_b_node(s, i)
            # Zero-height tail: the scalar sweep keeps going past the
            # last initially-loaded node and stops at the first node
            # still empty *now* — nodes this phase already poured load
            # into do get their turn.
            cur_r = n
            for r in range(n_pos, n):
                i = int(node_order[r])
                if h[i] <= 0.0:
                    break
                self._phase_b_node(s, i)
        finally:
            s.on_change = None

    # ------------------------------------------------------------------ #

    def _jitter(self, t: int, rng: np.random.Generator, probe=None) -> float:
        """§5.2 friction fuzziness: ``1 + jitter(t)·U(−1,1)``, floor 0.

        One factor per friction evaluation; µs and µk share it within a
        decision (preserving µk ∝ µs), and the level anneals on the same
        ``exp(−c·t/t_max)`` clock as the arbiter. A non-None *probe*
        counts the uniform draw (jitter is the one friction input that
        consumes RNG — the reason jittered configs stay scalar).
        """
        j0 = self.config.friction_jitter
        if j0 == 0.0:
            return 1.0
        if probe is not None:
            probe.incr("balancer.rng_draws")
        level = j0 * math.exp(-self.config.anneal_c * t / self.config.t_max)
        return max(1.0 + level * (2.0 * float(rng.random()) - 1.0), 0.0)

    def _settle(self, tid: int) -> None:
        del self._motion[tid]
        self.stats["settled"] += 1

    def journey_of(self, tid: int) -> Optional[MotionState]:
        """Motion state of task *tid*, or None when it is stationary."""
        return self._motion.get(tid)
