"""The Particle & Plane load balancing algorithm (paper §5).

Each round has two phases, mirroring the paper's two decision points:

**Phase A — in-flight particles** ("as the load reaches node j ..."):
every task currently in motion evaluates its neighbors through the
energy model. Neighbor *j* is *energy-feasible* iff

    a_j = h* − c0·µk·e_ij − h(v_j)  >  0                       (§5.1)

i.e. after paying the hop's friction the flag still clears the
destination's height. Under the default ``motion_rule="arbiter-settle"``
the arbiter chooses among the feasible hops *and* an explicit settle
option scored ``a_settle = h* − (h(cur) − l)`` (the particle's own floor,
no hop cost): descent steep enough to out-earn friction continues the
journey, anything else settles — with the annealed exploration still able
to climb barriers early on (§5.2). Under ``motion_rule="energy-only"``
the paper's literal rule applies: keep hopping while any neighbor is
feasible.

**Phase B — stationary initiation** ("the condition for initiating the
motion"): every node offers its ``candidates_per_node`` largest resident
tasks; task *k* may start moving toward neighbor *j* iff

    tan β = (h(v_i) − h(v_j) − 2·l_k)/e_ij  >  µs(k, i)        (§5.1)

The arbiter picks among the feasible links; the new particle's flag is
initialised to the departure height ``h* = h(v_i)`` ("the height of the
initial position of the object, h0") minus the first hop's drop.

Both phases work on a private copy of the load vector updated as
decisions are made ("the algorithm updates ... the quantity of the loads
of the source and the destination nodes"), honour link faults, and
reserve one task per link per round ("at each time unit only a single
load is transferred over a link").

Termination: every hop costs at least ``c0·µk·min(e) > 0`` of flag
height while feasibility keeps the flag above the (non-negative) load
surface, so journeys are finite whenever ``µk > 0`` — the discrete
Corollary 2, and the bounded-time half of Theorem 2's proof.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.arbiter import GreedyArbiter, StochasticArbiter
from repro.core.config import PPLBConfig
from repro.core.energy import MotionState, hop_heat_energy, hop_height_drop
from repro.core.friction import FrictionModel
from repro.core.surface import NeighborCache
from repro.interfaces import BalanceContext, Balancer, Migration
from repro.tasks.resources import ResourceMap
from repro.tasks.task_graph import TaskGraph


class ParticlePlaneBalancer(Balancer):
    """The paper's algorithm. See module docstring for the round structure.

    Parameters
    ----------
    config:
        Model constants; defaults to :class:`PPLBConfig`'s defaults.
    task_graph, resources:
        Optional ``T``/``R`` structures feeding the friction model. When
        omitted here they are taken from the engine's context (so one
        balancer instance can serve any scenario).
    participation:
        Optional per-node participation levels ``p_i ∈ (0, 1]`` (Table 1:
        "degree of participation of a node in the load balancing");
        divides into µs at the node, so low-participation nodes resist
        giving up their tasks.

    Attributes
    ----------
    stats:
        Cumulative counters: journeys initiated, settled, hops taken,
        and heat dissipated (reset by :meth:`reset`).
    """

    name = "pplb"

    def __init__(
        self,
        config: Optional[PPLBConfig] = None,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        participation=None,
    ):
        self.config = config if config is not None else PPLBConfig()
        self._own_task_graph = task_graph
        self._own_resources = resources
        self._participation = participation
        if self.config.beta0 == 0.0:
            self.arbiter: StochasticArbiter = GreedyArbiter()
        else:
            self.arbiter = StochasticArbiter.from_config(self.config)
        self._motion: dict[int, MotionState] = {}
        self._cache: Optional[NeighborCache] = None
        self._friction: Optional[FrictionModel] = None
        self.stats: dict[str, float] = {}
        self._reset_stats()

    def _reset_stats(self) -> None:
        self.stats = {"initiated": 0, "settled": 0, "hops": 0, "heat": 0.0}

    # ------------------------------------------------------------------ #

    def reset(self, ctx: BalanceContext) -> None:
        """Bind to the context's topology and clear all journey state."""
        self._motion.clear()
        self._cache = NeighborCache(ctx.topology)
        tg = self._own_task_graph if self._own_task_graph is not None else ctx.task_graph
        rm = self._own_resources if self._own_resources is not None else ctx.resources
        self._friction = FrictionModel(self.config, tg, rm, self._participation)
        self._reset_stats()

    def idle(self) -> bool:
        """True when no particle is in flight."""
        return not self._motion

    @property
    def in_flight(self) -> int:
        """Number of tasks currently journeying."""
        return len(self._motion)

    # ------------------------------------------------------------------ #

    def step(self, ctx: BalanceContext) -> list[Migration]:
        """Plan one round of migrations (Phase A then Phase B)."""
        if self._cache is None or self._cache.topology is not ctx.topology:
            self.reset(ctx)
        cfg = self.config
        cache = self._cache
        friction = self._friction
        system = ctx.system
        topo = ctx.topology
        e = ctx.link_costs
        up = ctx.up_mask
        rng = ctx.rng
        t = ctx.round_index

        # Private working copy of the surface. With engine-supplied node
        # speeds (and speed_aware on) the surface is the *effective* load
        # h_i/s_i, making the equilibrium capacity-proportional; the
        # homogeneous case reduces to inv_s = 1 exactly.
        if cfg.speed_aware and ctx.node_speeds is not None:
            inv_s = 1.0 / np.asarray(ctx.node_speeds, dtype=np.float64)
        else:
            inv_s = np.ones(topo.n_nodes)
        h = np.array(system.node_loads) * inv_s
        used = np.zeros(topo.n_edges, dtype=bool)
        migrations: list[Migration] = []

        # ---------------- Phase A: in-flight particles ---------------- #
        for tid in sorted(self._motion):
            if not system.is_alive(tid):
                del self._motion[tid]
                continue
            if system.in_transit(tid):
                continue  # still on the wire; decides after landing
            st = self._motion[tid]
            cur = system.location_of(tid)
            load = system.load_of(tid)

            if cfg.max_hops is not None and st.hops >= cfg.max_hops:
                self._settle(tid)
                continue

            js = cache.nbrs[cur]
            eids = cache.eids[cur]
            mu_k = friction.mu_k(system, topo, tid, cur) * self._jitter(t, rng)
            drops = cfg.c0 * mu_k * e[eids]
            hop_scores = st.hstar - drops - h[js]
            feasible = up[eids] & ~used[eids] & (hop_scores > 0.0)
            idxs = np.nonzero(feasible)[0]

            if idxs.shape[0] == 0:
                self._settle(tid)
                continue

            if cfg.motion_rule == "arbiter-settle":
                settle_score = st.hstar - (h[cur] - load * inv_s[cur])
                scores = np.concatenate([hop_scores[idxs], [settle_score]])
                pick = self.arbiter.choose(scores, t, rng)
                if pick == idxs.shape[0]:
                    self._settle(tid)
                    continue
                k = int(idxs[pick])
            else:  # "energy-only": the paper's literal rule
                pick = self.arbiter.choose(hop_scores[idxs], t, rng)
                k = int(idxs[pick])

            j = int(js[k])
            eid = int(eids[k])
            drop = float(drops[k])
            heat = hop_heat_energy(cfg.g, load, drop)
            st.record_hop(drop, heat, cur)
            migrations.append(Migration(tid, cur, j, heat))
            used[eid] = True
            h[cur] -= load * inv_s[cur]
            h[j] += load * inv_s[j]
            self.stats["hops"] += 1
            self.stats["heat"] += heat

        # --------------- Phase B: stationary initiation --------------- #
        max_dep = (
            cfg.max_departures_per_node
            if cfg.max_departures_per_node is not None
            else math.inf
        )
        node_order = np.argsort(-h, kind="stable")
        for i in node_order:
            i = int(i)
            if h[i] <= 0.0:
                break  # descending order: nothing left to shed anywhere
            departures = 0
            for tid in system.largest_tasks_at(i, cfg.candidates_per_node):
                tid = int(tid)
                if tid in self._motion:
                    continue
                load = system.load_of(tid)
                js = cache.nbrs[i]
                eids = cache.eids[i]
                avail = up[eids] & ~used[eids]
                if not avail.any():
                    break  # no free links left at this node
                mu_s, mu_k = friction.both(system, topo, tid, i)
                jit = self._jitter(t, rng)
                mu_s *= jit
                mu_k *= jit
                # (h_i − h_j − 2l)/e generalised to effective heights:
                # moving l lowers h_i by l/s_i and raises h_j by l/s_j.
                corrected = (h[i] - h[js] - load * (inv_s[i] + inv_s[js])) / e[eids]
                feasible = avail & (corrected > mu_s)
                idxs = np.nonzero(feasible)[0]
                if idxs.shape[0] == 0:
                    continue
                if cfg.arbiter_score == "corrected":
                    scores = corrected[idxs]
                else:
                    scores = (h[i] - h[js[idxs]]) / e[eids[idxs]]
                pick = self.arbiter.choose(scores, t, rng)
                k = int(idxs[pick])
                j = int(js[k])
                eid = int(eids[k])
                drop = hop_height_drop(cfg.c0, mu_k, float(e[eid]))
                heat = hop_heat_energy(cfg.g, load, drop)
                st = MotionState(
                    hstar=float(h[i]) - drop,
                    origin=i,
                    released_at=t,
                    hops=1,
                    heat=heat,
                    prev_node=i,
                )
                self._motion[tid] = st
                migrations.append(Migration(tid, i, j, heat))
                used[eid] = True
                h[i] -= load * inv_s[i]
                h[j] += load * inv_s[j]
                self.stats["initiated"] += 1
                self.stats["hops"] += 1
                self.stats["heat"] += heat
                departures += 1
                if departures >= max_dep:
                    break

        return migrations

    # ------------------------------------------------------------------ #

    def _jitter(self, t: int, rng: np.random.Generator) -> float:
        """§5.2 friction fuzziness: ``1 + jitter(t)·U(−1,1)``, floor 0.

        One factor per friction evaluation; µs and µk share it within a
        decision (preserving µk ∝ µs), and the level anneals on the same
        ``exp(−c·t/t_max)`` clock as the arbiter.
        """
        j0 = self.config.friction_jitter
        if j0 == 0.0:
            return 1.0
        level = j0 * math.exp(-self.config.anneal_c * t / self.config.t_max)
        return max(1.0 + level * (2.0 * float(rng.random()) - 1.0), 0.0)

    def _settle(self, tid: int) -> None:
        del self._motion[tid]
        self.stats["settled"] += 1

    def journey_of(self, tid: int) -> Optional[MotionState]:
        """Motion state of task *tid*, or None when it is stationary."""
        return self._motion.get(tid)
