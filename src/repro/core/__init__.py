"""The Particle & Plane Load Balancer — the paper's contribution (§4-5).

Layout:

* :class:`PPLBConfig` — every constant of the model (friction bases and
  dependency weights, heat constants ``c0``/``c1``, arbiter annealing
  parameters, candidate bounds) with validation and the Table-1 parameter
  registry.
* :class:`FrictionModel` — ``µs``/``µk`` per (task, node) from the
  dependency matrix ``T`` and resource matrix ``R`` (§4.2).
* :class:`NeighborCache` / gradient helpers — vectorised per-node views
  of ``tan β`` over the load surface (§4.1, §5.1).
* :class:`StochasticArbiter` — the annealed free-trials link chooser of
  §5.2 (plus a greedy ablation variant).
* :class:`MotionState` & energy helpers — the potential-height flag
  carried by in-flight loads (§5.1).
* :class:`ParticlePlaneBalancer` — the algorithm itself.
"""

from repro.core.arbiter import GreedyArbiter, StochasticArbiter
from repro.core.balancer import ParticlePlaneBalancer
from repro.core.config import PPLBConfig
from repro.core.energy import MotionState, hop_heat_energy, hop_height_drop
from repro.core.friction import FrictionModel
from repro.core.surface import NeighborCache, tan_beta, tan_beta_corrected
from repro.core.tuning import describe_config, suggest_config

__all__ = [
    "suggest_config",
    "describe_config",
    "PPLBConfig",
    "FrictionModel",
    "NeighborCache",
    "tan_beta",
    "tan_beta_corrected",
    "StochasticArbiter",
    "GreedyArbiter",
    "MotionState",
    "hop_height_drop",
    "hop_heat_energy",
    "ParticlePlaneBalancer",
]
