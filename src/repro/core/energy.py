"""The potential-height flag carried by in-flight loads (paper §5.1).

"In order to monitor the changes in the energy state of an object, we
store the potential height which is a measure of the total energy of the
object in a flag in the load; this flag is initialized at the start of
the game with the height of the initial position of the object, h0."

Per hop over link ``e_ij`` the flag drops by

    Δh* = E_h / (m·g) = c0 · µk · e_ij

(the paper's ``h*_t = h*_{t−1} − E_h,t/(m g)`` with
``E_h = c0·g·µk·e_ij·l``), and a neighbor *j* is reachable only while

    h*_t  >  h(v_j)                                 (§5.1 feasibility,
                                                    a_ij = h*_{t−1} − Δh* − h(v_j) > 0).

Because every hop costs at least ``c0 · µk_min · e_min > 0`` of flag
height (when ``µk > 0``), a journey makes at most
``h*_0 / (c0·µk_min·e_min)`` hops — the discrete incarnation of
Corollary 2 (friction always traps eventually), and step one of
Theorem 2's proof (every transfer completes in bounded time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def hop_height_drop(c0: float, mu_k: float, e_ij: float) -> float:
    """Potential-height loss for one hop: ``Δh* = c0·µk·e_ij``."""
    drop = c0 * mu_k * e_ij
    if drop < 0:
        raise ConfigurationError(
            f"height drop must be non-negative (c0={c0}, mu_k={mu_k}, e={e_ij})"
        )
    return drop


def hop_heat_energy(g: float, load: float, height_drop: float) -> float:
    """Heat dissipated by the hop: ``E_h = g·l·Δh*`` (the traffic analogy)."""
    return g * load * height_drop


@dataclass
class MotionState:
    """Bookkeeping of one in-flight particle (task).

    Attributes
    ----------
    hstar:
        Current potential height ``h*`` (the flag in the load).
    origin:
        Node where this journey started.
    released_at:
        Round index when motion was initiated.
    hops:
        Hops completed so far in this journey.
    heat:
        Total heat dissipated by this journey so far.
    prev_node:
        The node the particle occupied before its latest hop (lets
        diagnostics detect immediate backtracking).
    """

    hstar: float
    origin: int
    released_at: int
    hops: int = 0
    heat: float = 0.0
    prev_node: int = -1

    def record_hop(self, height_drop: float, heat: float, from_node: int) -> None:
        """Apply one hop's bookkeeping: drop the flag, count the hop."""
        self.hstar -= height_drop
        self.hops += 1
        self.heat += heat
        self.prev_node = from_node
