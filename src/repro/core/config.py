"""PPLB configuration: every constant of the paper's model in one place.

The paper leaves several constants "to be configured according to the
properties of the system being modeled" (§5.1: ``c0``, ``c1``; §5.2:
``β0``, ``c``, ``tmax``; §4.2: the proportionality constants of ``µs``,
``µk`` and ``e_ij``). :class:`PPLBConfig` names all of them, validates
ranges eagerly, and carries the Table-1 registry that maps each physical
parameter to its load-balancing meaning and the symbol implementing it —
the benchmark harness regenerates the paper's Table 1 from this registry
so the table can never drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import ClassVar

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PPLBConfig:
    """All tunables of the Particle & Plane balancer.

    Friction (paper §4.2)
    ---------------------
    mu_s_base:
        Baseline static friction: minimum perceived slope ``tan β``
        required to start a transfer even for a dependency-free task.
        Encodes "sometimes we rather prefer to ignore the load balancing
        completely" — the communication-delay threshold.
    w_dependency (paper: µs ∝ Σ T):
        Weight of co-located dependency mass in ``µs``: a task whose
        partners live on its node resists leaving it.
    w_resource (paper: µs ∝ R):
        Weight of the task's resource affinity to its current node.
    w_dependency_neighbor:
        Optional weight of dependency mass on *neighboring* nodes
        ("or in the nodes in its proximity").
    mu_k_base, kappa (paper: µk ∝ µs):
        Kinetic friction is ``µk = mu_k_base + kappa · µs``.

    Heat / link cost (paper §4.2, §5.1)
    -----------------------------------
    c0:
        Heat scale: the potential-height flag drops by ``c0·µk·e_ij``
        per hop.
    c1:
        Fault-exposure constant inside ``e_ij`` (see
        :func:`repro.network.links.link_costs`).
    e0:
        Overall link-cost scale.
    g:
        Gravitational constant — converts heights to energies in the
        heat/traffic metric (``E_h = g·l·Δh*``). Trajectories are
        ``g``-free.

    Arbiter (paper §5.2)
    --------------------
    beta0:
        Initial exploration probability ("the initial probability of
        choosing a link other than the steepest one").
    anneal_c, t_max:
        Exploration decays as ``β(t) = β0·exp(−anneal_c · t/t_max)`` —
        "the constants which control the convergence of the stochastic
        function to the rigid maximum value as the time passes".
    arbiter_floor:
        Minimum relative acceptance weight of the least attractive
        candidate while exploring (keeps every feasible link reachable,
        as the paper requires: "considers some rare probabilities for
        choosing the less steep slopes").
    friction_jitter:
        §5.2's second stochastic element: "this stochastic nature can
        also be considered for some other parameters which are not too
        much rigid like µs and µk", with rigidity growing over time.
        Each friction evaluation is multiplied by
        ``1 + jitter(t)·ξ`` with ``ξ ~ U(−1, 1)`` and
        ``jitter(t) = friction_jitter · exp(−anneal_c·t/t_max)`` —
        the same annealing clock as the arbiter. 0 (default) disables
        the perturbation entirely. Values are clipped below at 0.

    Algorithm shape
    ---------------
    candidates_per_node:
        How many (largest-first) resident tasks a node offers for
        migration each round — bounds per-round work.
    max_departures_per_node:
        Cap on new motions initiated per node per round (None = only the
        per-link capacity limits departures).
    motion_rule:
        ``"arbiter-settle"`` (default): an in-flight particle chooses,
        through the arbiter, among energy-feasible neighbor hops *and*
        settling in place (scored as the zero-cost option); this is the
        §5.2-style heuristic that turns the paper's energy wandering into
        prompt settling while keeping barrier crossing possible.
        ``"energy-only"``: the paper's literal rule — keep hopping while
        any neighbor is energy-feasible; settle only when none is.
        The ablation benchmark (E8) compares the two.
    max_hops:
        Hard safety cap on hops per journey (None = rely on the energy
        budget; finite termination is guaranteed whenever
        ``c0·µk·min(e) > 0``).
    arbiter_score:
        ``"corrected"`` (default) feeds the arbiter the load-corrected
        slope ``(h_i − h_j − 2l)/e_ij`` (§5.1's final inequality);
        ``"raw"`` feeds the uncorrected ``(h_i − h_j)/e_ij`` exactly as
        §5.2 lists it. Identical ranking for equal task sizes.
    speed_aware:
        When the engine supplies per-node processing speeds, work on the
        *effective* surface ``h_i/s_i`` so the equilibrium is
        capacity-proportional (``h_i ∝ s_i``). False makes PPLB
        speed-oblivious even on heterogeneous machines (the E16
        ablation).
    """

    # friction
    mu_s_base: float = 1.0
    w_dependency: float = 0.0
    w_resource: float = 0.0
    w_dependency_neighbor: float = 0.0
    mu_k_base: float = 0.25
    kappa: float = 0.0

    # heat / link cost
    c0: float = 1.0
    c1: float = 1.0
    e0: float = 1.0
    g: float = 1.0

    # arbiter / stochasticity
    beta0: float = 0.25
    anneal_c: float = 3.0
    t_max: int = 200
    arbiter_floor: float = 0.1
    friction_jitter: float = 0.0

    # algorithm shape
    candidates_per_node: int = 4
    max_departures_per_node: int | None = None
    motion_rule: str = "arbiter-settle"
    max_hops: int | None = None
    arbiter_score: str = "corrected"
    speed_aware: bool = True

    def __post_init__(self) -> None:
        pos = {"c0": self.c0, "e0": self.e0, "g": self.g,
               "t_max": self.t_max, "candidates_per_node": self.candidates_per_node}
        for name, v in pos.items():
            if v <= 0:
                raise ConfigurationError(f"{name} must be positive, got {v}")
        nonneg = {
            "mu_s_base": self.mu_s_base,
            "w_dependency": self.w_dependency,
            "w_resource": self.w_resource,
            "w_dependency_neighbor": self.w_dependency_neighbor,
            "mu_k_base": self.mu_k_base,
            "kappa": self.kappa,
            "c1": self.c1,
            "anneal_c": self.anneal_c,
            "friction_jitter": self.friction_jitter,
        }
        for name, v in nonneg.items():
            if v < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {v}")
        if not 0 <= self.beta0 < 1:
            raise ConfigurationError(f"beta0 must be in [0, 1), got {self.beta0}")
        if not 0 < self.arbiter_floor <= 1:
            raise ConfigurationError(
                f"arbiter_floor must be in (0, 1], got {self.arbiter_floor}"
            )
        if self.motion_rule not in ("arbiter-settle", "energy-only"):
            raise ConfigurationError(
                f"motion_rule must be 'arbiter-settle' or 'energy-only', got "
                f"{self.motion_rule!r}"
            )
        if self.arbiter_score not in ("corrected", "raw"):
            raise ConfigurationError(
                f"arbiter_score must be 'corrected' or 'raw', got {self.arbiter_score!r}"
            )
        if self.max_hops is not None and self.max_hops <= 0:
            raise ConfigurationError(f"max_hops must be positive or None, got {self.max_hops}")
        if self.max_departures_per_node is not None and self.max_departures_per_node <= 0:
            raise ConfigurationError(
                "max_departures_per_node must be positive or None, got "
                f"{self.max_departures_per_node}"
            )

    # ------------------------------------------------------------------ #

    def evolve(self, **changes) -> "PPLBConfig":
        """Copy with the given fields replaced (validates the result)."""
        return replace(self, **changes)

    def greedy(self) -> "PPLBConfig":
        """Deterministic variant: no exploration (``β0 = 0``)."""
        return self.evolve(beta0=0.0)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view of all fields (for result records)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # ------------------------------------------------------------------ #
    # The Table-1 registry (paper Table 1, regenerated by bench T1)
    # ------------------------------------------------------------------ #

    TABLE1: ClassVar[tuple[tuple[str, str, str], ...]] = (
            (
                "µs",
                "Degree of participation of a node in balancing; dependency of "
                "the task to other tasks or resources in the node",
                "core.friction.FrictionModel.mu_s "
                "(mu_s_base + w_dependency·ΣT + w_resource·R)",
            ),
            (
                "µk",
                "Communication cost of sending a task over a link; dependency "
                "of the task to tasks/resources near its source",
                "core.friction.FrictionModel.mu_k (mu_k_base + kappa·µs)",
            ),
            (
                "m",
                "Load quantity (computational complexity / memory size)",
                "tasks.task.TaskSystem.load_of",
            ),
            (
                "tanβ",
                "Load difference of neighboring nodes i, j with respect to "
                "e_ij (the gradient)",
                "core.surface.tan_beta / tan_beta_corrected",
            ),
            (
                "h",
                "Total load quantity of a node",
                "tasks.task.TaskSystem.node_loads",
            ),
            (
                "Eh",
                "Traffic caused by the transfer of loads on a link",
                "core.energy.hop_heat_energy (g·l·c0·µk·e_ij)",
            ),
            (
                "e_ij",
                "Link distance, communication delay and/or fault probability "
                "per time unit",
                "network.links.link_costs (d/(bw·(1−f)^(c1·d/bw)))",
            ),
    )

    @classmethod
    def table1_rows(cls) -> list[tuple[str, str, str]]:
        """(physical parameter, load-balancing meaning, implementing symbol)."""
        return list(cls.TABLE1)
