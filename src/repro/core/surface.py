"""The discrete load surface and its gradients (paper §4.1, §5.1).

The network + loads form a discrete 3-D manifold: node *v* sits at its
embedding coordinates with height ``h(v) = Σ_k l_{v,k}``. The *slope*
toward a neighbor is

    tan β(v_i, v_j, e_ij) = (h(v_i) − h(v_j)) / e_ij

and the *transfer-corrected* slope — accounting for the surface being
dynamic, i.e. the source losing and the destination gaining the moved
load ``l`` — is

    tan β = (h(v_i) − h(v_j) − 2·l) / e_ij        (§5.1).

:class:`NeighborCache` precomputes, per node, the neighbor ids and the
edge ids into the per-edge arrays (``e_ij``, fault mask, link usage), so
the balancer's inner loop is pure NumPy indexing with no dict lookups.
It is a thin view over :attr:`Topology.csr`, whose flat arrays
(``flat_rows``/``flat_nbrs``/``flat_eids``) additionally support
*whole-surface* expressions: :func:`corrected_slopes_flat` evaluates the
transfer-corrected slope of **every** directed (node, neighbor) pair of
the network in one fused array operation — the batched form of the
per-decision expression the large-N fast path screens with.
"""

from __future__ import annotations

import numpy as np

from repro.network.topology import Topology


def tan_beta(h_i: float, h_j: float, e_ij) -> float:
    """Uncorrected slope ``(h_i − h_j)/e_ij`` (§5.2's arbiter input)."""
    return (h_i - h_j) / e_ij


def tan_beta_corrected(h_i: float, h_j: float, load, e_ij) -> float:
    """Transfer-corrected slope ``(h_i − h_j − 2l)/e_ij`` (§5.1).

    The ``2l`` term is "the difference of the load quantities of the
    source and destination nodes before and after transferring": moving
    *l* lowers the source by *l* and raises the destination by *l*.
    """
    return (h_i - h_j - 2.0 * load) / e_ij


def corrected_slopes_flat(
    h: np.ndarray,
    load: np.ndarray,
    inv_s: np.ndarray,
    e: np.ndarray,
    cache: "NeighborCache",
) -> np.ndarray:
    """Transfer-corrected slope of every directed (node, neighbor) pair.

    Slot ``s`` (see :class:`~repro.network.topology.CSRAdjacency`) gets
    ``(h[i] − h[j] − load[i]·(1/s_i + 1/s_j)) / e_ij`` for ``i =
    flat_rows[s]``, ``j = flat_nbrs[s]`` — the §5.1 initiation slope
    generalised to effective heights, with a *per-source* load vector.
    The operation order matches the per-decision expression in the
    balancer bit for bit, so a batched evaluation at the same operands
    reproduces the scalar path's floats exactly (what the fast-path
    screen's soundness argument rests on).
    """
    rows = cache.flat_rows
    js = cache.flat_nbrs
    return (h[rows] - h[js] - load[rows] * (inv_s[rows] + inv_s[js])) / e[cache.flat_eids]


class NeighborCache:
    """Per-node neighbor/edge-id arrays for vectorised slope scans.

    For node *i*, ``nbrs[i]`` is the array of neighbor ids and
    ``eids[i]`` the parallel array of edge indices, so a balancer can
    evaluate every incident link with::

        js   = cache.nbrs[i]
        eids = cache.eids[i]
        slopes = (h[i] - h[js] - 2*load) / e[eids]
        ok     = up_mask[eids] & ~used[eids] & (slopes > mu_s)

    — one fused NumPy expression per (task, node) decision. The per-node
    arrays are zero-copy slices of :attr:`Topology.csr`; the flat forms
    (``flat_rows``/``flat_nbrs``/``flat_eids``/``indptr``) are exposed
    for whole-graph batch expressions (the large-N fast path).
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        csr = topology.csr
        self.indptr = csr.indptr
        self.flat_rows = csr.rows
        self.flat_nbrs = csr.indices
        self.flat_eids = csr.edge_ids
        self.nbrs: list[np.ndarray] = [
            csr.neighbors(i) for i in range(topology.n_nodes)
        ]
        self.eids: list[np.ndarray] = [
            csr.incident_edges(i) for i in range(topology.n_nodes)
        ]
        # Plain-list mirrors of the per-node rows: the balancers' scalar
        # decision bodies iterate neighbors one at a time, where Python
        # list indexing beats per-element ndarray access by ~3x. Built
        # once per topology; contents never change.
        self.nbrs_l: list[list[int]] = [a.tolist() for a in self.nbrs]
        self.eids_l: list[list[int]] = [a.tolist() for a in self.eids]

    def degree(self, node: int) -> int:
        """Number of incident links of *node*."""
        return self.nbrs[node].shape[0]
