"""The discrete load surface and its gradients (paper §4.1, §5.1).

The network + loads form a discrete 3-D manifold: node *v* sits at its
embedding coordinates with height ``h(v) = Σ_k l_{v,k}``. The *slope*
toward a neighbor is

    tan β(v_i, v_j, e_ij) = (h(v_i) − h(v_j)) / e_ij

and the *transfer-corrected* slope — accounting for the surface being
dynamic, i.e. the source losing and the destination gaining the moved
load ``l`` — is

    tan β = (h(v_i) − h(v_j) − 2·l) / e_ij        (§5.1).

:class:`NeighborCache` precomputes, per node, the neighbor ids and the
edge ids into the per-edge arrays (``e_ij``, fault mask, link usage), so
the balancer's inner loop is pure NumPy indexing with no dict lookups.
"""

from __future__ import annotations

import numpy as np

from repro.network.topology import Topology


def tan_beta(h_i: float, h_j: float, e_ij) -> float:
    """Uncorrected slope ``(h_i − h_j)/e_ij`` (§5.2's arbiter input)."""
    return (h_i - h_j) / e_ij


def tan_beta_corrected(h_i: float, h_j: float, load, e_ij) -> float:
    """Transfer-corrected slope ``(h_i − h_j − 2l)/e_ij`` (§5.1).

    The ``2l`` term is "the difference of the load quantities of the
    source and destination nodes before and after transferring": moving
    *l* lowers the source by *l* and raises the destination by *l*.
    """
    return (h_i - h_j - 2.0 * load) / e_ij


class NeighborCache:
    """Per-node neighbor/edge-id arrays for vectorised slope scans.

    For node *i*, ``nbrs[i]`` is the array of neighbor ids and
    ``eids[i]`` the parallel array of edge indices, so a balancer can
    evaluate every incident link with::

        js   = cache.nbrs[i]
        eids = cache.eids[i]
        slopes = (h[i] - h[js] - 2*load) / e[eids]
        ok     = up_mask[eids] & ~used[eids] & (slopes > mu_s)

    — one fused NumPy expression per (task, node) decision.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.n_nodes
        self.nbrs: list[np.ndarray] = []
        self.eids: list[np.ndarray] = []
        for i in range(n):
            js = topology.neighbors(i)
            self.nbrs.append(js)
            self.eids.append(
                np.asarray([topology.edge_id(i, int(j)) for j in js], dtype=np.int64)
            )

    def degree(self, node: int) -> int:
        """Number of incident links of *node*."""
        return self.nbrs[node].shape[0]
