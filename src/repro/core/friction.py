"""Static and kinetic friction from task/resource dependencies (§4.2).

The paper defines::

    µs(l_{j,i}, v_j) ∝ Σ_{k, l≠0} T_{...}     (dependency to co-located tasks)
    µs(l_{j,i}, v_j) ∝ R_{j,i}                (dependency to node resources)
    µk ∝ µs                                   ("interestingly also true in
                                               the physical world")

Interpretation implemented here (documented substitution — the paper's
indices are notational rather than operational): for task *k* residing on
node *i*,

    µs(k, i) = mu_s_base
             + w_dependency          · Σ_{x ≠ k alive, loc(x) = i}     T[k, x]
             + w_dependency_neighbor · Σ_{x alive, loc(x) ∈ N(i)}      T[k, x]
             + w_resource            · R[k, i]

    µk(k, i) = mu_k_base + kappa · µs(k, i)

Additionally, Table 1 defines µs as "the degree of participation of a
node in the load balancing": a node may be more or less willing to give
up work at all. This is modelled as a per-node participation level
``p_i ∈ (0, 1]`` that divides into the static friction —

    µs(k, i) ← µs(k, i) / p_i

so ``p_i = 1`` is a fully participating node, ``p_i = 0.5`` doubles the
gradient needed to pull work off node *i*, and ``p_i → 0`` freezes its
tasks entirely. Participation is a *sending-side* property (the paper
gives no receive-side rule); µk inherits it through ``kappa``.

Effects (and what experiment E7 measures): a task whose communication
partners (or pinned resources) are local gets a higher ``µs`` — a steeper
gradient is needed to tear it away — and a proportionally higher ``µk``,
so if it does migrate, the heat cost per hop is higher and it settles
sooner, staying near its partners.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import PPLBConfig
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.tasks.resources import ResourceMap
from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph


class FrictionModel:
    """Computes ``µs``/``µk`` per (task, node).

    Parameters
    ----------
    config:
        Source of the base coefficients and weights.
    task_graph, resources:
        The ``T`` and ``R`` structures; either may be None, dropping the
        corresponding term (and its cost).
    participation:
        Optional per-node participation levels ``p_i ∈ (0, 1]`` (Table 1:
        "degree of participation of a node"); divides into µs at that
        node. None means every node participates fully.
    """

    def __init__(
        self,
        config: PPLBConfig,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        participation: Optional[np.ndarray] = None,
    ):
        self.config = config
        self.task_graph = task_graph
        self.resources = resources
        if participation is not None:
            participation = np.asarray(participation, dtype=np.float64)
            if participation.ndim != 1:
                raise ConfigurationError(
                    f"participation must be a 1-D per-node array, got shape "
                    f"{participation.shape}"
                )
            if ((participation <= 0) | (participation > 1)).any():
                raise ConfigurationError("participation levels must lie in (0, 1]")
        self.participation = participation
        # Fast path: with no dependency structure (or zero weights) µs/µk
        # are constants; skip the partner scan entirely.
        self._needs_t = task_graph is not None and (
            config.w_dependency > 0 or config.w_dependency_neighbor > 0
        )
        self._needs_r = resources is not None and config.w_resource > 0

    @property
    def uniform(self) -> bool:
        """True when µs/µk are the same constants for every (task, node).

        Holds whenever no dependency/resource term contributes and no
        participation levels are set: then ``µs = mu_s_base`` and
        ``µk = mu_k_base + kappa·mu_s_base`` exactly. The vectorised
        balancer path uses this to lift friction out of its batch
        expressions; note that µs is always ≥ ``mu_s_base`` regardless
        (all weights are non-negative and participation only scales up),
        which is what the fast-path screen's bound relies on.
        """
        return not self._needs_t and not self._needs_r and self.participation is None

    def _participation_scale(self, node: int) -> float:
        if self.participation is None:
            return 1.0
        if node >= self.participation.shape[0]:
            raise ConfigurationError(
                f"participation array covers {self.participation.shape[0]} nodes; "
                f"node {node} queried"
            )
        return 1.0 / float(self.participation[node])

    def dependency_pull(self, system: TaskSystem, topology: Topology,
                        tid: int, node: int) -> tuple[float, float]:
        """(co-located, neighboring) dependency weight sums for *tid* at *node*."""
        if self.task_graph is None:
            return 0.0, 0.0
        ids, ws = self.task_graph.partners(tid)
        if ids.shape[0] == 0:
            return 0.0, 0.0
        local = 0.0
        nearby = 0.0
        nbrs = set(int(x) for x in topology.neighbors(node))
        for x, w in zip(ids, ws):
            x = int(x)
            if not system.is_alive(x):
                continue
            loc = system.location_of(x)
            if loc == node:
                local += w
            elif loc in nbrs:
                nearby += w
        return local, nearby

    def mu_s(self, system: TaskSystem, topology: Topology, tid: int, node: int) -> float:
        """Static friction of task *tid* at *node* (see module docstring)."""
        c = self.config
        mu = c.mu_s_base
        if self._needs_t:
            local, nearby = self.dependency_pull(system, topology, tid, node)
            mu += c.w_dependency * local + c.w_dependency_neighbor * nearby
        if self._needs_r:
            mu += c.w_resource * self.resources.affinity(tid, node)
        return mu * self._participation_scale(node)

    def mu_k(self, system: TaskSystem, topology: Topology, tid: int, node: int) -> float:
        """Kinetic friction ``mu_k_base + kappa·µs`` (paper: µk ∝ µs)."""
        c = self.config
        if c.kappa == 0.0:
            return c.mu_k_base
        return c.mu_k_base + c.kappa * self.mu_s(system, topology, tid, node)

    def both(self, system: TaskSystem, topology: Topology, tid: int, node: int
             ) -> tuple[float, float]:
        """(µs, µk) computed with a single dependency scan."""
        c = self.config
        mu_s = c.mu_s_base
        if self._needs_t:
            local, nearby = self.dependency_pull(system, topology, tid, node)
            mu_s += c.w_dependency * local + c.w_dependency_neighbor * nearby
        if self._needs_r:
            mu_s += c.w_resource * self.resources.affinity(tid, node)
        mu_s *= self._participation_scale(node)
        return mu_s, c.mu_k_base + c.kappa * mu_s
