"""The annealed stochastic arbiter (paper §5.2).

The paper replaces deterministic steepest-link selection with a
stochastic arbiter: link scores ``a_{i,1} ≥ a_{i,2} ≥ … ≥ a_{i,m}`` are
fed to a "probabilistic model of free trials" that "gives the most of the
chance to the links which are the steepest [and] considers some rare
probabilities for choosing the less steep slopes", with "the rigidity of
the correct values increas[ing] over time in an attempt to make the
system converge to an optimal solution".

The printed formulae in the source text are OCR-damaged, so this module
implements a *documented clean reconstruction* that preserves exactly the
three properties the prose states (each is unit-tested):

P1. The steepest candidate always has the (weakly) largest selection
    probability, and probabilities are monotone non-increasing in rank.
P2. While exploring (``β(t) > 0``), every candidate has probability > 0.
P3. Exploration decays over time — ``β(t) = β0 · exp(−c·t/t_max)`` — so
    the selection converges to the deterministic argmax as ``t → ∞``
    (and is exactly greedy for ``β0 = 0``).

Mechanism (sequential free trials, mirroring the paper's "probability of
success for each trial is not fixed"): visit candidates in descending
score order; accept candidate *k* with probability

    q_k = (1 − β(t)) · (floor + (1 − floor) · closeness_k),
    closeness_k = 1 − (a_1 − a_k) / (a_1 − a_m + ε)  ∈ [0, 1],

and fall back to the steepest candidate if every trial rejects. Since
``closeness_1 = 1``, ``q_1 = 1 − β(t)``: the steepest link is taken
immediately with at least that probability, matching the paper's "β0 is
the initial probability of choosing a link other than the steepest one".
Acceptance decays with rank, which makes the resulting choice
distribution monotone (P1); the *floor* keeps the worst candidate
reachable (P2); and ``β(t) → 0`` collapses everything onto the argmax
(P3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import PPLBConfig
from repro.exceptions import ConfigurationError

_EPS = 1e-12

#: below this many candidates :meth:`StochasticArbiter.choose` runs a
#: scalar Python path — identical IEEE operations in identical order,
#: so the pick (and the RNG stream) is bitwise the same as the array
#: path, without the per-call ufunc dispatch overhead that dominates
#: the simulators' hot loops at graph degrees of ~4-8.
_SMALL_M = 32


class StochasticArbiter:
    """Annealed stochastic link chooser (§5.2).

    Parameters
    ----------
    beta0, anneal_c, t_max, floor:
        See :class:`~repro.core.config.PPLBConfig`; :meth:`from_config`
        pulls them from a config object.
    """

    def __init__(
        self,
        beta0: float = 0.25,
        anneal_c: float = 3.0,
        t_max: int = 200,
        floor: float = 0.1,
    ):
        if not 0 <= beta0 < 1:
            raise ConfigurationError(f"beta0 must be in [0, 1), got {beta0}")
        if anneal_c < 0:
            raise ConfigurationError(f"anneal_c must be non-negative, got {anneal_c}")
        if t_max <= 0:
            raise ConfigurationError(f"t_max must be positive, got {t_max}")
        if not 0 < floor <= 1:
            raise ConfigurationError(f"floor must be in (0, 1], got {floor}")
        self.beta0 = beta0
        self.anneal_c = anneal_c
        self.t_max = t_max
        self.floor = floor

    @classmethod
    def from_config(cls, config: PPLBConfig) -> "StochasticArbiter":
        """Build from a :class:`PPLBConfig`."""
        return cls(
            beta0=config.beta0,
            anneal_c=config.anneal_c,
            t_max=config.t_max,
            floor=config.arbiter_floor,
        )

    # ------------------------------------------------------------------ #

    def beta(self, t: float) -> float:
        """Exploration level ``β(t) = β0·exp(−c·t/t_max)`` (P3)."""
        if t < 0:
            raise ConfigurationError(f"time must be non-negative, got {t}")
        return self.beta0 * math.exp(-self.anneal_c * t / self.t_max)

    def acceptance(self, scores: np.ndarray, t: float) -> tuple[np.ndarray, np.ndarray]:
        """(descending order, acceptance probabilities per trial).

        *scores* need not be sorted; the returned ``order`` indexes them
        in descending-score order and ``q`` gives the per-trial
        acceptance probability for each rank.
        """
        a = np.asarray(scores, dtype=np.float64)
        if a.ndim != 1 or a.shape[0] == 0:
            raise ConfigurationError(f"scores must be a non-empty 1-D array, got shape {a.shape}")
        order = np.argsort(-a, kind="stable")
        srt = a[order]
        span = srt[0] - srt[-1]
        closeness = 1.0 - (srt[0] - srt) / (span + _EPS)
        b = self.beta(t)
        q = (1.0 - b) * (self.floor + (1.0 - self.floor) * closeness)
        return order, np.clip(q, 0.0, 1.0)

    def probabilities(self, scores: np.ndarray, t: float) -> np.ndarray:
        """Exact selection distribution over the input candidates.

        Closed form of the sequential-trial process (including the
        fall-back-to-best mass); aligned with the *input* order of
        *scores*. Used by the property tests and by analyses; the actual
        selection path is :meth:`choose`.
        """
        order, q = self.acceptance(scores, t)
        m = order.shape[0]
        p_sorted = np.zeros(m)
        survive = 1.0
        for k in range(m):
            p_sorted[k] = survive * q[k]
            survive *= 1.0 - q[k]
        p_sorted[0] += survive  # all trials rejected -> steepest
        out = np.zeros(m)
        out[order] = p_sorted
        return out

    def choose(self, scores: np.ndarray, t: float, rng: np.random.Generator) -> int:
        """Pick one candidate index (into *scores*) by sequential trials.

        Small candidate sets (the common case: one entry per graph
        neighbor) take a scalar path that performs the exact same IEEE
        float64 operations in the exact same order as
        :meth:`acceptance` — including one ``rng.random(m)`` block draw
        — so the choice and the RNG stream are bitwise identical to the
        array path (asserted in ``tests/core/test_arbiter.py``).
        """
        if type(scores) is list:
            vals = scores
            m = len(vals)
            if m == 0:
                raise ConfigurationError("scores must be a non-empty 1-D array, got shape (0,)")
        else:
            a = np.asarray(scores, dtype=np.float64)
            if a.ndim != 1 or a.shape[0] == 0:
                raise ConfigurationError(
                    f"scores must be a non-empty 1-D array, got shape {a.shape}"
                )
            m = a.shape[0]
            if m > _SMALL_M:
                order, q = self.acceptance(a, t)
                draws = rng.random(m)
                hits = np.nonzero(draws < q)[0]
                rank = int(hits[0]) if hits.shape[0] else 0
                return int(order[rank])
            vals = a.tolist()
        if t < 0:
            raise ConfigurationError(f"time must be non-negative, got {t}")
        # Stable descending order == np.argsort(-a, kind="stable").
        order_s = sorted(range(m), key=vals.__getitem__, reverse=True)
        top = vals[order_s[0]]
        denom = (top - vals[order_s[-1]]) + _EPS
        one_minus_b = 1.0 - self.beta0 * math.exp(-self.anneal_c * t / self.t_max)
        floor = self.floor
        one_minus_floor = 1.0 - floor
        draws_s = rng.random(m).tolist()
        pick = order_s[0]  # all trials rejected -> steepest
        for k in range(m):
            closeness = 1.0 - (top - vals[order_s[k]]) / denom
            q_k = one_minus_b * (floor + one_minus_floor * closeness)
            if q_k < 0.0:
                q_k = 0.0
            elif q_k > 1.0:
                q_k = 1.0
            if draws_s[k] < q_k:
                pick = order_s[k]
                break
        return pick


class GreedyArbiter(StochasticArbiter):
    """Deterministic argmax arbiter (the ``β0 = 0`` ablation).

    Equivalent to :class:`StochasticArbiter` with ``beta0=0`` but skips
    the random draws entirely, so greedy runs are RNG-free.
    """

    def __init__(self) -> None:
        super().__init__(beta0=0.0)

    def choose(self, scores: np.ndarray, t: float, rng: np.random.Generator) -> int:
        a = np.asarray(scores, dtype=np.float64)
        if a.ndim != 1 or a.shape[0] == 0:
            raise ConfigurationError(f"scores must be a non-empty 1-D array, got shape {a.shape}")
        return int(np.argmax(a))
