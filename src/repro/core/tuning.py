"""Parameter auto-tuning: the paper's promised design methodology.

The paper's conclusion: "The goal of this work is to propose a scheme
for modeling dynamic load balancing ... in a way that each new system
can be easily modeled by identifying the effect and strictness of each
of the considered factors in the system understudy and fine-tuning the
configuration parameters which describe systems characteristics."

:func:`suggest_config` operationalises that promise: given the actual
system (topology, task sizes, link costs) and two *intent* knobs — how
far migration may roam and how large a load difference is worth acting
on — it derives the physical constants from the paper's own relations:

* **µs from the action threshold.** Motion starts when
  ``(h_i − h_j − 2l)/e > µs``; to ignore differences smaller than
  ``threshold_tasks`` average tasks, set
  ``µs = threshold_tasks · mean_load / e_typ``.
* **µk from the locality radius via Corollary 3.** A journey's flag
  budget above the plain is ≈ the departure surplus; the flag drops
  ``c0·µk·e_typ`` per hop, so capping journeys at ``locality_radius``
  hops for a typical surplus of one threshold unit gives
  ``µk = threshold_tasks · mean_load / (c0 · e_typ · locality_radius)``.
* **candidates_per_node ≥ max degree** so departures are link-limited,
  not candidate-limited (the E9 finding).
* **t_max ≈ expected drain time** ``n_tasks / max_degree`` — the
  one-load-per-link outflow law measured in E9 — so arbiter annealing
  completes on the same timescale as balancing.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PPLBConfig
from repro.exceptions import ConfigurationError
from repro.network.links import LinkAttributes, link_costs
from repro.network.topology import Topology
from repro.tasks.task import TaskSystem


def suggest_config(
    topology: Topology,
    system: TaskSystem,
    links: LinkAttributes | None = None,
    locality_radius: int | None = None,
    threshold_tasks: float = 1.0,
    beta0: float = 0.1,
    c1: float = 1.0,
    e0: float = 1.0,
) -> PPLBConfig:
    """Derive a :class:`PPLBConfig` from the system's own scales.

    Parameters
    ----------
    topology, system:
        The machine and its (populated) workload. Task sizes set the
        load scale; an empty system defaults the scale to 1.
    links:
        Link attributes; default uniform. The *typical* link cost
        ``e_typ`` (median of e_ij) calibrates both frictions.
    locality_radius:
        Desired maximum journey length in hops (default: half the
        topology diameter, min 2) — the Corollary-3 trap radius to aim
        for.
    threshold_tasks:
        Load differences below this many average tasks are not worth a
        migration (sets µs).
    beta0:
        Arbiter exploration to start from (pass 0 for deterministic).

    Returns
    -------
    PPLBConfig with µs, µk, candidates_per_node and t_max derived as in
    the module docstring; other fields at their defaults.
    """
    if system.topology is not topology:
        raise ConfigurationError("task system belongs to a different topology")
    if threshold_tasks <= 0:
        raise ConfigurationError(f"threshold_tasks must be positive, got {threshold_tasks}")
    if locality_radius is not None and locality_radius < 1:
        raise ConfigurationError(f"locality_radius must be >= 1, got {locality_radius}")

    attrs = links if links is not None else LinkAttributes.uniform(topology)
    e = link_costs(attrs, c1=c1, e0=e0)
    e_typ = float(np.median(e))

    loads = system.loads_array()
    mean_load = float(loads.mean()) if loads.shape[0] else 1.0

    radius = (
        int(locality_radius)
        if locality_radius is not None
        else max(2, topology.diameter // 2)
    )

    mu_s = threshold_tasks * mean_load / e_typ
    mu_k = threshold_tasks * mean_load / (1.0 * e_typ * radius)

    n_tasks = max(system.n_tasks, 1)
    drain_rounds = max(int(np.ceil(n_tasks / max(topology.max_degree, 1))), 10)

    return PPLBConfig(
        mu_s_base=mu_s,
        mu_k_base=mu_k,
        beta0=beta0,
        t_max=drain_rounds,
        candidates_per_node=max(8, topology.max_degree),
        c1=c1,
        e0=e0,
    )


def describe_config(config: PPLBConfig) -> str:
    """One-line-per-parameter human summary of a configuration."""
    rows = [
        f"  mu_s_base           = {config.mu_s_base:.4g}   (action threshold)",
        f"  mu_k_base           = {config.mu_k_base:.4g}   (heat per hop -> locality)",
        f"  beta0               = {config.beta0:.4g}   (arbiter exploration)",
        f"  t_max               = {config.t_max}   (annealing horizon, ~drain time)",
        f"  candidates_per_node = {config.candidates_per_node}",
        f"  motion_rule         = {config.motion_rule}",
    ]
    return "PPLBConfig:\n" + "\n".join(rows)
