"""Shared contracts between balancers and the simulation engine.

The engine drives any load balancer through a narrow protocol:

* Each synchronous round, the engine builds a :class:`BalanceContext`
  snapshot (topology, task system, link costs, current link availability,
  round index, RNG) and calls :meth:`Balancer.step`.
* The balancer returns a list of :class:`Migration` orders — *one-hop*
  task moves, matching the paper's model where a load traverses one link
  per time unit.
* The engine validates and applies them (it never silently repairs or
  drops an order: an invalid order is a balancer bug and raises
  :class:`~repro.exceptions.SimulationError`).

Fluid-mode balancers (diffusion and friends, where load is an infinitely
divisible quantity) implement :class:`FluidBalancer` instead and return a
signed per-edge *flow* vector.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.network.links import LinkAttributes
    from repro.network.topology import Topology
    from repro.sim.telemetry import Probe
    from repro.tasks.resources import ResourceMap
    from repro.tasks.task import TaskSystem
    from repro.tasks.task_graph import TaskGraph


@dataclass(frozen=True)
class Migration:
    """A single one-hop task move ordered by a balancer.

    Attributes
    ----------
    task_id:
        The task to move.
    src, dst:
        Current node and destination node; must be adjacent, and the task
        must reside on *src* when the order is applied.
    heat:
        Energy dissipated by this hop (the paper's friction heat, the
        analogy of network traffic). Balancers that do not model heat
        leave 0 and the engine falls back to ``load × e_ij``.
    """

    task_id: int
    src: int
    dst: int
    heat: float = 0.0


@dataclass
class BalanceContext:
    """Everything a balancer may look at during one round.

    Attributes
    ----------
    topology:
        The network.
    system:
        The task system (loads, placements, per-node totals).
    links:
        Link attribute arrays (BW/D/F).
    link_costs:
        Per-edge ``e_ij`` (paper §4.2), indexed by ``Topology.edge_id``.
    up_mask:
        Per-edge availability this round (False = faulted).
    round_index:
        Zero-based synchronous round counter (the arbiter's clock).
    rng:
        Seeded generator for stochastic balancers.
    task_graph:
        Dependency matrix ``T`` or None.
    resources:
        Affinity matrix ``R`` or None.
    node_speeds:
        Optional per-node processing speeds ``s_i > 0``. When present
        the balance target is capacity-proportional (``h_i ∝ s_i``) and
        speed-aware balancers should work on the *effective* surface
        ``h_i / s_i``. None means homogeneous processors.
    awake:
        Per-node wake mask for this balancing wave, or None when every
        node is participating (always None under the synchronous
        engine). The asynchronous event engine
        (:class:`repro.sim.events.EventSimulator`) refuses orders
        between two sleeping nodes (an awake src is a push, an awake
        dst a pull), so async-aware balancers can consult this mask to
        avoid planning moves that will be dropped; async-oblivious
        balancers may ignore it.
    fast:
        True when the engine requests the vectorised large-N fast path
        (the ``rounds-fast`` engine). Balancers that implement a batched
        step may take it; the contract is strict — the fast path must
        produce *exactly* the decisions (and RNG consumption) of the
        scalar path, so the flag can never change a trajectory.
        Balancers without a batched step ignore it.
    probe:
        The engine's telemetry sink (:class:`~repro.sim.telemetry.
        Probe`) or None. Balancers may emit structured counters into it
        — decisions evaluated, screen hits, RNG draws — but must gate
        every emission on ``probe.enabled`` (and must never let the
        probe change a decision or the RNG stream).
    batch:
        Optional cross-replicate precompute hints
        (:class:`~repro.core.balancer.BatchHints`) supplied by the
        replicate-batched engine (:class:`repro.sim.batch.
        BatchSimulator`). The same strict contract as ``fast`` applies:
        hints may only replace work the balancer would have computed to
        bitwise-equal values, never change a decision or the RNG
        stream. Balancers that do not understand the hints ignore them.
    """

    topology: "Topology"
    system: "TaskSystem"
    links: "LinkAttributes"
    link_costs: np.ndarray
    up_mask: np.ndarray
    round_index: int
    rng: np.random.Generator
    task_graph: Optional["TaskGraph"] = None
    resources: Optional["ResourceMap"] = None
    node_speeds: Optional[np.ndarray] = None
    awake: Optional[np.ndarray] = None
    fast: bool = False
    probe: Optional["Probe"] = None
    batch: Optional[object] = None


class Balancer(abc.ABC):
    """Task-granular load balancer (the paper's setting)."""

    #: short identifier used in benchmark tables
    name: str = "balancer"

    def reset(self, ctx: BalanceContext) -> None:
        """Called once before round 0; clear any internal state."""

    @abc.abstractmethod
    def step(self, ctx: BalanceContext) -> list[Migration]:
        """Plan this round's one-hop migrations.

        Implementations must respect ``ctx.up_mask`` (no orders over
        faulted links) and the engine's link capacity (at most
        ``capacity`` tasks per link per round; the engine's default of 1
        matches the paper's "a single load per link per time unit").
        """

    def idle(self) -> bool:
        """True when the balancer has no in-flight state left.

        The engine uses this together with "no migrations" to detect
        convergence; balancers with in-motion particles must return
        False until everything settles.
        """
        return True


class FluidBalancer(abc.ABC):
    """Divisible-load balancer operating directly on the load vector."""

    name: str = "fluid"

    def reset(self, ctx: BalanceContext) -> None:
        """Called once before round 0; clear any internal state."""

    @abc.abstractmethod
    def fluid_step(self, h: np.ndarray, ctx: BalanceContext) -> np.ndarray:
        """Return the signed per-edge flow for this round.

        ``flow[k] > 0`` moves that much load from ``edges[k, 0]`` to
        ``edges[k, 1]``; negative flows move the other way. The engine
        applies ``h[u] -= flow``, ``h[v] += flow`` and accounts traffic
        as ``Σ |flow_k| · e_k``. Implementations must not mutate *h*.
        """
