"""Command-line interface: run scenarios and print results.

Installed as ``pplb`` (see pyproject). Three subcommands:

* ``pplb run --scenario mesh-hotspot --algorithm pplb`` — one simulation,
  printed summary + convergence curve.
* ``pplb compare --scenario mesh-hotspot`` — every algorithm on the same
  scenario, printed comparison table.
* ``pplb table1`` — regenerate the paper's Table 1 from the parameter
  registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis import ascii_plot, format_table
from repro.baselines import (
    ContractingWithinNeighborhood,
    DimensionExchange,
    GradientModel,
    NoBalancer,
    RandomWorkStealing,
    SenderInitiated,
    TaskDiffusion,
)
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.interfaces import Balancer
from repro.sim import Simulator
from repro.workloads import SCENARIOS, build_scenario

ALGORITHMS: dict[str, Callable[[], Balancer]] = {
    "pplb": lambda: ParticlePlaneBalancer(PPLBConfig()),
    "pplb-greedy": lambda: ParticlePlaneBalancer(PPLBConfig(beta0=0.0)),
    "diffusion": lambda: TaskDiffusion("uniform"),
    "dimension-exchange": lambda: DimensionExchange(min_quota=0.5),
    "gradient-model": GradientModel,
    "cwn": ContractingWithinNeighborhood,
    "work-stealing": RandomWorkStealing,
    "sender-initiated": SenderInitiated,
    "none": NoBalancer,
}


def _run_one(scenario_name: str, algorithm: str, seed: int, rounds: int):
    scenario = build_scenario(scenario_name, seed=seed)
    balancer = ALGORITHMS[algorithm]()
    sim = Simulator(
        scenario.topology, scenario.system, balancer, links=scenario.links, seed=seed
    )
    return sim.run(max_rounds=rounds)


def cmd_run(args: argparse.Namespace) -> int:
    result = _run_one(args.scenario, args.algorithm, args.seed, args.rounds)
    print(format_table([result.summary_row()],
                       title=f"{args.algorithm} on {args.scenario} (seed {args.seed})"))
    print()
    print(ascii_plot({"cov": result.series("cov")},
                     title="Imbalance (CoV) vs round", logy=True, height=12))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for name in ALGORITHMS:
        if name == "none":
            continue
        result = _run_one(args.scenario, name, args.seed, args.rounds)
        rows.append(result.summary_row())
    print(format_table(
        rows,
        columns=["algorithm", "converged_round", "final_cov", "final_spread",
                 "migrations", "traffic"],
        title=f"All algorithms on {args.scenario} (seed {args.seed})",
    ))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    text = write_report(args.results_dir, args.output)
    print(text)
    if args.output:
        print(f"\n(report written to {args.output})")
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    rows = [
        {"parameter": p, "load-balancing equivalent": m, "implemented by": s}
        for p, m, s in PPLBConfig.table1_rows()
    ]
    print(format_table(rows, title="Paper Table 1 — physical parameters and their "
                                   "load-balancing equivalents"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pplb",
        description="Particle & Plane load balancing (IPPS 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario with one algorithm")
    p_run.add_argument("--scenario", choices=sorted(SCENARIOS), default="mesh-hotspot")
    p_run.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="pplb")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--rounds", type=int, default=500)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="run every algorithm on a scenario")
    p_cmp.add_argument("--scenario", choices=sorted(SCENARIOS), default="mesh-hotspot")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--rounds", type=int, default=500)
    p_cmp.set_defaults(fn=cmd_compare)

    p_t1 = sub.add_parser("table1", help="print the paper's Table 1 mapping")
    p_t1.set_defaults(fn=cmd_table1)

    p_rep = sub.add_parser(
        "report", help="aggregate benchmarks/results/ into one experiment report"
    )
    p_rep.add_argument("--results-dir", default="benchmarks/results")
    p_rep.add_argument("--output", default=None)
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
