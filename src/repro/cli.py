"""Command-line interface: run scenarios and print results.

Installed as ``pplb`` (see pyproject). Subcommands:

* ``pplb run --scenario mesh-hotspot --algorithm pplb`` — one simulation,
  printed summary + convergence curve.
* ``pplb compare --scenario mesh-hotspot`` — every algorithm on the same
  scenario through the parallel runner (``--workers``, cached), printed
  comparison table.
* ``pplb run-grid --scenarios … --algorithms … --seeds N --workers W`` —
  a (scenario × algorithm × seed) grid through the parallel runner with
  result caching (see :mod:`repro.runner`).
* ``pplb scenarios`` — the scenario catalogue: every registered name
  with its composed equivalent, plus the component registries and the
  composition grammar.
* ``pplb profile SCENARIO`` — run one scenario under the trace probe
  and print a per-phase wall-time breakdown; the Chrome trace-event
  JSON lands on disk for chrome://tracing / Perfetto.
* ``pplb tune --scenarios A B`` — search the PPLB parameter space per
  scenario family (successive halving + genetic refinement through the
  cached runner; see :mod:`repro.tuning`) and save the winners into the
  tuned-config registry (``--registry``, default ``tuned-configs.json``).
  Fully seeded: repeating an identical invocation replays every
  evaluation from the result cache and writes an identical registry.
* ``pplb leaderboard`` — tuned PPLB vs paper-default PPLB vs the
  baselines across a scenario × engine matrix; ``--scenarios all``
  sweeps every registered scenario, ``--output`` writes the
  deterministic JSON payload.
* ``pplb cache stats|clear|reindex`` — inspect, empty, or rebuild the
  metadata index of the on-disk result cache.
* ``pplb table1`` — regenerate the paper's Table 1 from the parameter
  registry.
* ``pplb report`` — stitch ``benchmarks/results/`` artifacts into one
  experiment report.

**Scenarios.** Anywhere a scenario is accepted — ``--scenario`` /
``--scenarios`` — both registered names (``pplb scenarios`` lists them)
and composed component strings work::

    pplb run --scenario "mesh:16x16+hotspot+stragglers:frac=0.1+diurnal"

See :mod:`repro.workloads.composition` for the grammar; strings are
validated at parse time (unknown components or parameters fail before
anything runs).

``run``, ``compare`` and ``run-grid`` all accept ``--engine
{rounds,rounds-fast,rounds-batch,events,events-fast,fluid}``:
``rounds`` is the
paper's synchronous protocol, ``rounds-fast`` the same protocol through
the vectorised large-N fast path (:class:`repro.sim.FastSimulator` —
identical records, so prefer it for big meshes), ``rounds-batch`` an
alias for ``rounds-fast`` that additionally asks the runner to group
seed replicates into one :class:`repro.sim.BatchSimulator` run
(bit-identical per seed, shared cache keys; ``run-grid``/``tune``/
``leaderboard`` also take an explicit ``--batch-replicates N``),
``events`` the
discrete-event asynchronous engine (:class:`repro.sim.EventSimulator`),
``events-fast`` the same asynchronous protocol through batched wake
waves and columnar event buffers
(:class:`repro.sim.EventFastSimulator` — identical records)
and ``fluid`` the divisible-load engine
(:class:`repro.sim.FluidSimulator`) over the scenario's initial
per-node loads — it requires one of the fluid algorithms
(``fluid-diffusion``, ``fluid-dimension-exchange``, ``fluid-sos``).
They also accept ``--recorder {full,thin:<k>,summary}`` — the recording
policy (see :mod:`repro.sim.recording`): ``full`` keeps every round,
``thin:<k>`` every k-th round plus the last with exact totals,
``summary`` streams O(1) running aggregates for very long runs — and
``--probe {null,counters,trace[:PATH]}`` — the telemetry probe (see
:mod:`repro.sim.telemetry`): ``null`` is off (the default, zero
overhead), ``counters`` aggregates per-phase wall times and structured
decision counters onto the result, ``trace`` additionally writes a
Chrome trace-event JSON per run. Probes observe, never steer: results
are bit-identical under every probe.

``compare``, ``run-grid``, ``tune`` and ``leaderboard`` additionally
accept ``--backend {serial,pool}``: where execution happens. The
default follows ``--workers`` (serial at width 1, the persistent
chunked worker pool otherwise); backends are shared per process, so
consecutive grids in one invocation reuse warm workers. The
``PPLB_WORKERS`` environment variable pins the resolved worker count
everywhere.

Global flags (before the subcommand): ``-v``/``-vv`` raise log
verbosity to INFO/DEBUG, ``--log-level LEVEL`` sets it exactly.
Warnings — e.g. the fast engines falling back to the scalar decision
path under ``friction_jitter != 0`` — are always on.

Algorithm names come from :mod:`repro.runner.registry`, the registry
shared with the runner, so ``--algorithm`` choices and runner specs can
never disagree.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.analysis import ascii_plot, format_table
from repro.core import PPLBConfig
from repro.exceptions import ReproError
from repro.runner import (
    BACKENDS,
    ENGINES,
    FACTORIES,
    FLUID_FACTORIES,
    ResultCache,
    RunnerMetrics,
    RunSpec,
    execute_spec,
    expand_grid,
    grid_seeds,
    run_grid,
)
from repro.sim.telemetry import DEFAULT_TRACE_PATH, probe_tag
from repro.tuning import (
    DEFAULT_BASELINES,
    DEFAULT_REGISTRY_PATH,
    TUNABLE_ENGINES,
    TuneBudget,
    TunedConfig,
    TunedConfigRegistry,
    build_leaderboard,
    leaderboard_rows,
    summary_rows,
    tune_scenario,
)

#: the CLI's historical name for the balancer registry (every factory
#: works as a zero-argument constructor with registry defaults).
ALGORITHMS = FACTORIES


def _scenario_arg(value: str) -> str:
    """Argparse type for scenario arguments: any registered name or
    composed component string; fails at parse time with the library's
    own diagnostics."""
    from repro.workloads import canonical_scenario_name

    try:
        canonical_scenario_name(value)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _probe_arg(value: str) -> str:
    """Argparse type for ``--probe``: canonicalises via the telemetry
    registry so unknown probe names fail at parse time."""
    try:
        return probe_tag(value)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def configure_logging(log_level: str | None = None, verbosity: int = 0) -> None:
    """Shared logging setup for every ``pplb`` entry point.

    ``log_level`` (an explicit name like ``"debug"``) wins over
    ``verbosity`` (the counted ``-v`` flags: 0 → WARNING, 1 → INFO,
    2+ → DEBUG). The floor is WARNING so diagnostics like the fast
    engines' scalar-fallback warning are visible by default.
    """
    if log_level is not None:
        level = getattr(logging, log_level.upper())
    elif verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, format="%(levelname)s %(name)s: %(message)s", force=True
    )


def _phase_rows(telemetry: dict) -> list[dict[str, object]]:
    """Per-phase breakdown rows (calls, total ms, mean µs, share %)."""
    phases: dict = telemetry.get("phases") or {}
    grand_total = sum(p["total_s"] for p in phases.values()) or 1.0
    rows = []
    for name, p in sorted(
        phases.items(), key=lambda kv: kv[1]["total_s"], reverse=True
    ):
        calls = int(p["calls"])
        total_s = float(p["total_s"])
        rows.append({
            "phase": name,
            "calls": calls,
            "total_ms": round(total_s * 1e3, 3),
            "mean_us": round(total_s / calls * 1e6, 2) if calls else 0.0,
            "share_%": round(100.0 * total_s / grand_total, 1),
        })
    return rows


def _print_telemetry(telemetry: dict | None) -> None:
    """Render a result's telemetry block (phases, counters, trace)."""
    if not telemetry:
        return
    rows = _phase_rows(telemetry)
    if rows:
        print()
        print(format_table(
            rows,
            columns=["phase", "calls", "total_ms", "mean_us", "share_%"],
            title=f"per-phase wall time ({telemetry.get('probe', '?')} probe)",
        ))
    counters: dict = telemetry.get("counters") or {}
    if counters:
        print()
        print(format_table(
            [{"counter": k, "count": counters[k]} for k in sorted(counters)],
            columns=["counter", "count"],
            title="telemetry counters",
        ))
    trace_path = telemetry.get("trace_path")
    if trace_path:
        print(f"\ntrace written to {trace_path} "
              "(load in chrome://tracing or https://ui.perfetto.dev)")


def _run_one(scenario_name: str, algorithm: str, seed: int, rounds: int,
             engine: str = "rounds", recorder: str = "full",
             probe: str = "null"):
    spec = RunSpec(
        scenario=scenario_name, algorithm=algorithm, seed=seed,
        max_rounds=rounds, engine=engine, recorder=recorder, probe=probe,
    )
    return execute_spec(spec)


def _cache_from(args: argparse.Namespace) -> ResultCache | None:
    return None if args.no_cache else ResultCache(args.cache_dir)


def cmd_run(args: argparse.Namespace) -> int:
    result = _run_one(args.scenario, args.algorithm, args.seed, args.rounds,
                      engine=args.engine, recorder=args.recorder,
                      probe=args.probe)
    print(format_table(
        [result.summary_row()],
        title=f"{args.algorithm} on {args.scenario} "
              f"(seed {args.seed}, {args.engine} engine)",
    ))
    print()
    cov = result.series("cov")
    if cov.shape[0]:
        print(ascii_plot({"cov": cov},
                         title="Imbalance (CoV) vs round", logy=True, height=12))
    else:
        # The summary recorder keeps no per-round history — totals
        # only. (Use --recorder full or thin:<k> for a curve.)
        print("(no per-round history recorded — summary recorder)")
    _print_telemetry(result.telemetry)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    # The algorithm family follows the engine: task balancers on the
    # task engines, the divisible-load field under --engine fluid.
    names = FLUID_FACTORIES if args.engine == "fluid" else ALGORITHMS
    specs = [
        RunSpec(scenario=args.scenario, algorithm=name, seed=args.seed,
                max_rounds=args.rounds, engine=args.engine,
                recorder=args.recorder, probe=args.probe)
        for name in names
        if name != "none"
    ]
    outcomes = run_grid(specs, workers=args.workers, cache=_cache_from(args),
                        backend=args.backend)
    rows = [o.row() for o in outcomes]
    print(format_table(
        rows,
        columns=["algorithm", "converged_round", "final_cov", "final_spread",
                 "migrations", "traffic", "cached"],
        title=f"All algorithms on {args.scenario} "
              f"(seed {args.seed}, {args.engine} engine)",
    ))
    hits = sum(1 for o in outcomes if o.cached)
    print(f"\n{len(specs)} runs: {len(specs) - hits} executed, {hits} from cache")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    text = write_report(args.results_dir, args.output)
    print(text)
    if args.output:
        print(f"\n(report written to {args.output})")
    return 0


def cmd_run_grid(args: argparse.Namespace) -> int:
    specs = expand_grid(
        args.scenarios,
        args.algorithms,
        grid_seeds(args.seeds, base_seed=args.base_seed),
        max_rounds=args.rounds,
        engine=args.engine,
        recorder=args.recorder,
        probe=args.probe,
        # Explicit: the progress lines and the table below print specs
        # in list order, so replicates of one cell stay adjacent (and
        # replicate batching groups them without reordering anything).
        order="scenario-major",
    )
    cache = _cache_from(args)
    metrics = RunnerMetrics()

    def progress(outcome, done, total):
        res = outcome.result
        source = "cache" if outcome.cached else f"{res.wall_time_s:.2f}s"
        print(
            f"[{done}/{total}] {outcome.spec.label()}: "
            f"converged_round={res.converged_round} "
            f"final_cov={res.final_cov:.4f} ({source})"
        )

    started = time.perf_counter()
    outcomes = run_grid(specs, workers=args.workers, cache=cache,
                        progress=progress, metrics=metrics,
                        backend=args.backend,
                        batch_replicates=args.batch_replicates)
    elapsed = time.perf_counter() - started

    rows = [o.row() for o in outcomes]
    print()
    print(format_table(
        rows,
        columns=["scenario", "algorithm", "seed", "converged_round",
                 "final_cov", "final_spread", "migrations", "traffic", "cached"],
        title=f"run-grid — {len(specs)} specs, {args.workers} worker(s)",
    ))
    hits = sum(1 for o in outcomes if o.cached)
    print(
        f"\n{len(specs)} specs: {len(specs) - hits} executed, {hits} from cache"
        + ("" if cache is None else f" ({cache.root})")
        + f"; wall {elapsed:.2f}s"
    )
    if metrics.cache_misses:
        print(
            f"runner: {metrics.backend} backend, {metrics.workers} worker(s) "
            f"({metrics.workers_spawned} spawned), "
            f"task time {metrics.task_s:.2f}s, "
            f"utilization {metrics.utilization():.0%}, "
            f"mean queue wait {metrics.mean_queue_wait_s():.2f}s"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.batch_replicates > 1:
        # Replicate-batched profile: S seed replicates through one
        # BatchSimulator run under the counters probe (the per-lane
        # Chrome trace has no joint-loop equivalent), then the first
        # lane's telemetry — including the batch.* counters — printed.
        if args.engine not in ("rounds-fast", "rounds-batch"):
            print(
                "error: --batch-replicates profiles the rounds-fast "
                f"engine only, got {args.engine!r}",
                file=sys.stderr,
            )
            return 2
        from repro.runner.worker import execute_batch

        specs = [
            RunSpec(
                scenario=args.scenario, algorithm=args.algorithm,
                seed=args.seed + lane, max_rounds=args.rounds,
                engine="rounds-fast", probe="counters",
            )
            for lane in range(args.batch_replicates)
        ]
        started = time.perf_counter()
        results = execute_batch(specs)
        elapsed = time.perf_counter() - started
        result = results[0]
        print(format_table(
            [result.summary_row()],
            title=f"profile — {args.algorithm} on {args.scenario} "
                  f"(seeds {args.seed}..{args.seed + args.batch_replicates - 1} "
                  f"batched, rounds-fast engine, {elapsed * 1e3:.1f} ms wall; "
                  f"first replicate shown)",
        ))
        _print_telemetry(result.telemetry)
        return 0
    spec = RunSpec(
        scenario=args.scenario, algorithm=args.algorithm, seed=args.seed,
        max_rounds=args.rounds, engine=args.engine,
        probe=f"trace:{args.trace_out}",
    )
    started = time.perf_counter()
    result = execute_spec(spec)
    elapsed = time.perf_counter() - started
    print(format_table(
        [result.summary_row()],
        title=f"profile — {args.algorithm} on {args.scenario} "
              f"(seed {args.seed}, {args.engine} engine, "
              f"{elapsed * 1e3:.1f} ms wall)",
    ))
    _print_telemetry(result.telemetry)
    return 0


def _overrides_str(overrides: dict) -> str:
    """Compact ``k=v`` rendering of a tuned override dict."""
    if not overrides:
        return "(paper defaults)"
    return " ".join(f"{k}={overrides[k]}" for k in sorted(overrides))


def cmd_tune(args: argparse.Namespace) -> int:
    budget = TuneBudget(
        n_initial=args.initial,
        eta=args.eta,
        base_rounds=args.base_rounds,
        full_rounds=args.full_rounds,
        eval_seeds=args.eval_seeds,
        engine=args.engine,
        recorder=args.recorder,
        ga_generations=args.ga_generations,
        ga_population=args.ga_population,
    )
    cache = _cache_from(args)
    registry = TunedConfigRegistry.load(args.registry)

    rows = []
    total_specs = total_hits = total_evals = 0
    for scenario in args.scenarios:
        report = tune_scenario(
            scenario,
            algorithm=args.algorithm,
            seed=args.seed,
            budget=budget,
            workers=args.workers,
            cache=cache,
            backend=args.backend,
            batch_replicates=args.batch_replicates,
        )
        registry.put(report.scenario, TunedConfig(
            algorithm=report.algorithm,
            overrides=report.winner,
            score=report.score,
            default_score=report.default_score,
            n_evals=report.n_evals,
            seed=report.seed,
            budget=budget.to_dict(),
        ))
        total_specs += report.n_specs
        total_hits += report.cache_hits
        total_evals += report.n_evals
        rows.append({
            "scenario": report.scenario,
            "winner": _overrides_str(report.winner),
            "score": round(report.score, 6),
            "default": round(report.default_score, 6),
            "gain_%": round(100.0 * report.improvement(), 2),
            "evals": report.n_evals,
        })

    print(format_table(
        rows,
        columns=["scenario", "winner", "score", "default", "gain_%", "evals"],
        title=f"tune — {args.algorithm}, {budget.engine} engine, "
              f"rounds {budget.base_rounds}→{budget.full_rounds}, "
              f"seed {args.seed}",
    ))
    executed = total_specs - total_hits
    print(
        f"\n{total_evals} evals, {total_specs} specs: "
        f"{executed} executed, {total_hits} from cache"
        + ("" if cache is None else f" ({cache.root})")
    )
    registry.save(args.registry)
    print(f"registry written to {args.registry} "
          f"({len(registry)} tuned scenario(s))")
    return 0


def cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.workloads import SCENARIOS

    scenarios = list(args.scenarios)
    if scenarios == ["all"]:
        scenarios = sorted(SCENARIOS)
    registry = TunedConfigRegistry.load(args.registry)
    if len(registry) == 0:
        print(f"note: no tuned configs at {args.registry} — "
              "pplb-tuned runs the paper defaults (see `pplb tune`)")
    metrics = RunnerMetrics()
    payload = build_leaderboard(
        scenarios,
        engines=args.engines,
        registry=registry,
        baselines=tuple(args.baselines),
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        max_rounds=args.rounds,
        recorder=args.recorder,
        workers=args.workers,
        cache=_cache_from(args),
        metrics=metrics,
        backend=args.backend,
        batch_replicates=args.batch_replicates,
    )
    print(format_table(
        leaderboard_rows(payload),
        columns=["scenario", "engine", "rank", "algorithm", "final_cov",
                 "rounds", "migrations", "traffic"],
        title=f"leaderboard — {len(scenarios)} scenario(s) × "
              f"{len(args.engines)} engine(s), {args.seeds} seed(s), "
              f"{args.rounds} rounds",
    ))
    print()
    print(format_table(
        summary_rows(payload),
        columns=["algorithm", "wins", "mean_rank"],
        title="wins per algorithm (rank 1 = lowest mean final CoV in a cell)",
    ))
    improved = sum(1 for r in payload["tuned_vs_default"] if r["improvement"] > 0)
    print(f"\ntuned vs default: better objective on {improved}/"
          f"{len(payload['tuned_vs_default'])} cells")
    print(f"{metrics.total} specs: {metrics.cache_misses} executed, "
          f"{metrics.cache_hits} from cache")
    if args.output:
        import json as _json

        with open(args.output, "w") as handle:
            _json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"leaderboard JSON written to {args.output}")
    return 0


def _human_bytes(n: int) -> str:
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        engine = getattr(args, "engine", None)
        if engine is not None and engine not in ENGINES:
            # Plain argparse choices would also catch this, but the
            # filter deliberately shares the runner's diagnostic so an
            # unknown name fails identically everywhere (pinned by
            # tests/test_cli.py).
            print(
                f"error: unknown engine {engine!r}; available: {sorted(ENGINES)}",
                file=sys.stderr,
            )
            return 2
        stats = cache.stats()
        print(f"cache root : {stats['root']}")
        if not stats["exists"]:
            print("(cache directory does not exist yet — nothing cached)")
            return 0
        by_engine: dict = stats["by_engine"]
        if engine is not None:
            print(f"entries    : {by_engine.get(engine, 0)} ({engine})")
            return 0
        print(f"entries    : {stats['entries']}")
        print(f"disk usage : {_human_bytes(int(stats['total_bytes']))}")
        print(f"mean entry : {_human_bytes(int(stats['mean_bytes']))}")
        print(f"indexed    : {stats['indexed']}/{stats['entries']}"
              + ("" if stats["indexed"] >= stats["entries"]
                 else " (run `pplb cache reindex` for fast stats)"))
        for name in sorted(by_engine):
            print(f"  {name:<11}: {by_engine[name]}")
        return 0
    if args.cache_command == "reindex":
        count = cache.rebuild_index()
        print(f"indexed {count} cached result(s) at {cache.index_path}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def cmd_scenarios(_args: argparse.Namespace) -> int:
    from repro.workloads.composition import describe_aliases, describe_components

    print(format_table(
        describe_aliases(),
        columns=["scenario", "composition", "what"],
        title="Registered scenarios (aliases over composed specs)",
    ))
    print()
    print("Composition grammar: topology[+placement][+links][+heterogeneity]"
          "[+dynamics]")
    print("  component := name | name:k=v[,k=v...] | name:16x16 "
          "(topology shorthand)")
    print("  example   : mesh:16x16+hotspot+stragglers:frac=0.1+diurnal")
    print("  defaults  : placement=hotspot, links=unit; kinds are "
          "inferred from component names")
    for kind, rows in describe_components().items():
        print()
        print(format_table(
            rows,
            columns=["component", "parameters", "what"],
            title=f"{kind} components",
        ))
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    rows = [
        {"parameter": p, "load-balancing equivalent": m, "implemented by": s}
        for p, m, s in PPLBConfig.table1_rows()
    ]
    print(format_table(rows, title="Paper Table 1 — physical parameters and their "
                                   "load-balancing equivalents"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pplb",
        description="Particle & Plane load balancing (IPPS 2006 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity (-v = INFO, -vv = DEBUG); "
             "warnings are always shown",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="set the exact log level (overrides -v)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", choices=sorted(ENGINES), default="rounds",
                       help="execution model: synchronous rounds, the "
                            "vectorized rounds-fast path (identical results, "
                            "built for large N), rounds-batch (rounds-fast "
                            "plus runner-level seed-replicate batching — "
                            "bit-identical per seed), the asynchronous "
                            "discrete-event engine, its batched events-fast "
                            "twin (identical records), or the divisible-load "
                            "fluid engine (fluid-* algorithms only)")
        p.add_argument("--recorder", default="full", metavar="POLICY",
                       help="recording policy: 'full' (every round), "
                            "'thin:<k>' (every k-th round + last, exact "
                            "totals), or 'summary' (O(1) running aggregates "
                            "for very long runs)")
        p.add_argument("--probe", type=_probe_arg, default="null",
                       metavar="PROBE",
                       help="telemetry probe: 'null' (off, the default — "
                            "zero overhead), 'counters' (per-phase wall "
                            "times + structured counters on the result), or "
                            "'trace[:PATH]' (Chrome trace-event JSON, "
                            "default path pplb-trace.json); results are "
                            "bit-identical under every probe")

    def add_cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=".pplb-cache",
                       help="result cache directory (re-runs are free)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                       help="execution backend: 'serial' (in-process "
                            "reference loop) or 'pool' (persistent chunked "
                            "worker pool, reused across grids); default "
                            "follows --workers")

    def add_batch_replicates(p: argparse.ArgumentParser) -> None:
        p.add_argument("--batch-replicates", type=int, default=None,
                       metavar="N",
                       help="group up to N seed replicates of one "
                            "(scenario, algorithm) cell into a single "
                            "replicate-batched rounds-fast simulation "
                            "(bit-identical per seed; other engines run "
                            "solo); default: off")

    all_algorithms = sorted(ALGORITHMS) + sorted(FLUID_FACTORIES)

    p_run = sub.add_parser("run", help="run one scenario with one algorithm")
    p_run.add_argument("--scenario", type=_scenario_arg, default="mesh-hotspot",
                       metavar="SCENARIO",
                       help="registered name (see `pplb scenarios`) or "
                            "composed string, e.g. "
                            "'mesh:16x16+hotspot+stragglers:frac=0.1'")
    p_run.add_argument("--algorithm", choices=all_algorithms, default="pplb")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--rounds", type=int, default=500)
    add_engine(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser(
        "compare",
        help="run every algorithm on a scenario (through the parallel "
             "runner, so --workers and the result cache apply)",
    )
    p_cmp.add_argument("--scenario", type=_scenario_arg, default="mesh-hotspot",
                       metavar="SCENARIO",
                       help="registered name or composed string")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--rounds", type=int, default=500)
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial, 0 = one per core)")
    add_engine(p_cmp)
    add_cache_args(p_cmp)
    add_backend(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_grid = sub.add_parser(
        "run-grid",
        help="run a (scenario × algorithm × seed) grid in parallel with "
             "result caching",
    )
    p_grid.add_argument("--scenarios", nargs="+", type=_scenario_arg,
                        default=["mesh-hotspot"], metavar="SCENARIO",
                        help="registered names and/or composed strings")
    p_grid.add_argument("--algorithms", nargs="+", choices=all_algorithms,
                        default=["pplb"], metavar="ALGO")
    p_grid.add_argument("--seeds", type=int, default=4,
                        help="repetitions per (scenario, algorithm) cell")
    p_grid.add_argument("--base-seed", type=int, default=0,
                        help="base for deterministic per-spec seed derivation")
    p_grid.add_argument("--rounds", type=int, default=500)
    p_grid.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial, 0 = one per core)")
    add_engine(p_grid)
    add_cache_args(p_grid)
    add_backend(p_grid)
    add_batch_replicates(p_grid)
    p_grid.set_defaults(fn=cmd_run_grid)

    p_prof = sub.add_parser(
        "profile",
        help="run one scenario under the trace probe and print the "
             "per-phase wall-time breakdown (Chrome trace JSON on disk)",
    )
    p_prof.add_argument("scenario", type=_scenario_arg, metavar="SCENARIO",
                        help="registered name or composed string, e.g. "
                             "'mesh:16x16+hotspot'")
    p_prof.add_argument("--algorithm", choices=all_algorithms, default="pplb")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--rounds", type=int, default=500)
    p_prof.add_argument("--engine", choices=sorted(ENGINES), default="rounds",
                        help="execution model to profile")
    p_prof.add_argument("--trace-out", default=DEFAULT_TRACE_PATH,
                        metavar="PATH",
                        help="where to write the Chrome trace-event JSON "
                             "(chrome://tracing / https://ui.perfetto.dev)")
    p_prof.add_argument("--batch-replicates", type=int, default=1,
                        metavar="N",
                        help="profile N seed replicates (seeds SEED..SEED+N-1) "
                             "as one replicate-batched rounds-fast run under "
                             "the counters probe; prints the batch.* "
                             "counters (rounds-fast engine only)")
    p_prof.set_defaults(fn=cmd_profile)

    def scenario_or_all(value: str) -> str:
        return value if value == "all" else _scenario_arg(value)

    p_tune = sub.add_parser(
        "tune",
        help="search the PPLB parameter space per scenario family "
             "(successive halving + genetic refinement, cached) and "
             "save the winners into the tuned-config registry",
    )
    p_tune.add_argument("--scenarios", nargs="+", type=_scenario_arg,
                        default=["mesh-hotspot", "torus-hotspot"],
                        metavar="SCENARIO",
                        help="scenario families to tune (registered names "
                             "and/or composed strings)")
    p_tune.add_argument("--algorithm", choices=["pplb", "pplb-greedy"],
                        default="pplb",
                        help="which PPLBConfig-driven balancer to tune")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="master tuning seed (candidates, GA and "
                             "evaluation seeds all derive from it)")
    p_tune.add_argument("--initial", type=int, default=8,
                        help="candidate pool size entering successive "
                             "halving (the paper default always rides "
                             "as candidate 0)")
    p_tune.add_argument("--eta", type=int, default=2,
                        help="halving rate: keep top 1/eta per rung, "
                             "multiply the round budget by eta")
    p_tune.add_argument("--base-rounds", type=int, default=50,
                        help="round budget of the cheapest rung")
    p_tune.add_argument("--full-rounds", type=int, default=200,
                        help="round budget survivors are promoted to")
    p_tune.add_argument("--eval-seeds", type=int, default=2,
                        help="repetitions per candidate evaluation")
    p_tune.add_argument("--ga-generations", type=int, default=4,
                        help="steady-state genetic refinement steps after "
                             "halving (0 disables)")
    p_tune.add_argument("--ga-population", type=int, default=4,
                        help="population size seeding the genetic search")
    p_tune.add_argument("--engine", choices=sorted(TUNABLE_ENGINES),
                        default="rounds-fast",
                        help="engine candidate evaluations run on")
    p_tune.add_argument("--recorder", default="summary", metavar="POLICY",
                        help="recording policy for evaluations (summary "
                             "is cheapest and sufficient for the objective)")
    p_tune.add_argument("--workers", type=int, default=1,
                        help="worker processes per evaluation batch "
                             "(1 = serial, 0 = one per core)")
    p_tune.add_argument("--registry", default=DEFAULT_REGISTRY_PATH,
                        metavar="PATH",
                        help="tuned-config registry JSON to merge winners "
                             "into (created if missing)")
    add_cache_args(p_tune)
    add_backend(p_tune)
    add_batch_replicates(p_tune)
    p_tune.set_defaults(fn=cmd_tune)

    p_board = sub.add_parser(
        "leaderboard",
        help="tuned PPLB vs paper-default PPLB vs the baselines across "
             "a scenario × engine matrix (cached, deterministic JSON)",
    )
    p_board.add_argument("--scenarios", nargs="+", type=scenario_or_all,
                         default=["mesh-hotspot", "torus-hotspot"],
                         metavar="SCENARIO",
                         help="scenarios to rank on, or 'all' for every "
                              "registered scenario")
    p_board.add_argument("--engines", nargs="+",
                         choices=sorted(TUNABLE_ENGINES),
                         default=["rounds-fast"],
                         help="task engines forming the matrix columns")
    p_board.add_argument("--baselines", nargs="+",
                         choices=sorted(ALGORITHMS),
                         default=list(DEFAULT_BASELINES),
                         help="baseline algorithms ranked alongside "
                              "tuned and default PPLB")
    p_board.add_argument("--seeds", type=int, default=2,
                         help="repetitions per (scenario, engine, algorithm)")
    p_board.add_argument("--base-seed", type=int, default=0)
    p_board.add_argument("--rounds", type=int, default=200)
    p_board.add_argument("--recorder", default="summary", metavar="POLICY",
                         help="recording policy for leaderboard runs")
    p_board.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial, 0 = one per core)")
    p_board.add_argument("--registry", default=DEFAULT_REGISTRY_PATH,
                         metavar="PATH",
                         help="tuned-config registry JSON to read "
                              "(missing = paper defaults for pplb-tuned)")
    p_board.add_argument("--output", default=None, metavar="PATH",
                         help="write the deterministic leaderboard JSON here")
    add_cache_args(p_board)
    add_backend(p_board)
    add_batch_replicates(p_board)
    p_board.set_defaults(fn=cmd_leaderboard)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk result cache, or rebuild "
             "its metadata index",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, blurb in (("stats", "entry count and disk usage"),
                        ("clear", "delete every cached result"),
                        ("reindex", "rebuild the metadata index "
                                    "(index.jsonl) from the entries")):
        p_cache_cmd = cache_sub.add_parser(name, help=blurb)
        p_cache_cmd.add_argument("--cache-dir", default=".pplb-cache",
                                 help="result cache directory")
        if name == "stats":
            # Deliberately not argparse `choices`: the filter validates
            # against the runner's engine roster at run time so the
            # diagnostic matches the runner's own (and stays in sync
            # as engines are added).
            p_cache_cmd.add_argument(
                "--engine", default=None, metavar="ENGINE",
                help="only count entries produced by this engine "
                     f"({', '.join(sorted(ENGINES))})")
        p_cache_cmd.set_defaults(fn=cmd_cache)

    p_sc = sub.add_parser(
        "scenarios",
        help="list registered scenarios, the component registries and "
             "the composition grammar",
    )
    p_sc.set_defaults(fn=cmd_scenarios)

    p_t1 = sub.add_parser("table1", help="print the paper's Table 1 mapping")
    p_t1.set_defaults(fn=cmd_table1)

    p_rep = sub.add_parser(
        "report", help="aggregate benchmarks/results/ into one experiment report"
    )
    p_rep.add_argument("--results-dir", default="benchmarks/results")
    p_rep.add_argument("--output", default=None)
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(log_level=args.log_level, verbosity=args.verbose)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
