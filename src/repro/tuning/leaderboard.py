"""The leaderboard: tuned PPLB vs paper-default PPLB vs the baselines,
as one deterministic, cacheable grid.

:func:`build_leaderboard` expands a (scenario × engine × algorithm ×
seed) grid — the tuned entrant reads its overrides from a
:class:`~repro.tuning.registry.TunedConfigRegistry`, everything else
runs registry defaults — executes it through the cached parallel
runner, and aggregates per (scenario, engine) cell: mean final CoV,
mean rounds-used, migrations, traffic, and a rank per cell (1 = best
CoV). The payload is pure plain data with **no wall times and no
environment fields**, so two identical invocations produce
byte-identical JSON — the determinism the ``tune-smoke`` CI job pins —
and a repeated invocation is served entirely from the result cache.
"""

from __future__ import annotations

from os import PathLike
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.runner import ResultCache, RunnerMetrics, RunSpec, grid_seeds, run_grid
from repro.tuning.optimizer import TUNABLE_ENGINES, score_result
from repro.tuning.registry import TunedConfigRegistry

#: the standard non-PPLB entrants (the three baseline families the
#: paper positions itself against: local averaging, dimension order,
#: and randomized pulling).
DEFAULT_BASELINES = ("diffusion", "dimension-exchange", "work-stealing")

#: display name of the registry-configured entrant.
TUNED_NAME = "pplb-tuned"


def build_leaderboard(
    scenarios: Sequence[str],
    engines: Sequence[str] = ("rounds-fast",),
    registry: TunedConfigRegistry | None = None,
    baselines: Sequence[str] = DEFAULT_BASELINES,
    n_seeds: int = 2,
    base_seed: int = 0,
    max_rounds: int = 200,
    recorder: str = "summary",
    workers: int = 1,
    cache: ResultCache | str | PathLike | None = None,
    metrics: RunnerMetrics | None = None,
    backend=None,
    batch_replicates: int | None = None,
) -> dict:
    """Run the comparison matrix and return the leaderboard payload.

    Returns a JSON-ready dict::

        {"format": 1, "max_rounds": …, "seeds": …,
         "scenarios": […], "engines": […], "algorithms": […],
         "rows": [{scenario, engine, algorithm, tuned, overrides,
                   mean_final_cov, mean_score, mean_rounds_used,
                   mean_migrations, mean_traffic, converged, rank}, …],
         "summary": {algorithm: {"wins": …, "mean_rank": …}},
         "tuned_vs_default": [{scenario, engine, tuned_cov, default_cov,
                               improvement}, …]}

    Execution-side numbers (cache split, wall time) deliberately stay
    *out* of the payload — pass a :class:`~repro.runner.RunnerMetrics`
    as ``metrics`` to observe them — so identical invocations emit
    byte-identical JSON whether or not the cache was warm.

    Rows are sorted (scenario, engine, rank); ranks order by mean final
    CoV, then mean objective score, then the entrant roster order
    (tuned, default, baselines) as the deterministic tie-break — so on
    an untuned family, where tuned and default PPLB are the *same
    spec*, the exact tie resolves in roster order rather than
    penalising the tuned entrant alphabetically.
    """
    if not scenarios:
        raise ConfigurationError("leaderboard needs at least one scenario")
    for engine in engines:
        if engine not in TUNABLE_ENGINES:
            raise ConfigurationError(
                f"leaderboard engine {engine!r} must be a task engine; "
                f"available: {sorted(TUNABLE_ENGINES)}"
            )
    registry = registry if registry is not None else TunedConfigRegistry()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    entrants: list[tuple[str, str, dict]] = [
        # (display name, registry algorithm, overrides)
        (TUNED_NAME, "pplb", {}),  # overrides filled per scenario below
        ("pplb", "pplb", {}),
        *[(name, name, {}) for name in baselines],
    ]
    seeds = grid_seeds(n_seeds, base_seed=base_seed)

    specs: list[RunSpec] = []
    coords: list[tuple[str, str, str, dict]] = []
    for scenario in scenarios:
        tuned_entry = registry.get(scenario)
        for engine in engines:
            for display, algorithm, _ in entrants:
                if display == TUNED_NAME:
                    algorithm = (tuned_entry.algorithm if tuned_entry is not None
                                 else "pplb")
                    overrides = registry.overrides_for(scenario)
                else:
                    overrides = {}
                for seed in seeds:
                    spec = RunSpec(
                        scenario=scenario,
                        algorithm=algorithm,
                        seed=seed,
                        max_rounds=max_rounds,
                        algorithm_kwargs=dict(overrides),
                        engine=engine,
                        recorder=recorder,
                    )
                    specs.append(spec)
                    coords.append((spec.scenario, engine, display, overrides))

    # batch_replicates groups each entrant's seed axis into one
    # replicate-batched simulation (rounds-fast cells only; other
    # engines run solo). Bit-identical per seed, so every row, rank and
    # the full payload are byte-identical to the unbatched build.
    outcomes = run_grid(specs, workers=workers, cache=cache, metrics=metrics,
                        backend=backend, batch_replicates=batch_replicates)

    # ------------------------- aggregation -------------------------- #
    cells: dict[tuple[str, str, str], dict] = {}
    for (scenario, engine, display, overrides), outcome in zip(coords, outcomes):
        agg = cells.setdefault((scenario, engine, display), {
            "overrides": overrides, "cov": [], "score": [], "rounds": [],
            "migrations": [], "traffic": [], "converged": 0,
        })
        res = outcome.result
        agg["cov"].append(float(res.final_cov))
        agg["score"].append(score_result(res, max_rounds))
        agg["rounds"].append(
            res.converged_round if res.converged_round is not None else max_rounds
        )
        agg["migrations"].append(res.total_migrations)
        agg["traffic"].append(res.total_traffic)
        agg["converged"] += int(res.converged_round is not None)

    def mean(values: list) -> float:
        return round(sum(values) / len(values), 6)

    rows: list[dict] = []
    # Canonical spellings from the executed specs, original order kept.
    seen_scenarios = list(dict.fromkeys(s for s, _, _, _ in coords))
    for scenario in seen_scenarios:
        for engine in engines:
            cell_rows = []
            for order, (display, _, _) in enumerate(entrants):
                agg = cells[(scenario, engine, display)]
                cell_rows.append({
                    "_order": order,
                    "scenario": scenario,
                    "engine": engine,
                    "algorithm": display,
                    "tuned": display == TUNED_NAME,
                    "overrides": dict(agg["overrides"]),
                    "mean_final_cov": mean(agg["cov"]),
                    "mean_score": mean(agg["score"]),
                    "mean_rounds_used": mean(agg["rounds"]),
                    "mean_migrations": mean(agg["migrations"]),
                    "mean_traffic": mean(agg["traffic"]),
                    "converged": agg["converged"],
                })
            cell_rows.sort(
                key=lambda r: (r["mean_final_cov"], r["mean_score"], r["_order"])
            )
            for rank, row in enumerate(cell_rows, start=1):
                row["rank"] = rank
                del row["_order"]
            rows.extend(cell_rows)

    names = [display for display, _, _ in entrants]
    summary = {
        name: {
            "wins": sum(1 for r in rows if r["algorithm"] == name and r["rank"] == 1),
            "mean_rank": mean([r["rank"] for r in rows if r["algorithm"] == name]),
        }
        for name in names
    }

    tuned_vs_default = []
    by_key = {(r["scenario"], r["engine"], r["algorithm"]): r for r in rows}
    for scenario in seen_scenarios:
        for engine in engines:
            tuned = by_key[(scenario, engine, TUNED_NAME)]
            default = by_key[(scenario, engine, "pplb")]
            tuned_vs_default.append({
                "scenario": scenario,
                "engine": engine,
                "tuned_cov": tuned["mean_final_cov"],
                "default_cov": default["mean_final_cov"],
                "tuned_score": tuned["mean_score"],
                "default_score": default["mean_score"],
                "improvement": round(
                    default["mean_score"] - tuned["mean_score"], 6
                ),
            })

    return {
        "format": 1,
        "max_rounds": max_rounds,
        "seeds": len(seeds),
        "base_seed": base_seed,
        "recorder": recorder,
        "scenarios": seen_scenarios,
        "engines": list(engines),
        "algorithms": names,
        "rows": rows,
        "summary": summary,
        "tuned_vs_default": tuned_vs_default,
    }


def leaderboard_rows(payload: Mapping) -> list[dict]:
    """Flat display rows (for ``repro.analysis.format_table``)."""
    out = []
    for row in payload["rows"]:
        out.append({
            "scenario": row["scenario"],
            "engine": row["engine"],
            "rank": row["rank"],
            "algorithm": row["algorithm"],
            "final_cov": row["mean_final_cov"],
            "rounds": row["mean_rounds_used"],
            "migrations": row["mean_migrations"],
            "traffic": round(row["mean_traffic"], 2),
        })
    return out


def summary_rows(payload: Mapping) -> list[dict]:
    """Per-algorithm aggregate rows (wins, mean rank), best first."""
    summary = payload["summary"]
    rows = [
        {"algorithm": name, "wins": stats["wins"], "mean_rank": stats["mean_rank"]}
        for name, stats in summary.items()
    ]
    rows.sort(key=lambda r: (r["mean_rank"], r["algorithm"]))
    return rows
