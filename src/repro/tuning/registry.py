"""The tuned-config registry: winners on disk, keyed by canonical
scenario string.

One JSON file holds the best-known balancer configuration per scenario
family. Keys are *canonical* scenario strings (the exact spelling
:class:`~repro.runner.spec.RunSpec` hashes), so every equivalent
spelling of a setting looks up the same entry, and a registry entry
whose overrides are empty — the paper default won — builds a
:class:`RunSpec` whose cache key is *bit-identical* to a plain default
spec: adopting the registry can never orphan an existing cache.

The file format is deterministic (sorted keys, two-space indent, one
trailing newline, no timestamps), so ``save`` after ``load`` is a
byte-identical round trip and two identical tuning sessions produce
identical files — the property the ``tune-smoke`` CI job pins.

Loading is strict: unknown top-level keys, unknown entry keys and
override names that :class:`~repro.core.PPLBConfig` does not accept
all raise :class:`~repro.exceptions.ConfigurationError` naming the
offender, so a hand-edited registry fails loudly instead of silently
running the defaults.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from os import PathLike
from pathlib import Path
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.runner.spec import RunSpec
from repro.tuning.space import ParamSpace, default_pplb_space

#: current registry file format (bump when the schema changes).
REGISTRY_FORMAT = 1

#: the default on-disk location (CLI default; overridable everywhere).
DEFAULT_REGISTRY_PATH = "tuned-configs.json"

_ENTRY_KEYS = frozenset(
    {"algorithm", "overrides", "score", "default_score", "n_evals", "seed", "budget"}
)
_TOP_KEYS = frozenset({"format", "configs"})


@dataclass
class TunedConfig:
    """One registry entry: the winning overrides and their provenance.

    ``overrides`` is canonical (sorted keys, defaults dropped — see
    :meth:`ParamSpace.canonical`); ``{}`` records that the paper
    default won. ``budget`` is the plain-dict form of the
    :class:`~repro.tuning.optimizer.TuneBudget` the session ran under.
    """

    algorithm: str = "pplb"
    overrides: dict = field(default_factory=dict)
    score: float = float("nan")
    default_score: float = float("nan")
    n_evals: int = 0
    seed: int = 0
    budget: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "overrides": dict(self.overrides),
            "score": self.score,
            "default_score": self.default_score,
            "n_evals": self.n_evals,
            "seed": self.seed,
            "budget": dict(self.budget),
        }

    @classmethod
    def from_dict(cls, data: Mapping, scenario: str = "?",
                  space: ParamSpace | None = None) -> "TunedConfig":
        unknown = sorted(set(data) - _ENTRY_KEYS)
        if unknown:
            raise ConfigurationError(
                f"tuned-config entry for {scenario!r} has unknown key(s) "
                f"{unknown}; accepted: {sorted(_ENTRY_KEYS)}"
            )
        space = space if space is not None else default_pplb_space()
        overrides = data.get("overrides", {})
        if not isinstance(overrides, Mapping):
            raise ConfigurationError(
                f"tuned-config entry for {scenario!r}: 'overrides' must be a "
                f"mapping, got {type(overrides).__name__}"
            )
        return cls(
            algorithm=str(data.get("algorithm", "pplb")),
            # canonical() re-validates: unknown PPLBConfig fields and
            # out-of-range values fail here, at load time.
            overrides=space.canonical(overrides),
            score=float(data.get("score", float("nan"))),
            default_score=float(data.get("default_score", float("nan"))),
            n_evals=int(data.get("n_evals", 0)),
            seed=int(data.get("seed", 0)),
            budget=dict(data.get("budget", {})),
        )


class TunedConfigRegistry:
    """In-memory registry with a deterministic JSON disk format."""

    def __init__(self, configs: Mapping[str, TunedConfig] | None = None):
        self._configs: dict[str, TunedConfig] = {}
        for scenario, entry in (configs or {}).items():
            self.put(scenario, entry)

    # ------------------------------ access ------------------------------ #

    @staticmethod
    def _canonical(scenario: str) -> str:
        from repro.workloads.composition import canonical_scenario_name

        return canonical_scenario_name(scenario)

    def put(self, scenario: str, entry: TunedConfig) -> None:
        self._configs[self._canonical(scenario)] = entry

    def get(self, scenario: str) -> TunedConfig | None:
        return self._configs.get(self._canonical(scenario))

    def scenarios(self) -> list[str]:
        return sorted(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def overrides_for(self, scenario: str) -> dict:
        """Tuned overrides for a scenario family (``{}`` when untuned —
        the paper default, by construction the same RunSpec key)."""
        entry = self.get(scenario)
        return dict(entry.overrides) if entry is not None else {}

    def spec_for(self, scenario: str, **spec_kwargs) -> RunSpec:
        """A :class:`RunSpec` running this scenario under its tuned
        config. With no entry (or an empty-override entry) the spec is
        *identical* — same content hash — to a default spec, so tuned
        grids share cache entries with default grids wherever tuning
        changed nothing."""
        entry = self.get(scenario)
        return RunSpec(
            scenario=scenario,
            algorithm=entry.algorithm if entry is not None else "pplb",
            algorithm_kwargs=self.overrides_for(scenario),
            **spec_kwargs,
        )

    # ------------------------------- disk ------------------------------- #

    def to_dict(self) -> dict[str, object]:
        return {
            "format": REGISTRY_FORMAT,
            "configs": {s: e.to_dict() for s, e in sorted(self._configs.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping, source: str = "<memory>") -> "TunedConfigRegistry":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"tuned-config registry {source}: expected a JSON object, "
                f"got {type(data).__name__}"
            )
        unknown = sorted(set(data) - _TOP_KEYS)
        if unknown:
            raise ConfigurationError(
                f"tuned-config registry {source} has unknown key(s) {unknown}; "
                f"accepted: {sorted(_TOP_KEYS)}"
            )
        version = data.get("format")
        if version != REGISTRY_FORMAT:
            raise ConfigurationError(
                f"tuned-config registry {source}: unsupported format "
                f"{version!r} (this build reads format {REGISTRY_FORMAT})"
            )
        configs = data.get("configs", {})
        if not isinstance(configs, Mapping):
            raise ConfigurationError(
                f"tuned-config registry {source}: 'configs' must be a mapping"
            )
        registry = cls()
        for scenario, entry in configs.items():
            registry.put(scenario, TunedConfig.from_dict(entry, scenario=scenario))
        return registry

    @classmethod
    def load(cls, path: str | PathLike) -> "TunedConfigRegistry":
        """Read a registry file; a missing file is an empty registry."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigurationError(
                f"tuned-config registry {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data, source=str(path))

    def save(self, path: str | PathLike) -> None:
        """Write atomically (tmp + rename), byte-deterministically."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
