"""The search space: which balancer knobs the tuner may turn, and how.

A :class:`ParamSpace` is a declarative table of tunable
:class:`~repro.core.PPLBConfig` fields — each a :class:`Param` with a
kind (log-scale float, linear float, or a discrete choice set) and
bounds. The space knows how to *sample* a configuration, *mutate* one
(the genetic search's step operator) and *cross over* two parents, all
through an explicitly threaded :class:`numpy.random.Generator`, so
every candidate the optimizer ever proposes is a pure function of the
tuning seed.

Canonical form — the load-bearing invariant
-------------------------------------------
:meth:`ParamSpace.canonical` reduces an override dict to its canonical
form: floats rounded to six significant digits, keys sorted, and any
value equal to the registered default *dropped*. Canonical overrides
are what travels into ``RunSpec.algorithm_kwargs``, into the tuned-
config registry and across process boundaries — so a tuned config that
happens to rediscover the paper defaults hashes to *exactly* the cache
key of a default run, and re-running a tuning session replays entirely
from the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields
from typing import Mapping

import numpy as np

from repro.core.config import PPLBConfig
from repro.exceptions import ConfigurationError

#: float canonicalisation: six significant digits — coarse enough that
#: a value survives JSON → str → float round trips bit-identically,
#: fine enough that the physics cannot tell the difference.
_SIG_DIGITS = 6


def round_sig(value: float) -> float:
    """Round to :data:`_SIG_DIGITS` significant digits (canonical floats)."""
    return float(f"{float(value):.{_SIG_DIGITS}g}")


#: the default values of every PPLBConfig field, by name.
_CONFIG_DEFAULTS = {f.name: f.default for f in dc_fields(PPLBConfig)}


@dataclass(frozen=True)
class Param:
    """One tunable dimension.

    Attributes
    ----------
    name:
        A :class:`PPLBConfig` field name (validated at construction).
    kind:
        ``"log"`` — positive float sampled log-uniformly in
        ``[low, high]``; mutation multiplies by a log-normal factor.
        ``"linear"`` — float sampled uniformly in ``[low, high]``;
        mutation adds Gaussian noise scaled to the range.
        ``"choice"`` — one of ``choices`` (any JSON-able scalars);
        mutation re-draws uniformly from the *other* choices.
    low, high:
        Bounds for the float kinds (inclusive; clipped after mutation).
    choices:
        The value set for ``kind="choice"``.
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 0.0
    choices: tuple = ()

    def __post_init__(self) -> None:
        if self.name not in _CONFIG_DEFAULTS:
            raise ConfigurationError(
                f"unknown PPLBConfig field {self.name!r}; tunable fields: "
                f"{sorted(_CONFIG_DEFAULTS)}"
            )
        if self.kind not in ("log", "linear", "choice"):
            raise ConfigurationError(
                f"param kind must be 'log', 'linear' or 'choice', got {self.kind!r}"
            )
        if self.kind == "choice":
            if len(self.choices) < 2:
                raise ConfigurationError(
                    f"choice param {self.name!r} needs >= 2 choices, got {self.choices!r}"
                )
        else:
            if not self.low < self.high:
                raise ConfigurationError(
                    f"param {self.name!r} needs low < high, got [{self.low}, {self.high}]"
                )
            if self.kind == "log" and self.low <= 0:
                raise ConfigurationError(
                    f"log param {self.name!r} needs a positive lower bound, got {self.low}"
                )

    # ------------------------------ operators ------------------------------ #

    def sample(self, rng: np.random.Generator):
        """Draw one canonical value."""
        if self.kind == "choice":
            return self.choices[int(rng.integers(0, len(self.choices)))]
        if self.kind == "log":
            return round_sig(
                float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
            )
        return round_sig(float(rng.uniform(self.low, self.high)))

    def mutate(self, value, rng: np.random.Generator, scale: float = 0.25):
        """Perturb *value* (always returns a canonical in-bounds value)."""
        if self.kind == "choice":
            others = [c for c in self.choices if c != value]
            return others[int(rng.integers(0, len(others)))]
        if self.kind == "log":
            moved = float(value) * float(np.exp(scale * rng.standard_normal()))
        else:
            moved = float(value) + scale * (self.high - self.low) * float(
                rng.standard_normal()
            )
        return round_sig(float(np.clip(moved, self.low, self.high)))

    def default(self):
        """The registered :class:`PPLBConfig` default for this field."""
        return _CONFIG_DEFAULTS[self.name]


class ParamSpace:
    """An ordered, name-unique set of :class:`Param` dimensions."""

    def __init__(self, params: tuple[Param, ...] | list[Param]):
        params = tuple(params)
        if not params:
            raise ConfigurationError("a ParamSpace needs at least one Param")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate param names in space: {names}")
        self.params = params

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.params]

    # ------------------------------ operators ------------------------------ #

    def sample(self, rng: np.random.Generator) -> dict:
        """One canonical candidate: every dimension sampled independently."""
        return self.canonical({p.name: p.sample(rng) for p in self.params})

    def mutate(self, overrides: Mapping, rng: np.random.Generator) -> dict:
        """Steady-state step: perturb exactly one (random) dimension.

        Missing keys read as the config default, so mutating ``{}``
        explores one step away from the paper configuration.
        """
        full = {p.name: overrides.get(p.name, p.default()) for p in self.params}
        victim = self.params[int(rng.integers(0, len(self.params)))]
        full[victim.name] = victim.mutate(full[victim.name], rng)
        return self.canonical(full)

    def crossover(self, a: Mapping, b: Mapping, rng: np.random.Generator) -> dict:
        """Uniform crossover: each dimension from parent *a* or *b*."""
        child = {}
        for p in self.params:
            parent = a if rng.random() < 0.5 else b
            child[p.name] = parent.get(p.name, p.default())
        return self.canonical(child)

    # ------------------------------ canonical ------------------------------ #

    def canonical(self, overrides: Mapping) -> dict:
        """Canonical override dict — see the module docstring.

        Validates in one pass: keys must be :class:`PPLBConfig` fields
        (:class:`ConfigurationError` names the offenders and the
        accepted keys) and the overridden configuration must construct
        (out-of-range values fail with the config's own diagnostics).
        """
        unknown = sorted(set(overrides) - set(_CONFIG_DEFAULTS))
        if unknown:
            raise ConfigurationError(
                f"unknown PPLBConfig override(s) {unknown}; accepted keys: "
                f"{sorted(_CONFIG_DEFAULTS)}"
            )
        out: dict = {}
        for name in sorted(overrides):
            value = overrides[name]
            if isinstance(value, float):
                value = round_sig(value)
            if value == _CONFIG_DEFAULTS[name]:
                continue  # defaults are *absent*: key-stability invariant
            out[name] = value
        PPLBConfig(**out)  # range/consistency validation
        return out


def default_pplb_space() -> ParamSpace:
    """The physics knobs the paper leaves "to be configured" (§4.2, §5).

    * ``mu_s_base`` — the initiation slope: how large a corrected load
      gradient must be before a transfer starts at all.
    * ``mu_k_base`` — kinetic friction, which via Corollary 3 *is* the
      trap radius (journey length ∝ 1/µk).
    * ``beta0`` — the arbiter's initial exploration probability.
    * ``candidates_per_node`` — how many resident tasks a node offers
      per round (the E13 ablation knob).
    """
    return ParamSpace((
        Param("mu_s_base", "log", low=0.25, high=4.0),
        Param("mu_k_base", "log", low=0.0625, high=1.0),
        Param("beta0", "linear", low=0.0, high=0.5),
        Param("candidates_per_node", "choice", choices=(2, 4, 8, 16)),
    ))
