"""The optimizer harness: successive halving + a steady-state genetic
refinement, both running through the cached grid runner.

Search shape
------------
**Successive halving** is the workhorse: a pool of candidate configs
(the paper default always rides as candidate 0) is evaluated on a
*cheap* budget — few rounds, the ``rounds-fast`` engine, the O(1)
``summary`` recorder — and only the top ``1/eta`` fraction is promoted
to the next rung, whose round budget is ``eta`` times larger, until the
full budget is reached. Bad configs cost almost nothing; good ones are
measured properly.

**Steady-state genetic refinement** then polishes: the full-budget
survivors seed a small population; each generation tournament-selects
two parents, crosses them over, mutates one dimension, evaluates the
child at the full budget and replaces the current worst member if the
child beats it.

Determinism — the property everything else leans on
---------------------------------------------------
Every stochastic step draws from generators derived via
:func:`repro.rng.derive` from ``(seed, stream, crc32(scenario))``, and
every candidate is canonicalised (:meth:`ParamSpace.canonical`) before
it becomes a :class:`~repro.runner.spec.RunSpec`. Two calls with the
same arguments therefore propose the *same specs in the same order* —
so a second run against the same cache is served entirely from disk,
and the winner, the eval count and the whole history are identical.
Ties are broken by candidate index (lower wins), so the paper default
wins any exact draw.

The objective (lower is better) is
``mean_over_seeds(final_cov + 0.01 · rounds_used/max_rounds)`` —
imbalance dominates; convergence speed breaks near-ties.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from os import PathLike
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.rng import derive
from repro.runner import ResultCache, RunSpec, grid_seeds, run_grid
from repro.sim import SimulationResult
from repro.tuning.space import ParamSpace, default_pplb_space

#: spawn-key tags for the tuner's derived RNG streams (disjoint from
#: the scenario streams 0-3 and the sweep harness's layouts by the
#: (seed, tag, scenario-crc) keying).
_SAMPLE_STREAM = 101
_GA_STREAM = 102

#: weight of the convergence-speed tie-break in the objective.
_ROUNDS_WEIGHT = 0.01

#: engines a tuning session may evaluate on (task balancers only — the
#: fluid engine runs a different algorithm family).
TUNABLE_ENGINES = ("rounds", "rounds-fast", "events", "events-fast")


def score_result(result: SimulationResult, max_rounds: int) -> float:
    """The tuning objective for one run (lower is better)."""
    used = result.converged_round if result.converged_round is not None else max_rounds
    return float(result.final_cov) + _ROUNDS_WEIGHT * used / max_rounds


@dataclass
class TuneBudget:
    """The evaluation budget of one tuning session (all knobs that
    shape *how much* simulation a candidate costs)."""

    n_initial: int = 8
    eta: int = 2
    base_rounds: int = 50
    full_rounds: int = 200
    eval_seeds: int = 2
    engine: str = "rounds-fast"
    recorder: str = "summary"
    ga_generations: int = 4
    ga_population: int = 4

    def __post_init__(self) -> None:
        if self.n_initial < 1:
            raise ConfigurationError(f"n_initial must be >= 1, got {self.n_initial}")
        if self.eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {self.eta}")
        if not 1 <= self.base_rounds <= self.full_rounds:
            raise ConfigurationError(
                f"need 1 <= base_rounds <= full_rounds, got "
                f"{self.base_rounds}/{self.full_rounds}"
            )
        if self.eval_seeds < 1:
            raise ConfigurationError(f"eval_seeds must be >= 1, got {self.eval_seeds}")
        if self.ga_generations < 0 or self.ga_population < 1:
            raise ConfigurationError(
                f"ga_generations must be >= 0 and ga_population >= 1, got "
                f"{self.ga_generations}/{self.ga_population}"
            )
        if self.engine not in TUNABLE_ENGINES:
            raise ConfigurationError(
                f"engine {self.engine!r} is not tunable; available: "
                f"{sorted(TUNABLE_ENGINES)}"
            )

    def rungs(self) -> list[int]:
        """The halving round budgets: base, base·eta, … capped at full."""
        out = [self.base_rounds]
        while out[-1] < self.full_rounds:
            out.append(min(out[-1] * self.eta, self.full_rounds))
        return out

    def to_dict(self) -> dict[str, object]:
        return {
            "n_initial": self.n_initial,
            "eta": self.eta,
            "base_rounds": self.base_rounds,
            "full_rounds": self.full_rounds,
            "eval_seeds": self.eval_seeds,
            "engine": self.engine,
            "recorder": self.recorder,
            "ga_generations": self.ga_generations,
            "ga_population": self.ga_population,
        }


@dataclass
class TuneReport:
    """Everything one tuning session decided (and what it cost).

    ``winner`` is a *canonical* override dict — ``{}`` means the paper
    default won. ``score``/``default_score`` are both measured at the
    full budget on the same seeds, so ``score <= default_score`` always
    holds (the default is re-scored at the final rung even when halving
    eliminated it early).
    """

    scenario: str
    algorithm: str
    seed: int
    budget: TuneBudget
    winner: dict = field(default_factory=dict)
    score: float = float("inf")
    default_score: float = float("inf")
    n_evals: int = 0
    n_specs: int = 0
    cache_hits: int = 0
    history: list[dict] = field(default_factory=list)

    def improvement(self) -> float:
        """Relative objective gain of the winner over the default."""
        if self.default_score == 0:
            return 0.0
        return (self.default_score - self.score) / abs(self.default_score)


class _Evaluator:
    """Scores candidates through the cached grid runner, keeping the
    session-wide eval/spec/cache counters and the eval history."""

    def __init__(self, report: TuneReport, seeds: Sequence[int],
                 workers: int, cache: ResultCache | None,
                 backend=None, batch_replicates: int | None = None):
        self.report = report
        self.seeds = list(seeds)
        self.workers = workers
        self.cache = cache
        self.backend = backend
        self.batch_replicates = batch_replicates
        # canonical-json -> {rounds -> score}: dedup repeated evals (the
        # GA may re-propose a known candidate; the cache would absorb
        # the cost anyway, but the eval count should not double-book).
        self._seen: dict[str, dict[int, float]] = {}

    def scores(self, candidates: Sequence[Mapping], rounds: int,
               stage: str) -> list[float]:
        """Objective value per candidate at the given round budget."""
        spec_of: list[RunSpec | None] = []
        fresh: list[RunSpec] = []
        for overrides in candidates:
            key = _overrides_key(overrides)
            if rounds in self._seen.get(key, {}):
                spec_of.append(None)
                continue
            for s in self.seeds:
                fresh.append(RunSpec(
                    scenario=self.report.scenario,
                    algorithm=self.report.algorithm,
                    seed=s,
                    max_rounds=rounds,
                    algorithm_kwargs=dict(overrides),
                    engine=self.report.budget.engine,
                    recorder=self.report.budget.recorder,
                ))
            spec_of.append(fresh[-1])
        outcomes = run_grid(
            fresh, workers=self.workers, cache=self.cache,
            backend=self.backend, batch_replicates=self.batch_replicates,
        ) if fresh else []
        self.report.n_specs += len(fresh)
        self.report.cache_hits += sum(1 for o in outcomes if o.cached)

        out: list[float] = []
        cursor = 0
        for overrides, marker in zip(candidates, spec_of):
            key = _overrides_key(overrides)
            if marker is None:
                out.append(self._seen[key][rounds])
                continue
            batch = outcomes[cursor:cursor + len(self.seeds)]
            cursor += len(self.seeds)
            score = sum(
                score_result(o.result, rounds) for o in batch
            ) / len(batch)
            self._seen.setdefault(key, {})[rounds] = score
            self.report.n_evals += 1
            self.report.history.append({
                "stage": stage,
                "rounds": rounds,
                "overrides": dict(overrides),
                "score": round(score, 9),
            })
            out.append(score)
        return out


def _overrides_key(overrides: Mapping) -> str:
    return repr(sorted(overrides.items()))


def tune_scenario(
    scenario: str,
    algorithm: str = "pplb",
    space: ParamSpace | None = None,
    seed: int = 0,
    budget: TuneBudget | None = None,
    workers: int = 1,
    cache: ResultCache | str | PathLike | None = None,
    backend=None,
    batch_replicates: int | None = None,
) -> TuneReport:
    """Search the balancer parameter space for one scenario family.

    Parameters
    ----------
    scenario:
        Registered name or composed component string; canonicalised, so
        every equivalent spelling tunes (and caches) as one family.
    algorithm:
        A :class:`~repro.core.PPLBConfig`-configured registry name
        (``"pplb"`` or ``"pplb-greedy"`` — the space speaks PPLBConfig).
    space:
        The dimensions to search (default :func:`default_pplb_space`).
    seed:
        Master seed: derives the candidate-sampling and GA streams
        *and* the per-repetition evaluation seeds (via
        :func:`~repro.runner.grid_seeds`).
    budget:
        A :class:`TuneBudget`; the default is a small smoke-size search.
    workers, cache, backend:
        Forwarded to :func:`~repro.runner.run_grid` for every
        evaluation batch, so tuning parallelises and replays like any
        other grid. A persistent ``backend`` (an
        :class:`~repro.runner.PoolBackend` instance, or the shared
        ``"pool"``) keeps the *same* warm worker processes across every
        halving rung and GA generation — one spawn per worker for the
        whole session instead of one pool per evaluation batch.
    batch_replicates:
        Forwarded to :func:`~repro.runner.run_grid`: groups each
        candidate's ``eval_seeds`` repetitions into one replicate-
        batched simulation (rounds-fast engine only). Bit-identical per
        replicate, so the winner, every score and the whole history are
        unchanged — only the evaluation wall time drops.

    Returns
    -------
    TuneReport — winner (canonical overrides), its full-budget score,
    the default's full-budget score, counters and the eval history.
    """
    if algorithm not in ("pplb", "pplb-greedy"):
        raise ConfigurationError(
            f"tuning searches PPLBConfig space; algorithm must be 'pplb' or "
            f"'pplb-greedy', got {algorithm!r}"
        )
    space = space if space is not None else default_pplb_space()
    budget = budget if budget is not None else TuneBudget()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    # Canonicalise the scenario through RunSpec so the report, the
    # registry key and the cache all agree on one spelling.
    probe_spec = RunSpec(scenario=scenario, algorithm=algorithm,
                         max_rounds=budget.full_rounds,
                         engine=budget.engine, recorder=budget.recorder)
    report = TuneReport(scenario=probe_spec.scenario, algorithm=algorithm,
                        seed=seed, budget=budget)

    evaluator = _Evaluator(
        report,
        seeds=grid_seeds(budget.eval_seeds, base_seed=seed),
        workers=workers,
        cache=cache,
        backend=backend,
        batch_replicates=batch_replicates,
    )

    # crc32 is stable across processes and Python versions, unlike
    # hash(); it keys this scenario's streams apart from its siblings.
    tag = zlib.crc32(report.scenario.encode("utf-8"))
    sample_rng = derive(seed, _SAMPLE_STREAM, tag)

    # Candidate 0 is always the paper default: the tuned config can
    # never lose to it at equal budget (see the final re-score below).
    pool: list[dict] = [{}]
    while len(pool) < budget.n_initial:
        candidate = space.sample(sample_rng)
        if candidate not in pool:
            pool.append(candidate)

    # ---------------------- successive halving ---------------------- #
    survivors = list(range(len(pool)))
    scores: dict[int, float] = {}
    for rung_index, rounds in enumerate(budget.rungs()):
        rung_scores = evaluator.scores(
            [pool[i] for i in survivors], rounds, stage=f"halving:{rounds}"
        )
        scores = dict(zip(survivors, rung_scores))
        if rounds == budget.full_rounds:
            break
        keep = max(1, -(-len(survivors) // budget.eta))  # ceil division
        survivors = sorted(survivors, key=lambda i: (scores[i], i))[:keep]

    # --------------------- genetic refinement ----------------------- #
    ga_rng = derive(seed, _GA_STREAM, tag)
    population = sorted(scores, key=lambda i: (scores[i], i))
    population = population[: budget.ga_population]
    for _ in range(budget.ga_generations):
        if len(population) >= 2:
            a, b = (int(ga_rng.integers(0, len(population))) for _ in range(2))
            parents = (pool[population[a]], pool[population[b]])
            child = space.mutate(space.crossover(*parents, ga_rng), ga_rng)
        else:
            child = space.mutate(pool[population[0]], ga_rng)
        if child in pool:
            index = pool.index(child)
        else:
            pool.append(child)
            index = len(pool) - 1
        (child_score,) = evaluator.scores(
            [child], budget.full_rounds, stage="ga"
        )
        scores[index] = child_score
        if index not in population:
            worst = max(population, key=lambda i: (scores[i], -i))
            if (child_score, index) < (scores[worst], worst):
                population[population.index(worst)] = index

    # ------------------- final default-vs-winner --------------------- #
    # Guarantee: the default is scored at the full budget even when a
    # cheap rung eliminated it, so `score <= default_score` is exact.
    (default_score,) = evaluator.scores([{}], budget.full_rounds, stage="final")
    scores[0] = default_score

    full_scored = [i for i in scores if budget.full_rounds in
                   evaluator._seen[_overrides_key(pool[i])]]
    best = min(full_scored, key=lambda i: (scores[i], i))
    report.winner = dict(pool[best])
    report.score = scores[best]
    report.default_score = default_score
    return report


def tune_scenarios(
    scenarios: Sequence[str],
    **kwargs,
) -> dict[str, TuneReport]:
    """Tune each scenario family independently; reports keyed by the
    canonical scenario string, in input order."""
    out: dict[str, TuneReport] = {}
    for scenario in scenarios:
        report = tune_scenario(scenario, **kwargs)
        out[report.scenario] = report
    return out
