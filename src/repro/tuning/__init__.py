"""Self-tuning PPLB: automated search over the physics parameter space.

The paper's conclusion promises a *methodology* — "each new system can
be easily modeled by … fine-tuning the configuration parameters".
:mod:`repro.core.tuning` derives a config analytically from the
system's own scales; this package closes the loop *empirically*:

* :mod:`space <repro.tuning.space>` — :class:`ParamSpace`, the
  declarative table of tunable :class:`~repro.core.PPLBConfig` fields
  with sample/mutate/crossover operators and the canonical-override
  form that keeps cache keys stable.
* :mod:`optimizer <repro.tuning.optimizer>` — :func:`tune_scenario`,
  successive halving (cheap rounds → promoted survivors) plus a
  steady-state genetic refinement, fully seeded and running every
  evaluation through the cached grid runner, so repeated sessions are
  pure cache replays.
* :mod:`registry <repro.tuning.registry>` —
  :class:`TunedConfigRegistry`, winners on disk keyed by canonical
  scenario string, byte-deterministic JSON, strict loading.
* :mod:`leaderboard <repro.tuning.leaderboard>` —
  :func:`build_leaderboard`, tuned PPLB vs paper-default PPLB vs the
  baselines across a scenario × engine matrix, as one deterministic
  payload.

Exposed on the CLI as ``pplb tune`` and ``pplb leaderboard``; E19
(``benchmarks/bench_e19_leaderboard.py``) is the benchmark artifact.
"""

from repro.tuning.leaderboard import (
    DEFAULT_BASELINES,
    TUNED_NAME,
    build_leaderboard,
    leaderboard_rows,
    summary_rows,
)
from repro.tuning.optimizer import (
    TUNABLE_ENGINES,
    TuneBudget,
    TuneReport,
    score_result,
    tune_scenario,
    tune_scenarios,
)
from repro.tuning.registry import (
    DEFAULT_REGISTRY_PATH,
    REGISTRY_FORMAT,
    TunedConfig,
    TunedConfigRegistry,
)
from repro.tuning.space import Param, ParamSpace, default_pplb_space, round_sig

__all__ = [
    "DEFAULT_BASELINES",
    "DEFAULT_REGISTRY_PATH",
    "Param",
    "ParamSpace",
    "REGISTRY_FORMAT",
    "TUNABLE_ENGINES",
    "TUNED_NAME",
    "TuneBudget",
    "TuneReport",
    "TunedConfig",
    "TunedConfigRegistry",
    "build_leaderboard",
    "default_pplb_space",
    "leaderboard_rows",
    "round_sig",
    "score_result",
    "summary_rows",
    "tune_scenario",
    "tune_scenarios",
]
