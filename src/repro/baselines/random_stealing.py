"""Receiver-initiated random work stealing (paper §2's randomized family).

Underloaded nodes (below ``(1−δ)·mean``) pick one random neighbor; if
that neighbor is above the mean they steal its best-fitting task. The
classic decentralized control with no gradient information — cheap,
oblivious, and the canonical stochastic yardstick.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import free_and_up, pick_task_for_quota
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, Migration


class RandomWorkStealing(Balancer):
    """Underloaded nodes steal from one random neighbor per round.

    Parameters
    ----------
    delta:
        Hunger watermark: a node steals when ``h < (1−δ)·mean``.
    """

    name = "work-stealing"

    def __init__(self, delta: float = 0.25):
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        self.delta = delta

    def step(self, ctx: BalanceContext) -> list[Migration]:
        h = np.array(ctx.system.node_loads)
        mean = float(h.mean())
        if mean <= 0:
            return []
        hungry = np.nonzero(h < (1.0 - self.delta) * mean)[0]
        if hungry.shape[0] == 0:
            return []
        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []
        # Randomized visit order (receiver-initiated: the hungry act).
        ctx.rng.shuffle(hungry)
        for i in hungry:
            i = int(i)
            js = ctx.topology.neighbors(i)
            j = int(js[ctx.rng.integers(0, js.shape[0])])
            eid = ctx.topology.edge_id(i, j)
            if not free_and_up(ctx, used, eid):
                continue
            if h[j] <= mean:
                continue
            quota = min(h[j] - mean, mean - h[i])
            tid = pick_task_for_quota(ctx, j, quota, exclude=planned)
            if tid is None:
                continue
            migrations.append(Migration(tid, j, i))
            used[eid] = True
            planned.add(tid)
            load = ctx.system.load_of(tid)
            h[j] -= load
            h[i] += load
        return migrations
