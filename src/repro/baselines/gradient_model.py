"""The Gradient Model (GM) [Lin & Keller '87] (paper §2).

"In the gradient model (GM) method, a pressure surface that represents
the propagated pressure of the workload is defined. Tasks are moved
toward the processors with the steepest gradient."

Classic GM: nodes classify themselves *light* / *moderate* / *heavy*
against watermarks; the *proximity* of a node is its hop distance to the
nearest light node (the propagated pressure surface); heavy nodes push
one unit of work to the neighbor with the smallest proximity. When no
node is light, the surface is flat and nothing moves.

Watermarks here are relative to the current mean load (``(1±δ)·mean``),
which keeps the algorithm meaningful across workload scales; classical
fixed watermarks are available via ``absolute_low`` / ``absolute_high``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.base import free_and_up
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, Migration


def proximity_map(topology, light_mask: np.ndarray) -> np.ndarray:
    """Hop distance to the nearest light node (∞ when none is light).

    Multi-source BFS over the topology — the 'propagated pressure
    surface' of GM. O(V + E) per round.
    """
    n = topology.n_nodes
    prox = np.full(n, np.inf)
    q: deque[int] = deque()
    for v in np.nonzero(light_mask)[0]:
        prox[v] = 0.0
        q.append(int(v))
    while q:
        u = q.popleft()
        for w in topology.neighbors(u):
            w = int(w)
            if prox[w] == np.inf:
                prox[w] = prox[u] + 1.0
                q.append(w)
    return prox


class GradientModel(Balancer):
    """Lin & Keller's gradient model with relative watermarks.

    Parameters
    ----------
    delta:
        Relative watermark width: light if ``h < (1−δ)·mean``, heavy if
        ``h > (1+δ)·mean``.
    absolute_low, absolute_high:
        Override the relative watermarks with fixed values (classical
        GM) when both are given.
    """

    name = "gradient-model"

    def __init__(
        self,
        delta: float = 0.25,
        absolute_low: float | None = None,
        absolute_high: float | None = None,
    ):
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        if (absolute_low is None) != (absolute_high is None):
            raise ConfigurationError("set both absolute watermarks or neither")
        if absolute_low is not None and absolute_low >= absolute_high:
            raise ConfigurationError(
                f"absolute_low ({absolute_low}) must be < absolute_high ({absolute_high})"
            )
        self.delta = delta
        self.absolute_low = absolute_low
        self.absolute_high = absolute_high

    def _watermarks(self, h: np.ndarray) -> tuple[float, float]:
        if self.absolute_low is not None:
            return self.absolute_low, self.absolute_high  # type: ignore[return-value]
        mean = float(h.mean())
        return (1.0 - self.delta) * mean, (1.0 + self.delta) * mean

    def step(self, ctx: BalanceContext) -> list[Migration]:
        h = np.array(ctx.system.node_loads)
        low, high = self._watermarks(h)
        light = h < low
        if not light.any():
            return []
        prox = proximity_map(ctx.topology, light)
        heavy_nodes = np.nonzero(h > high)[0]
        if heavy_nodes.shape[0] == 0:
            return []

        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []
        # Heaviest nodes first (deterministic; ties by id via stable sort).
        for i in heavy_nodes[np.argsort(-h[heavy_nodes], kind="stable")]:
            i = int(i)
            js = ctx.topology.neighbors(i)
            best_j = -1
            best_key = (np.inf, np.inf)
            for j in js:
                j = int(j)
                eid = ctx.topology.edge_id(i, j)
                if not free_and_up(ctx, used, eid):
                    continue
                key = (float(prox[j]), float(h[j]))
                if key < best_key:
                    best_key = key
                    best_j = j
            if best_j < 0 or not np.isfinite(best_key[0]):
                continue
            # GM moves one unit of work down the pressure gradient: take
            # the node's largest task that does not overshoot the target.
            tid = None
            for cand in ctx.system.largest_tasks_at(i, 4):
                cand = int(cand)
                if cand in planned:
                    continue
                if h[i] - ctx.system.load_of(cand) >= low:
                    tid = cand
                    break
            if tid is None:
                continue
            eid = ctx.topology.edge_id(i, best_j)
            migrations.append(Migration(tid, i, best_j))
            used[eid] = True
            planned.add(tid)
            load = ctx.system.load_of(tid)
            h[i] -= load
            h[best_j] += load
        return migrations
