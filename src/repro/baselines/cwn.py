"""Contracting Within a Neighborhood (CWN) [Shu & Kale '89] (paper §2).

"In the contracting within a neighborhood (CWN) method ... the workload
index is used directly and the tasks are sent to the processor with the
smallest index."

Implementation: every node whose load exceeds its least-loaded usable
neighbor by more than *threshold* sends one task to that neighbor.
Tasks hop at most *max_hops* times in total (the contracting radius):
a task that has exhausted its radius is pinned — the defining CWN
behaviour that keeps placement local but can strand load when the
neighborhood is uniformly busy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import free_and_up
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, Migration


class ContractingWithinNeighborhood(Balancer):
    """CWN: send surplus to the least-loaded neighbor, bounded radius.

    Parameters
    ----------
    threshold:
        Minimum load difference to the least-loaded neighbor before a
        transfer happens (absorbs communication cost, like the paper's
        µs).
    max_hops:
        Contracting radius: lifetime hop budget per task.
    """

    name = "cwn"

    def __init__(self, threshold: float = 1.0, max_hops: int = 4):
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        if max_hops < 1:
            raise ConfigurationError(f"max_hops must be >= 1, got {max_hops}")
        self.threshold = threshold
        self.max_hops = max_hops
        self._hops: dict[int, int] = {}

    def reset(self, ctx: BalanceContext) -> None:
        self._hops.clear()

    def step(self, ctx: BalanceContext) -> list[Migration]:
        h = np.array(ctx.system.node_loads)
        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []
        order = np.argsort(-h, kind="stable")
        for i in order:
            i = int(i)
            if h[i] <= 0:
                break
            js = ctx.topology.neighbors(i)
            best_j = -1
            best_h = np.inf
            for j in js:
                j = int(j)
                eid = ctx.topology.edge_id(i, j)
                if not free_and_up(ctx, used, eid):
                    continue
                if h[j] < best_h:
                    best_h = float(h[j])
                    best_j = j
            if best_j < 0 or h[i] - best_h <= self.threshold:
                continue
            # Send the largest task still within its contracting radius
            # that does not overshoot (keep i above j after the move).
            tid = None
            for cand in ctx.system.largest_tasks_at(i, 6):
                cand = int(cand)
                if cand in planned or self._hops.get(cand, 0) >= self.max_hops:
                    continue
                load = ctx.system.load_of(cand)
                if load < (h[i] - best_h):
                    tid = cand
                    break
            if tid is None:
                continue
            eid = ctx.topology.edge_id(i, best_j)
            migrations.append(Migration(tid, i, best_j))
            used[eid] = True
            planned.add(tid)
            self._hops[tid] = self._hops.get(tid, 0) + 1
            load = ctx.system.load_of(tid)
            h[i] -= load
            h[best_j] += load
        return migrations
