"""Shared helpers for the task-granular baseline balancers."""

from __future__ import annotations

from typing import Container

import numpy as np

from repro.interfaces import BalanceContext

_EMPTY: frozenset[int] = frozenset()


def pick_task_for_quota(
    ctx: BalanceContext,
    node: int,
    quota: float,
    max_candidates: int = 8,
    exclude: Container[int] = _EMPTY,
) -> int | None:
    """Choose the resident task whose size best realises a *quota* of load.

    Fluid prescriptions ("move φ load over this edge") must be realised
    with whole tasks. The classic greedy choice: among the node's largest
    *max_candidates* tasks, pick the one minimising ``|l − φ|`` subject
    to ``l < 2φ`` (moving more than twice the prescription would
    overshoot and *worsen* the pairwise imbalance). Returns the task id
    or None when no task fits.

    *exclude* holds task ids already planned for a move this round — the
    engine applies all of a round's orders after planning, so the same
    task must never be ordered twice in one round.
    """
    if quota <= 0:
        return None
    best: int | None = None
    best_gap = np.inf
    for tid in ctx.system.largest_tasks_at(node, max_candidates):
        tid = int(tid)
        if tid in exclude:
            continue
        load = ctx.system.load_of(tid)
        if load >= 2.0 * quota:
            continue
        gap = abs(load - quota)
        if gap < best_gap:
            best_gap = gap
            best = tid
    return best


def free_and_up(ctx: BalanceContext, used: np.ndarray, eid: int) -> bool:
    """Whether edge *eid* is both fault-free and unreserved this round."""
    return bool(ctx.up_mask[eid]) and not bool(used[eid])
