"""Diffusion load balancing [Cybenko '89; Boillat '90; Xu & Lau '94].

"Each processor of the system balances the total quantity of load on
itself with the immediate neighboring nodes" (paper §2). The fluid first-
order scheme (FOS) iterates

    h_i ← h_i + Σ_{j ∈ N(i)} α_ij (h_j − h_i),

which is ``h ← (I − α L) h`` for uniform α. Three α policies:

* ``"uniform"`` — ``α = 1/(Δ+1)`` with Δ the maximum degree: always
  convergent (diagonally dominant) — Cybenko's classic safe choice.
* ``"boillat"`` — per-edge ``α_ij = 1/(max(deg_i, deg_j)+1)`` [1].
* ``"optimal"`` — ``α* = 2/(λ_2 + λ_n)`` of the Laplacian: the
  spectrally optimal uniform parameter, the general-graph form of the
  mesh/torus/hypercube optima derived in [19] (Xu & Lau).

:class:`TaskDiffusion` realises the same prescription with whole tasks:
each round it computes the fluid flow per edge and moves, per edge, the
single resident task that best matches the prescribed amount (the
paper's one-load-per-link constraint).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import free_and_up, pick_task_for_quota
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, FluidBalancer, Migration
from repro.network.topology import Topology


def optimal_alpha(topology: Topology) -> float:
    """Spectrally optimal uniform diffusion parameter ``2/(λ2 + λn)``.

    λ2 (algebraic connectivity) and λn (largest Laplacian eigenvalue)
    are computed densely — topologies here are ≤ a few thousand nodes.
    """
    lam = np.linalg.eigvalsh(topology.laplacian)
    lam2 = float(lam[1])
    lam_n = float(lam[-1])
    if lam2 <= 0:
        raise ConfigurationError("graph is disconnected (λ2 = 0); no diffusion optimum")
    return 2.0 / (lam2 + lam_n)


def _edge_alphas(topology: Topology, policy: str) -> np.ndarray:
    """Per-edge α for the requested *policy*."""
    e = topology.edges
    if policy == "uniform":
        return np.full(e.shape[0], 1.0 / (topology.max_degree + 1.0))
    if policy == "boillat":
        deg = topology.degree
        return 1.0 / (np.maximum(deg[e[:, 0]], deg[e[:, 1]]) + 1.0)
    if policy == "optimal":
        return np.full(e.shape[0], optimal_alpha(topology))
    raise ConfigurationError(
        f"unknown diffusion policy {policy!r}; use 'uniform', 'boillat' or 'optimal'"
    )


class FluidDiffusion(FluidBalancer):
    """First-order diffusion on divisible load.

    Parameters
    ----------
    policy:
        α policy: ``"uniform"``, ``"boillat"`` or ``"optimal"``.
    """

    def __init__(self, policy: str = "uniform"):
        self.policy = policy
        self.name = f"diffusion-{policy}"
        self._alphas: np.ndarray | None = None
        self._topology: Topology | None = None

    def reset(self, ctx: BalanceContext) -> None:
        self._topology = ctx.topology
        self._alphas = _edge_alphas(ctx.topology, self.policy)

    def fluid_step(self, h: np.ndarray, ctx: BalanceContext) -> np.ndarray:
        if self._alphas is None or self._topology is not ctx.topology:
            self.reset(ctx)
        e = ctx.topology.edges
        # flow > 0 moves load from edges[:,0] to edges[:,1]
        return self._alphas * (h[e[:, 0]] - h[e[:, 1]])


class TaskDiffusion(Balancer):
    """Task-granular diffusion: the FOS prescription realised with tasks.

    Each round, for every edge with a positive prescribed flow, the
    sending endpoint contributes its best-fitting task (at most one task
    per link per round — the engine's capacity). Nodes never send more
    total load than they hold.

    Parameters
    ----------
    policy:
        α policy, as for :class:`FluidDiffusion`.
    min_quota:
        Flows below this are ignored (prevents endless swapping of tiny
        prescriptions once nearly balanced).
    """

    def __init__(self, policy: str = "uniform", min_quota: float = 0.25):
        if min_quota < 0:
            raise ConfigurationError(f"min_quota must be >= 0, got {min_quota}")
        self.policy = policy
        self.min_quota = min_quota
        self.name = f"task-diffusion-{policy}"
        self._alphas: np.ndarray | None = None
        self._topology: Topology | None = None

    def reset(self, ctx: BalanceContext) -> None:
        self._topology = ctx.topology
        self._alphas = _edge_alphas(ctx.topology, self.policy)

    def step(self, ctx: BalanceContext) -> list[Migration]:
        if self._alphas is None or self._topology is not ctx.topology:
            self.reset(ctx)
        h = np.array(ctx.system.node_loads)
        e = ctx.topology.edges
        flow = self._alphas * (h[e[:, 0]] - h[e[:, 1]])
        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []

        # Largest prescriptions first: the steepest gradients get links.
        order = np.argsort(-np.abs(flow), kind="stable")
        for eid in order:
            eid = int(eid)
            quota = float(flow[eid])
            if abs(quota) < self.min_quota:
                break
            if not free_and_up(ctx, used, eid):
                continue
            u, v = int(e[eid, 0]), int(e[eid, 1])
            src, dst = (u, v) if quota > 0 else (v, u)
            tid = pick_task_for_quota(ctx, src, abs(quota), exclude=planned)
            if tid is None:
                continue
            migrations.append(Migration(tid, src, dst))
            used[eid] = True
            planned.add(tid)
            load = ctx.system.load_of(tid)
            h[src] -= load
            h[dst] += load
        return migrations
