"""Baseline load balancers (paper §2, Related Works).

The paper positions PPLB against four families; all are implemented here
so the comparative experiments (E1/E2/…) can actually be run:

* **Diffusion** [Cybenko '89; Boillat '90; Xu & Lau '94] —
  :class:`FluidDiffusion` (divisible load, with uniform / Boillat /
  spectrally-optimal α) and :class:`TaskDiffusion` (task-granular
  realisation).
* **Dimension exchange** [Cybenko '89] — :class:`DimensionExchange`
  (fluid + task variants; native on hypercubes, edge-colored sweep on
  general graphs).
* **Gradient model (GM)** [Lin & Keller '87] — :class:`GradientModel`
  (pressure surface of proximities to lightly-loaded nodes).
* **CWN** [Shu & Kale '89] — :class:`ContractingWithinNeighborhood`
  (send to the least-loaded neighbor when above threshold).

Plus controls: :class:`RandomWorkStealing` (receiver-initiated),
:class:`SenderInitiated` (threshold probing, Eager et al. '86) and
:class:`NoBalancer`.
"""

from repro.baselines.cwn import ContractingWithinNeighborhood
from repro.baselines.diffusion import FluidDiffusion, TaskDiffusion, optimal_alpha
from repro.baselines.dimension_exchange import DimensionExchange, FluidDimensionExchange
from repro.baselines.gradient_model import GradientModel
from repro.baselines.noop import NoBalancer
from repro.baselines.random_stealing import RandomWorkStealing
from repro.baselines.second_order import SecondOrderDiffusion, optimal_beta
from repro.baselines.sender_initiated import SenderInitiated

__all__ = [
    "FluidDiffusion",
    "TaskDiffusion",
    "optimal_alpha",
    "DimensionExchange",
    "FluidDimensionExchange",
    "GradientModel",
    "ContractingWithinNeighborhood",
    "RandomWorkStealing",
    "SenderInitiated",
    "SecondOrderDiffusion",
    "optimal_beta",
    "NoBalancer",
]
