"""The do-nothing control balancer.

Used as the baseline-of-baselines: any metric improvement reported for a
real algorithm is relative to what :class:`NoBalancer` leaves untouched
(and under dynamic workloads it shows the unmitigated imbalance drift).
"""

from __future__ import annotations

from repro.interfaces import BalanceContext, Balancer, Migration


class NoBalancer(Balancer):
    """Never moves anything."""

    name = "none"

    def step(self, ctx: BalanceContext) -> list[Migration]:
        return []
