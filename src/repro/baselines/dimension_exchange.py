"""Dimension exchange [Cybenko '89] (paper §2).

"Each processor balances its loads with its neighbor's one at a time. It
has been proven that on a hypercube, the entire system is balanced when
every processor has exchanged workload with all its neighbors once."

The schedule is a proper edge coloring: at round *r*, exactly the edges
of color ``r mod n_colors`` are active, so every node talks to at most
one neighbor at a time. On a *d*-dimensional hypercube the natural
coloring is by dimension (bit index) and one sweep of all *d* colors
balances everything exactly — the classical result validated in the
tests. General graphs get a greedy proper edge coloring (≤ 2Δ−1 colors).

:class:`FluidDimensionExchange` averages the pair's loads exactly;
:class:`DimensionExchange` approximates the averaging by moving the best
single task across the active edge per round.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.baselines.base import free_and_up, pick_task_for_quota
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, FluidBalancer, Migration
from repro.network.topology import Topology


def edge_coloring(topology: Topology) -> tuple[np.ndarray, int]:
    """Proper edge coloring; returns (color per edge id, n_colors).

    Hypercube topologies are detected by name and colored by dimension
    (the optimal d-coloring); everything else uses a greedy coloring of
    the line graph (at most ``2Δ − 1`` colors).
    """
    if topology.name.startswith("hypercube-"):
        colors = np.empty(topology.n_edges, dtype=np.int64)
        for k, (u, v) in enumerate(topology.edges):
            colors[k] = int(u ^ v).bit_length() - 1
        return colors, int(colors.max()) + 1

    line = nx.line_graph(topology.graph)
    coloring = nx.coloring.greedy_color(line, strategy="largest_first")
    colors = np.empty(topology.n_edges, dtype=np.int64)
    for (u, v), c in coloring.items():
        colors[topology.edge_id(int(u), int(v))] = c
    return colors, int(colors.max()) + 1


class FluidDimensionExchange(FluidBalancer):
    """Exact pairwise averaging along the color schedule."""

    name = "dimension-exchange"

    def __init__(self) -> None:
        self._colors: np.ndarray | None = None
        self._n_colors = 0
        self._topology: Topology | None = None

    def reset(self, ctx: BalanceContext) -> None:
        self._topology = ctx.topology
        self._colors, self._n_colors = edge_coloring(ctx.topology)

    def fluid_step(self, h: np.ndarray, ctx: BalanceContext) -> np.ndarray:
        if self._colors is None or self._topology is not ctx.topology:
            self.reset(ctx)
        active = self._colors == (ctx.round_index % self._n_colors)
        e = ctx.topology.edges
        flow = np.zeros(ctx.topology.n_edges)
        # averaging: move half the difference toward the lighter side
        flow[active] = 0.5 * (h[e[active, 0]] - h[e[active, 1]])
        return flow


class DimensionExchange(Balancer):
    """Task-granular dimension exchange.

    On the active color class, the heavier endpoint of each edge sends
    its best-fitting task toward the pairwise average (half the load
    difference). *min_quota* suppresses exchanges once a pair is within
    one typical task of balance.
    """

    def __init__(self, min_quota: float = 0.25):
        if min_quota < 0:
            raise ConfigurationError(f"min_quota must be >= 0, got {min_quota}")
        self.min_quota = min_quota
        self.name = "task-dimension-exchange"
        self._colors: np.ndarray | None = None
        self._n_colors = 0
        self._topology: Topology | None = None

    def reset(self, ctx: BalanceContext) -> None:
        self._topology = ctx.topology
        self._colors, self._n_colors = edge_coloring(ctx.topology)

    def step(self, ctx: BalanceContext) -> list[Migration]:
        if self._colors is None or self._topology is not ctx.topology:
            self.reset(ctx)
        h = np.array(ctx.system.node_loads)
        e = ctx.topology.edges
        active_ids = np.nonzero(self._colors == (ctx.round_index % self._n_colors))[0]
        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []
        for eid in active_ids:
            eid = int(eid)
            if not free_and_up(ctx, used, eid):
                continue
            u, v = int(e[eid, 0]), int(e[eid, 1])
            quota = 0.5 * (h[u] - h[v])
            if abs(quota) < self.min_quota:
                continue
            src, dst = (u, v) if quota > 0 else (v, u)
            tid = pick_task_for_quota(ctx, src, abs(quota), exclude=planned)
            if tid is None:
                continue
            migrations.append(Migration(tid, src, dst))
            used[eid] = True
            planned.add(tid)
            load = ctx.system.load_of(tid)
            h[src] -= load
            h[dst] += load
        return migrations
