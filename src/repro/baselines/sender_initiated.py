"""Sender-initiated threshold balancing [Eager, Lazowska & Zahorjan '86].

The adaptive load-sharing scheme the paper cites ([7]): an overloaded
node (above ``T_high``) probes up to *probes* random neighbors and sends
one task to the first probe found below ``T_low``. Probing is local and
cheap; placement quality degrades when everyone is busy (no probe
succeeds) — the classic contrast case for gradient schemes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import free_and_up, pick_task_for_quota
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, Balancer, Migration


class SenderInitiated(Balancer):
    """Threshold + random probing, sender side.

    Parameters
    ----------
    delta:
        Relative watermarks: ``T_low = (1−δ)·mean``, ``T_high = (1+δ)·mean``.
    probes:
        Neighbors probed per overloaded node per round.
    """

    name = "sender-initiated"

    def __init__(self, delta: float = 0.25, probes: int = 2):
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {probes}")
        self.delta = delta
        self.probes = probes

    def step(self, ctx: BalanceContext) -> list[Migration]:
        h = np.array(ctx.system.node_loads)
        mean = float(h.mean())
        if mean <= 0:
            return []
        t_low = (1.0 - self.delta) * mean
        t_high = (1.0 + self.delta) * mean
        heavy = np.nonzero(h > t_high)[0]
        if heavy.shape[0] == 0:
            return []
        used = np.zeros(ctx.topology.n_edges, dtype=bool)
        planned: set[int] = set()
        migrations: list[Migration] = []
        for i in heavy[np.argsort(-h[heavy], kind="stable")]:
            i = int(i)
            js = ctx.topology.neighbors(i).copy()
            ctx.rng.shuffle(js)
            for j in js[: self.probes]:
                j = int(j)
                eid = ctx.topology.edge_id(i, j)
                if not free_and_up(ctx, used, eid):
                    continue
                if h[j] >= t_low:
                    continue
                quota = min(h[i] - mean, mean - h[j])
                tid = pick_task_for_quota(ctx, i, quota, exclude=planned)
                if tid is None:
                    continue
                migrations.append(Migration(tid, i, j))
                used[eid] = True
                planned.add(tid)
                load = ctx.system.load_of(tid)
                h[i] -= load
                h[j] += load
                break
        return migrations
