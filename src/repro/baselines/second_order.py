"""Second-order (SOS) diffusion [Muthukrishnan, Ghosh & Schultz '98].

The strongest member of the diffusion family the paper's related work
builds on: first-order diffusion (FOS) contracts imbalance by
``γ = max|1 − αλ|`` per round; the second-order scheme

    h_{t+1} = β · (I − αL) h_t + (1 − β) · h_{t−1}

(with the over-relaxation optimum ``β* = 2 / (1 + sqrt(1 − γ²))``)
contracts asymptotically like ``β* − 1 ≪ γ``, roughly squaring the
spectral gap. It is the diffusion-family speed limit that PPLB's
convergence numbers should be judged against (ablation bench E14).

Edge-flow form (what the engine consumes): since
``h_{t+1} − h_t = β·(M − I)h_t + (1 − β)(h_{t−1} − h_t)`` and
``h_t − h_{t−1}`` is exactly the divergence of the previous round's
applied flow,

    flow_t = β · fos_flow(h_t) − (1 − β) · flow_{t−1},

with ``flow_0 = fos_flow(h_0)``. Only a fluid variant exists — the
scheme's backward term has no task-granular meaning.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.diffusion import _edge_alphas, optimal_alpha
from repro.exceptions import ConfigurationError
from repro.interfaces import BalanceContext, FluidBalancer
from repro.network.topology import Topology


def optimal_beta(topology: Topology) -> float:
    """SOS over-relaxation optimum ``β* = 2/(1 + sqrt(1 − γ²))``.

    γ is the FOS contraction factor at the spectrally optimal α.
    """
    lam = np.linalg.eigvalsh(topology.laplacian)
    alpha = optimal_alpha(topology)
    gamma = float(np.abs(1.0 - alpha * lam[1:]).max())
    if gamma >= 1.0:
        raise ConfigurationError("FOS does not contract; SOS undefined")
    return 2.0 / (1.0 + float(np.sqrt(1.0 - gamma * gamma)))


class SecondOrderDiffusion(FluidBalancer):
    """SOS diffusion on divisible load (see module docstring).

    Parameters
    ----------
    beta:
        Over-relaxation parameter in ``(0, 2)``; ``None`` (default)
        selects the spectral optimum for the bound topology at reset.

    Notes
    -----
    SOS trajectories can momentarily demand more load from a node than
    it holds (negative intermediate state). The flow is globally damped
    by the largest factor keeping ``h ≥ 0`` — the standard practical
    guard; it may slow the final approach but preserves convergence.
    """

    name = "sos-diffusion"

    def __init__(self, beta: float | None = None):
        if beta is not None and not 0 < beta < 2:
            raise ConfigurationError(f"beta must lie in (0, 2), got {beta}")
        self._beta_arg = beta
        self.beta: float = float("nan")
        self._alphas: np.ndarray | None = None
        self._prev_flow: np.ndarray | None = None
        self._topology: Topology | None = None

    def reset(self, ctx: BalanceContext) -> None:
        self._topology = ctx.topology
        self._alphas = _edge_alphas(ctx.topology, "optimal")
        self.beta = (
            self._beta_arg if self._beta_arg is not None else optimal_beta(ctx.topology)
        )
        self._prev_flow = None

    def fluid_step(self, h: np.ndarray, ctx: BalanceContext) -> np.ndarray:
        if self._alphas is None or self._topology is not ctx.topology:
            self.reset(ctx)
        e = ctx.topology.edges
        fos = self._alphas * (h[e[:, 0]] - h[e[:, 1]])
        if self._prev_flow is None:
            flow = fos
        else:
            flow = self.beta * fos - (1.0 - self.beta) * self._prev_flow

        # Damp globally so no node is driven negative.
        net_out = np.zeros_like(h)
        np.add.at(net_out, e[:, 0], flow)
        np.subtract.at(net_out, e[:, 1], flow)
        over = net_out > 1e-15
        if over.any():
            scale = float(np.min(h[over] / net_out[over]))
            if scale < 1.0:
                flow = flow * max(scale, 0.0) * 0.999

        self._prev_flow = flow.copy()
        return flow
