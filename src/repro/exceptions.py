"""Exception hierarchy for the PPLB reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still being able to discriminate configuration problems from runtime
simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at construction time (fail fast) rather than deep inside
    a simulation loop, so parameter sweeps abort on the first bad point.
    """


class TopologyError(ReproError):
    """A topology construction or query is invalid.

    Examples: non-positive dimensions, querying a node id outside
    ``range(n_nodes)``, or requesting an edge that does not exist.
    """


class TaskError(ReproError):
    """A task-system operation is invalid.

    Examples: placing a task on a non-existent node, duplicate task ids,
    or a dependency referencing an unknown task.
    """


class SimulationError(ReproError):
    """The simulation engine detected an inconsistent state.

    This indicates a bug in a balancer implementation (e.g. migrating a
    task over a non-edge or over a faulted link) and is always a hard
    failure; the engine never silently repairs balancer output.
    """


class ConvergenceError(ReproError):
    """An analysis routine failed to reach its convergence criterion.

    Carries the partial result where that is useful for diagnostics.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial
