"""Hop-distance computation over topologies.

The balancers themselves act locally (one hop per decision — the paper's
whole point), but the *analysis* layer needs all-pairs hop distances for
locality metrics (how far did tasks travel? how close are dependent
tasks?). Distances are computed once per topology with SciPy's BFS-based
shortest path and cached on the :class:`Topology`.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.network.topology import Topology


def hop_distances(topology: Topology) -> np.ndarray:
    """All-pairs unweighted hop distances, shape ``(n, n)``, dtype int32.

    Uses breadth-first search from every node (``method='D'`` on an
    unweighted CSR adjacency is Dijkstra; for 0/1 weights it degenerates
    to BFS cost). Unreachable pairs would map to a negative sentinel, but
    :class:`Topology` guarantees connectivity so all entries are finite.
    """
    n = topology.n_nodes
    e = topology.edges
    data = np.ones(2 * e.shape[0], dtype=np.int8)
    rows = np.concatenate([e[:, 0], e[:, 1]])
    cols = np.concatenate([e[:, 1], e[:, 0]])
    adj = csr_matrix((data, (rows, cols)), shape=(n, n))
    d = shortest_path(adj, method="D", unweighted=True, directed=False)
    return d.astype(np.int32)


def path_hops(topology: Topology, route: list[int]) -> int:
    """Number of hops along an explicit node *route* (validates edges)."""
    hops = 0
    for u, v in zip(route[:-1], route[1:]):
        topology.edge_id(u, v)  # raises TopologyError on non-edges
        hops += 1
    return hops
