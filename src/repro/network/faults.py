"""Link fault model (paper §4.2: ``F`` matrix, fault tolerance claims).

The paper treats ``f_ij`` as "the probability of occurrence of a fault in
a time unit" and bakes fault *avoidance* into the link cost ``e_ij``.
To evaluate that claim we also need faults to actually *happen*:
:class:`FaultModel` realises them per simulation round.

Two fault processes are supported, composable:

* **Transient faults** — each round, each link is independently down with
  its probability ``f_ij`` (drawn fresh every round). A transfer
  scheduled over a down link fails and the task stays put (the engine
  charges no progress but the attempt is counted).
* **Permanent kills** — a set of links can be killed at given rounds and
  optionally repaired later, modelling hard failures. Killing is refused
  if it would disconnect the network (the paper assumes a connected
  system throughout).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError, TopologyError
from repro.network.links import LinkAttributes
from repro.network.topology import Topology
from repro.rng import RngLike, ensure_rng


@dataclass
class FaultModel:
    """Realises link faults round by round.

    Parameters
    ----------
    attrs:
        Link attributes carrying the per-edge fault probabilities.
    rng:
        Seeded generator for the transient draws.
    permanent:
        Mapping ``round -> list of (u, v)`` links to kill at that round.
    repair_after:
        If set, permanently killed links come back up after this many
        rounds.
    """

    attrs: LinkAttributes
    rng: RngLike = None
    permanent: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    repair_after: int | None = None

    def __post_init__(self) -> None:
        self.rng = ensure_rng(self.rng)
        self.topology: Topology = self.attrs.topology
        if self.repair_after is not None and self.repair_after <= 0:
            raise ConfigurationError(
                f"repair_after must be positive or None, got {self.repair_after}"
            )
        for rnd, links in self.permanent.items():
            if rnd < 0:
                raise ConfigurationError(f"fault round must be >= 0, got {rnd}")
            for u, v in links:
                self.topology.edge_id(u, v)  # validates the edge exists
        self._down_until: dict[int, int | None] = {}  # edge id -> repair round (None = forever)
        self._transient_down: np.ndarray = np.zeros(self.topology.n_edges, dtype=bool)
        self._round = -1

    # ------------------------------------------------------------------ #

    def advance(self, round_index: int) -> None:
        """Realise faults for *round_index* (call once per round)."""
        if round_index <= self._round:
            raise ConfigurationError(
                f"fault rounds must advance monotonically: {round_index} after {self._round}"
            )
        self._round = round_index

        # Permanent kills scheduled for this round.
        for u, v in self.permanent.get(round_index, []):
            eid = self.topology.edge_id(u, v)
            until = (
                None if self.repair_after is None else round_index + self.repair_after
            )
            trial = dict(self._down_until)
            trial[eid] = until
            if self._would_disconnect(trial):
                raise TopologyError(
                    f"killing link ({u}, {v}) at round {round_index} would "
                    "disconnect the network"
                )
            self._down_until = trial

        # Repairs.
        self._down_until = {
            eid: until
            for eid, until in self._down_until.items()
            if until is None or until > round_index
        }

        # Transient faults: independent Bernoulli per link per round.
        f = self.attrs.fault_prob
        if (f > 0).any():
            self._transient_down = self.rng.random(f.shape[0]) < f
        else:
            self._transient_down[:] = False

    def _would_disconnect(self, down: dict[int, int | None]) -> bool:
        g = nx.Graph()
        g.add_nodes_from(range(self.topology.n_nodes))
        for k, (u, v) in enumerate(self.topology.edges):
            if k not in down:
                g.add_edge(int(u), int(v))
        return not nx.is_connected(g)

    # ------------------------------------------------------------------ #

    def link_up(self, u: int, v: int) -> bool:
        """Whether link ``{u, v}`` is usable in the current round."""
        eid = self.topology.edge_id(u, v)
        if eid in self._down_until:
            return False
        return not bool(self._transient_down[eid])

    def up_mask(self) -> np.ndarray:
        """Boolean per-edge availability for the current round."""
        mask = ~self._transient_down.copy()
        for eid in self._down_until:
            mask[eid] = False
        return mask

    @property
    def any_faults_possible(self) -> bool:
        """False iff no fault can ever occur (fast path for the engine)."""
        return bool((self.attrs.fault_prob > 0).any()) or bool(self.permanent)
