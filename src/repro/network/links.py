"""Link attributes BW/D/F and the link cost ``e_ij`` (paper §4.2).

The paper models each link with three constant configuration parameters —
bandwidth, length and per-time-unit fault probability, collected in the
``BW``, ``D`` and ``F`` matrices — and derives the slope-denominator
weight

.. math::

    e_{ij} \\;=\\; e_0 \\cdot
        \\frac{d_{ij}}{bw_{ij} \\cdot (1-f_{ij})^{\\,c_1 d_{ij}/bw_{ij}}}

(the three proportionalities of §4.2 composed; ``(1-f)^{c1 d/bw}`` is "a
measure of the probability that the load does not encounter any faults
during its transmission", so dividing by it penalises unreliable links).
A higher ``e_ij`` flattens the perceived slope toward that neighbor, which
simultaneously discourages transfers over slow/long/unreliable links and
increases the heat (traffic cost) charged when a transfer does happen.

Attributes are stored per edge (arrays indexed by
``Topology.edge_id(u, v)``), with dense-matrix exports for tests and for
symmetry with the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.rng import RngLike, ensure_rng


@dataclass
class LinkAttributes:
    """Per-edge bandwidth, length and fault probability for a topology.

    Arrays are indexed by edge id (``Topology.edge_id``) and therefore
    symmetric by construction, matching the undirected network model.

    Attributes
    ----------
    topology:
        The network the attributes belong to.
    bandwidth:
        ``bw_ij > 0`` per edge (higher = cheaper).
    distance:
        ``d_ij > 0`` per edge (physical length / latency proxy).
    fault_prob:
        ``f_ij ∈ [0, 1)`` per edge — probability that the link faults in
        one time unit.
    """

    topology: Topology
    bandwidth: np.ndarray
    distance: np.ndarray
    fault_prob: np.ndarray

    def __post_init__(self) -> None:
        m = self.topology.n_edges
        for nameval in (("bandwidth", self.bandwidth), ("distance", self.distance),
                        ("fault_prob", self.fault_prob)):
            name, arr = nameval
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (m,):
                raise ConfigurationError(
                    f"{name} must have shape ({m},) for topology "
                    f"'{self.topology.name}', got {arr.shape}"
                )
            setattr(self, name, arr)
        if (self.bandwidth <= 0).any():
            raise ConfigurationError("all bandwidths must be positive")
        if (self.distance <= 0).any():
            raise ConfigurationError("all link distances must be positive")
        if ((self.fault_prob < 0) | (self.fault_prob >= 1)).any():
            raise ConfigurationError("fault probabilities must lie in [0, 1)")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(
        cls,
        topology: Topology,
        bandwidth: float = 1.0,
        distance: float = 1.0,
        fault_prob: float = 0.0,
    ) -> "LinkAttributes":
        """Homogeneous links — the oversimplified model the paper critiques.

        Useful as the control configuration: with uniform links PPLB
        reduces to a pure gradient scheme.
        """
        m = topology.n_edges
        return cls(
            topology=topology,
            bandwidth=np.full(m, float(bandwidth)),
            distance=np.full(m, float(distance)),
            fault_prob=np.full(m, float(fault_prob)),
        )

    @classmethod
    def heterogeneous(
        cls,
        topology: Topology,
        seed: RngLike = None,
        bandwidth_range: tuple[float, float] = (0.5, 2.0),
        distance_range: tuple[float, float] = (0.5, 2.0),
        fault_range: tuple[float, float] = (0.0, 0.0),
    ) -> "LinkAttributes":
        """Randomly heterogeneous links (uniform draws per edge)."""
        rng = ensure_rng(seed)
        m = topology.n_edges

        def draw(lohi: tuple[float, float]) -> np.ndarray:
            lo, hi = lohi
            if lo > hi:
                raise ConfigurationError(f"invalid range {lohi}")
            return rng.uniform(lo, hi, m) if hi > lo else np.full(m, float(lo))

        return cls(
            topology=topology,
            bandwidth=draw(bandwidth_range),
            distance=draw(distance_range),
            fault_prob=draw(fault_range),
        )

    @classmethod
    def euclidean(
        cls,
        topology: Topology,
        bandwidth: float = 1.0,
        fault_prob: float = 0.0,
        min_distance: float = 1e-3,
    ) -> "LinkAttributes":
        """Distances from the topology's 2-D embedding (M2 geometry)."""
        coords = topology.coords
        e = topology.edges
        d = np.linalg.norm(coords[e[:, 0]] - coords[e[:, 1]], axis=1)
        d = np.maximum(d, min_distance)
        m = topology.n_edges
        return cls(
            topology=topology,
            bandwidth=np.full(m, float(bandwidth)),
            distance=d,
            fault_prob=np.full(m, float(fault_prob)),
        )

    # ------------------------------------------------------------------ #
    # Matrix exports (paper notation)
    # ------------------------------------------------------------------ #

    def _to_matrix(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        n = self.topology.n_nodes
        mat = np.full((n, n), fill, dtype=np.float64)
        e = self.topology.edges
        mat[e[:, 0], e[:, 1]] = values
        mat[e[:, 1], e[:, 0]] = values
        return mat

    def bw_matrix(self) -> np.ndarray:
        """The paper's ``BW`` matrix (0 where no edge)."""
        return self._to_matrix(self.bandwidth)

    def d_matrix(self) -> np.ndarray:
        """The paper's ``D`` matrix (0 where no edge)."""
        return self._to_matrix(self.distance)

    def f_matrix(self) -> np.ndarray:
        """The paper's ``F`` matrix (0 where no edge)."""
        return self._to_matrix(self.fault_prob)


def link_costs(
    attrs: LinkAttributes, c1: float = 1.0, e0: float = 1.0
) -> np.ndarray:
    """Per-edge cost ``e_ij`` from §4.2, indexed by edge id.

    ``e_ij = e0 · d / (bw · (1−f)^(c1·d/bw))``. With uniform unit links and
    zero faults this is ``e0`` for every edge.

    Parameters
    ----------
    attrs:
        Link attribute arrays.
    c1:
        The paper's exposure constant: how strongly the transmission-time
        proxy ``d/bw`` amplifies fault exposure.
    e0:
        Overall scale (the proportionality constant the paper leaves
        free). Larger ``e0`` flattens all slopes uniformly.
    """
    if c1 < 0:
        raise ConfigurationError(f"c1 must be non-negative, got {c1}")
    if e0 <= 0:
        raise ConfigurationError(f"e0 must be positive, got {e0}")
    d = attrs.distance
    bw = attrs.bandwidth
    f = attrs.fault_prob
    safe = np.power(1.0 - f, c1 * d / bw)
    return e0 * d / (bw * safe)
