"""Topology: the interconnection graph ``G(V, E)`` (paper §4.2).

Nodes are the integers ``0 .. n-1``. The class keeps three synchronised
views of the same graph:

* a :class:`networkx.Graph` for algorithms that want one (diameter,
  colorings, layouts),
* array form — an ``(m, 2)`` edge array, per-node neighbor arrays and
  a flat :class:`CSRAdjacency` export — for the vectorised hot paths of
  the balancers,
* a 2-D embedding (the paper's ``M2: V(G) → R²``) used for the load
  surface, for locality metrics and for ASCII rendering.

Instances are immutable after construction; fault state lives in
:class:`repro.network.faults.FaultModel`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError


@dataclass(frozen=True)
class CSRAdjacency:
    """Compressed-sparse-row view of an undirected topology.

    The flat form of the per-node neighbor lists: slot ``s`` in
    ``indptr[u] <= s < indptr[u + 1]`` holds neighbor ``indices[s]`` of
    node ``u``, reached over edge ``edge_ids[s]`` (an index into
    :attr:`Topology.edges` and every per-edge attribute array: link
    costs, fault masks, usage reservations). ``rows[s]`` is ``u`` itself
    — the ``np.repeat`` companion that lets whole-graph expressions like
    ``h[rows] - h[indices]`` evaluate every directed (node, neighbor)
    pair in one array operation. Neighbors are sorted within each row,
    matching :meth:`Topology.neighbors`.

    This is the export the vectorised balancer fast path and any future
    array-at-scale consumer build on; it is immutable and shared.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray
    rows: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.indptr.shape[0] - 1

    @property
    def n_slots(self) -> int:
        """Number of directed (node, neighbor) slots: ``2·m``."""
        return self.indices.shape[0]

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of *node* (view into :attr:`indices`)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def incident_edges(self, node: int) -> np.ndarray:
        """Edge ids of *node*'s links, parallel to :meth:`neighbors`."""
        return self.edge_ids[self.indptr[node]:self.indptr[node + 1]]

    def degrees(self) -> np.ndarray:
        """Per-node degree vector derived from :attr:`indptr`."""
        return np.diff(self.indptr)


class Topology:
    """An immutable interconnection network over nodes ``0..n-1``.

    Parameters
    ----------
    graph:
        Connected undirected graph whose nodes are exactly
        ``range(n)``. Self-loops are rejected.
    name:
        Human-readable identifier (used in benchmark tables).
    coords:
        Optional mapping/array of 2-D coordinates per node (the ``M2``
        embedding). When omitted a spring layout is computed lazily.
    """

    def __init__(
        self,
        graph: nx.Graph,
        name: str = "custom",
        coords: Mapping[int, Iterable[float]] | np.ndarray | None = None,
    ):
        n = graph.number_of_nodes()
        if n == 0:
            raise TopologyError("topology must have at least one node")
        if set(graph.nodes) != set(range(n)):
            raise TopologyError("graph nodes must be exactly 0..n-1; relabel before wrapping")
        if any(u == v for u, v in graph.edges):
            raise TopologyError("self-loops are not allowed")
        if n > 1 and not nx.is_connected(graph):
            raise TopologyError("topology must be connected")

        self._graph = nx.freeze(graph.copy())
        self.name = name
        self.n_nodes = n

        edges = np.asarray(
            sorted((min(u, v), max(u, v)) for u, v in graph.edges), dtype=np.int64
        ).reshape(-1, 2)
        self.edges = edges
        self.n_edges = edges.shape[0]

        # Per-node neighbor arrays (sorted), and degree vector.
        nbr: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            nbr[u].append(int(v))
            nbr[v].append(int(u))
        self._neighbors = [np.asarray(sorted(ns), dtype=np.int64) for ns in nbr]
        self.degree = np.asarray([len(ns) for ns in nbr], dtype=np.int64)

        # Edge lookup: (min, max) -> edge index, for per-edge attribute arrays.
        self._edge_index: dict[tuple[int, int], int] = {
            (int(u), int(v)): k for k, (u, v) in enumerate(edges)
        }

        if coords is not None:
            arr = np.zeros((n, 2), dtype=np.float64)
            if isinstance(coords, np.ndarray):
                if coords.shape != (n, 2):
                    raise TopologyError(
                        f"coords array must have shape ({n}, 2), got {coords.shape}"
                    )
                arr[:] = coords
            else:
                for node, xy in coords.items():
                    arr[int(node)] = np.asarray(tuple(xy), dtype=np.float64)
            self._coords: np.ndarray | None = arr
        else:
            self._coords = None

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> nx.Graph:
        """The (frozen) networkx view of the topology."""
        return self._graph

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of *node* (read-only array)."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")
        return self._neighbors[node]

    @property
    def coords(self) -> np.ndarray:
        """2-D embedding ``M2`` of the nodes, shape ``(n, 2)``.

        Computed with a deterministic spring layout when the builder did
        not supply natural coordinates.
        """
        if self._coords is None:
            pos = nx.spring_layout(self._graph, seed=0)
            self._coords = np.asarray([pos[i] for i in range(self.n_nodes)], dtype=np.float64)
        return self._coords

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is a link of the network."""
        return (min(u, v), max(u, v)) in self._edge_index

    def edge_id(self, u: int, v: int) -> int:
        """Index of edge ``{u, v}`` into :attr:`edges` / per-edge arrays."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        try:
            return self._edge_index[key]
        except KeyError:
            raise TopologyError(f"no edge between {u} and {v} in topology '{self.name}'")

    # ------------------------------------------------------------------ #
    # Derived structure (cached)
    # ------------------------------------------------------------------ #

    @cached_property
    def csr(self) -> CSRAdjacency:
        """CSR/array export of the adjacency (see :class:`CSRAdjacency`).

        Built fully vectorised (no per-node Python loop), so it is cheap
        even for the large-N topologies; the arrays are marked read-only
        because every consumer shares them.
        """
        n = self.n_nodes
        m = self.n_edges
        if m == 0:
            indptr = np.zeros(n + 1, dtype=np.int64)
            empty = np.empty(0, dtype=np.int64)
            return CSRAdjacency(indptr, empty, empty.copy(), empty.copy())
        rows = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        cols = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        eids = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
        order = np.lexsort((cols, rows))
        rows, cols, eids = rows[order], cols[order], eids[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        for arr in (indptr, cols, eids, rows):
            arr.flags.writeable = False
        return CSRAdjacency(indptr, cols, eids, rows)

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Dense boolean adjacency matrix, shape ``(n, n)``."""
        a = np.zeros((self.n_nodes, self.n_nodes), dtype=bool)
        a[self.edges[:, 0], self.edges[:, 1]] = True
        a[self.edges[:, 1], self.edges[:, 0]] = True
        return a

    @cached_property
    def laplacian(self) -> np.ndarray:
        """Dense graph Laplacian ``L = D − A`` as float64."""
        a = self.adjacency.astype(np.float64)
        return np.diag(a.sum(axis=1)) - a

    @cached_property
    def hop_distances(self) -> np.ndarray:
        """All-pairs unweighted hop distances, shape ``(n, n)`` (int16)."""
        from repro.network.routing import hop_distances

        return hop_distances(self)

    @cached_property
    def diameter(self) -> int:
        """Graph diameter in hops."""
        return int(self.hop_distances.max())

    @cached_property
    def max_degree(self) -> int:
        """Maximum node degree."""
        return int(self.degree.max())

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology('{self.name}', n={self.n_nodes}, m={self.n_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.edges.shape == other.edges.shape
            and bool((self.edges == other.edges).all())
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.edges.tobytes()))
