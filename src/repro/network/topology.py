"""Topology: the interconnection graph ``G(V, E)`` (paper §4.2).

Nodes are the integers ``0 .. n-1``. The class keeps three synchronised
views of the same graph:

* a :class:`networkx.Graph` for algorithms that want one (diameter,
  colorings, layouts),
* array form — an ``(m, 2)`` edge array and per-node neighbor arrays —
  for the vectorised hot paths of the balancers,
* a 2-D embedding (the paper's ``M2: V(G) → R²``) used for the load
  surface, for locality metrics and for ASCII rendering.

Instances are immutable after construction; fault state lives in
:class:`repro.network.faults.FaultModel`, not here.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError


class Topology:
    """An immutable interconnection network over nodes ``0..n-1``.

    Parameters
    ----------
    graph:
        Connected undirected graph whose nodes are exactly
        ``range(n)``. Self-loops are rejected.
    name:
        Human-readable identifier (used in benchmark tables).
    coords:
        Optional mapping/array of 2-D coordinates per node (the ``M2``
        embedding). When omitted a spring layout is computed lazily.
    """

    def __init__(
        self,
        graph: nx.Graph,
        name: str = "custom",
        coords: Mapping[int, Iterable[float]] | np.ndarray | None = None,
    ):
        n = graph.number_of_nodes()
        if n == 0:
            raise TopologyError("topology must have at least one node")
        if set(graph.nodes) != set(range(n)):
            raise TopologyError("graph nodes must be exactly 0..n-1; relabel before wrapping")
        if any(u == v for u, v in graph.edges):
            raise TopologyError("self-loops are not allowed")
        if n > 1 and not nx.is_connected(graph):
            raise TopologyError("topology must be connected")

        self._graph = nx.freeze(graph.copy())
        self.name = name
        self.n_nodes = n

        edges = np.asarray(
            sorted((min(u, v), max(u, v)) for u, v in graph.edges), dtype=np.int64
        ).reshape(-1, 2)
        self.edges = edges
        self.n_edges = edges.shape[0]

        # Per-node neighbor arrays (sorted), and degree vector.
        nbr: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            nbr[u].append(int(v))
            nbr[v].append(int(u))
        self._neighbors = [np.asarray(sorted(ns), dtype=np.int64) for ns in nbr]
        self.degree = np.asarray([len(ns) for ns in nbr], dtype=np.int64)

        # Edge lookup: (min, max) -> edge index, for per-edge attribute arrays.
        self._edge_index: dict[tuple[int, int], int] = {
            (int(u), int(v)): k for k, (u, v) in enumerate(edges)
        }

        if coords is not None:
            arr = np.zeros((n, 2), dtype=np.float64)
            if isinstance(coords, np.ndarray):
                if coords.shape != (n, 2):
                    raise TopologyError(
                        f"coords array must have shape ({n}, 2), got {coords.shape}"
                    )
                arr[:] = coords
            else:
                for node, xy in coords.items():
                    arr[int(node)] = np.asarray(tuple(xy), dtype=np.float64)
            self._coords: np.ndarray | None = arr
        else:
            self._coords = None

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> nx.Graph:
        """The (frozen) networkx view of the topology."""
        return self._graph

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of *node* (read-only array)."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")
        return self._neighbors[node]

    @property
    def coords(self) -> np.ndarray:
        """2-D embedding ``M2`` of the nodes, shape ``(n, 2)``.

        Computed with a deterministic spring layout when the builder did
        not supply natural coordinates.
        """
        if self._coords is None:
            pos = nx.spring_layout(self._graph, seed=0)
            self._coords = np.asarray([pos[i] for i in range(self.n_nodes)], dtype=np.float64)
        return self._coords

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is a link of the network."""
        return (min(u, v), max(u, v)) in self._edge_index

    def edge_id(self, u: int, v: int) -> int:
        """Index of edge ``{u, v}`` into :attr:`edges` / per-edge arrays."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        try:
            return self._edge_index[key]
        except KeyError:
            raise TopologyError(f"no edge between {u} and {v} in topology '{self.name}'")

    # ------------------------------------------------------------------ #
    # Derived structure (cached)
    # ------------------------------------------------------------------ #

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Dense boolean adjacency matrix, shape ``(n, n)``."""
        a = np.zeros((self.n_nodes, self.n_nodes), dtype=bool)
        a[self.edges[:, 0], self.edges[:, 1]] = True
        a[self.edges[:, 1], self.edges[:, 0]] = True
        return a

    @cached_property
    def laplacian(self) -> np.ndarray:
        """Dense graph Laplacian ``L = D − A`` as float64."""
        a = self.adjacency.astype(np.float64)
        return np.diag(a.sum(axis=1)) - a

    @cached_property
    def hop_distances(self) -> np.ndarray:
        """All-pairs unweighted hop distances, shape ``(n, n)`` (int16)."""
        from repro.network.routing import hop_distances

        return hop_distances(self)

    @cached_property
    def diameter(self) -> int:
        """Graph diameter in hops."""
        return int(self.hop_distances.max())

    @cached_property
    def max_degree(self) -> int:
        """Maximum node degree."""
        return int(self.degree.max())

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology('{self.name}', n={self.n_nodes}, m={self.n_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.edges.shape == other.edges.shape
            and bool((self.edges == other.edges).all())
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.edges.tobytes()))
