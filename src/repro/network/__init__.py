"""Interconnection-network substrate (paper §4.1-4.2).

Provides the multiprocessor's communication fabric:

* :class:`Topology` — immutable graph of processing nodes with integer ids,
  array-based adjacency for vectorised balancer code, and a 2-D embedding
  (the paper's ``M2`` mapping) so the load surface is a 3-D manifold.
* :mod:`builders <repro.network.builders>` — mesh, torus, hypercube, ring,
  star, complete, tree and random topologies (the paper's §2 cites results
  on mesh/torus/hypercube; all are first-class here).
* :class:`LinkAttributes` / :func:`link_costs` — the per-link bandwidth,
  length and fault-probability matrices ``BW``, ``D``, ``F`` of §4.2 and
  the derived cost ``e_ij = d/(bw·(1−f)^(c1·d/bw))``.
* :class:`FaultModel` — per-round transient link faults plus permanent
  link kills ("the probability of occurrence of a fault in a time unit").
"""

from repro.network.topology import CSRAdjacency, Topology
from repro.network.builders import (
    complete,
    hypercube,
    kary_ncube,
    mesh,
    random_connected,
    ring,
    star,
    torus,
    tree,
)
from repro.network.links import LinkAttributes, link_costs
from repro.network.faults import FaultModel
from repro.network.routing import hop_distances

__all__ = [
    "CSRAdjacency",
    "Topology",
    "mesh",
    "torus",
    "hypercube",
    "ring",
    "star",
    "complete",
    "tree",
    "kary_ncube",
    "random_connected",
    "LinkAttributes",
    "link_costs",
    "FaultModel",
    "hop_distances",
]
