"""Topology builders: the networks the paper (and its citations) evaluate on.

Every builder returns a :class:`~repro.network.topology.Topology` with
integer nodes ``0..n-1`` and a natural 2-D embedding (the paper's ``M2``
mapping, §4.1). Mesh/torus/hypercube are the topologies the paper's
related work derives optimal diffusion parameters for [19] and proves
dimension-exchange results on [6]; ring/star/tree/complete/random round
out the test matrix.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import Topology
from repro.rng import RngLike, ensure_rng


def _grid_coords(rows: int, cols: int) -> np.ndarray:
    """Unit-square coordinates for a rows×cols grid, row-major node ids."""
    coords = np.zeros((rows * cols, 2), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            coords[r * cols + c] = (c / max(cols - 1, 1), r / max(rows - 1, 1))
    return coords


def mesh(rows: int, cols: int | None = None) -> Topology:
    """2-D mesh (grid) of *rows* × *cols* nodes, row-major ids.

    The paper's primary visual analogy: the load surface literally is a
    height map over this grid.
    """
    if cols is None:
        cols = rows
    if rows < 1 or cols < 1:
        raise TopologyError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
    g = nx.Graph()
    g.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return Topology(g, name=f"mesh-{rows}x{cols}", coords=_grid_coords(rows, cols))


def torus(rows: int, cols: int | None = None) -> Topology:
    """2-D torus: mesh with wraparound links in both dimensions.

    Requires at least 3 nodes per wrapped dimension so wrap links are not
    duplicates of mesh links.
    """
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise TopologyError(f"torus dimensions must be >= 3, got {rows}x{cols}")
    g = nx.Graph()
    g.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            g.add_edge(u, r * cols + (c + 1) % cols)
            g.add_edge(u, ((r + 1) % rows) * cols + c)
    return Topology(g, name=f"torus-{rows}x{cols}", coords=_grid_coords(rows, cols))


def hypercube(dim: int) -> Topology:
    """*dim*-dimensional binary hypercube, ``2**dim`` nodes.

    Node ids are the binary labels; two nodes are adjacent iff their
    labels differ in exactly one bit. Embedded in 2-D by splitting the
    label bits between the axes (Gray-coded so single-bit neighbors stay
    geometrically close — a planar-ish drawing of the cube).
    """
    if dim < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dim}")
    n = 1 << dim
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if v > u:
                g.add_edge(u, v)

    half = dim // 2
    lo_bits, hi_bits = half, dim - half
    lo_n, hi_n = 1 << lo_bits, 1 << hi_bits

    def gray_rank(x: int) -> int:
        # position of Gray code x along the Gray sequence
        r = 0
        while x:
            r ^= x
            x >>= 1
        return r

    coords = np.zeros((n, 2), dtype=np.float64)
    for u in range(n):
        lo = u & (lo_n - 1)
        hi = u >> lo_bits
        coords[u] = (
            gray_rank(lo) / max(lo_n - 1, 1),
            gray_rank(hi) / max(hi_n - 1, 1),
        )
    return Topology(g, name=f"hypercube-{dim}", coords=coords)


def ring(n: int) -> Topology:
    """Cycle of *n* >= 3 nodes, embedded on the unit circle."""
    if n < 3:
        raise TopologyError(f"ring needs at least 3 nodes, got {n}")
    g = nx.cycle_graph(n)
    theta = 2 * np.pi * np.arange(n) / n
    coords = 0.5 + 0.5 * np.column_stack([np.cos(theta), np.sin(theta)])
    return Topology(g, name=f"ring-{n}", coords=coords)


def star(n: int) -> Topology:
    """Star: node 0 is the hub connected to ``n-1`` leaves."""
    if n < 2:
        raise TopologyError(f"star needs at least 2 nodes, got {n}")
    g = nx.star_graph(n - 1)
    coords = np.zeros((n, 2), dtype=np.float64)
    coords[0] = (0.5, 0.5)
    theta = 2 * np.pi * np.arange(n - 1) / max(n - 1, 1)
    coords[1:] = 0.5 + 0.45 * np.column_stack([np.cos(theta), np.sin(theta)])
    return Topology(g, name=f"star-{n}", coords=coords)


def complete(n: int) -> Topology:
    """Complete graph: the LAN-style 'all nodes adjacent' setting of §1."""
    if n < 2:
        raise TopologyError(f"complete graph needs at least 2 nodes, got {n}")
    g = nx.complete_graph(n)
    theta = 2 * np.pi * np.arange(n) / n
    coords = 0.5 + 0.5 * np.column_stack([np.cos(theta), np.sin(theta)])
    return Topology(g, name=f"complete-{n}", coords=coords)


def tree(branching: int, depth: int) -> Topology:
    """Complete *branching*-ary tree of the given *depth* (root = node 0)."""
    if branching < 1 or depth < 0:
        raise TopologyError(f"invalid tree parameters: branching={branching}, depth={depth}")
    g = nx.balanced_tree(branching, depth)
    n = g.number_of_nodes()
    coords = np.zeros((n, 2), dtype=np.float64)
    # BFS layering for y; in-layer index for x.
    from collections import deque

    level: dict[int, int] = {0: 0}
    order: list[list[int]] = [[0]]
    q = deque([0])
    while q:
        u = q.popleft()
        for v in g.neighbors(u):
            if v not in level:
                level[v] = level[u] + 1
                while len(order) <= level[v]:
                    order.append([])
                order[level[v]].append(v)
                q.append(v)
    for lvl, nodes in enumerate(order):
        for k, u in enumerate(nodes):
            coords[u] = ((k + 0.5) / len(nodes), 1.0 - lvl / max(depth, 1))
    return Topology(g, name=f"tree-{branching}ary-d{depth}", coords=coords)


def kary_ncube(k: int, n: int) -> Topology:
    """k-ary n-cube: n dimensions of k nodes each, wrapped (k >= 3).

    The family that unifies the paper's evaluation topologies: a ring is
    ``kary_ncube(k, 1)``, a k×k torus is ``kary_ncube(k, 2)``, and the
    binary hypercube is the (unwrapped) ``k = 2`` limit — for ``k = 2``
    this builder returns :func:`hypercube` (wrap links would duplicate
    mesh links).

    Node id = mixed-radix encoding of its coordinate vector. Embedded in
    2-D by splitting the dimensions across the two axes.
    """
    if n < 1:
        raise TopologyError(f"need n >= 1 dimensions, got {n}")
    if k == 2:
        return hypercube(n)
    if k < 3:
        raise TopologyError(f"need k >= 3 (or exactly 2 for the hypercube), got {k}")
    total = k**n
    g = nx.Graph()
    g.add_nodes_from(range(total))

    def coords_of(u: int) -> list[int]:
        out = []
        for _ in range(n):
            out.append(u % k)
            u //= k
        return out

    for u in range(total):
        cu = coords_of(u)
        for d in range(n):
            cv = list(cu)
            cv[d] = (cv[d] + 1) % k
            v = sum(c * k**i for i, c in enumerate(cv))
            g.add_edge(u, v)

    # 2-D embedding: even dimensions -> x, odd dimensions -> y.
    coords = np.zeros((total, 2), dtype=np.float64)
    x_dims = list(range(0, n, 2))
    y_dims = list(range(1, n, 2))
    x_span = max(k ** len(x_dims) - 1, 1)
    y_span = max(k ** len(y_dims) - 1, 1)
    for u in range(total):
        cu = coords_of(u)
        x = sum(cu[d] * k**i for i, d in enumerate(x_dims))
        y = sum(cu[d] * k**i for i, d in enumerate(y_dims))
        coords[u] = (x / x_span, y / y_span)
    return Topology(g, name=f"kary-{k}-{n}cube", coords=coords)


def random_connected(n: int, avg_degree: float = 4.0, seed: RngLike = None) -> Topology:
    """Connected Erdős–Rényi-style random topology.

    Draws ``G(n, p)`` with ``p = avg_degree/(n-1)`` and, if disconnected,
    joins components with random bridge edges (so degree stays close to
    the target instead of resampling until lucky). Deterministic given
    *seed*.
    """
    if n < 2:
        raise TopologyError(f"random topology needs at least 2 nodes, got {n}")
    rng = ensure_rng(seed)
    p = min(max(avg_degree / max(n - 1, 1), 0.0), 1.0)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    iu, ju = np.triu_indices(n, k=1)
    take = rng.random(iu.shape[0]) < p
    g.add_edges_from(zip(iu[take].tolist(), ju[take].tolist()))
    comps = [list(c) for c in nx.connected_components(g)]
    while len(comps) > 1:
        a = comps.pop()
        b = comps[-1]
        u = int(rng.choice(a))
        v = int(rng.choice(b))
        g.add_edge(u, v)
        comps[-1] = b + a
    pos = nx.spring_layout(g, seed=int(rng.integers(0, 2**31 - 1)))
    coords = np.asarray([pos[i] for i in range(n)], dtype=np.float64)
    coords -= coords.min(axis=0)
    span = coords.max(axis=0)
    span[span == 0] = 1.0
    coords /= span
    return Topology(g, name=f"random-{n}", coords=coords)
