"""The task-resource affinity matrix ``R`` (paper §4.2).

"The tasks can also be dependent to a node due to the need for the
resources which are present in that node. We show these dependencies
with another matrix R_{|L|×|V|}."

Stored sparsely (most tasks need no pinned resource). ``R[t, v] > 0``
makes node *v* sticky for task *t*: it raises the task's static friction
``µs`` on that node, so a larger load gradient is required to pull the
task away — and proportionally raises ``µk``, so if it does move it stays
nearby (both effects flow through :mod:`repro.core.friction`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskError


class ResourceMap:
    """Sparse task-to-node resource affinities.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the topology (for bounds checking).
    """

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise TaskError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self._aff: dict[int, dict[int, float]] = {}

    def set_affinity(self, tid: int, node: int, weight: float) -> None:
        """Set ``R[tid, node] = weight`` (0 removes the entry)."""
        if not 0 <= node < self.n_nodes:
            raise TaskError(f"node {node} out of range [0, {self.n_nodes})")
        if weight < 0:
            raise TaskError(f"affinity weight must be >= 0, got {weight}")
        if weight == 0:
            row = self._aff.get(tid)
            if row is not None:
                row.pop(node, None)
                if not row:
                    del self._aff[tid]
            return
        self._aff.setdefault(tid, {})[node] = float(weight)

    def affinity(self, tid: int, node: int) -> float:
        """``R[tid, node]`` (0 when the task has no tie to the node)."""
        return self._aff.get(tid, {}).get(node, 0.0)

    def nodes_for(self, tid: int) -> dict[int, float]:
        """All nonzero affinities of task *tid* as ``{node: weight}``."""
        return dict(self._aff.get(tid, {}))

    def drop_task(self, tid: int) -> None:
        """Forget all affinities of a removed task."""
        self._aff.pop(tid, None)

    def has_affinities(self, tid: int) -> bool:
        """Whether the task is pinned to any node at all."""
        return bool(self._aff.get(tid))

    def to_dense(self, n_tasks: int) -> np.ndarray:
        """Dense ``(n_tasks, n_nodes)`` matrix (tests / small systems only)."""
        out = np.zeros((n_tasks, self.n_nodes), dtype=np.float64)
        for tid, row in self._aff.items():
            if tid < n_tasks:
                for node, w in row.items():
                    out[tid, node] = w
        return out

    def satisfied_weight(self, locations: dict[int, int]) -> tuple[float, float]:
        """(satisfied, total) affinity weight under a placement.

        A task's affinity to a node is *satisfied* when the task sits on
        that node. Analysis metric for experiment E7's resource variant.
        """
        sat = 0.0
        tot = 0.0
        for tid, row in self._aff.items():
            loc = locations.get(tid)
            for node, w in row.items():
                tot += w
                if loc == node:
                    sat += w
        return sat, tot
