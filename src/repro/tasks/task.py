"""Tasks, their placement, and the per-node load totals (paper §4.1-4.2).

A *task* is the paper's load/particle: an entity with a positive load
quantity ``l`` (its mass ``m``) residing on exactly one node. The paper
uses *task* when dependency/affinity matters and *load* when only the
size matters; :class:`TaskSystem` is both views at once.

Performance notes (per the HPC guides): per-node load totals
``h(v_i) = Σ_k l_{i,k}`` are the single hottest quantity in every
balancer, so they are maintained **incrementally** on each move/add/
remove — reading them is O(1) and allocation-free (a read-only view).
Task ids are stable integers; storage grows amortised O(1).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskError
from repro.network.topology import Topology

_INITIAL_CAPACITY = 64


class TaskSystem:
    """All tasks in the system, their loads and placements.

    Parameters
    ----------
    topology:
        The network whose nodes tasks live on. Only used for bounds
        checking and node count — the TaskSystem itself is
        topology-agnostic.

    Notes
    -----
    Removed tasks keep their ids (never reused) but drop out of every
    aggregate. Loads are strictly positive; zero-load "tasks" are
    rejected because a zero-mass particle breaks the paper's energy
    equations (division by ``m·g``).
    """

    #: location sentinel for a task on the wire (see :meth:`send_to_transit`)
    TRANSIT = -2

    def __init__(self, topology: Topology):
        self.topology = topology
        self._n_nodes = topology.n_nodes
        cap = _INITIAL_CAPACITY
        self._loads = np.zeros(cap, dtype=np.float64)
        self._location = np.full(cap, -1, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=bool)
        self._count = 0
        self._n_alive = 0
        self._node_loads = np.zeros(self._n_nodes, dtype=np.float64)
        self._node_tasks: list[set[int]] = [set() for _ in range(self._n_nodes)]
        self._moves = 0
        self._wire_load = 0.0
        self._in_transit: set[int] = set()
        # candidate_floor cache: maintained incrementally once requested
        # (a node's floor only changes when its task multiset does).
        self._floor: np.ndarray | None = None
        self._floor_k = 0
        self._floor_dirty: set[int] = set()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _grow(self) -> None:
        cap = self._loads.shape[0]
        new_cap = cap * 2
        for name in ("_loads", "_location", "_alive"):
            old = getattr(self, name)
            new = np.zeros(new_cap, dtype=old.dtype)
            if name == "_location":
                new[:] = -1
            new[:cap] = old
            setattr(self, name, new)

    def add_task(self, load: float, node: int) -> int:
        """Create a task of size *load* on *node*; returns its id."""
        if load <= 0:
            raise TaskError(f"task load must be positive, got {load}")
        if not 0 <= node < self._n_nodes:
            raise TaskError(f"node {node} out of range [0, {self._n_nodes})")
        if self._count >= self._loads.shape[0]:
            self._grow()
        tid = self._count
        self._count += 1
        self._loads[tid] = float(load)
        self._location[tid] = node
        self._alive[tid] = True
        self._n_alive += 1
        self._node_loads[node] += float(load)
        self._node_tasks[node].add(tid)
        if self._floor is not None:
            self._floor_dirty.add(node)
        return tid

    def remove_task(self, tid: int) -> None:
        """Remove (complete) task *tid* (also legal while in transit)."""
        self._check(tid)
        if tid in self._in_transit:
            self._wire_load -= self._loads[tid]
            self._in_transit.discard(tid)
        else:
            node = int(self._location[tid])
            self._node_loads[node] -= self._loads[tid]
            self._node_tasks[node].discard(tid)
            if self._floor is not None:
                self._floor_dirty.add(node)
        self._alive[tid] = False
        self._n_alive -= 1
        self._location[tid] = -1

    def move(self, tid: int, dest: int) -> None:
        """Relocate task *tid* to node *dest*, updating load totals."""
        self._check(tid)
        if tid in self._in_transit:
            raise TaskError(f"task {tid} is in transit; deliver it instead")
        if not 0 <= dest < self._n_nodes:
            raise TaskError(f"node {dest} out of range [0, {self._n_nodes})")
        src = int(self._location[tid])
        if src == dest:
            return
        load = self._loads[tid]
        self._node_loads[src] -= load
        self._node_loads[dest] += load
        self._node_tasks[src].discard(tid)
        self._node_tasks[dest].add(tid)
        self._location[tid] = dest
        self._moves += 1
        if self._floor is not None:
            self._floor_dirty.add(src)
            self._floor_dirty.add(dest)

    # ---------------------- wire (transfer latency) -------------------- #

    def send_to_transit(self, tid: int) -> None:
        """Put task *tid* on the wire: it leaves its node immediately.

        While in transit the task is alive but located nowhere — its
        load is neither on the source (the hill already shrank) nor on
        the destination (the valley has not yet filled). Matches the
        paper's dynamic-surface rule applied at the moment of departure.
        """
        self._check(tid)
        if tid in self._in_transit:
            raise TaskError(f"task {tid} is already in transit")
        node = int(self._location[tid])
        load = self._loads[tid]
        self._node_loads[node] -= load
        self._node_tasks[node].discard(tid)
        self._location[tid] = self.TRANSIT
        self._wire_load += load
        self._in_transit.add(tid)
        if self._floor is not None:
            self._floor_dirty.add(node)

    def deliver(self, tid: int, dest: int) -> None:
        """Land an in-transit task on node *dest*."""
        self._check(tid)
        if tid not in self._in_transit:
            raise TaskError(f"task {tid} is not in transit")
        if not 0 <= dest < self._n_nodes:
            raise TaskError(f"node {dest} out of range [0, {self._n_nodes})")
        load = self._loads[tid]
        self._wire_load -= load
        self._in_transit.discard(tid)
        self._node_loads[dest] += load
        self._node_tasks[dest].add(tid)
        self._location[tid] = dest
        self._moves += 1
        if self._floor is not None:
            self._floor_dirty.add(dest)

    def in_transit(self, tid: int) -> bool:
        """Whether task *tid* is currently on the wire."""
        return tid in self._in_transit

    @property
    def wire_load(self) -> float:
        """Total load currently in transit (on no node)."""
        return self._wire_load

    @property
    def n_in_transit(self) -> int:
        """Number of tasks currently on the wire."""
        return len(self._in_transit)

    def _check(self, tid: int) -> None:
        if not (0 <= tid < self._count) or not self._alive[tid]:
            raise TaskError(f"task {tid} does not exist or was removed")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_tasks(self) -> int:
        """Number of *alive* tasks (O(1), maintained on create/remove)."""
        return self._n_alive

    @property
    def n_created(self) -> int:
        """Total tasks ever created (alive + removed)."""
        return self._count

    @property
    def total_moves(self) -> int:
        """Cumulative count of task relocations."""
        return self._moves

    def is_alive(self, tid: int) -> bool:
        """Whether task *tid* exists and is not removed."""
        return 0 <= tid < self._count and bool(self._alive[tid])

    def load_of(self, tid: int) -> float:
        """Load quantity (mass) of task *tid*."""
        self._check(tid)
        return float(self._loads[tid])

    def location_of(self, tid: int) -> int:
        """Node currently hosting task *tid* (:data:`TRANSIT` on the wire)."""
        self._check(tid)
        return int(self._location[tid])

    def tasks_at(self, node: int) -> np.ndarray:
        """Sorted ids of the tasks on *node*."""
        if not 0 <= node < self._n_nodes:
            raise TaskError(f"node {node} out of range [0, {self._n_nodes})")
        return np.fromiter(sorted(self._node_tasks[node]), dtype=np.int64,
                           count=len(self._node_tasks[node]))

    @property
    def node_loads(self) -> np.ndarray:
        """Read-only view of ``h`` — total load per node (paper's height)."""
        v = self._node_loads.view()
        v.flags.writeable = False
        return v

    @property
    def total_load(self) -> float:
        """Total alive load, including in-transit (conserved invariant)."""
        return float(self._node_loads.sum()) + self._wire_load

    def alive_ids(self) -> np.ndarray:
        """Ids of all alive tasks."""
        return np.nonzero(self._alive[: self._count])[0].astype(np.int64)

    def loads_array(self) -> np.ndarray:
        """Copy of per-task loads for alive tasks (indexed by alive_ids)."""
        ids = self.alive_ids()
        return self._loads[ids].copy()

    def locations_array(self) -> np.ndarray:
        """Copy of per-task locations for alive tasks (parallel to alive_ids)."""
        ids = self.alive_ids()
        return self._location[ids].copy()

    def largest_tasks_at(self, node: int, k: int) -> np.ndarray:
        """Ids of the *k* largest tasks on *node* (descending by load).

        The balancer's migration candidates: moving big particles first
        is both physically natural (they carry the gradient) and keeps
        per-round work bounded.
        """
        ids = self.tasks_at(node)
        if ids.shape[0] <= k:
            order = np.argsort(-self._loads[ids], kind="stable")
            return ids[order]
        part = np.argpartition(-self._loads[ids], k - 1)[:k]
        sel = ids[part]
        order = np.argsort(-self._loads[sel], kind="stable")
        return sel[order]

    def candidate_floor(self, k: int) -> np.ndarray:
        """Smallest load among each node's ``k`` largest resident tasks.

        Shape ``(n_nodes,)``, read-only; nodes hosting no task get
        ``+inf``. This is the *most migratable* candidate load per node
        — the §5.1 slope is decreasing in the moved load, so a node none
        of whose links clear the slope threshold at its floor load
        cannot initiate anything. The vectorised fast path screens whole
        rounds with it. In-transit tasks (located on no node) are
        excluded.

        The first call builds the vector in one ``O(T log T)`` pass;
        afterwards it is maintained incrementally — every mutation marks
        only the touched nodes dirty, so the steady-state cost is
        proportional to the tasks that actually moved, not to ``T``.
        """
        if k < 1:
            raise TaskError(f"candidate_floor needs k >= 1, got {k}")
        if self._floor is None or self._floor_k != k:
            self._floor = self._floor_full(k)
            self._floor_k = k
            self._floor_dirty.clear()
        elif self._floor_dirty:
            for node in self._floor_dirty:
                self._floor[node] = self._floor_one(node, k)
            self._floor_dirty.clear()
        view = self._floor.view()
        view.flags.writeable = False
        return view

    def _floor_full(self, k: int) -> np.ndarray:
        """Candidate floors of every node in one vectorised pass."""
        out = np.full(self._n_nodes, np.inf)
        alive = self._alive[: self._count]
        location = self._location[: self._count]
        resident = np.nonzero(alive & (location >= 0))[0]
        if resident.shape[0] == 0:
            return out
        locs = location[resident]
        loads = self._loads[: self._count][resident]
        order = np.lexsort((loads, locs))  # by node, then ascending load
        loads_sorted = loads[order]
        counts = np.bincount(locs[order], minlength=self._n_nodes)
        ends = np.cumsum(counts)
        hosts = np.nonzero(counts)[0]
        # Top-k occupy the last min(k, count) slots of each ascending
        # segment; the floor is the first of them.
        out[hosts] = loads_sorted[ends[hosts] - np.minimum(counts[hosts], k)]
        return out

    def _floor_one(self, node: int, k: int) -> float:
        """Candidate floor of a single (dirty) node."""
        tasks = self._node_tasks[node]
        c = len(tasks)
        if c == 0:
            return np.inf
        loads = self._loads[np.fromiter(tasks, np.int64, count=c)]
        if c <= k:
            return float(loads.min())
        return float(np.partition(loads, c - k)[c - k])

    def snapshot_placement(self) -> dict[int, int]:
        """Dict of task id -> node for all alive tasks (for analysis)."""
        ids = self.alive_ids()
        return {int(t): int(self._location[t]) for t in ids}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskSystem(n_tasks={self.n_tasks}, total_load={self.total_load:.3g}, "
            f"nodes={self._n_nodes})"
        )
