"""The task-dependency graph ``T`` (paper §4.2).

"We model these dependencies between the tasks with a task graph T whose
vertices are the tasks labeled by their load quantity and the edges
represent the dependency relations between the tasks. The edges have
different weights which model the amount of communication between two
tasks."

``TaskGraph`` stores the symmetric weighted adjacency sparsely (dict of
dicts) because task counts can grow dynamically and typical dependency
degrees are small. It feeds two consumers:

* the friction model — ``µs`` for a task sums the dependency weights to
  its *co-located* (and optionally neighboring) tasks, so dependent
  tasks resist being pulled apart;
* the analysis layer — communication cost of a placement,
  ``Σ_{(i,j)} T_ij · hops(loc_i, loc_j)``, used by experiment E7.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import TaskError


class TaskGraph:
    """Symmetric weighted dependency graph over task ids.

    Edges are undirected: ``T[i, j] == T[j, i]`` (the paper's
    communication affinity is mutual). Weights must be positive; setting
    a weight of 0 removes the edge.
    """

    def __init__(self) -> None:
        self._adj: dict[int, dict[int, float]] = {}
        self._n_edges = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def set_dependency(self, i: int, j: int, weight: float) -> None:
        """Set ``T[i, j] = T[j, i] = weight`` (0 deletes the edge)."""
        if i == j:
            raise TaskError(f"a task cannot depend on itself (task {i})")
        if weight < 0:
            raise TaskError(f"dependency weight must be >= 0, got {weight}")
        existing = self._adj.get(i, {}).get(j)
        if weight == 0:
            if existing is not None:
                del self._adj[i][j]
                del self._adj[j][i]
                self._n_edges -= 1
            return
        if existing is None:
            self._n_edges += 1
        self._adj.setdefault(i, {})[j] = float(weight)
        self._adj.setdefault(j, {})[i] = float(weight)

    def add_dependencies(self, edges: Iterable[tuple[int, int, float]]) -> None:
        """Bulk :meth:`set_dependency`."""
        for i, j, w in edges:
            self.set_dependency(i, j, w)

    def drop_task(self, tid: int) -> None:
        """Remove every dependency touching *tid* (task completed)."""
        for other in list(self._adj.get(tid, {})):
            self.set_dependency(tid, other, 0.0)
        self._adj.pop(tid, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        """Number of (undirected) dependency edges."""
        return self._n_edges

    def weight(self, i: int, j: int) -> float:
        """``T[i, j]`` (0 when the tasks are independent)."""
        return self._adj.get(i, {}).get(j, 0.0)

    def partners(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        """(ids, weights) of tasks that *tid* depends on / that depend on it."""
        d = self._adj.get(tid)
        if not d:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        ids = np.fromiter(d.keys(), dtype=np.int64, count=len(d))
        ws = np.fromiter(d.values(), dtype=np.float64, count=len(d))
        order = np.argsort(ids)
        return ids[order], ws[order]

    def total_weight(self, tid: int) -> float:
        """Sum of all dependency weights incident to *tid*."""
        return float(sum(self._adj.get(tid, {}).values()))

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(i, j, w)`` with ``i < j``."""
        for i, nbrs in self._adj.items():
            for j, w in nbrs.items():
                if i < j:
                    yield i, j, w

    def communication_cost(
        self, locations: dict[int, int], hop_dist: np.ndarray
    ) -> float:
        """Total placement cost ``Σ T_ij · hops(loc_i, loc_j)``.

        Tasks missing from *locations* (e.g. completed) are skipped.
        This is experiment E7's headline metric: dependency-aware
        balancing should keep it low where oblivious balancing inflates it.
        """
        cost = 0.0
        for i, j, w in self.iter_edges():
            li = locations.get(i)
            lj = locations.get(j)
            if li is None or lj is None:
                continue
            cost += w * float(hop_dist[li, lj])
        return cost

    def colocated_fraction(
        self, locations: dict[int, int], hop_dist: np.ndarray, within_hops: int = 0
    ) -> float:
        """Fraction of dependent pairs placed within *within_hops* of each other.

        ``within_hops=0`` means same node. Returns 1.0 when there are no
        dependency edges among placed tasks (vacuously satisfied).
        """
        total = 0
        close = 0
        for i, j, _w in self.iter_edges():
            li = locations.get(i)
            lj = locations.get(j)
            if li is None or lj is None:
                continue
            total += 1
            if hop_dist[li, lj] <= within_hops:
                close += 1
        return close / total if total else 1.0
