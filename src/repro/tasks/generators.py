"""Synthetic task-system generators.

The paper's motivating workloads are parallel programs whose tasks
communicate (§1: "a parallel program with m communicating tasks"). These
generators build the archetypal structures used by experiment E7 and the
examples:

* :func:`independent_tasks` — no dependencies (the classical load
  balancing setting of the diffusion literature).
* :func:`fork_join_tasks` — layered fork/join program: every task of
  layer *k* communicates with its children in layer *k+1*.
* :func:`pipeline_tasks` — linear chains of communicating stages.
* :func:`random_dag_tasks` — sparse random dependency structure.

All of them return ``(task_ids, TaskGraph)`` after placing the tasks on
nodes through a caller-supplied placement function, so the same program
structure can be dropped onto any initial load distribution.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import TaskError
from repro.rng import RngLike, ensure_rng
from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph

PlacementFn = Callable[[int], int]
"""Maps a task index (0-based creation order) to the node hosting it."""


def load_sizes(
    n: int,
    rng: RngLike = None,
    distribution: str = "uniform",
    mean: float = 1.0,
    spread: float = 0.5,
    alpha: float = 2.5,
) -> np.ndarray:
    """Draw *n* positive task sizes.

    Parameters
    ----------
    distribution:
        ``"uniform"`` — uniform on ``[mean·(1−spread), mean·(1+spread)]``;
        ``"exponential"`` — exponential with the given *mean* (heavy-ish
        tail: a few big particles among many light ones);
        ``"constant"`` — all equal to *mean*;
        ``"bimodal"`` — half light (``mean·(1−spread)``), half heavy
        (``mean·(1+spread)``), shuffled;
        ``"pareto"`` — classical Pareto with tail index *alpha*, scaled
        so the distribution mean equals *mean* (a few giant particles
        dominate the total load — the paper's "considerable amount of
        data" concern at its sharpest).
    mean:
        Target mean size (must be positive).
    spread:
        Relative spread in ``[0, 1)`` for the uniform/bimodal families.
    alpha:
        Tail index for the Pareto family; must exceed 1 for the mean to
        exist (smaller = heavier tail).
    """
    if n < 0:
        raise TaskError(f"n must be >= 0, got {n}")
    if mean <= 0:
        raise TaskError(f"mean task size must be positive, got {mean}")
    if not 0 <= spread < 1:
        raise TaskError(f"spread must be in [0, 1), got {spread}")
    rng = ensure_rng(rng)
    if distribution == "uniform":
        sizes = rng.uniform(mean * (1 - spread), mean * (1 + spread), n)
    elif distribution == "exponential":
        sizes = rng.exponential(mean, n)
        sizes = np.maximum(sizes, mean * 1e-3)  # keep strictly positive
    elif distribution == "pareto":
        if alpha <= 1:
            raise TaskError(f"pareto tail index alpha must be > 1, got {alpha}")
        scale = mean * (alpha - 1) / alpha  # x_m making E[X] = mean
        sizes = scale * (1.0 + rng.pareto(alpha, n))
    elif distribution == "constant":
        sizes = np.full(n, float(mean))
    elif distribution == "bimodal":
        sizes = np.where(
            np.arange(n) % 2 == 0, mean * (1 - spread), mean * (1 + spread)
        ).astype(np.float64)
        rng.shuffle(sizes)
    else:
        raise TaskError(f"unknown load size distribution: {distribution!r}")
    return sizes


def independent_tasks(
    system: TaskSystem,
    n: int,
    placement: PlacementFn,
    rng: RngLike = None,
    **size_kwargs,
) -> tuple[list[int], TaskGraph]:
    """Create *n* dependency-free tasks; returns (ids, empty TaskGraph)."""
    sizes = load_sizes(n, rng, **size_kwargs)
    ids = [system.add_task(float(s), placement(k)) for k, s in enumerate(sizes)]
    return ids, TaskGraph()


def pipeline_tasks(
    system: TaskSystem,
    n_chains: int,
    chain_length: int,
    placement: PlacementFn,
    rng: RngLike = None,
    comm_weight: float = 1.0,
    **size_kwargs,
) -> tuple[list[int], TaskGraph]:
    """*n_chains* linear pipelines of *chain_length* communicating stages.

    Stage *k* of each chain depends on stage *k+1* with weight
    *comm_weight*. The k-th created task overall has index
    ``chain · chain_length + stage`` for placement purposes.
    """
    if chain_length < 1 or n_chains < 1:
        raise TaskError(
            f"need n_chains >= 1 and chain_length >= 1, got {n_chains}, {chain_length}"
        )
    n = n_chains * chain_length
    sizes = load_sizes(n, rng, **size_kwargs)
    ids = [system.add_task(float(s), placement(k)) for k, s in enumerate(sizes)]
    graph = TaskGraph()
    for c in range(n_chains):
        base = c * chain_length
        for s in range(chain_length - 1):
            graph.set_dependency(ids[base + s], ids[base + s + 1], comm_weight)
    return ids, graph


def fork_join_tasks(
    system: TaskSystem,
    width: int,
    depth: int,
    placement: PlacementFn,
    rng: RngLike = None,
    comm_weight: float = 1.0,
    **size_kwargs,
) -> tuple[list[int], TaskGraph]:
    """Layered fork/join program: *depth* layers of *width* tasks.

    Each task in layer *k* communicates with every task of layer *k+1*
    (dense layer coupling — the worst case for oblivious balancers that
    scatter a layer across the machine).
    """
    if width < 1 or depth < 1:
        raise TaskError(f"need width >= 1 and depth >= 1, got {width}, {depth}")
    n = width * depth
    sizes = load_sizes(n, rng, **size_kwargs)
    ids = [system.add_task(float(s), placement(k)) for k, s in enumerate(sizes)]
    graph = TaskGraph()
    for layer in range(depth - 1):
        for a in range(width):
            for b in range(width):
                graph.set_dependency(
                    ids[layer * width + a], ids[(layer + 1) * width + b], comm_weight
                )
    return ids, graph


def random_dag_tasks(
    system: TaskSystem,
    n: int,
    placement: PlacementFn,
    rng: RngLike = None,
    edge_prob: float = 0.05,
    comm_weight_range: tuple[float, float] = (0.5, 1.5),
    **size_kwargs,
) -> tuple[list[int], TaskGraph]:
    """Random sparse dependency structure over *n* tasks.

    Each (unordered) pair is dependent with probability *edge_prob*;
    weights are uniform in *comm_weight_range*.
    """
    if not 0 <= edge_prob <= 1:
        raise TaskError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = ensure_rng(rng)
    sizes = load_sizes(n, rng, **size_kwargs)
    ids = [system.add_task(float(s), placement(k)) for k, s in enumerate(sizes)]
    graph = TaskGraph()
    if n >= 2:
        iu, ju = np.triu_indices(n, k=1)
        take = rng.random(iu.shape[0]) < edge_prob
        lo, hi = comm_weight_range
        for a, b in zip(iu[take], ju[take]):
            w = float(rng.uniform(lo, hi)) if hi > lo else float(lo)
            graph.set_dependency(ids[int(a)], ids[int(b)], w)
    return ids, graph


def place_round_robin(nodes: Sequence[int]) -> PlacementFn:
    """Placement helper: cycle through *nodes* in order."""
    nodes = list(nodes)
    if not nodes:
        raise TaskError("placement node list must be non-empty")

    def fn(k: int) -> int:
        return nodes[k % len(nodes)]

    return fn


def place_all_on(node: int) -> PlacementFn:
    """Placement helper: everything on one node (the hotspot scenario)."""

    def fn(_k: int) -> int:
        return node

    return fn
