"""Task substrate (paper §4.2).

The paper refines the load model with three structures this subpackage
provides:

* :class:`TaskSystem` — the set of tasks (``load quantity`` = particle
  mass), their current node placement, and incremental per-node load
  totals ``h(v_i) = Σ_k l_{i,k}``.
* :class:`TaskGraph` — the dependency matrix ``T`` (weighted task-task
  communication affinities).
* :class:`ResourceMap` — the matrix ``R_{|L|×|V|}`` of task-to-node
  resource affinities.
* :mod:`generators <repro.tasks.generators>` — synthetic task systems
  (independent, fork-join, pipeline, random DAG) with configurable load
  size distributions.
"""

from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph
from repro.tasks.resources import ResourceMap
from repro.tasks.generators import (
    fork_join_tasks,
    independent_tasks,
    load_sizes,
    pipeline_tasks,
    random_dag_tasks,
)

__all__ = [
    "TaskSystem",
    "TaskGraph",
    "ResourceMap",
    "independent_tasks",
    "fork_join_tasks",
    "pipeline_tasks",
    "random_dag_tasks",
    "load_sizes",
]
