"""repro — Particle & Plane load balancing for multiprocessors.

Production-quality reproduction of Imani & Sarbazi-Azad, *"A Physical
Particle and Plane Framework for Load Balancing in Multiprocessors"*,
IPPS/IPDPS 2006.

Quickstart
----------
>>> from repro import (mesh, TaskSystem, single_hotspot,
...                    ParticlePlaneBalancer, PPLBConfig, Simulator)
>>> topo = mesh(8, 8)
>>> system = TaskSystem(topo)
>>> _ = single_hotspot(system, 512, rng=0)
>>> sim = Simulator(topo, system, ParticlePlaneBalancer(PPLBConfig()), seed=0)
>>> result = sim.run(max_rounds=400)
>>> result.final_cov < result.initial_summary["cov"]
True

Package map
-----------
``repro.physics``   — the continuous particle-and-plane model (paper §3)
``repro.network``   — topologies, link attributes BW/D/F, faults (§4.1-4.2)
``repro.tasks``     — tasks, dependency graph T, resource map R (§4.2)
``repro.workloads`` — initial distributions and dynamic churn (§1)
``repro.core``      — the PPLB algorithm (§4-5)
``repro.baselines`` — diffusion, dimension exchange, GM, CWN, … (§2)
``repro.sim``       — simulation engines (synchronous rounds + async events)
``repro.analysis``  — convergence fits, sweeps, tables, ASCII plots
``repro.runner``    — parallel experiment runner with result caching
"""

from repro.core import (
    ParticlePlaneBalancer,
    PPLBConfig,
    StochasticArbiter,
    suggest_config,
)
from repro.interfaces import BalanceContext, Balancer, FluidBalancer, Migration
from repro.network import (
    FaultModel,
    LinkAttributes,
    Topology,
    complete,
    hypercube,
    link_costs,
    mesh,
    random_connected,
    ring,
    star,
    torus,
    tree,
)
from repro.sim import (
    EventSimulator,
    FastSimulator,
    FluidSimulator,
    FullRecorder,
    RoundLog,
    SimulationLoop,
    SimulationResult,
    Simulator,
    SummaryRecorder,
    ThinningRecorder,
    make_recorder,
)
from repro.sim.engine import ConvergenceCriteria
from repro.tasks import ResourceMap, TaskGraph, TaskSystem
from repro.workloads import (
    DynamicWorkload,
    ScenarioSpec,
    balanced,
    build_scenario,
    compose_scenarios,
    gaussian_blob,
    linear_ramp,
    multi_hotspot,
    parse_scenario,
    single_hotspot,
    uniform_random,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # core
    "ParticlePlaneBalancer",
    "PPLBConfig",
    "StochasticArbiter",
    "suggest_config",
    # interfaces
    "Balancer",
    "FluidBalancer",
    "BalanceContext",
    "Migration",
    # network
    "Topology",
    "mesh",
    "torus",
    "hypercube",
    "ring",
    "star",
    "complete",
    "tree",
    "random_connected",
    "LinkAttributes",
    "link_costs",
    "FaultModel",
    # tasks
    "TaskSystem",
    "TaskGraph",
    "ResourceMap",
    # workloads
    "single_hotspot",
    "multi_hotspot",
    "uniform_random",
    "linear_ramp",
    "gaussian_blob",
    "balanced",
    "DynamicWorkload",
    "build_scenario",
    "ScenarioSpec",
    "parse_scenario",
    "compose_scenarios",
    # sim
    "Simulator",
    "FastSimulator",
    "EventSimulator",
    "FluidSimulator",
    "SimulationLoop",
    "SimulationResult",
    "RoundLog",
    "FullRecorder",
    "ThinningRecorder",
    "SummaryRecorder",
    "make_recorder",
    "ConvergenceCriteria",
]
