"""Terminal visualisation of the load surface.

The paper's whole intuition is *seeing* load as terrain. This
subpackage renders the discrete load surface (and its evolution) as
ASCII heat maps in the terminal — the closest a headless environment
gets to the paper's Figure-style surface pictures.
"""

from repro.viz.heatmap import render_heatmap, render_surface, surface_film

__all__ = ["render_heatmap", "render_surface", "surface_film"]
