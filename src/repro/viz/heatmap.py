"""ASCII heat maps of the load surface.

Nodes are binned onto a character grid using the topology's 2-D
embedding (the paper's ``M2`` mapping); each cell shows a density
character for the total load in it. Mesh/torus topologies map 1:1 onto
the grid; irregular embeddings aggregate nearby nodes per cell.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import Topology

#: Density ramp from empty to full.
RAMP = " .:-=+*#%@"


def render_heatmap(
    values: np.ndarray,
    coords: np.ndarray,
    width: int = 32,
    height: int = 16,
    vmax: float | None = None,
    bounds: tuple[tuple[float, float], tuple[float, float]] | None = None,
) -> str:
    """Render per-point *values* at 2-D *coords* as an ASCII heat map.

    Parameters
    ----------
    values:
        Non-negative value per point (the load heights ``h``).
    coords:
        ``(n, 2)`` positions; scaled to fill the canvas.
    width, height:
        Character-cell canvas size.
    vmax:
        Value mapped to the densest character (default: ``values.max()``;
        pass a fixed value to keep a film's frames on one scale).
    bounds:
        Optional fixed coordinate window ``((x_lo, x_hi), (y_lo, y_hi))``.
        Default: the points' bounding box (which makes a tight cluster
        fill the canvas — pass explicit bounds to show absolute scale,
        e.g. ``((0, 1), (0, 1))`` for the unit yard).
    """
    values = np.asarray(values, dtype=np.float64)
    coords = np.asarray(coords, dtype=np.float64)
    if values.ndim != 1 or coords.shape != (values.shape[0], 2):
        raise ConfigurationError(
            f"need n values and (n, 2) coords, got {values.shape} and {coords.shape}"
        )
    if width < 2 or height < 2:
        raise ConfigurationError(f"canvas too small: {width}x{height}")
    if (values < 0).any():
        raise ConfigurationError("values must be non-negative")

    if bounds is not None:
        (x_lo, x_hi), (y_lo, y_hi) = bounds
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ConfigurationError(f"invalid bounds: {bounds}")
        lo = np.array([x_lo, y_lo])
        span = np.array([x_hi - x_lo, y_hi - y_lo])
        coords = np.clip(coords, lo, lo + span)
    else:
        lo = coords.min(axis=0)
        span = coords.max(axis=0) - lo
        span[span == 0] = 1.0
    xs = ((coords[:, 0] - lo[0]) / span[0] * (width - 1)).round().astype(int)
    # invert y so larger coordinates render at the top
    ys = ((coords[:, 1] - lo[1]) / span[1] * (height - 1)).round().astype(int)

    grid = np.zeros((height, width))
    np.add.at(grid, (height - 1 - ys, xs), values)

    top = float(vmax) if vmax is not None else float(grid.max())
    if top <= 0:
        top = 1.0
    out_rows = []
    for r in range(height):
        chars = []
        for c in range(width):
            frac = min(grid[r, c] / top, 1.0)
            chars.append(RAMP[int(round(frac * (len(RAMP) - 1)))])
        out_rows.append("".join(chars))
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + row + "|" for row in out_rows)
    return f"{border}\n{body}\n{border}  max={top:.3g}"


def render_surface(
    topology: Topology,
    h: np.ndarray,
    width: int = 32,
    height: int = 16,
    vmax: float | None = None,
) -> str:
    """Heat map of load vector *h* over *topology*'s embedding."""
    h = np.asarray(h, dtype=np.float64)
    if h.shape != (topology.n_nodes,):
        raise ConfigurationError(
            f"h must have shape ({topology.n_nodes},), got {h.shape}"
        )
    return render_heatmap(h, topology.coords, width=width, height=height, vmax=vmax)


def surface_film(
    topology: Topology,
    frames: list[np.ndarray],
    labels: list[str] | None = None,
    width: int = 32,
    height: int = 16,
) -> str:
    """Render several load snapshots on a shared scale, side by side in time.

    Used by the examples to show the hotspot melting into the plain.
    """
    if not frames:
        raise ConfigurationError("need at least one frame")
    if labels is not None and len(labels) != len(frames):
        raise ConfigurationError(
            f"got {len(labels)} labels for {len(frames)} frames"
        )
    vmax = max(float(np.asarray(f).max()) for f in frames)
    parts = []
    for k, frame in enumerate(frames):
        title = labels[k] if labels is not None else f"frame {k}"
        parts.append(title)
        parts.append(render_surface(topology, frame, width, height, vmax=vmax))
    return "\n".join(parts)
