"""Seeded random-number plumbing.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is threaded through explicitly —
nothing uses the global NumPy state. This gives:

* **Reproducibility**: one integer seed determines an entire simulation,
  including the stochastic arbiter, workload generators and fault events.
* **Independence**: sub-streams spawned for distinct components are
  statistically independent (via :class:`numpy.random.SeedSequence`),
  so e.g. changing how many fault events are drawn cannot perturb the
  arbiter's decisions.

The helpers here are deliberately tiny; they exist so that call sites read
``rng = ensure_rng(seed)`` instead of hand-rolling ``default_rng`` logic,
and so tests can assert the spawning discipline.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an ``int`` seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Children are produced with ``Generator.spawn`` (NumPy >= 1.25) so the
    parent stream is left untouched apart from its spawn counter; drawing
    from one child never affects another.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return list(rng.spawn(n))


def seed_for(seed: RngLike, *keys: int) -> int:
    """Reduce the :func:`derive` stream keyed by (*seed*, \\*keys) to an int.

    The canonical way to mint one deterministic integer seed per grid
    cell. Both the sweep harness (``seed_for(base_seed, point_index,
    repetition)``) and the parallel runner's ``grid_seeds``
    (``seed_for(base_seed, repetition)``) derive their seeds through
    this helper — each with its own key layout, so seeds are stable
    within a harness when its grid grows.
    """
    return int(derive(seed, *keys).integers(0, 2**31 - 1))


def derive(seed: RngLike, *keys: int) -> np.random.Generator:
    """Build a generator keyed by (*seed*, \\*keys).

    Used to give each (repetition, component) pair of a parameter sweep
    its own deterministic stream: ``derive(base_seed, rep_index, 2)``.
    ``None`` maps to fresh entropy, matching :func:`ensure_rng`.
    """
    if isinstance(seed, np.random.Generator):
        # Child keyed off the generator's own stream; deterministic given
        # the generator state.
        ss = np.random.SeedSequence(
            entropy=int(seed.integers(0, 2**63 - 1)), spawn_key=tuple(keys)
        )
        return np.random.default_rng(ss)
    if seed is None:
        return np.random.default_rng()
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    ss = np.random.SeedSequence(entropy=base.entropy, spawn_key=tuple(keys))
    return np.random.default_rng(ss)
