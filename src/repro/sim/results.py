"""Simulation results: per-round history and summaries.

Each round appends one :class:`RoundRecord`; :class:`SimulationResult`
bundles the full history with convergence information and exposes the
time-series arrays the benchmark harness prints (imbalance vs round,
cumulative traffic, migration counts).

Results are JSON-serialisable via :meth:`SimulationResult.to_dict` /
:meth:`SimulationResult.from_dict`; the round-trip is exact (every
field, including float metrics, survives ``json.dumps``/``loads``
unchanged), which is what lets the parallel runner's on-disk result
cache (:mod:`repro.runner`) replay a run without re-simulating.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np


@dataclass(frozen=True)
class RoundRecord:
    """Metrics of one synchronous round (captured *after* applying it).

    Attributes
    ----------
    round_index:
        Zero-based round number.
    n_migrations:
        One-hop moves applied this round.
    traffic_work:
        Σ load·e_ij of this round's hops (uniform measure).
    heat:
        Σ balancer-reported heat of this round's hops (PPLB's E_h; 0 for
        balancers that do not model heat).
    cov, spread, max_load, min_load:
        Imbalance metrics of the post-round load vector.
    in_flight:
        Tasks still journeying after the round (0 for memoryless
        balancers).
    blocked:
        Migrations refused this round by the engine: the link was
        faulted (the balancer ordered them anyway — only possible for
        fault-oblivious balancers) or, under the event engine, busy
        (its per-time-unit capacity already spent by an earlier wave
        in the same epoch).
    n_tasks:
        Alive tasks after the round (varies under dynamic workloads).
    asleep:
        Migrations refused because neither endpoint's clock had fired
        in the wave that planned them (event engine only; always 0
        under the synchronous engine and in degenerate async runs).
    """

    round_index: int
    n_migrations: int
    traffic_work: float
    heat: float
    cov: float
    spread: float
    max_load: float
    min_load: float
    in_flight: int = 0
    blocked: int = 0
    n_tasks: int = 0
    asleep: int = 0


@dataclass
class SimulationResult:
    """Full outcome of one simulation run.

    Attributes
    ----------
    records:
        Per-round history (round 0 first). ``records[0]`` reflects the
        state after the first balancing round; the *initial* state is in
        :attr:`initial_summary`.
    converged_round:
        First round at which the convergence criterion held (None when
        the run hit ``max_rounds`` without converging).
    initial_summary / final_summary:
        Imbalance summaries of the initial and final load vectors.
    balancer_name:
        The algorithm that produced this run.
    wall_time_s:
        Wall-clock time of the run (whole loop, excluding setup).
    """

    records: list[RoundRecord] = field(default_factory=list)
    converged_round: int | None = None
    initial_summary: dict[str, float] = field(default_factory=dict)
    final_summary: dict[str, float] = field(default_factory=dict)
    balancer_name: str = ""
    wall_time_s: float = 0.0

    # ----------------------------- series ----------------------------- #

    def series(self, field_name: str) -> np.ndarray:
        """Per-round array of one :class:`RoundRecord` field."""
        return np.asarray([getattr(r, field_name) for r in self.records], dtype=np.float64)

    @property
    def n_rounds(self) -> int:
        """Rounds simulated."""
        return len(self.records)

    @property
    def total_migrations(self) -> int:
        """Total one-hop moves across the run."""
        return int(sum(r.n_migrations for r in self.records))

    @property
    def total_traffic(self) -> float:
        """Cumulative Σ load·e over the run."""
        return float(sum(r.traffic_work for r in self.records))

    @property
    def total_heat(self) -> float:
        """Cumulative balancer-reported heat over the run."""
        return float(sum(r.heat for r in self.records))

    @property
    def final_cov(self) -> float:
        """Imbalance (CoV) at the end of the run."""
        return self.final_summary.get("cov", float("nan"))

    @property
    def final_spread(self) -> float:
        """Max−min spread at the end of the run."""
        return self.final_summary.get("spread", float("nan"))

    @property
    def converged(self) -> bool:
        """Whether the convergence criterion was met."""
        return self.converged_round is not None

    def rounds_to_spread(self, target: float) -> int | None:
        """First round whose post-round spread is ≤ *target* (None if never)."""
        for r in self.records:
            if r.spread <= target:
                return r.round_index
        return None

    # ------------------------- serialization ------------------------- #

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation of the full result.

        Every field is a JSON scalar/container; ``from_dict`` inverts it
        exactly (floats round-trip through JSON's repr-based encoding).
        """
        return {
            "records": [asdict(r) for r in self.records],
            "converged_round": self.converged_round,
            "initial_summary": dict(self.initial_summary),
            "final_summary": dict(self.final_summary),
            "balancer_name": self.balancer_name,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result previously exported with :meth:`to_dict`."""
        return cls(
            records=[RoundRecord(**r) for r in data["records"]],
            converged_round=data["converged_round"],
            initial_summary=dict(data["initial_summary"]),
            final_summary=dict(data["final_summary"]),
            balancer_name=data["balancer_name"],
            wall_time_s=data["wall_time_s"],
        )

    def summary_row(self) -> dict[str, object]:
        """One-line summary for benchmark tables."""
        return {
            "algorithm": self.balancer_name,
            "rounds": self.n_rounds,
            "converged_round": self.converged_round,
            "final_cov": round(self.final_cov, 4),
            "final_spread": round(self.final_spread, 4),
            "migrations": self.total_migrations,
            "traffic": round(self.total_traffic, 2),
            "heat": round(self.total_heat, 2),
        }
