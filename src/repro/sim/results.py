"""Simulation results: columnar per-round history and summaries.

The per-round history lives in a :class:`RoundLog` — one preallocated,
growable NumPy array per metric field — rather than a Python list of
record objects. :class:`SimulationResult` bundles that log with
convergence information; ``result.records`` still reads (and appends)
like the historical ``list[RoundRecord]``, materialising
:class:`RoundRecord` objects on demand, while ``result.series`` hands
the analysis layer zero-iteration columnar arrays.

Results are JSON-serialisable via :meth:`SimulationResult.to_dict` /
:meth:`SimulationResult.from_dict`. The wire format is columnar (format
2): one JSON array per field instead of one keyed object per round,
which round-trips exactly (ints and floats survive
``json.dumps``/``loads`` unchanged) and shrinks runner-cache entries —
field names are stored once per result, not once per round.
:meth:`SimulationResult.from_dict` also reads the legacy record-list
format, so results cached before the columnar switch keep replaying.

Runs recorded with a thinning or summary recorder (see
:mod:`repro.sim.recording`) may keep less than the full history; they
carry an ``aggregates`` mapping of exact running totals so the summary
surface (``n_rounds``, ``total_migrations``, ``summary_row`` …) stays
exact regardless of what the log retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RoundRecord:
    """Metrics of one synchronous round (captured *after* applying it).

    Attributes
    ----------
    round_index:
        Zero-based round number.
    n_migrations:
        One-hop moves applied this round.
    traffic_work:
        Σ load·e_ij of this round's hops (uniform measure).
    heat:
        Σ balancer-reported heat of this round's hops (PPLB's E_h; 0 for
        balancers that do not model heat).
    cov, spread, max_load, min_load:
        Imbalance metrics of the post-round load vector.
    in_flight:
        Tasks still journeying after the round (0 for memoryless
        balancers).
    blocked:
        Migrations refused this round by the engine: the link was
        faulted (the balancer ordered them anyway — only possible for
        fault-oblivious balancers) or, under the event engine, busy
        (its per-time-unit capacity already spent by an earlier wave
        in the same epoch).
    n_tasks:
        Alive tasks after the round (varies under dynamic workloads).
    asleep:
        Migrations refused because neither endpoint's clock had fired
        in the wave that planned them (event engine only; always 0
        under the synchronous engine and in degenerate async runs).
    """

    round_index: int
    n_migrations: int
    traffic_work: float
    heat: float
    cov: float
    spread: float
    max_load: float
    min_load: float
    in_flight: int = 0
    blocked: int = 0
    n_tasks: int = 0
    asleep: int = 0


#: the columnar schema, in :class:`RoundRecord` field order.
_INT = np.int64
_FLOAT = np.float64
ROUND_FIELDS: tuple[tuple[str, type], ...] = (
    ("round_index", _INT),
    ("n_migrations", _INT),
    ("traffic_work", _FLOAT),
    ("heat", _FLOAT),
    ("cov", _FLOAT),
    ("spread", _FLOAT),
    ("max_load", _FLOAT),
    ("min_load", _FLOAT),
    ("in_flight", _INT),
    ("blocked", _INT),
    ("n_tasks", _INT),
    ("asleep", _INT),
)
_FIELD_NAMES = tuple(name for name, _ in ROUND_FIELDS)
_INT_FIELDS = frozenset(name for name, dtype in ROUND_FIELDS if dtype is _INT)
_MIN_CAPACITY = 64


class RoundLog:
    """Columnar per-round metric store: one growable array per field.

    Appending a round writes one slot in each of twelve preallocated
    NumPy arrays (amortised O(1), geometric growth); no per-round
    Python object exists unless :meth:`record` materialises one on
    demand. Columns are exposed as read-only views, so analysis code
    can consume million-round series without a copy.
    """

    __slots__ = ("_arrays", "_n", "_capacity")

    def __init__(self, capacity: int = 0):
        self._n = 0
        self._capacity = int(capacity)
        self._arrays = {
            name: np.empty(self._capacity, dtype=dtype)
            for name, dtype in ROUND_FIELDS
        }

    # ----------------------------- write ----------------------------- #

    def _grow(self, needed: int) -> None:
        new_cap = max(_MIN_CAPACITY, self._capacity * 2, needed)
        for name, dtype in ROUND_FIELDS:
            bigger = np.empty(new_cap, dtype=dtype)
            bigger[: self._n] = self._arrays[name][: self._n]
            self._arrays[name] = bigger
        self._capacity = new_cap

    def append_row(self, *values) -> None:
        """Append one round given values in :data:`ROUND_FIELDS` order."""
        if len(values) != len(_FIELD_NAMES):
            raise ConfigurationError(
                f"round row needs {len(_FIELD_NAMES)} values, got {len(values)}"
            )
        n = self._n
        if n >= self._capacity:
            self._grow(n + 1)
        arrays = self._arrays
        for name, value in zip(_FIELD_NAMES, values):
            arrays[name][n] = value
        self._n = n + 1

    def append_record(self, record: RoundRecord) -> None:
        """Append one materialised :class:`RoundRecord`."""
        self.append_row(*(getattr(record, name) for name in _FIELD_NAMES))

    # ----------------------------- read ------------------------------ #

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        """Read-only view of one field's per-round values."""
        if name not in self._arrays:
            raise ConfigurationError(
                f"unknown round field {name!r}; known: {list(_FIELD_NAMES)}"
            )
        view = self._arrays[name][: self._n]
        view.flags.writeable = False
        return view

    def record(self, i: int) -> RoundRecord:
        """Materialise round *i* (supports negative indices)."""
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(f"round {i} out of range [0, {self._n})")
        arrays = self._arrays
        return RoundRecord(
            **{
                name: (int(arrays[name][i]) if name in _INT_FIELDS
                       else float(arrays[name][i]))
                for name in _FIELD_NAMES
            }
        )

    def records(self) -> list[RoundRecord]:
        """Materialise the whole history (prefer :meth:`column` at scale)."""
        return [self.record(i) for i in range(self._n)]

    # ----------------------------- wire ------------------------------ #

    def to_columns(self) -> dict[str, list]:
        """JSON-ready columnar payload (one list per field)."""
        return {name: self._arrays[name][: self._n].tolist() for name in _FIELD_NAMES}

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence]) -> "RoundLog":
        """Rebuild a log from a :meth:`to_columns` payload."""
        missing = [name for name in _FIELD_NAMES if name not in columns]
        if missing:
            raise ConfigurationError(f"columnar payload missing fields {missing}")
        lengths = {len(columns[name]) for name in _FIELD_NAMES}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"columnar payload has ragged columns (lengths {sorted(lengths)})"
            )
        n = lengths.pop() if lengths else 0
        log = cls(capacity=n)
        for name, dtype in ROUND_FIELDS:
            log._arrays[name][:n] = np.asarray(columns[name], dtype=dtype)
        log._n = n
        return log

    @classmethod
    def from_records(cls, records: Iterable[RoundRecord]) -> "RoundLog":
        """Build a log from materialised records (legacy payloads)."""
        records = list(records)
        log = cls(capacity=len(records))
        for record in records:
            log.append_record(record)
        return log

    # --------------------------- plumbing ---------------------------- #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundLog):
            return NotImplemented
        if self._n != other._n:
            return False
        return all(
            np.array_equal(
                self._arrays[name][: self._n], other._arrays[name][: other._n]
            )
            for name in _FIELD_NAMES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundLog(rounds={self._n})"


class RecordsView:
    """List-like facade over a :class:`RoundLog`.

    Keeps the historical ``result.records`` surface working — append,
    index (including negatives and slices), iterate, compare — while
    the storage underneath stays columnar. Reading materialises
    :class:`RoundRecord` objects on demand.
    """

    __slots__ = ("_log",)

    def __init__(self, log: RoundLog):
        self._log = log

    def append(self, record: RoundRecord) -> None:
        self._log.append_record(record)

    def extend(self, records: Iterable[RoundRecord]) -> None:
        for record in records:
            self._log.append_record(record)

    def __len__(self) -> int:
        return len(self._log)

    def __bool__(self) -> bool:
        return len(self._log) > 0

    def __iter__(self) -> Iterator[RoundRecord]:
        for i in range(len(self._log)):
            yield self._log.record(i)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._log.record(i) for i in range(*index.indices(len(self._log)))]
        return self._log.record(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordsView):
            return self._log == other._log
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordsView({list(self)!r})"


@dataclass
class SimulationResult:
    """Full outcome of one simulation run.

    Attributes
    ----------
    log:
        Columnar per-round history (round 0 first; may be thinned or
        empty depending on the run's recorder). ``records[0]`` reflects
        the state after the first balancing round; the *initial* state
        is in :attr:`initial_summary`.
    converged_round:
        First round at which the convergence criterion held (None when
        the run hit ``max_rounds`` without converging).
    initial_summary / final_summary:
        Imbalance summaries of the initial and final load vectors.
    balancer_name:
        The algorithm that produced this run.
    wall_time_s:
        Wall-clock time of the run (whole loop, excluding setup).
    aggregates:
        Exact running totals streamed by a thinning/summary recorder
        (``rounds``, ``migrations``, ``traffic``, ``heat``,
        ``blocked``, ``asleep``, ``cov_mean``, ``spread_min``), or
        None when the log holds the complete history and totals are
        computed from the columns.
    telemetry:
        Aggregate block installed by an enabled probe (see
        :mod:`repro.sim.telemetry`): ``{"probe", "counters",
        "phases"}`` plus ``trace_path`` under the trace probe. None
        under the default null probe — and then absent from the wire
        format entirely, so probe-less payloads (including every
        pre-telemetry cache entry) are byte-identical to before.
    """

    log: RoundLog = field(default_factory=RoundLog)
    converged_round: int | None = None
    initial_summary: dict[str, float] = field(default_factory=dict)
    final_summary: dict[str, float] = field(default_factory=dict)
    balancer_name: str = ""
    wall_time_s: float = 0.0
    aggregates: dict[str, float] | None = None
    telemetry: dict[str, object] | None = None

    # ----------------------------- series ----------------------------- #

    @property
    def records(self) -> RecordsView:
        """List-like view of the per-round history (see :class:`RecordsView`)."""
        return RecordsView(self.log)

    def series(self, field_name: str) -> np.ndarray:
        """Per-round float64 array of one :class:`RoundRecord` field.

        Backed by the columnar log — no record objects are created.
        """
        return self.log.column(field_name).astype(np.float64)

    @property
    def n_rounds(self) -> int:
        """Rounds simulated (exact even when the log is thinned/empty)."""
        if self.aggregates is not None:
            return int(self.aggregates["rounds"])
        return len(self.log)

    @property
    def total_migrations(self) -> int:
        """Total one-hop moves across the run."""
        if self.aggregates is not None:
            return int(self.aggregates["migrations"])
        return int(self.log.column("n_migrations").sum())

    @property
    def total_traffic(self) -> float:
        """Cumulative Σ load·e over the run."""
        if self.aggregates is not None:
            return float(self.aggregates["traffic"])
        return float(sum(self.log.column("traffic_work")))

    @property
    def total_heat(self) -> float:
        """Cumulative balancer-reported heat over the run."""
        if self.aggregates is not None:
            return float(self.aggregates["heat"])
        return float(sum(self.log.column("heat")))

    @property
    def final_cov(self) -> float:
        """Imbalance (CoV) at the end of the run."""
        return self.final_summary.get("cov", float("nan"))

    @property
    def final_spread(self) -> float:
        """Max−min spread at the end of the run."""
        return self.final_summary.get("spread", float("nan"))

    @property
    def converged(self) -> bool:
        """Whether the convergence criterion was met."""
        return self.converged_round is not None

    def rounds_to_spread(self, target: float) -> int | None:
        """First recorded round whose post-round spread is ≤ *target*.

        ``None`` if no recorded round qualifies (or the run kept no
        per-round history at all — see :class:`~repro.sim.recording.
        SummaryRecorder`). Thinned logs answer from the rounds they
        kept.
        """
        spread = self.log.column("spread")
        hits = np.nonzero(spread <= target)[0]
        if hits.shape[0] == 0:
            return None
        return int(self.log.column("round_index")[hits[0]])

    # ------------------------- serialization ------------------------- #

    def to_dict(self) -> dict[str, object]:
        """JSON-ready columnar representation (wire format 2).

        One array per metric field instead of one keyed object per
        round; ``from_dict`` inverts it exactly (ints and floats
        round-trip through JSON's repr-based encoding unchanged).
        """
        data: dict[str, object] = {
            "format": 2,
            "columns": self.log.to_columns(),
            "aggregates": None if self.aggregates is None else dict(self.aggregates),
            "converged_round": self.converged_round,
            "initial_summary": dict(self.initial_summary),
            "final_summary": dict(self.final_summary),
            "balancer_name": self.balancer_name,
            "wall_time_s": self.wall_time_s,
        }
        # Omitted (not null) when no probe ran: probe-less payloads stay
        # byte-identical to the pre-telemetry wire format.
        if self.telemetry is not None:
            data["telemetry"] = dict(self.telemetry)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SimulationResult":
        """Rebuild a result exported with :meth:`to_dict`.

        Reads both the columnar wire format and the legacy
        record-list format (``{"records": [{...}, ...], ...}``), so
        results cached before the columnar switch keep replaying.
        """
        if "columns" in data:
            log = RoundLog.from_columns(data["columns"])
            aggregates = data.get("aggregates")
            aggregates = None if aggregates is None else dict(aggregates)
        elif "records" in data:
            log = RoundLog.from_records(
                RoundRecord(**r) for r in data["records"]
            )
            aggregates = None
        else:
            raise ConfigurationError(
                "result payload has neither 'columns' nor 'records'"
            )
        telemetry = data.get("telemetry")
        return cls(
            log=log,
            converged_round=data["converged_round"],
            initial_summary=dict(data["initial_summary"]),
            final_summary=dict(data["final_summary"]),
            balancer_name=data["balancer_name"],
            wall_time_s=data["wall_time_s"],
            aggregates=aggregates,
            telemetry=None if telemetry is None else dict(telemetry),
        )

    def summary_row(self) -> dict[str, object]:
        """One-line summary for benchmark tables."""
        return {
            "algorithm": self.balancer_name,
            "rounds": self.n_rounds,
            "converged_round": self.converged_round,
            "final_cov": round(self.final_cov, 4),
            "final_spread": round(self.final_spread, 4),
            "migrations": self.total_migrations,
            "traffic": round(self.total_traffic, 2),
            "heat": round(self.total_heat, 2),
        }
