"""Probe-based telemetry: per-phase spans, structured counters, traces.

The Recorder (:mod:`repro.sim.recording`) answers *what happened to the
load surface*; it says nothing about where the engines spend their time
or how often the fast-path screens actually fire. This module adds the
second axis of observability as the same kind of policy object: a
:class:`Probe` that the :class:`~repro.sim.kernel.SimulationLoop` and
every engine driver emit into — wall-time *spans* for each kernel phase
(``play_round`` / ``observe`` / ``record`` / ``converge``, plus
``wake_wave`` drains in the event engines) and structured *counters*
from the decision bodies (Phase-A/B decisions evaluated, screen
hit/miss rates, no-effect waves skipped, RNG draws, transfers
issued/refused, heap vs. buffer pops).

Three implementations ship:

========================= ==========================================
``null``                  the default — ``enabled`` is False and every
                          instrumentation site is gated on that flag,
                          so the run is provably unchanged: records,
                          RNG stream and cache keys are untouched
``counters``              O(1) aggregate dict (counter totals plus
                          per-phase call counts and summed wall time)
                          attached to ``SimulationResult.telemetry``
                          and serialised in the wire format
``trace[:PATH]``          everything ``counters`` keeps *plus* a
                          Chrome trace-event JSON written per run —
                          loadable in ``chrome://tracing`` or Perfetto
========================= ==========================================

Probes are named by spec strings (``"null"``, ``"counters"``,
``"trace:profile.json"``) so they can ride inside a
:class:`~repro.runner.spec.RunSpec` and be selected from the CLI
(``--probe``). The hot-path contract mirrors the recorder's: callers
gate *all* instrumentation on ``probe.enabled`` (a plain class
attribute), so the null probe costs one boolean check per phase and
nothing per decision.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Union

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import SimulationResult

__all__ = [
    "Probe",
    "NullProbe",
    "CountersProbe",
    "TraceProbe",
    "ProbeSpec",
    "make_probe",
    "probe_tag",
    "DEFAULT_TRACE_PATH",
]

#: what a ``probe=`` engine/spec knob accepts.
ProbeSpec = Union[str, "Probe"]

#: where a bare ``trace`` spec (no path) writes its JSON.
DEFAULT_TRACE_PATH = "pplb-trace.json"


class Probe:
    """Telemetry sink: what the kernel and engines emit while running.

    The lifecycle mirrors :class:`~repro.sim.recording.Recorder`:
    :meth:`start` once per run, :meth:`incr`/:meth:`span` on the hot
    path (both gated on :attr:`enabled` by the caller), and
    :meth:`finalize` once at the end, installing whatever was kept into
    :attr:`~repro.sim.results.SimulationResult.telemetry`.

    ``enabled`` is a class attribute, not a property — the hot-path
    check is one attribute load. The base class doubles as the null
    probe: disabled, records nothing, finalizes to nothing.
    """

    #: spec-string name (subclasses override; ``trace`` renders ``trace:PATH``).
    name = "null"

    #: callers skip every instrumentation site when this is False.
    enabled = False

    def start(self) -> None:
        """Reset per-run state (probes are reusable across runs)."""

    def incr(self, name: str, n: int = 1) -> None:
        """Add *n* to the structured counter *name*."""

    def span(self, name: str, start_s: float, end_s: float) -> None:
        """Record one completed wall-time span (``perf_counter`` seconds)."""

    def finalize(self, result: "SimulationResult") -> None:
        """Install the kept telemetry into *result* (and/or write files)."""

    def tag(self) -> str:
        """The spec string this probe answers to (cache-key form)."""
        return self.name


class NullProbe(Probe):
    """The default: telemetry off, zero overhead, zero behavior change."""


#: stateless, so one shared instance serves every engine.
NULL_PROBE = NullProbe()


class CountersProbe(Probe):
    """O(1) aggregates: counter totals plus per-phase call/time sums.

    Nothing per-event is retained; :meth:`finalize` attaches one dict —
    ``{"probe", "counters", "phases"}`` — to the result, which the wire
    format serialises (and omits entirely for probe-less runs, keeping
    legacy payloads loadable).
    """

    name = "counters"
    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.phases: dict[str, list] = {}
        self._t0 = 0.0

    def start(self) -> None:
        self.counters = {}
        self.phases = {}
        self._t0 = time.perf_counter()

    def incr(self, name: str, n: int = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def span(self, name: str, start_s: float, end_s: float) -> None:
        phase = self.phases.get(name)
        if phase is None:
            self.phases[name] = phase = [0, 0.0]
        phase[0] += 1
        phase[1] += end_s - start_s

    def telemetry(self) -> dict[str, object]:
        """The JSON-ready aggregate block this probe kept."""
        return {
            "probe": self.tag(),
            "counters": dict(self.counters),
            "phases": {
                name: {"calls": calls, "total_s": total}
                for name, (calls, total) in self.phases.items()
            },
        }

    def finalize(self, result: "SimulationResult") -> None:
        result.telemetry = self.telemetry()


class TraceProbe(CountersProbe):
    """Everything ``counters`` keeps, plus a Chrome trace-event JSON.

    Each span becomes a complete (``"ph": "X"``) trace event with
    microsecond timestamps relative to run start; :meth:`finalize`
    writes ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` to
    :attr:`path` — the format ``chrome://tracing`` and Perfetto load
    directly — with the counter totals riding along under ``otherData``
    (ignored by the viewers, kept for humans and scripts).
    """

    name = "trace"

    def __init__(self, path: str = DEFAULT_TRACE_PATH):
        super().__init__()
        if not path:
            raise ConfigurationError("trace probe needs a non-empty path")
        self.path = str(path)
        self._events: list[dict] = []

    def start(self) -> None:
        super().start()
        self._events = []

    def span(self, name: str, start_s: float, end_s: float) -> None:
        super().span(name, start_s, end_s)
        self._events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": (start_s - self._t0) * 1e6,
                "dur": (end_s - start_s) * 1e6,
            }
        )

    def trace_dict(self) -> dict[str, object]:
        """The JSON-ready Chrome trace-event document."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"counters": dict(self.counters)},
        }

    def finalize(self, result: "SimulationResult") -> None:
        super().finalize(result)
        telemetry = result.telemetry
        assert telemetry is not None
        telemetry["trace_path"] = self.path
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(self.trace_dict(), fh)

    def tag(self) -> str:
        return f"trace:{self.path}"


def make_probe(spec: ProbeSpec = "null") -> Probe:
    """Build a probe from a spec string (or pass an instance through).

    Accepted spec strings: ``"null"``, ``"counters"``, ``"trace"``
    (writes :data:`DEFAULT_TRACE_PATH`) and ``"trace:<path>"``. Unknown
    specs raise :class:`~repro.exceptions.ConfigurationError`.
    """
    if isinstance(spec, Probe):
        return spec
    if spec == "null":
        return NULL_PROBE
    if spec == "counters":
        return CountersProbe()
    if spec == "trace":
        return TraceProbe()
    if isinstance(spec, str) and spec.startswith("trace:"):
        return TraceProbe(spec.split(":", 1)[1])
    raise ConfigurationError(
        f"unknown probe spec {spec!r}; expected 'null', 'counters', "
        f"'trace' or 'trace:<path>'"
    )


def probe_tag(spec: ProbeSpec) -> str:
    """Canonical spec string for *spec* (validates along the way)."""
    return make_probe(spec).tag()
