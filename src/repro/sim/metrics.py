"""Imbalance and traffic metrics.

The paper's goal state is a "nearly perfect load balance" (Theorem 2);
its cost currency is heat ≙ traffic (§4.1). These metrics quantify both:

* :func:`coefficient_of_variation` — scale-free imbalance,
  ``std(h)/mean(h)``; 0 for a perfectly flat surface.
* :func:`max_min_spread` — the gradient method's classic target,
  ``max(h) − min(h)``.
* :func:`normalized_spread` — spread divided by the mean load (so a
  spread of "one average task" reads as ≈ task_size/mean).
* :func:`transport_work` — Σ load·e_ij over applied hops: the uniform
  cross-algorithm traffic measure (PPLB's heat additionally weighs µk).

All functions accept the per-node load vector ``h``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _validate(h: np.ndarray) -> np.ndarray:
    h = np.asarray(h, dtype=np.float64)
    if h.ndim != 1 or h.shape[0] == 0:
        raise ConfigurationError(f"load vector must be non-empty 1-D, got shape {h.shape}")
    if (h < -1e-9).any():
        raise ConfigurationError("load vector has negative entries")
    return h


def coefficient_of_variation(h: np.ndarray) -> float:
    """``std(h) / mean(h)``; defined as 0 when the system is empty."""
    h = _validate(h)
    mean = h.mean()
    if mean <= 0:
        return 0.0
    return float(h.std() / mean)


def max_min_spread(h: np.ndarray) -> float:
    """``max(h) − min(h)`` — the height difference of peak and valley."""
    h = _validate(h)
    return float(h.max() - h.min())


def normalized_spread(h: np.ndarray) -> float:
    """Spread relative to the mean load per node (0 when empty)."""
    h = _validate(h)
    mean = h.mean()
    if mean <= 0:
        return 0.0
    return float((h.max() - h.min()) / mean)


def imbalance_summary(h: np.ndarray) -> dict[str, float]:
    """All imbalance metrics at once (one pass over *h*)."""
    h = _validate(h)
    mean = float(h.mean())
    return {
        "mean": mean,
        "max": float(h.max()),
        "min": float(h.min()),
        "std": float(h.std()),
        "cov": float(h.std() / mean) if mean > 0 else 0.0,
        "spread": float(h.max() - h.min()),
        "normalized_spread": float((h.max() - h.min()) / mean) if mean > 0 else 0.0,
    }


def transport_work(loads: np.ndarray, costs: np.ndarray) -> float:
    """Σ load·e over a set of hops — the uniform traffic measure."""
    loads = np.asarray(loads, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if loads.shape != costs.shape:
        raise ConfigurationError(
            f"loads and costs must align, got {loads.shape} vs {costs.shape}"
        )
    return float((loads * costs).sum())
